//! Offline shim for `criterion`: enough of the API surface to compile and run
//! the workspace's five bench targets, with honest wall-clock measurement.
//!
//! Differences from real criterion, by design:
//!
//! * Reporting is a plain `name  time: <mean> ns/iter (<samples> samples)`
//!   line per benchmark — no HTML, plots or statistical regression tests.
//! * The measurement loop is a fixed warm-up plus `sample_size` timed
//!   samples whose iteration count is calibrated to fill
//!   `measurement_time / sample_size` each.
//! * **Smoke profile:** setting `NOC_BENCH_SMOKE=1` caps warm-up and
//!   measurement at a few milliseconds so CI can exercise every harness
//!   end-to-end without multi-minute runs.
//! * **JSON sink:** setting `NOC_BENCH_JSON=<path>` additionally appends each
//!   result to an in-process list and rewrites `<path>` as a JSON document
//!   after every benchmark, so a partial run still leaves a parseable file
//!   for `tools/bench_diff`.

use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Environment variable that switches every benchmark to a milliseconds-long
/// smoke run (used by CI).
pub const SMOKE_ENV: &str = "NOC_BENCH_SMOKE";

/// Environment variable naming a file that receives every benchmark result as
/// JSON (`{"schema":1,"results":[{"id","mean_ns","samples"},...]}`).
pub const JSON_ENV: &str = "NOC_BENCH_JSON";

/// Results accumulated by this process, mirrored to the `NOC_BENCH_JSON` file
/// after every benchmark completes.
static JSON_RESULTS: Mutex<Vec<(String, f64, usize)>> = Mutex::new(Vec::new());

/// Escapes a benchmark id for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Records one result and rewrites the JSON sink file, if configured.
fn record_json(id: &str, mean_ns: f64, samples: usize) {
    let Some(path) = std::env::var_os(JSON_ENV).filter(|v| !v.is_empty()) else {
        return;
    };
    let mut results = JSON_RESULTS.lock().expect("bench JSON sink poisoned");
    results.push((id.to_string(), mean_ns, samples));
    let mut doc = String::from("{\n  \"schema\": 1,\n  \"results\": [\n");
    for (i, (id, mean_ns, samples)) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        doc.push_str(&format!(
            "    {{ \"id\": \"{}\", \"mean_ns\": {mean_ns:.1}, \"samples\": {samples} }}{sep}\n",
            json_escape(id)
        ));
    }
    doc.push_str("  ]\n}\n");
    if let Err(err) = std::fs::write(&path, doc) {
        eprintln!("warning: failed to write {}: {err}", path.to_string_lossy());
    }
}

/// How a batched routine's per-iteration setup output is grouped. The shim
/// runs one setup per routine call regardless, so the variants only exist for
/// API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many routine calls per batch in real criterion.
    SmallInput,
    /// Large inputs: few routine calls per batch in real criterion.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Benchmark driver handed to the closure of [`Criterion::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    /// Mean nanoseconds per iteration of the last `iter`/`iter_batched` call.
    last_mean_ns: f64,
    samples_taken: usize,
}

impl Bencher {
    /// Times `routine`, storing the mean ns/iteration for the report line.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and calibrate: how many iterations fit one sample window?
        let warm_up_end = Instant::now() + self.warm_up_time;
        let mut warm_iters: u64 = 0;
        let warm_start = Instant::now();
        while Instant::now() < warm_up_end {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        let sample_window = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((sample_window / per_iter.max(1e-9)) as u64).max(1);

        let mut total_ns = 0.0;
        let mut total_iters: u64 = 0;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            total_ns += start.elapsed().as_nanos() as f64;
            total_iters += iters_per_sample;
        }
        self.last_mean_ns = total_ns / total_iters.max(1) as f64;
        self.samples_taken = self.sample_size;
    }

    /// Times `routine` over values produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // One warm-up call, then `sample_size` timed calls (one setup each).
        black_box(routine(setup()));
        let mut total_ns = 0.0;
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total_ns += start.elapsed().as_nanos() as f64;
        }
        self.last_mean_ns = total_ns / self.sample_size.max(1) as f64;
        self.samples_taken = self.sample_size;
    }
}

/// The benchmark manager (configuration + report sink).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let smoke = std::env::var_os(SMOKE_ENV).is_some_and(|v| v != "0" && !v.is_empty());
        if smoke {
            Self {
                sample_size: 10,
                warm_up_time: Duration::from_millis(2),
                measurement_time: Duration::from_millis(10),
            }
        } else {
            Self {
                sample_size: 100,
                warm_up_time: Duration::from_millis(500),
                measurement_time: Duration::from_secs(2),
            }
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the target total measurement time per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// No-op for API compatibility with real criterion's CLI handling (the
    /// shim ignores `cargo bench`'s extra arguments in `criterion_main!`).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one benchmark and prints its report line.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            last_mean_ns: f64::NAN,
            samples_taken: 0,
        };
        f(&mut bencher);
        println!(
            "{id:<50} time: {:>12.1} ns/iter ({} samples)",
            bencher.last_mean_ns, bencher.samples_taken
        );
        record_json(id, bencher.last_mean_ns, bencher.samples_taken);
        self
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!` (both the plain and the
/// `name = ...; config = ...; targets = ...` forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, mirroring `criterion::criterion_main!`.
/// `cargo bench` passes flags such as `--bench`; the shim ignores them.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.bench_function("shim_self_test", |b| {
            b.iter(|| black_box((0..100u64).sum::<u64>()));
        });
    }

    #[test]
    fn json_escape_handles_quotes_and_controls() {
        assert_eq!(json_escape("plain_id"), "plain_id");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("tab\there"), "tab\\u0009here");
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion::default()
            .sample_size(4)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(4));
        c.bench_function("shim_batched_self_test", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| black_box(v.iter().sum::<u64>()),
                BatchSize::SmallInput,
            );
        });
    }
}
