//! Offline shim for `serde`: marker traits plus the no-op derives.
//!
//! Nothing in this workspace serializes at run time (there is no
//! `serde_json`/`bincode` in the environment), so `Serialize` and
//! `Deserialize` only need to exist as trait bounds and derive targets.
//! Both traits are blanket-implemented for every type, which makes any
//! `T: Serialize` bound in the workspace hold trivially.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
