//! Offline shim for `proptest`: a deterministic property-testing harness
//! exposing the subset of proptest's API the workspace uses — the
//! [`proptest!`] test macro, `prop_assert*!` / [`prop_oneof!`] macros, range
//! strategies, [`strategy::Just`], `any::<T>()` and [`collection::vec`].
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its case index, the test's
//!   derived seed and the assertion message; cases are deterministic per
//!   test name, so a failure reproduces by re-running the test.
//! * **Deterministic seeding.** The RNG seed is a hash of the test name, so
//!   no `proptest-regressions/` persistence files are needed.
//! * The number of cases per property honours the real crate's
//!   `PROPTEST_CASES` environment variable (default 256).

/// Default number of cases per property, as in real proptest.
pub const DEFAULT_CASES: u32 = 256;

/// Reads `PROPTEST_CASES`, falling back to [`DEFAULT_CASES`].
#[must_use]
pub fn cases_from_env() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_CASES)
}

/// Derives the deterministic RNG for a property from its test name.
#[must_use]
pub fn rng_for(test_name: &str) -> TestRng {
    // FNV-1a over the name gives a stable, well-mixed seed.
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::new(hash)
}

/// Deterministic PRNG (SplitMix64) driving every strategy.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from a 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample below 0");
        self.next_u64() % bound
    }
}

pub mod test_runner {
    //! Error type threaded out of `prop_assert*!` macros.

    use std::fmt;

    /// A failed property case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Creates a failure with the given message.
        #[must_use]
        pub fn fail(message: impl Into<String>) -> Self {
            Self(message.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Result of one property case.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

pub mod strategy {
    //! Value-generation strategies.

    use super::TestRng;
    use std::ops::{Range, RangeFrom, RangeInclusive};

    /// Generates values of `Self::Value` from an RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// A strategy that always yields a clone of its payload.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed strategies (built by `prop_oneof!`).
    pub struct Union<T> {
        choices: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Creates a union; panics if `choices` is empty.
        #[must_use]
        pub fn new(choices: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(
                !choices.is_empty(),
                "prop_oneof! needs at least one strategy"
            );
            Self { choices }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let index = rng.below(self.choices.len() as u64) as usize;
            self.choices[index].sample(rng)
        }
    }

    impl<T> std::fmt::Debug for Union<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Union({} choices)", self.choices.len())
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    self.start + rng.below((self.end - self.start) as u64) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    start + rng.below((end - start) as u64 + 1) as $t
                }
            }

            impl Strategy for RangeFrom<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let span = (<$t>::MAX - self.start) as u64;
                    if span == u64::MAX {
                        // Whole 64-bit domain; `span + 1` would overflow.
                        return rng.next_u64() as $t;
                    }
                    self.start + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    impl_int_range_strategies!(u8, u16, u32, usize);

    // u64 spans can overflow the `below` bound, so it gets a direct impl.
    impl Strategy for Range<u64> {
        type Value = u64;

        fn sample(&self, rng: &mut TestRng) -> u64 {
            assert!(self.start < self.end, "cannot sample empty range");
            self.start + rng.below(self.end - self.start)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — strategies derived from a type alone.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() as u8
        }
    }

    impl Arbitrary for u16 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() as u16
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64()
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Whole-domain strategy for `T`, mirroring `proptest::arbitrary::any`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a random length.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        length: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.length.end - self.length.start) as u64;
            let len = self.length.start + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Vectors whose length falls in `length`, with elements from `element` —
    /// mirrors `proptest::collection::vec`.
    #[must_use]
    pub fn vec<S: Strategy>(element: S, length: Range<usize>) -> VecStrategy<S> {
        assert!(length.start < length.end, "empty length range");
        VecStrategy { element, length }
    }
}

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude::*`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests, mirroring `proptest::proptest!`: each function's
/// arguments are drawn from the strategy after `in`, and the body runs once
/// per case with `prop_assert*!` failures reported with case context.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::cases_from_env();
                let mut rng = $crate::rng_for(stringify!($name));
                for case in 0..cases {
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng);
                    )+
                    // The closure is what gives `prop_assert*!` its early
                    // `return Err(..)` semantics, so it is structurally
                    // required even when a body never fails.
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(error) = outcome {
                        ::std::panic!(
                            "property {} failed at case {}/{} (seeded from the test name): {}",
                            stringify!($name),
                            case + 1,
                            cases,
                            error
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` that fails the current property case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that fails the current property case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// `assert_ne!` that fails the current property case instead of panicking.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Uniform choice among strategies, mirroring `proptest::prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let choices: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = ::std::vec![$(::std::boxed::Box::new($strategy)),+];
        $crate::strategy::Union::new(choices)
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u16..10, y in 5u16..=5, z in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert_eq!(y, 5);
            prop_assert!((0.25..0.75).contains(&z));
        }

        #[test]
        fn oneof_draws_every_choice(picks in crate::collection::vec(prop_oneof![Just(1u16), Just(2u16)], 64..65)) {
            prop_assert!(picks.iter().all(|&p| p == 1 || p == 2));
            prop_assert_ne!(picks.len(), 0);
        }

        #[test]
        fn whole_domain_range_from_does_not_overflow(x in 0usize.., y in 0u8..) {
            let _ = (x, y);
        }

        #[test]
        fn any_bool_is_drawable(flag in any::<bool>()) {
            let as_int = u8::from(flag);
            prop_assert!(as_int <= 1);
        }
    }

    #[test]
    fn failures_carry_case_context() {
        proptest! {
            fn always_fails(x in 0u16..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        let result = std::panic::catch_unwind(always_fails);
        let message = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(message.contains("always_fails"), "got: {message}");
        assert!(message.contains("case 1/"), "got: {message}");
    }

    #[test]
    fn seeding_is_deterministic_per_name() {
        let mut a = crate::rng_for("some_test");
        let mut b = crate::rng_for("some_test");
        let mut c = crate::rng_for("other_test");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
