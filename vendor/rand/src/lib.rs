//! Offline shim for `rand`: a deterministic, seedable PRNG behind the
//! `rand` 0.8 trait names the workspace uses (`Rng::gen_range`,
//! `SeedableRng::seed_from_u64`, `rngs::StdRng`).
//!
//! `StdRng` here is SplitMix64 — statistically ample for Monte-Carlo
//! reliability sweeps, trivially seedable, and dependency-free. It is NOT
//! the real `rand` `StdRng` (ChaCha12), so absolute sample sequences differ
//! from upstream; everything in this workspace only relies on per-seed
//! determinism and uniformity, which hold.

use std::ops::Range;

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Range sampling, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    // The range covers the whole 64-bit domain; `span + 1`
                    // would overflow, so sample the domain directly.
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u16, u32, u64, usize);

/// User-facing random-value API (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNG types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable PRNG (SplitMix64; see the crate docs).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0f64..1.0), b.gen_range(0.0f64..1.0));
        }
    }

    #[test]
    fn f64_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_roughly_centered() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn full_domain_inclusive_range_does_not_overflow() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            let _: u64 = rng.gen_range(0u64..=u64::MAX);
            let _: usize = rng.gen_range(0usize..=usize::MAX);
        }
    }

    #[test]
    fn integer_ranges_cover_and_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            let x = rng.gen_range(1u16..=6);
            seen[usize::from(x) - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
