//! Offline shim for `serde_derive`: the derives accept the same input as the
//! real crate (including `#[serde(...)]` field/variant attributes) and expand
//! to nothing. The matching marker traits in the `serde` shim are
//! blanket-implemented, so derived types still satisfy `T: Serialize` bounds.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
