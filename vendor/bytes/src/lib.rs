//! Offline shim for `bytes`: a cheaply cloneable immutable byte buffer.
//!
//! Only the surface the workspace uses is provided: construction
//! (`new`, `from_static`, `From<Vec<u8>>`, `From<&'static [u8]>`),
//! deref-to-slice access, and the std derives.

use std::borrow::Cow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable chunk of contiguous memory.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<Cow<'static, [u8]>>,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates `Bytes` from a static slice without copying.
    #[must_use]
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self {
            data: Arc::new(Cow::Borrowed(bytes)),
        }
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The contents as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self {
            data: Arc::new(Cow::Owned(data)),
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(data: &'static [u8]) -> Self {
        Self::from_static(data)
    }
}

impl From<&'static str> for Bytes {
    fn from(data: &'static str) -> Self {
        Self::from_static(data.as_bytes())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &byte in self.as_slice() {
            for escaped in std::ascii::escape_default(byte) {
                write!(f, "{}", escaped as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let empty = Bytes::new();
        assert!(empty.is_empty());
        let s = Bytes::from_static(b"hello");
        assert_eq!(s.len(), 5);
        assert_eq!(&s[1..3], b"el");
        let owned = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(owned.as_slice(), &[1, 2, 3]);
        assert_eq!(owned.clone(), owned);
    }

    #[test]
    fn debug_escapes_non_printable() {
        let b = Bytes::from_static(b"a\n");
        assert_eq!(format!("{b:?}"), "b\"a\\n\"");
    }
}
