//! Warmup / measurement / drain driver around a [`Network`].

use noc_types::NocError;

use crate::config::NocConfig;
use crate::network::Network;
use crate::result::SimulationResult;

/// Drives a [`Network`] through the standard measurement methodology:
///
/// 1. **warmup** — inject traffic without recording anything, so queues and
///    VC occupancies reach steady state (the chip's scan-chain warmup of 128
///    cycles plays the same role);
/// 2. **measurement** — keep injecting; record the latency of packets created
///    in this window and the flits received in it;
/// 3. **drain** — stop injecting and keep simulating until every measured
///    packet has reached all of its destinations (bounded by a drain limit so
///    a saturated network still terminates).
#[derive(Debug)]
pub struct Simulation {
    config: NocConfig,
    network: Network,
}

impl Simulation {
    /// Creates a simulation of `config`.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::Config`] when the configuration is invalid.
    pub fn new(config: NocConfig) -> Result<Self, NocError> {
        let network = Network::new(config, 0.0)?;
        Ok(Self { config, network })
    }

    /// The configuration being simulated.
    #[must_use]
    pub fn config(&self) -> &NocConfig {
        &self.config
    }

    /// Read access to the underlying network (for inspection in examples).
    #[must_use]
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Reconfigures how many threads step the underlying network's mesh (see
    /// [`Network::set_step_threads`]). Results are bit-identical for any
    /// thread count. Repartitioning resets simulation state, so call this
    /// before [`run`](Self::run) (each run [`reset`](Self::reset)s anyway in
    /// sweep batching).
    ///
    /// # Errors
    ///
    /// Returns [`NocError::Config`] when `threads` is zero.
    pub fn set_step_threads(&mut self, threads: usize) -> Result<(), NocError> {
        self.network.set_step_threads(threads)
    }

    /// Builder form of [`set_step_threads`](Self::set_step_threads).
    ///
    /// # Errors
    ///
    /// Returns [`NocError::Config`] when `threads` is zero.
    pub fn with_step_threads(mut self, threads: usize) -> Result<Self, NocError> {
        self.network.set_step_threads(threads)?;
        Ok(self)
    }

    /// Number of threads (mesh partitions) the simulation steps with.
    #[must_use]
    pub fn step_threads(&self) -> usize {
        self.network.step_threads()
    }

    /// Reconfigures the partition shape of the underlying network's mesh
    /// (see [`Network::set_partition_shape`]). Results are bit-identical for
    /// any shape. Re-sharding resets simulation state, so call this before
    /// [`run`](Self::run).
    ///
    /// # Errors
    ///
    /// Returns [`NocError::Config`] when any axis of `shape` is zero.
    pub fn set_partition_shape(
        &mut self,
        shape: crate::network::PartitionShape,
    ) -> Result<(), NocError> {
        self.network.set_partition_shape(shape)
    }

    /// Builder form of [`set_partition_shape`](Self::set_partition_shape).
    ///
    /// # Errors
    ///
    /// Returns [`NocError::Config`] when any axis of `shape` is zero.
    pub fn with_partition_shape(
        mut self,
        shape: crate::network::PartitionShape,
    ) -> Result<Self, NocError> {
        self.network.set_partition_shape(shape)?;
        Ok(self)
    }

    /// Enables or disables deterministic load-aware repartitioning (see
    /// [`Network::set_rebalance_epoch`]). The knob survives
    /// [`reset`](Self::reset), so sweep batching keeps it per worker.
    ///
    /// # Panics
    ///
    /// Panics when `epoch` is `Some(0)`.
    pub fn set_rebalance_epoch(&mut self, epoch: Option<u64>) {
        self.network.set_rebalance_epoch(epoch);
    }

    /// Rewinds the simulation to cycle zero with the PRBS generators
    /// re-seeded from `seed`, keeping the network's warmed-up buffer
    /// capacity (see [`Network::reset`]). A following [`run`](Self::run)
    /// behaves bit-identically to one on a freshly constructed simulation
    /// with that base seed — this is how [`crate::SweepRunner`] batches many
    /// sweep points through one simulation per worker thread.
    pub fn reset(&mut self, seed: u64) {
        self.network.reset(seed);
        self.config = *self.network.config();
    }

    /// Starts recording every packet the NICs inject into an in-memory
    /// trace (see [`Network::record_trace`]). Call before
    /// [`run`](Self::run) to capture a whole run.
    pub fn record_trace(&mut self) {
        self.network.record_trace();
    }

    /// Stops recording and returns the captured trace (see
    /// [`Network::take_recorded_trace`]).
    pub fn take_recorded_trace(&mut self) -> noc_types::Trace {
        self.network.take_recorded_trace()
    }

    /// Installs `trace` as the traffic source of every NIC (see
    /// [`Network::load_trace`]). A following [`run`](Self::run) over the
    /// same phase schedule as the recorded run reproduces it bit-for-bit;
    /// the `rate` argument is ignored by replay sources.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::Config`] when the trace's mesh side length does
    /// not match this simulation's.
    pub fn load_trace(&mut self, trace: &noc_types::Trace) -> Result<(), NocError> {
        self.network.load_trace(trace)
    }

    /// Runs warmup + measurement + drain at `rate` flits/node/cycle and
    /// returns the measured statistics.
    ///
    /// The drain phase is bounded at `4 × measure_cycles + 2000` cycles so a
    /// saturated network still returns (whatever packets completed by then
    /// determine the latency statistics, which is the standard treatment
    /// beyond saturation).
    ///
    /// # Errors
    ///
    /// Returns [`NocError::Config`] when `rate` is negative or above one
    /// flit/cycle (the NIC cannot inject more than one flit per cycle).
    pub fn run(
        &mut self,
        rate: f64,
        warmup_cycles: u64,
        measure_cycles: u64,
    ) -> Result<SimulationResult, NocError> {
        if !(0.0..=1.0).contains(&rate) {
            return Err(noc_types::ConfigError::InvalidInjectionRate { rate }.into());
        }
        self.network.set_rate(rate);

        // Warmup.
        self.network.set_measuring(false);
        for _ in 0..warmup_cycles {
            self.network.step(true);
        }

        // Measurement.
        self.network.set_measuring(true);
        for _ in 0..measure_cycles {
            self.network.step(true);
        }
        self.network.set_measuring(false);
        self.network
            .throughput_mut()
            .set_measured_cycles(measure_cycles);

        // Drain.
        let drain_limit = 4 * measure_cycles + 2000;
        let mut drained = 0;
        while self.network.outstanding_tracked_packets() > 0 && drained < drain_limit {
            self.network.step(false);
            drained += 1;
        }

        let latency = self.network.latency();
        let throughput = self.network.throughput();
        let counters = self.network.counters();
        Ok(SimulationResult {
            injection_rate: rate,
            average_latency_cycles: latency.mean(),
            p50_latency_cycles: latency.percentile(0.50).unwrap_or(0) as f64,
            p95_latency_cycles: latency.percentile(0.95).unwrap_or(0) as f64,
            p99_latency_cycles: latency.percentile(0.99).unwrap_or(0) as f64,
            measured_packets: latency.count(),
            received_flits_per_cycle: throughput.received_flits_per_cycle(),
            received_gbps: throughput
                .received_gbps(self.config.flit_bits, self.config.frequency_ghz),
            injected_flits: throughput.injected_flits(),
            measured_cycles: measure_cycles,
            bypass_fraction: counters.bypass_fraction(),
            counters,
            total_cycles: warmup_cycles + measure_cycles + drained,
            frequency_ghz: self.config.frequency_ghz,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NetworkVariant, NocConfig};
    use noc_traffic::{SeedMode, TrafficMix};

    #[test]
    fn rejects_invalid_rates() {
        let mut sim = Simulation::new(NocConfig::proposed_chip().unwrap()).unwrap();
        assert!(sim.run(-0.1, 10, 10).is_err());
        assert!(sim.run(1.5, 10, 10).is_err());
    }

    #[test]
    fn low_load_run_produces_sane_statistics() {
        let config = NocConfig::proposed_chip()
            .unwrap()
            .with_seed_mode(SeedMode::PerNode);
        let mut sim = Simulation::new(config).unwrap();
        let result = sim.run(0.02, 200, 1500).unwrap();
        assert!(result.measured_packets > 10);
        assert!(result.average_latency_cycles >= 5.0);
        assert!(result.average_latency_cycles <= 15.0);
        assert!(result.received_flits_per_cycle > 0.0);
        assert!(result.bypass_fraction > 0.5);
        // Received throughput for broadcast-heavy mixed traffic exceeds the
        // injected rate because every broadcast is delivered 15 times.
        assert!(result.received_gbps > result.offered_gbps(4, 64));
    }

    #[test]
    fn throughput_saturates_below_the_theoretical_limit() {
        let config = NocConfig::proposed_chip()
            .unwrap()
            .with_mix(TrafficMix::broadcast_only())
            .with_seed_mode(SeedMode::PerNode);
        let mut sim = Simulation::new(config).unwrap();
        // Offer far more broadcast load than the ejection links can deliver.
        let result = sim.run(0.2, 300, 1200).unwrap();
        let limit_flits_per_cycle = 16.0;
        assert!(result.received_flits_per_cycle <= limit_flits_per_cycle + 1e-9);
        assert!(
            result.received_flits_per_cycle > 0.5 * limit_flits_per_cycle,
            "saturation throughput {:.2} should approach the 16 flits/cycle limit",
            result.received_flits_per_cycle
        );
    }

    #[test]
    fn proposed_beats_the_baseline_on_mixed_traffic_latency() {
        let run = |variant: NetworkVariant| {
            let config = NocConfig::variant(variant)
                .unwrap()
                .with_seed_mode(SeedMode::PerNode);
            let mut sim = Simulation::new(config).unwrap();
            sim.run(0.05, 300, 1500).unwrap().average_latency_cycles
        };
        let baseline = run(NetworkVariant::FullSwingUnicast);
        let proposed = run(NetworkVariant::LowSwingBroadcastBypass);
        let reduction = 1.0 - proposed / baseline;
        assert!(
            reduction > 0.3,
            "expected a large latency reduction, got {:.1}% (baseline {baseline:.1}, proposed {proposed:.1})",
            reduction * 100.0
        );
    }
}
