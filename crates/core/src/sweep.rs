//! Injection-rate sweeps, saturation detection and the §4.1 summary numbers.
//!
//! The paper presents its latency-throughput results (Figs. 5 and 13) as
//! curves of average packet latency versus received throughput, one curve per
//! network, with the theoretical limits overlaid, and summarises them as:
//! latency reduction before saturation, saturation-throughput improvement
//! over the baseline, and fraction of the theoretical throughput limit
//! reached. This module produces exactly those artefacts.

use noc_topology::limits::MeshLimits;
use noc_types::NocError;
use serde::{Deserialize, Serialize};

use crate::config::NocConfig;
use crate::result::SimulationResult;
use crate::simulation::Simulation;

/// One sweep point: a simulation at one injection rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Offered injection rate (flits/node/cycle).
    pub injection_rate: f64,
    /// Average packet latency (cycles).
    pub latency_cycles: f64,
    /// Received throughput (Gb/s).
    pub received_gbps: f64,
    /// Received throughput (flits/cycle).
    pub received_flits_per_cycle: f64,
    /// Fraction of hops that bypassed the router pipeline.
    pub bypass_fraction: f64,
}

impl From<&SimulationResult> for SweepPoint {
    fn from(r: &SimulationResult) -> Self {
        Self {
            injection_rate: r.injection_rate,
            latency_cycles: r.average_latency_cycles,
            received_gbps: r.received_gbps,
            received_flits_per_cycle: r.received_flits_per_cycle,
            bypass_fraction: r.bypass_fraction,
        }
    }
}

/// A full latency-throughput curve for one network configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCurve {
    /// Points in increasing injection-rate order.
    pub points: Vec<SweepPoint>,
    /// Low-load ("zero-load") latency: the latency of the first point.
    pub zero_load_latency_cycles: f64,
    /// Saturation throughput in Gb/s (the paper's definition: the received
    /// throughput at the first point whose latency reaches 3× the zero-load
    /// latency; the last point's throughput if none does).
    pub saturation_gbps: f64,
    /// Injection rate at which saturation was detected.
    pub saturation_rate: f64,
}

impl SweepCurve {
    /// Builds a curve from sweep points (already ordered by injection rate).
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty.
    #[must_use]
    pub fn from_points(points: Vec<SweepPoint>) -> Self {
        assert!(!points.is_empty(), "a sweep needs at least one point");
        let zero_load = points[0].latency_cycles;
        let saturation_point = points
            .iter()
            .find(|p| p.latency_cycles >= 3.0 * zero_load)
            .or_else(|| points.last())
            .expect("points is non-empty");
        Self {
            zero_load_latency_cycles: zero_load,
            saturation_gbps: saturation_point.received_gbps,
            saturation_rate: saturation_point.injection_rate,
            points,
        }
    }

    /// Latency at the lowest injection rate, i.e. the measured analogue of
    /// the zero-load latency of Table 2.
    #[must_use]
    pub fn low_load_latency(&self) -> f64 {
        self.zero_load_latency_cycles
    }
}

/// Side-by-side comparison of a proposed and a baseline curve, plus the
/// theoretical limits — the numbers §4.1 quotes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepComparison {
    /// The proposed network's curve.
    pub proposed: SweepCurve,
    /// The baseline network's curve.
    pub baseline: SweepCurve,
    /// Latency reduction of the proposed network at low load (0..1).
    pub latency_reduction: f64,
    /// Saturation-throughput improvement factor over the baseline.
    pub throughput_improvement: f64,
    /// Proposed saturation throughput as a fraction of the theoretical limit.
    pub fraction_of_theoretical_limit: f64,
    /// The theoretical throughput limit used for that fraction (Gb/s).
    pub theoretical_limit_gbps: f64,
    /// Theoretical latency limit (cycles per packet, including NIC cycles).
    pub theoretical_latency_cycles: f64,
}

/// Runs a latency-throughput sweep of `config` over `rates`.
///
/// # Errors
///
/// Propagates configuration errors from the underlying simulations.
pub fn sweep(
    config: NocConfig,
    rates: &[f64],
    warmup_cycles: u64,
    measure_cycles: u64,
) -> Result<SweepCurve, NocError> {
    let mut points = Vec::with_capacity(rates.len());
    for &rate in rates {
        let mut sim = Simulation::new(config)?;
        let result = sim.run(rate, warmup_cycles, measure_cycles)?;
        points.push(SweepPoint::from(&result));
    }
    Ok(SweepCurve::from_points(points))
}

/// Compares a proposed and a baseline configuration over the same rates and
/// computes the §4.1 summary statistics.
///
/// `broadcast_fraction_of_limit` selects which theoretical throughput limit
/// to compare against: `true` uses the broadcast (ejection-limited) limit,
/// which is also the right reference for the paper's mixed traffic since its
/// throughput axis counts received flits.
///
/// # Errors
///
/// Propagates configuration errors from the underlying simulations.
pub fn compare(
    proposed: NocConfig,
    baseline: NocConfig,
    rates: &[f64],
    warmup_cycles: u64,
    measure_cycles: u64,
) -> Result<SweepComparison, NocError> {
    let limits = MeshLimits::new(proposed.k);
    let proposed_curve = sweep(proposed, rates, warmup_cycles, measure_cycles)?;
    let baseline_curve = sweep(baseline, rates, warmup_cycles, measure_cycles)?;
    let theoretical_limit_gbps =
        limits.throughput_limit_gbps(true, proposed.flit_bits, proposed.frequency_ghz);
    let broadcast_heavy = proposed.mix.broadcast_request() > 0.0;
    let mean_flits = proposed.mix.expected_flits_per_packet() as usize;
    let theoretical_latency_cycles =
        limits.packet_latency_limit(broadcast_heavy, mean_flits.max(1));
    Ok(SweepComparison {
        latency_reduction: 1.0
            - proposed_curve.low_load_latency() / baseline_curve.low_load_latency(),
        throughput_improvement: proposed_curve.saturation_gbps / baseline_curve.saturation_gbps,
        fraction_of_theoretical_limit: proposed_curve.saturation_gbps / theoretical_limit_gbps,
        theoretical_limit_gbps,
        theoretical_latency_cycles,
        proposed: proposed_curve,
        baseline: baseline_curve,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkVariant;
    use noc_traffic::SeedMode;

    #[test]
    fn curve_detects_saturation_with_the_3x_rule() {
        let points = vec![
            SweepPoint {
                injection_rate: 0.01,
                latency_cycles: 10.0,
                received_gbps: 100.0,
                received_flits_per_cycle: 1.5,
                bypass_fraction: 0.9,
            },
            SweepPoint {
                injection_rate: 0.05,
                latency_cycles: 14.0,
                received_gbps: 400.0,
                received_flits_per_cycle: 6.0,
                bypass_fraction: 0.8,
            },
            SweepPoint {
                injection_rate: 0.07,
                latency_cycles: 35.0,
                received_gbps: 700.0,
                received_flits_per_cycle: 11.0,
                bypass_fraction: 0.6,
            },
        ];
        let curve = SweepCurve::from_points(points);
        assert_eq!(curve.zero_load_latency_cycles, 10.0);
        assert_eq!(curve.saturation_gbps, 700.0);
        assert_eq!(curve.saturation_rate, 0.07);
    }

    #[test]
    fn curve_without_saturation_uses_the_last_point() {
        let points = vec![
            SweepPoint {
                injection_rate: 0.01,
                latency_cycles: 10.0,
                received_gbps: 100.0,
                received_flits_per_cycle: 1.5,
                bypass_fraction: 0.9,
            },
            SweepPoint {
                injection_rate: 0.02,
                latency_cycles: 12.0,
                received_gbps: 200.0,
                received_flits_per_cycle: 3.0,
                bypass_fraction: 0.85,
            },
        ];
        let curve = SweepCurve::from_points(points);
        assert_eq!(curve.saturation_gbps, 200.0);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_sweep_panics() {
        let _ = SweepCurve::from_points(Vec::new());
    }

    #[test]
    fn small_comparison_shows_the_proposed_network_ahead() {
        // A deliberately small sweep so the test stays fast; the full-size
        // sweeps live in the bench harness.
        let proposed = NocConfig::variant(NetworkVariant::LowSwingBroadcastBypass)
            .unwrap()
            .with_seed_mode(SeedMode::PerNode);
        let baseline = NocConfig::variant(NetworkVariant::FullSwingUnicast)
            .unwrap()
            .with_seed_mode(SeedMode::PerNode);
        let rates = [0.02, 0.12, 0.3];
        let comparison = compare(proposed, baseline, &rates, 200, 800).unwrap();
        assert!(comparison.latency_reduction > 0.2);
        assert!(comparison.throughput_improvement > 1.0);
        assert!(comparison.fraction_of_theoretical_limit <= 1.0);
        assert!(comparison.theoretical_limit_gbps == 1024.0);
    }
}
