//! Injection-rate sweeps, saturation detection and the §4.1 summary numbers.
//!
//! The paper presents its latency-throughput results (Figs. 5 and 13) as
//! curves of average packet latency versus received throughput, one curve per
//! network, with the theoretical limits overlaid, and summarises them as:
//! latency reduction before saturation, saturation-throughput improvement
//! over the baseline, and fraction of the theoretical throughput limit
//! reached. This module produces exactly those artefacts.
//!
//! ## Parallel sweeps and warm-network batching
//!
//! Every sweep point is an independent simulation, so [`SweepRunner`] shards
//! points across `std::thread` workers. Each worker batches its points
//! through **one warmed [`Simulation`]**: between points the network is
//! rewound with [`Simulation::reset`] (re-seeding the PRBS generators while
//! keeping the event wheel's slot rings, NIC injection rings, VC buffers and
//! fork caches at their high-water-mark capacity), so only the first point
//! per worker pays cold-start allocation.
//!
//! Determinism is preserved by construction: each point's PRBS base seed is
//! derived from the configuration's base seed and the *point index* (not
//! from scheduling order), a reset-then-run is bit-identical to a cold
//! per-point simulation, and results are stitched back together in index
//! order — a sweep run with one thread and with N threads produces
//! bit-identical [`SweepCurve`]s. See `tests/determinism.rs`.
//!
//! Point-level sharding composes with the network's partitioned stepper
//! ([`SweepRunner::with_step_threads`]): each worker's simulation can itself
//! step the mesh on several threads. `jobs` takes precedence — the requested
//! step threads are capped at run time so `jobs × step_threads` never
//! exceeds the machine's available parallelism — and since both axes are
//! bit-deterministic, any combination produces the same curve.

use std::time::Instant;

use noc_topology::limits::MeshLimits;
use noc_types::{ConfigError, NocError};
use serde::{Deserialize, Serialize};

use crate::config::NocConfig;
use crate::network::PartitionShape;
use crate::result::SimulationResult;
use crate::simulation::Simulation;

/// One sweep point: a simulation at one injection rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Offered injection rate (flits/node/cycle).
    pub injection_rate: f64,
    /// Average packet latency (cycles).
    pub latency_cycles: f64,
    /// Received throughput (Gb/s).
    pub received_gbps: f64,
    /// Received throughput (flits/cycle).
    pub received_flits_per_cycle: f64,
    /// Fraction of hops that bypassed the router pipeline.
    pub bypass_fraction: f64,
}

impl From<&SimulationResult> for SweepPoint {
    fn from(r: &SimulationResult) -> Self {
        Self {
            injection_rate: r.injection_rate,
            latency_cycles: r.average_latency_cycles,
            received_gbps: r.received_gbps,
            received_flits_per_cycle: r.received_flits_per_cycle,
            bypass_fraction: r.bypass_fraction,
        }
    }
}

/// A full latency-throughput curve for one network configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCurve {
    /// Points in increasing injection-rate order.
    pub points: Vec<SweepPoint>,
    /// Low-load ("zero-load") latency: the latency of the first point.
    pub zero_load_latency_cycles: f64,
    /// Saturation throughput in Gb/s (the paper's definition: the received
    /// throughput at the first point whose latency reaches 3× the zero-load
    /// latency; the last point's throughput if none does).
    pub saturation_gbps: f64,
    /// Injection rate at which saturation was detected.
    pub saturation_rate: f64,
}

impl SweepCurve {
    /// Builds a curve from sweep points (already ordered by injection rate).
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty.
    #[must_use]
    pub fn from_points(points: Vec<SweepPoint>) -> Self {
        assert!(!points.is_empty(), "a sweep needs at least one point");
        let zero_load = points[0].latency_cycles;
        let saturation_point = points
            .iter()
            .find(|p| p.latency_cycles >= 3.0 * zero_load)
            .or_else(|| points.last())
            .expect("points is non-empty");
        Self {
            zero_load_latency_cycles: zero_load,
            saturation_gbps: saturation_point.received_gbps,
            saturation_rate: saturation_point.injection_rate,
            points,
        }
    }

    /// Latency at the lowest injection rate, i.e. the measured analogue of
    /// the zero-load latency of Table 2.
    #[must_use]
    pub fn low_load_latency(&self) -> f64 {
        self.zero_load_latency_cycles
    }
}

/// Side-by-side comparison of a proposed and a baseline curve, plus the
/// theoretical limits — the numbers §4.1 quotes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepComparison {
    /// The proposed network's curve.
    pub proposed: SweepCurve,
    /// The baseline network's curve.
    pub baseline: SweepCurve,
    /// Latency reduction of the proposed network at low load (0..1).
    pub latency_reduction: f64,
    /// Saturation-throughput improvement factor over the baseline.
    pub throughput_improvement: f64,
    /// Proposed saturation throughput as a fraction of the theoretical limit.
    pub fraction_of_theoretical_limit: f64,
    /// The theoretical throughput limit used for that fraction (Gb/s).
    pub theoretical_limit_gbps: f64,
    /// Theoretical latency limit (cycles per packet, including NIC cycles).
    pub theoretical_latency_cycles: f64,
}

/// One fully measured sweep point as produced by a [`SweepRunner`]: the
/// complete simulation result plus the wall-clock time the point took.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPointOutcome {
    /// Offered injection rate of this point.
    pub injection_rate: f64,
    /// The point's full simulation result.
    pub result: SimulationResult,
    /// Wall-clock milliseconds spent simulating this point.
    pub wall_ms: f64,
}

/// Everything a [`SweepRunner`] run produces: the curve, the per-point
/// results/wall-clocks, and the total wall-clock time.
///
/// Wall-clock times live here — outside [`SweepCurve`] — so curves stay
/// bit-comparable across runs with different thread counts.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// The latency-throughput curve (bit-identical for any thread count).
    pub curve: SweepCurve,
    /// Per-point outcomes in injection-rate (input) order.
    pub points: Vec<SweepPointOutcome>,
    /// Total wall-clock milliseconds for the whole sweep.
    pub total_wall_ms: f64,
}

/// Runs the points of an injection-rate sweep, optionally in parallel.
///
/// Each point owns an independent [`Simulation`] seeded from
/// [`point_seed`](SweepRunner::point_seed), so points can execute on any
/// thread in any order and still reproduce the sequential result exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepRunner {
    jobs: usize,
    /// Requested intra-simulation step threads per sweep worker (see
    /// [`with_step_threads`](SweepRunner::with_step_threads)); the effective
    /// value is capped at run time so `jobs × step_threads` never
    /// oversubscribes the machine.
    step_threads: usize,
    /// Explicit partition shape per sweep worker (see
    /// [`with_partition_shape`](SweepRunner::with_partition_shape)); when
    /// set it overrides `step_threads` and bypasses the oversubscription
    /// cap — an explicit shape is honoured exactly.
    shape: Option<PartitionShape>,
    /// Deterministic load-aware repartition epoch applied to every worker's
    /// simulation (see [`with_rebalance_epoch`](SweepRunner::with_rebalance_epoch)).
    rebalance_epoch: Option<u64>,
    warmup_cycles: u64,
    measure_cycles: u64,
}

impl SweepRunner {
    /// A runner distributing points over `jobs` worker threads (`0` is
    /// treated as `1`), each stepping its simulation serially, with default
    /// warmup/measurement windows of 1000/5000 cycles.
    #[must_use]
    pub fn new(jobs: usize) -> Self {
        Self {
            jobs: jobs.max(1),
            step_threads: 1,
            shape: None,
            rebalance_epoch: None,
            warmup_cycles: 1_000,
            measure_cycles: 5_000,
        }
    }

    /// Replaces the warmup and measurement windows (cycles). A zero-cycle
    /// warmup is legal (measurement starts cold); a zero-cycle measurement
    /// window is not — it would divide every throughput by zero and poison
    /// the curve with NaNs.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidSweepWindow`] when `measure_cycles == 0`.
    pub fn with_windows(
        mut self,
        warmup_cycles: u64,
        measure_cycles: u64,
    ) -> Result<Self, NocError> {
        if measure_cycles == 0 {
            return Err(ConfigError::InvalidSweepWindow { measure_cycles }.into());
        }
        self.warmup_cycles = warmup_cycles;
        self.measure_cycles = measure_cycles;
        Ok(self)
    }

    /// Requests `step_threads` partition worker threads *inside* each sweep
    /// worker's simulation ([`Simulation::set_step_threads`]). The two
    /// parallelism axes compose with a documented precedence: **`jobs` wins**
    /// — point-level sharding scales better than intra-mesh partitioning, so
    /// the effective step-thread count is capped at run time to
    /// `max(1, available_parallelism / jobs)` and `jobs` is never reduced.
    /// Curves are bit-identical for any `(jobs, step_threads)` combination,
    /// so the cap only affects wall-clock, never results.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidParallelism`] when `step_threads == 0`
    /// (jobs cannot be zero — [`SweepRunner::new`] maps 0 to 1).
    pub fn with_step_threads(mut self, step_threads: usize) -> Result<Self, NocError> {
        if step_threads == 0 {
            return Err(ConfigError::InvalidParallelism {
                jobs: self.jobs,
                step_threads,
            }
            .into());
        }
        self.step_threads = step_threads;
        Ok(self)
    }

    /// Requests an explicit partition shape for each sweep worker's
    /// simulation ([`Simulation::set_partition_shape`]) — row strips or a
    /// 2-D tile grid. Unlike [`with_step_threads`](Self::with_step_threads),
    /// an explicit shape is honoured exactly (no oversubscription cap):
    /// curves are bit-identical for every shape, so the choice only affects
    /// wall-clock, and a caller asking for `tiles:2x2` gets `tiles:2x2`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidParallelism`] when any axis of `shape`
    /// is zero.
    pub fn with_partition_shape(mut self, shape: PartitionShape) -> Result<Self, NocError> {
        shape.validate()?;
        self.shape = Some(shape);
        Ok(self)
    }

    /// Applies a deterministic load-aware repartition epoch to every
    /// worker's simulation ([`Simulation::set_rebalance_epoch`]). Curves are
    /// bit-identical with or without rebalancing.
    ///
    /// # Panics
    ///
    /// Panics when `epoch` is `Some(0)`.
    #[must_use]
    pub fn with_rebalance_epoch(mut self, epoch: Option<u64>) -> Self {
        assert!(epoch != Some(0), "rebalance epoch must be non-zero");
        self.rebalance_epoch = epoch;
        self
    }

    /// Number of worker threads this runner uses.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Requested intra-simulation step threads (before the run-time
    /// oversubscription cap; see
    /// [`with_step_threads`](SweepRunner::with_step_threads)).
    #[must_use]
    pub fn step_threads(&self) -> usize {
        self.step_threads
    }

    /// The step-thread count actually applied per sweep worker when `jobs`
    /// workers run: the requested value capped at
    /// `max(1, available_parallelism / jobs)`, so the two parallelism axes
    /// never oversubscribe the machine together.
    #[must_use]
    pub fn effective_step_threads(&self, jobs: usize) -> usize {
        let available = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        self.step_threads.min((available / jobs.max(1)).max(1))
    }

    /// The PRBS base seed of sweep point `index` under `config`: a SplitMix64
    /// finalizer over (configured base seed, index), truncated to the LFSR
    /// width. Depends only on its inputs — never on thread count or
    /// execution order.
    #[must_use]
    pub fn point_seed(config: &NocConfig, index: usize) -> u16 {
        let mut z = (u64::from(config.base_seed) << 32) ^ (index as u64).wrapping_add(1);
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        // The LFSR remaps 0 to a fixed constant; fold to a non-zero seed
        // ourselves so distinct points can never alias through that remap.
        let seed = (z & 0xFFFF) as u16;
        if seed == 0 {
            0x1D0C
        } else {
            seed
        }
    }

    /// Runs one sweep over `rates`, sharding points across the runner's
    /// worker threads.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the underlying simulations.
    ///
    /// # Panics
    ///
    /// Panics if `rates` is empty or a worker thread panics.
    pub fn run(&self, config: NocConfig, rates: &[f64]) -> Result<SweepOutcome, NocError> {
        assert!(!rates.is_empty(), "a sweep needs at least one point");
        let sweep_start = Instant::now();
        let jobs = self.jobs.min(rates.len());
        let step_threads = self.effective_step_threads(jobs);
        let mut outcomes: Vec<Option<SweepPointOutcome>> = vec![None; rates.len()];

        if jobs <= 1 {
            let mut sim = self.build_simulation(config, step_threads)?;
            for (index, slot) in outcomes.iter_mut().enumerate() {
                *slot = Some(self.run_point(&mut sim, &config, rates, index)?);
            }
        } else {
            // Round-robin sharding; each worker batches its points through
            // one warmed simulation (reset between points, buffers kept) and
            // returns (index, outcome) pairs that are stitched back together
            // in index order.
            let results: Vec<Result<Vec<(usize, SweepPointOutcome)>, NocError>> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..jobs)
                        .map(|worker| {
                            scope.spawn(move || {
                                let mut sim = self.build_simulation(config, step_threads)?;
                                let mut mine = Vec::new();
                                for index in (worker..rates.len()).step_by(jobs) {
                                    mine.push((
                                        index,
                                        self.run_point(&mut sim, &config, rates, index)?,
                                    ));
                                }
                                Ok(mine)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("sweep worker thread panicked"))
                        .collect()
                });
            for worker_results in results {
                for (index, outcome) in worker_results? {
                    outcomes[index] = Some(outcome);
                }
            }
        }

        let points: Vec<SweepPointOutcome> = outcomes
            .into_iter()
            .map(|o| o.expect("every sweep point was simulated"))
            .collect();
        let curve =
            SweepCurve::from_points(points.iter().map(|p| SweepPoint::from(&p.result)).collect());
        Ok(SweepOutcome {
            curve,
            points,
            total_wall_ms: sweep_start.elapsed().as_secs_f64() * 1_000.0,
        })
    }

    /// Builds one sweep worker's batch simulation: an explicit partition
    /// shape wins over the (capped) step-thread request, and the rebalance
    /// epoch — which survives per-point resets — is applied once here.
    fn build_simulation(
        &self,
        config: NocConfig,
        step_threads: usize,
    ) -> Result<Simulation, NocError> {
        let mut sim = Simulation::new(config)?;
        match self.shape {
            Some(shape) => sim.set_partition_shape(shape)?,
            None => sim.set_step_threads(step_threads)?,
        }
        sim.set_rebalance_epoch(self.rebalance_epoch);
        Ok(sim)
    }

    /// Simulates sweep point `index` of `rates` on a (possibly warm) batch
    /// simulation: the network is reset to the point's derived seed, so the
    /// outcome is bit-identical to a cold per-point simulation while reusing
    /// all of `sim`'s buffer capacity.
    fn run_point(
        &self,
        sim: &mut Simulation,
        config: &NocConfig,
        rates: &[f64],
        index: usize,
    ) -> Result<SweepPointOutcome, NocError> {
        let start = Instant::now();
        sim.reset(u64::from(Self::point_seed(config, index)));
        let result = sim.run(rates[index], self.warmup_cycles, self.measure_cycles)?;
        Ok(SweepPointOutcome {
            injection_rate: rates[index],
            result,
            wall_ms: start.elapsed().as_secs_f64() * 1_000.0,
        })
    }
}

/// Runs a latency-throughput sweep of `config` over `rates` on the calling
/// thread (the sequential special case of [`SweepRunner`]).
///
/// # Errors
///
/// Propagates configuration errors from the underlying simulations.
pub fn sweep(
    config: NocConfig,
    rates: &[f64],
    warmup_cycles: u64,
    measure_cycles: u64,
) -> Result<SweepCurve, NocError> {
    SweepRunner::new(1)
        .with_windows(warmup_cycles, measure_cycles)?
        .run(config, rates)
        .map(|outcome| outcome.curve)
}

/// Compares a proposed and a baseline configuration over the same rates and
/// computes the §4.1 summary statistics.
///
/// `broadcast_fraction_of_limit` selects which theoretical throughput limit
/// to compare against: `true` uses the broadcast (ejection-limited) limit,
/// which is also the right reference for the paper's mixed traffic since its
/// throughput axis counts received flits.
///
/// # Errors
///
/// Propagates configuration errors from the underlying simulations.
pub fn compare(
    proposed: NocConfig,
    baseline: NocConfig,
    rates: &[f64],
    warmup_cycles: u64,
    measure_cycles: u64,
) -> Result<SweepComparison, NocError> {
    compare_with(
        &SweepRunner::new(1).with_windows(warmup_cycles, measure_cycles)?,
        proposed,
        baseline,
        rates,
    )
}

/// [`compare`], but sweeping both networks through `runner` (so the points
/// of each curve run on the runner's worker threads). Results are identical
/// to the sequential [`compare`] for any thread count.
///
/// # Errors
///
/// Propagates configuration errors from the underlying simulations.
pub fn compare_with(
    runner: &SweepRunner,
    proposed: NocConfig,
    baseline: NocConfig,
    rates: &[f64],
) -> Result<SweepComparison, NocError> {
    let proposed_curve = runner.run(proposed, rates)?.curve;
    let baseline_curve = runner.run(baseline, rates)?.curve;
    Ok(comparison_from_curves(
        &proposed,
        proposed_curve,
        baseline_curve,
    ))
}

/// Builds the §4.1 summary statistics from two already-swept curves
/// (`proposed_config` supplies the theoretical-limit parameters).
///
/// Callers that need the sweeps' raw [`SweepOutcome`]s (e.g. for
/// machine-readable reports) run the curves through a [`SweepRunner`]
/// themselves and use this to derive the comparison.
#[must_use]
pub fn comparison_from_curves(
    proposed_config: &NocConfig,
    proposed: SweepCurve,
    baseline: SweepCurve,
) -> SweepComparison {
    let limits = MeshLimits::new(proposed_config.k);
    let theoretical_limit_gbps = limits.throughput_limit_gbps(
        true,
        proposed_config.flit_bits,
        proposed_config.frequency_ghz,
    );
    let broadcast_heavy = proposed_config.mix.broadcast_request() > 0.0;
    let mean_flits = proposed_config.mix.expected_flits_per_packet() as usize;
    let theoretical_latency_cycles =
        limits.packet_latency_limit(broadcast_heavy, mean_flits.max(1));
    SweepComparison {
        latency_reduction: 1.0 - proposed.low_load_latency() / baseline.low_load_latency(),
        throughput_improvement: proposed.saturation_gbps / baseline.saturation_gbps,
        fraction_of_theoretical_limit: proposed.saturation_gbps / theoretical_limit_gbps,
        theoretical_limit_gbps,
        theoretical_latency_cycles,
        proposed,
        baseline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkVariant;
    use noc_traffic::SeedMode;

    #[test]
    fn curve_detects_saturation_with_the_3x_rule() {
        let points = vec![
            SweepPoint {
                injection_rate: 0.01,
                latency_cycles: 10.0,
                received_gbps: 100.0,
                received_flits_per_cycle: 1.5,
                bypass_fraction: 0.9,
            },
            SweepPoint {
                injection_rate: 0.05,
                latency_cycles: 14.0,
                received_gbps: 400.0,
                received_flits_per_cycle: 6.0,
                bypass_fraction: 0.8,
            },
            SweepPoint {
                injection_rate: 0.07,
                latency_cycles: 35.0,
                received_gbps: 700.0,
                received_flits_per_cycle: 11.0,
                bypass_fraction: 0.6,
            },
        ];
        let curve = SweepCurve::from_points(points);
        assert_eq!(curve.zero_load_latency_cycles, 10.0);
        assert_eq!(curve.saturation_gbps, 700.0);
        assert_eq!(curve.saturation_rate, 0.07);
    }

    #[test]
    fn curve_without_saturation_uses_the_last_point() {
        let points = vec![
            SweepPoint {
                injection_rate: 0.01,
                latency_cycles: 10.0,
                received_gbps: 100.0,
                received_flits_per_cycle: 1.5,
                bypass_fraction: 0.9,
            },
            SweepPoint {
                injection_rate: 0.02,
                latency_cycles: 12.0,
                received_gbps: 200.0,
                received_flits_per_cycle: 3.0,
                bypass_fraction: 0.85,
            },
        ];
        let curve = SweepCurve::from_points(points);
        assert_eq!(curve.saturation_gbps, 200.0);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_sweep_panics() {
        let _ = SweepCurve::from_points(Vec::new());
    }

    #[test]
    fn point_seeds_are_stable_and_distinct() {
        let config = NocConfig::proposed_chip().unwrap();
        let seeds: Vec<u16> = (0..16)
            .map(|i| SweepRunner::point_seed(&config, i))
            .collect();
        // Deterministic.
        let again: Vec<u16> = (0..16)
            .map(|i| SweepRunner::point_seed(&config, i))
            .collect();
        assert_eq!(seeds, again);
        // No zero seeds (the LFSR would remap them) and no adjacent aliases.
        assert!(seeds.iter().all(|&s| s != 0));
        let unique: std::collections::HashSet<u16> = seeds.iter().copied().collect();
        assert_eq!(unique.len(), seeds.len(), "16 points must get 16 seeds");
        // A different base seed moves every point seed.
        let other = config.with_base_seed(0x1234);
        assert_ne!(SweepRunner::point_seed(&other, 0), seeds[0]);
    }

    #[test]
    fn zero_measurement_windows_are_rejected_with_a_config_error() {
        let err = SweepRunner::new(1).with_windows(100, 0).unwrap_err();
        assert!(matches!(
            err,
            NocError::Config(ConfigError::InvalidSweepWindow { measure_cycles: 0 })
        ));
        // The error surfaces through the convenience entry points too.
        let config = NocConfig::proposed_chip().unwrap();
        assert!(sweep(config, &[0.02], 100, 0).is_err());
        assert!(compare(config, config, &[0.02], 100, 0).is_err());
        // A zero warmup stays legal.
        assert!(SweepRunner::new(1).with_windows(0, 100).is_ok());
    }

    #[test]
    fn step_thread_requests_compose_with_jobs_without_oversubscription() {
        let runner = SweepRunner::new(2).with_step_threads(4).unwrap();
        assert_eq!(runner.step_threads(), 4);
        let available = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        assert_eq!(
            runner.effective_step_threads(2),
            4.min((available / 2).max(1)),
            "jobs take precedence; step threads absorb the cap"
        );
        assert!(runner.effective_step_threads(usize::MAX) >= 1);
        // Zero step threads is rejected with the typed error; zero jobs
        // keeps its historical 0 → 1 mapping.
        let err = SweepRunner::new(3).with_step_threads(0).unwrap_err();
        assert!(matches!(
            err,
            NocError::Config(ConfigError::InvalidParallelism {
                jobs: 3,
                step_threads: 0
            })
        ));
        assert_eq!(SweepRunner::new(0).jobs(), 1);
    }

    #[test]
    fn partitioned_sweep_workers_agree_with_serial_ones_exactly() {
        // On a single-core machine the oversubscription cap reduces this to
        // a pass-through test; on multi-core CI it genuinely steps each
        // worker's mesh on two threads. Either way the curve must match.
        let config = NocConfig::proposed_chip()
            .unwrap()
            .with_seed_mode(SeedMode::PerNode);
        let rates = [0.02, 0.14, 0.24];
        let serial = SweepRunner::new(1)
            .with_windows(100, 300)
            .unwrap()
            .run(config, &rates)
            .unwrap();
        let partitioned = SweepRunner::new(1)
            .with_step_threads(2)
            .unwrap()
            .with_windows(100, 300)
            .unwrap()
            .run(config, &rates)
            .unwrap();
        assert_eq!(serial.curve, partitioned.curve);
    }

    #[test]
    fn tiled_and_rebalanced_sweep_workers_agree_with_serial_ones_exactly() {
        let config = NocConfig::proposed_chip()
            .unwrap()
            .with_seed_mode(SeedMode::PerNode);
        let rates = [0.02, 0.14];
        let serial = SweepRunner::new(1)
            .with_windows(100, 300)
            .unwrap()
            .run(config, &rates)
            .unwrap();
        let tiled = SweepRunner::new(1)
            .with_partition_shape(PartitionShape::Tiles { rows: 2, cols: 2 })
            .unwrap()
            .with_windows(100, 300)
            .unwrap()
            .run(config, &rates)
            .unwrap();
        assert_eq!(serial.curve, tiled.curve);
        let rebalanced = SweepRunner::new(1)
            .with_partition_shape(PartitionShape::Tiles { rows: 2, cols: 2 })
            .unwrap()
            .with_rebalance_epoch(Some(64))
            .with_windows(100, 300)
            .unwrap()
            .run(config, &rates)
            .unwrap();
        assert_eq!(serial.curve, rebalanced.curve);
        assert!(SweepRunner::new(1)
            .with_partition_shape(PartitionShape::Rows(0))
            .is_err());
    }

    #[test]
    fn parallel_and_sequential_runners_agree_exactly() {
        let config = NocConfig::proposed_chip()
            .unwrap()
            .with_seed_mode(SeedMode::PerNode);
        let rates = [0.02, 0.08, 0.14, 0.2, 0.26];
        let sequential = SweepRunner::new(1)
            .with_windows(100, 400)
            .unwrap()
            .run(config, &rates)
            .unwrap();
        let parallel = SweepRunner::new(4)
            .with_windows(100, 400)
            .unwrap()
            .run(config, &rates)
            .unwrap();
        assert_eq!(sequential.curve, parallel.curve);
        for (s, p) in sequential.points.iter().zip(parallel.points.iter()) {
            assert_eq!(s.result, p.result, "rate {} diverged", s.injection_rate);
        }
    }

    #[test]
    fn small_comparison_shows_the_proposed_network_ahead() {
        // A deliberately small sweep so the test stays fast; the full-size
        // sweeps live in the bench harness.
        let proposed = NocConfig::variant(NetworkVariant::LowSwingBroadcastBypass)
            .unwrap()
            .with_seed_mode(SeedMode::PerNode);
        let baseline = NocConfig::variant(NetworkVariant::FullSwingUnicast)
            .unwrap()
            .with_seed_mode(SeedMode::PerNode);
        let rates = [0.02, 0.12, 0.3];
        let comparison = compare(proposed, baseline, &rates, 200, 800).unwrap();
        assert!(comparison.latency_reduction > 0.2);
        assert!(comparison.throughput_improvement > 1.0);
        assert!(comparison.fraction_of_theoretical_limit <= 1.0);
        assert!(comparison.theoretical_limit_gbps == 1024.0);
    }
}
