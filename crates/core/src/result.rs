//! Results of one simulation run.

use noc_power::{EnergyParams, PowerBreakdown};
use noc_sim::ActivityCounters;
use serde::{Deserialize, Serialize};

/// Everything measured during one simulation at a fixed injection rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationResult {
    /// Offered flit injection rate per node per cycle.
    pub injection_rate: f64,
    /// Average end-to-end packet latency in cycles (creation at the source
    /// NIC to reception of the tail flit at the last destination NIC).
    pub average_latency_cycles: f64,
    /// Median (50th-percentile) packet latency in cycles.
    pub p50_latency_cycles: f64,
    /// 95th-percentile packet latency in cycles.
    pub p95_latency_cycles: f64,
    /// 99th-percentile packet latency in cycles.
    pub p99_latency_cycles: f64,
    /// Number of packets whose latency was measured.
    pub measured_packets: u64,
    /// Network-wide received throughput in flits per cycle.
    pub received_flits_per_cycle: f64,
    /// Received throughput in Gb/s at the configured flit width and clock.
    pub received_gbps: f64,
    /// Flits injected during the measurement window.
    pub injected_flits: u64,
    /// Cycles in the measurement window.
    pub measured_cycles: u64,
    /// Fraction of router-to-router hops that used the bypass path.
    pub bypass_fraction: f64,
    /// Merged activity counters over the whole run (warmup + measurement +
    /// drain), used for power estimation.
    pub counters: ActivityCounters,
    /// Total cycles simulated (warmup + measurement + drain).
    pub total_cycles: u64,
    /// Clock frequency in GHz.
    pub frequency_ghz: f64,
}

impl SimulationResult {
    /// Prices the run's activity with the given per-event energies.
    #[must_use]
    pub fn power(&self, energy: &EnergyParams) -> PowerBreakdown {
        PowerBreakdown::from_activity(
            &self.counters,
            self.total_cycles.max(1),
            self.frequency_ghz,
            energy,
        )
    }

    /// Offered load in Gb/s (what the NICs tried to inject network-wide).
    #[must_use]
    pub fn offered_gbps(&self, k: u16, flit_bits: u32) -> f64 {
        self.injection_rate
            * f64::from(k)
            * f64::from(k)
            * f64::from(flit_bits)
            * self.frequency_ghz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offered_load_formula() {
        let result = SimulationResult {
            injection_rate: 0.25,
            average_latency_cycles: 10.0,
            p50_latency_cycles: 9.0,
            p95_latency_cycles: 15.0,
            p99_latency_cycles: 18.0,
            measured_packets: 100,
            received_flits_per_cycle: 4.0,
            received_gbps: 256.0,
            injected_flits: 1000,
            measured_cycles: 250,
            bypass_fraction: 0.8,
            counters: ActivityCounters::new(),
            total_cycles: 1000,
            frequency_ghz: 1.0,
        };
        // 0.25 flits/node/cycle x 16 nodes x 64 bits x 1 GHz = 256 Gb/s.
        assert!((result.offered_gbps(4, 64) - 256.0).abs() < 1e-9);
    }

    #[test]
    fn power_uses_the_whole_run_window() {
        let mut counters = ActivityCounters::new();
        counters.routers = 16;
        counters.crossbar_traversals = 1000;
        let result = SimulationResult {
            injection_rate: 0.1,
            average_latency_cycles: 8.0,
            p50_latency_cycles: 7.0,
            p95_latency_cycles: 12.0,
            p99_latency_cycles: 14.0,
            measured_packets: 10,
            received_flits_per_cycle: 1.0,
            received_gbps: 64.0,
            injected_flits: 100,
            measured_cycles: 100,
            bypass_fraction: 0.9,
            counters,
            total_cycles: 500,
            frequency_ghz: 1.0,
        };
        let power = result.power(&EnergyParams::chip_low_swing());
        assert!(power.total_mw() > 0.0);
        assert!(power.datapath_mw > 0.0);
    }
}
