//! Spatial partitions of the network and the persistent worker pool that
//! steps them in parallel.
//!
//! The mesh is sharded into axis-aligned rectangles — row strips or 2-D
//! tiles ([`noc_topology::PartitionMap`]); each [`Partition`] owns the
//! routers, NICs, event-wheel lanes and flit slab of its [`TileRegion`] and
//! can run one full network cycle touching nothing but its own state —
//! except for events crossing a partition boundary, which it accumulates
//! into per-direction outboxes and hands to the grid neighbour on that side
//! through a per-directed-edge [`BoundaryMailbox`] at the cycle barrier. The
//! `Network` then drains the mailboxes in fixed edge order and merges
//! buffered receptions/registrations at a single-threaded merge point
//! (receptions in ascending destination-node order — exactly the serial
//! within-cycle order), which is what makes a partitioned run bit-identical
//! to the serial one for any shape and thread count (see `ARCHITECTURE.md`,
//! "Partitioned parallel stepping").
//!
//! Within one cycle every delivery commutes: a router input port receives at
//! most one flit and one lookahead per cycle (one link per port, one
//! departure per output port), credits are per-VC counter increments, wake
//! bits are idempotent ORs, and the latency/throughput accumulators are sums
//! and histograms. Cross-partition events therefore only need to arrive in
//! the right *cycle* — their order within a wheel slot is free — and the
//! per-edge FIFO mailboxes keep even that order deterministic.
//!
//! Each partition also accumulates a cumulative per-node **activity weight**
//! (router steps of the active-set walk). The weights are themselves pure
//! simulated state — identical for every shape and thread count — so the
//! `Network` can periodically recompute the cut positions from them
//! (deterministic load-aware repartitioning) and migrate the per-node state
//! via [`Partition::dismantle`] / [`Partition::assemble`] without perturbing
//! a single bit of the simulation.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::thread::JoinHandle;

use noc_router::{Departure, Lookahead, Router, RouterOutput};
use noc_sim::{BoundaryMailbox, EventWheel, FlitHandle, FlitSlab};
use noc_topology::{Mesh, TileRegion};
use noc_types::{Credit, Cycle, Direction, Flit, NodeId, Packet, Port, PORT_COUNT};

use crate::config::NocConfig;
use crate::nic::{Nic, PacketRegistration, Reception};

/// `port_code` value of a [`FlitEvent`] ejecting to the node's NIC (router
/// input ports use their `Port::index()`, `0..PORT_COUNT`).
pub(crate) const NIC_PORT_CODE: u8 = PORT_COUNT as u8;

/// Cap on how far a NIC scouts its injection coin stream ahead: one full
/// 16-bit LFSR word period. Bounds the scout's worst-case work; a NIC whose
/// idle run is longer simply naps in `MAX_NIC_SCOUT` instalments.
const MAX_NIC_SCOUT: u64 = 65_535;

/// A flit hop in flight on the flit lane: the payload is parked in the
/// owning partition's [`FlitSlab`] and only this small ticket rides the
/// wheel. `node` is the *global* node id.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FlitEvent {
    node: NodeId,
    /// Router input-port index (`Port::from_index`), or [`NIC_PORT_CODE`]
    /// for ejection to the node's NIC.
    port_code: u8,
    handle: FlitHandle,
}

/// A word-sized control message in flight on the word lane.
#[derive(Debug, Clone, Copy)]
pub(crate) enum WordEvent {
    Lookahead {
        node: NodeId,
        port: Port,
        lookahead: Lookahead,
    },
    CreditToRouter {
        node: NodeId,
        port: Port,
        credit: Credit,
    },
    CreditToNic {
        node: NodeId,
        credit: Credit,
    },
}

/// An event produced in one partition for delivery in another: a flit hop
/// (payload by value — it changes slabs), a lookahead or a returning credit
/// on a cut North/South link. `at` is the absolute delivery cycle, always in
/// the future of the cycle that produced it (link and credit delays are at
/// least one cycle), so the destination partition can schedule it after its
/// own phase A has passed.
#[derive(Debug, Clone)]
pub(crate) enum BoundaryEvent {
    /// A flit crossing the boundary; re-homed into the destination
    /// partition's slab on arrival.
    Flit {
        at: Cycle,
        node: NodeId,
        port_code: u8,
        flit: Flit,
    },
    /// A lookahead accompanying a boundary flit.
    Lookahead {
        at: Cycle,
        node: NodeId,
        port: Port,
        lookahead: Lookahead,
    },
    /// A credit returning upstream across the boundary.
    Credit {
        at: Cycle,
        node: NodeId,
        port: Port,
        credit: Credit,
    },
}

/// One directed partition edge: the mailbox a single producing partition
/// pushes its per-cycle boundary batch into, and the partition that drains
/// it at the merge point. The network materialises one `DirectedEdge` per
/// (partition, direction-with-a-grid-neighbour) pair, in ascending partition
/// order then [`Direction::ALL`] order — a fixed drain order for the merge.
#[derive(Debug)]
pub(crate) struct DirectedEdge {
    /// Destination partition that receives this edge's events.
    pub(crate) to: usize,
    pub(crate) mailbox: BoundaryMailbox<BoundaryEvent>,
}

/// Per-cycle parameters shared by every partition's step, copied into the
/// worker pool's job slot.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StepCtx {
    pub(crate) now: Cycle,
    pub(crate) inject: bool,
    /// Completed injecting steps before this one — the ordinal clock the
    /// quiescent-NIC nap bookkeeping is keyed by.
    pub(crate) inject_ordinal: u64,
    pub(crate) nic_idle_skip: bool,
    pub(crate) link_delay: u64,
    pub(crate) credit_delay: u64,
}

/// One axis-aligned rectangle of the mesh: the routers and NICs of a
/// [`TileRegion`] plus private copies of all per-cycle machinery
/// (event-wheel lanes, flit slab, active-set masks, NIC nap bookkeeping),
/// so a full cycle can run without touching any other partition's state.
#[derive(Debug, Clone)]
pub(crate) struct Partition {
    /// The rectangular node region owned by this partition. Local indices
    /// (`0..region.len()`) follow the region's row-major order, which
    /// ascends with global node id.
    region: TileRegion,
    routers: Vec<Router>,
    nics: Vec<Nic>,
    word_lane: EventWheel<WordEvent>,
    flit_lane: EventWheel<FlitEvent>,
    slab: FlitSlab,
    router_scratch: RouterOutput,
    /// Active-set words over this partition's routers (bit indices are
    /// partition-local: `region.local_of(node)`).
    router_wake: Vec<u64>,
    /// Bit set ⇔ the local NIC has queued flits (drain-phase active set).
    nic_active: Vec<u64>,
    /// Router-cycles skipped by the active-set scheduler, folded back into
    /// the merged `cycles` activity counter.
    pub(crate) idle_router_cycles: u64,
    /// Bit set ⇔ the local NIC is awake (must flip its injection coin when
    /// an injecting step runs).
    nic_awake: Vec<u64>,
    /// Per-NIC inject ordinal at which a sleeping NIC must be woken
    /// (`u64::MAX` = never).
    nic_wake_at: Vec<u64>,
    /// Per-NIC inject ordinal of the tick after which the NIC went to sleep.
    nic_slept_at: Vec<u64>,
    /// Minimum of `nic_wake_at` over sleeping NICs (`u64::MAX` when all are
    /// awake).
    next_nic_wake: u64,
    /// Cumulative per-node activity weight: router steps performed by the
    /// phase-B2 active-set walk since the last reset. Pure simulated state
    /// (identical for every shape and thread count), it drives the
    /// deterministic load-aware repartitioning and the per-partition busy
    /// reporting; migrated with its node on repartition.
    weights: Vec<u64>,
    /// Packet receptions completed this cycle, in local delivery order
    /// (ascending destination node: ejections are scheduled by the B2
    /// router walk); the network merges them in ascending global-node order
    /// at the deterministic merge point.
    pub(crate) receptions: Vec<Reception>,
    /// Packets registered by local NICs this cycle, in local tick order.
    pub(crate) registrations: Vec<PacketRegistration>,
    /// Per-direction boundary batches, accumulated over the cycle and pushed
    /// to the direction's edge mailbox in one batch (indexed by
    /// `Direction::port().index()`).
    outboxes: [Vec<BoundaryEvent>; 4],
    /// For each direction, the index into the network's edge vector this
    /// partition produces into (`None` at the partition-grid edge).
    edge_out: [Option<u32>; 4],
}

impl Partition {
    /// Builds the partition owning `region`, with every NIC injecting at
    /// `rate`. Edge routing (`edge_out`) is wired afterwards by the network.
    pub(crate) fn new(config: &NocConfig, mesh: Mesh, region: TileRegion, rate: f64) -> Self {
        let count = region.len();
        let routers = region
            .nodes()
            .map(|node| Router::new(&config.router, mesh, mesh.coord_of(node)))
            .collect();
        let nics = region
            .nodes()
            .map(|node| Nic::new(config, mesh, node, rate))
            .collect();
        let horizon = config
            .link_delay_cycles()
            .max(config.credit_delay_cycles)
            .max(1);
        let words = count.div_ceil(64);
        Self {
            region,
            routers,
            nics,
            word_lane: EventWheel::new(horizon),
            flit_lane: EventWheel::new(horizon),
            slab: FlitSlab::new(),
            router_scratch: RouterOutput::default(),
            router_wake: vec![0; words],
            nic_active: vec![0; words],
            idle_router_cycles: 0,
            nic_awake: full_awake_mask(words, count),
            nic_wake_at: vec![0; count],
            nic_slept_at: vec![0; count],
            next_nic_wake: u64::MAX,
            weights: vec![0; count],
            receptions: Vec::new(),
            registrations: Vec::new(),
            outboxes: [const { Vec::new() }; 4],
            edge_out: [None; 4],
        }
    }

    /// Restores the partition to its post-construction state, keeping every
    /// warmed-up buffer capacity (the partition half of `Network::reset`).
    pub(crate) fn reset(&mut self, config: &NocConfig) {
        for router in &mut self.routers {
            router.reset();
        }
        for nic in &mut self.nics {
            nic.reset(config);
        }
        self.word_lane.reset();
        self.flit_lane.reset();
        self.slab.reset();
        self.router_scratch.clear();
        self.router_wake.fill(0);
        self.nic_active.fill(0);
        self.idle_router_cycles = 0;
        let count = self.nics.len();
        self.nic_awake = full_awake_mask(self.nic_awake.len(), count);
        self.nic_wake_at.fill(0);
        self.nic_slept_at.fill(0);
        self.next_nic_wake = u64::MAX;
        self.weights.fill(0);
        self.receptions.clear();
        self.registrations.clear();
        for outbox in &mut self.outboxes {
            outbox.clear();
        }
    }

    /// The partition's routers, in ascending node order.
    pub(crate) fn routers(&self) -> &[Router] {
        &self.routers
    }

    /// The partition's NICs, in ascending node order.
    pub(crate) fn nics(&self) -> &[Nic] {
        &self.nics
    }

    /// Mutable access to the partition's NICs, in ascending node order.
    ///
    /// Used by trace record / replay to swap or poke the per-NIC traffic
    /// sources between steps; never called while a step is in flight.
    pub(crate) fn nics_mut(&mut self) -> &mut [Nic] {
        &mut self.nics
    }

    /// Enqueues an externally created packet at local NIC `local`, exactly
    /// as if the NIC's own source had generated it this cycle.
    ///
    /// The registration is buffered like any NIC-generated one (so the
    /// deterministic merge picks it up this cycle) and the NIC is marked
    /// active so drain-phase stepping keeps ticking it until its queue
    /// empties. This is the injection path of the closed-loop serving layer,
    /// which drives `step(inject = false)` and feeds every packet in by hand.
    pub(crate) fn enqueue_external(&mut self, local: usize, packet: Packet) {
        let registration = self.nics[local].enqueue_packet(packet);
        self.registrations.push(registration);
        self.nic_active[local / 64] |= 1 << (local % 64);
    }

    /// The rectangular node region owned by this partition.
    pub(crate) fn region(&self) -> TileRegion {
        self.region
    }

    /// Routes this partition's boundary events for direction `dir` to the
    /// network edge at `edge` (called while wiring a freshly built or
    /// repartitioned network).
    pub(crate) fn set_edge_out(&mut self, dir: Direction, edge: usize) {
        self.edge_out[dir.port().index()] = Some(u32::try_from(edge).expect("edge index fits u32"));
    }

    /// Total accumulated activity weight of this partition's nodes (the
    /// per-partition busy metric the hotspot stressor reports).
    pub(crate) fn load(&self) -> u64 {
        self.weights.iter().sum()
    }

    /// Scatters this partition's cumulative per-node weights into a
    /// mesh-sized `out` slice indexed by global node id.
    pub(crate) fn node_weights_into(&self, out: &mut [u64]) {
        for (local, &w) in self.weights.iter().enumerate() {
            out[usize::from(self.region.node_of(local))] = w;
        }
    }

    /// Changes the injection rate of every local NIC (waking sleepers first;
    /// see `Network::set_rate`).
    pub(crate) fn set_rate(&mut self, rate: f64, inject_steps: u64) {
        self.wake_all_nics(inject_steps);
        for nic in &mut self.nics {
            nic.set_rate(rate);
        }
    }

    /// Flits currently buffered in local routers plus queued in local NICs
    /// plus parked in the local slab (in flight on local links).
    pub(crate) fn in_flight_flits(&self) -> usize {
        let buffered: usize = self.routers.iter().map(Router::buffered_flits).sum();
        let queued: usize = self.nics.iter().map(Nic::queued_flits).sum();
        // Between steps every live slab handle is exactly one scheduled
        // flit-lane event, so the slab doubles as the on-links scoreboard.
        debug_assert_eq!(self.slab.live(), self.flit_lane.pending());
        buffered + queued + self.slab.live()
    }

    /// Runs one full network cycle over this partition's nodes. Events bound
    /// for other partitions are batched into the edge mailboxes; everything
    /// else is indistinguishable from the serial step restricted to this
    /// node range.
    pub(crate) fn step_cycle(&mut self, ctx: &StepCtx, edges: &[DirectedEdge]) {
        let now = ctx.now;

        // Phase A: deliver everything scheduled for this cycle — the word
        // lane (credits and lookaheads) first, then the flit lane. Each due
        // slot is detached from its wheel so deliveries can schedule
        // follow-up events, then its (drained) buffer is recycled. Every
        // delivery to a router marks it in the wake mask phase B2 walks.
        let mut due_words = self.word_lane.take_due(now);
        while let Some(event) = due_words.pop_front() {
            self.deliver_word(event);
        }
        self.word_lane.restore(due_words);
        let mut due_flits = self.flit_lane.take_due(now);
        while let Some(event) = due_flits.pop_front() {
            self.deliver_flit(event, now);
        }
        self.flit_lane.restore(due_flits);

        // Phase B1: NICs create and inject traffic. While injecting, the
        // serial contract is one Bernoulli PRBS coin per NIC per cycle;
        // quiescent NICs nap through provably losing flips and replay them
        // in one batched leap at wake (see `maybe_sleep_nic`). In the drain
        // phase only NICs that still hold queued flits can do anything.
        if ctx.inject {
            let ordinal = ctx.inject_ordinal;
            if ctx.nic_idle_skip {
                if self.next_nic_wake <= ordinal {
                    self.wake_due_nics(ordinal);
                }
                for w in 0..self.nic_awake.len() {
                    let mut bits = self.nic_awake[w];
                    while bits != 0 {
                        let local = w * 64 + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        self.tick_nic(local, now, true);
                        self.maybe_sleep_nic(local, ordinal);
                    }
                }
            } else {
                for local in 0..self.nics.len() {
                    self.tick_nic(local, now, true);
                }
            }
        } else {
            for w in 0..self.nic_active.len() {
                let mut bits = self.nic_active[w];
                while bits != 0 {
                    let local = w * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    self.tick_nic(local, now, false);
                }
            }
        }

        // Phase B2: step only the woken routers (ascending node order). Each
        // word is detached first so the carryover bits routers set for the
        // next cycle do not feed back into this one's scan.
        let mut output = std::mem::take(&mut self.router_scratch);
        let mut stepped = 0usize;
        for w in 0..self.router_wake.len() {
            let mut bits = std::mem::take(&mut self.router_wake[w]);
            stepped += bits.count_ones() as usize;
            while bits != 0 {
                let offset = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let local = w * 64 + offset;
                self.weights[local] += 1;
                self.step_router(local, now, ctx.link_delay, ctx.credit_delay, &mut output);
                if self.routers[local].buffered_flits() > 0 {
                    self.router_wake[w] |= 1 << offset;
                }
            }
        }
        self.idle_router_cycles += (self.routers.len() - stepped) as u64;
        self.router_scratch = output;

        // Hand this cycle's boundary batches to the per-direction edge
        // mailboxes (axis-aligned cuts: at most four grid neighbours).
        for d in 0..4 {
            match self.edge_out[d] {
                Some(edge) => edges[edge as usize]
                    .mailbox
                    .push_batch(&mut self.outboxes[d]),
                None => debug_assert!(
                    self.outboxes[d].is_empty(),
                    "boundary events pushed off the partition grid"
                ),
            }
        }
    }

    /// Schedules a boundary event arriving from a neighbouring partition
    /// (called by the network's merge point, after the cycle barrier).
    pub(crate) fn accept_boundary(&mut self, event: BoundaryEvent) {
        match event {
            BoundaryEvent::Flit {
                at,
                node,
                port_code,
                flit,
            } => {
                let handle = self.slab.insert(flit);
                self.flit_lane.schedule(
                    at,
                    FlitEvent {
                        node,
                        port_code,
                        handle,
                    },
                );
            }
            BoundaryEvent::Lookahead {
                at,
                node,
                port,
                lookahead,
            } => {
                self.word_lane.schedule(
                    at,
                    WordEvent::Lookahead {
                        node,
                        port,
                        lookahead,
                    },
                );
            }
            BoundaryEvent::Credit {
                at,
                node,
                port,
                credit,
            } => {
                self.word_lane
                    .schedule(at, WordEvent::CreditToRouter { node, port, credit });
            }
        }
    }

    /// Ticks local NIC `local` (phase B1), schedules whatever it produced,
    /// and refreshes its bit in the queued-flits mask. Registrations are
    /// buffered for the merge point rather than applied to the (shared)
    /// scoreboard.
    fn tick_nic(&mut self, local: usize, now: Cycle, inject: bool) {
        let (injection, registration) = self.nics[local].tick(now, inject);
        if let Some(registration) = registration {
            self.registrations.push(registration);
        }
        if let Some(injection) = injection {
            let arrival = now + 1;
            let node = self.region.node_of(local);
            let handle = self.slab.insert(injection.flit);
            self.flit_lane.schedule(
                arrival,
                FlitEvent {
                    node,
                    port_code: Port::Local.index() as u8,
                    handle,
                },
            );
            if let Some(lookahead) = injection.lookahead {
                self.word_lane.schedule(
                    arrival,
                    WordEvent::Lookahead {
                        node,
                        port: Port::Local,
                        lookahead,
                    },
                );
            }
        }
        let bit = 1u64 << (local % 64);
        if self.nics[local].queued_flits() > 0 {
            self.nic_active[local / 64] |= bit;
        } else {
            self.nic_active[local / 64] &= !bit;
        }
    }

    /// Runs local router `local`'s allocation/traversal cycle (phase B2) and
    /// schedules its departures and credits, reusing `output` as scratch.
    /// Events for nodes outside this partition's region go to the
    /// departing link's per-direction outbox (axis-aligned cuts guarantee
    /// the grid neighbour on that side owns the destination); boundary flits
    /// are taken out of the local slab by value (they are re-homed into the
    /// destination slab at the merge point).
    fn step_router(
        &mut self,
        local: usize,
        now: Cycle,
        link_delay: u64,
        credit_delay: u64,
        output: &mut RouterOutput,
    ) {
        self.routers[local].step_into(now, &mut self.slab, output);
        let node = self.region.node_of(local);
        for Departure {
            port,
            flit,
            lookahead,
        } in output.departures.drain(..)
        {
            if port.is_local() {
                self.flit_lane.schedule(
                    now + 1,
                    FlitEvent {
                        node,
                        port_code: NIC_PORT_CODE,
                        handle: flit,
                    },
                );
            } else {
                let dir = port.direction().expect("non-local port has a direction");
                let dest_node = self.routers[local]
                    .neighbor_id(dir)
                    .expect("routers never send off the mesh edge");
                let dest_port = dir.opposite().port();
                let arrival = now + link_delay;
                if self.owns(dest_node) {
                    self.flit_lane.schedule(
                        arrival,
                        FlitEvent {
                            node: dest_node,
                            port_code: dest_port.index() as u8,
                            handle: flit,
                        },
                    );
                    if let Some(lookahead) = lookahead {
                        self.word_lane.schedule(
                            arrival,
                            WordEvent::Lookahead {
                                node: dest_node,
                                port: dest_port,
                                lookahead,
                            },
                        );
                    }
                } else {
                    let payload = self.slab.take(flit);
                    let outbox = &mut self.outboxes[dir.port().index()];
                    outbox.push(BoundaryEvent::Flit {
                        at: arrival,
                        node: dest_node,
                        port_code: dest_port.index() as u8,
                        flit: payload,
                    });
                    if let Some(lookahead) = lookahead {
                        outbox.push(BoundaryEvent::Lookahead {
                            at: arrival,
                            node: dest_node,
                            port: dest_port,
                            lookahead,
                        });
                    }
                }
            }
        }
        for (in_port, credit) in output.credits.drain(..) {
            let arrival = now + credit_delay;
            if in_port.is_local() {
                self.word_lane
                    .schedule(arrival, WordEvent::CreditToNic { node, credit });
            } else {
                let dir = in_port.direction().expect("non-local port has a direction");
                let upstream = self.routers[local]
                    .neighbor_id(dir)
                    .expect("credits only go to existing neighbours");
                let up_port = dir.opposite().port();
                if self.owns(upstream) {
                    self.word_lane.schedule(
                        arrival,
                        WordEvent::CreditToRouter {
                            node: upstream,
                            port: up_port,
                            credit,
                        },
                    );
                } else {
                    self.outboxes[dir.port().index()].push(BoundaryEvent::Credit {
                        at: arrival,
                        node: upstream,
                        port: up_port,
                        credit,
                    });
                }
            }
        }
    }

    /// Whether global node id `node` lies in this partition's region.
    #[inline]
    fn owns(&self, node: NodeId) -> bool {
        self.region.contains(node)
    }

    /// Marks the router of global node `node` as having work this cycle.
    #[inline]
    fn wake_router(&mut self, node: NodeId) {
        let local = self.region.local_of(node);
        self.router_wake[local / 64] |= 1 << (local % 64);
    }

    /// Puts local NIC `local` to sleep after its tick at inject ordinal
    /// `ordinal` if it provably cannot act for a while (empty queue, scouted
    /// PRBS stream promises `idle ≥ 1` losing coin flips). Skipped flips are
    /// replayed in one batched leap at wake, keeping the coin stream
    /// bit-identical to serial ticking.
    fn maybe_sleep_nic(&mut self, local: usize, ordinal: u64) {
        if self.nics[local].queued_flits() > 0 {
            return;
        }
        let idle = self.nics[local].idle_inject_cycles_hint(MAX_NIC_SCOUT);
        if idle == 0 {
            return;
        }
        let wake_at = if idle == u64::MAX {
            u64::MAX
        } else {
            ordinal + idle + 1
        };
        self.nic_awake[local / 64] &= !(1 << (local % 64));
        self.nic_wake_at[local] = wake_at;
        self.nic_slept_at[local] = ordinal;
        self.next_nic_wake = self.next_nic_wake.min(wake_at);
    }

    /// Wakes every sleeping local NIC whose wake ordinal has arrived
    /// (replaying its napped-over coin flips) and recomputes
    /// `next_nic_wake` from the NICs still asleep.
    fn wake_due_nics(&mut self, ordinal: u64) {
        let mut next = u64::MAX;
        for local in 0..self.nics.len() {
            let bit = 1u64 << (local % 64);
            if self.nic_awake[local / 64] & bit != 0 {
                continue;
            }
            if self.nic_wake_at[local] <= ordinal {
                // The nap covered inject ordinals slept_at+1 ..= ordinal-1;
                // this ordinal's coin is consumed by the NIC's own tick.
                let missed = ordinal.saturating_sub(self.nic_slept_at[local] + 1);
                if missed > 0 {
                    self.nics[local].skip_inject_cycles(missed);
                }
                self.nic_awake[local / 64] |= bit;
            } else {
                next = next.min(self.nic_wake_at[local]);
            }
        }
        self.next_nic_wake = next;
    }

    /// Wakes every sleeping local NIC immediately, replaying the coin flips
    /// of all completed inject ordinals it napped through. Called before
    /// anything that invalidates a promised nap (rate changes, toggling the
    /// nap feature).
    pub(crate) fn wake_all_nics(&mut self, inject_steps: u64) {
        for local in 0..self.nics.len() {
            let bit = 1u64 << (local % 64);
            if self.nic_awake[local / 64] & bit != 0 {
                continue;
            }
            let missed = inject_steps.saturating_sub(self.nic_slept_at[local] + 1);
            if missed > 0 {
                self.nics[local].skip_inject_cycles(missed);
            }
            self.nic_awake[local / 64] |= bit;
        }
        self.next_nic_wake = u64::MAX;
    }

    fn deliver_word(&mut self, event: WordEvent) {
        match event {
            WordEvent::Lookahead {
                node,
                port,
                lookahead,
            } => {
                self.wake_router(node);
                let local = self.region.local_of(node);
                self.routers[local].accept_lookahead(port, lookahead);
            }
            WordEvent::CreditToRouter { node, port, credit } => {
                self.wake_router(node);
                let local = self.region.local_of(node);
                self.routers[local].accept_credit(port, credit);
            }
            WordEvent::CreditToNic { node, credit } => {
                let local = self.region.local_of(node);
                self.nics[local].accept_credit(credit);
            }
        }
    }

    fn deliver_flit(&mut self, event: FlitEvent, now: Cycle) {
        let local = self.region.local_of(event.node);
        if event.port_code == NIC_PORT_CODE {
            // NIC reception reads only override-independent payload fields
            // (kind, packet id, packet length), so a fork replica's shared
            // payload is peeked in place and never materialised. Completed
            // receptions are buffered for the merge point: the scoreboard
            // and statistics they feed are shared across partitions.
            let reception = self.nics[local].accept_flit(self.slab.peek_payload(event.handle), now);
            self.slab.release(event.handle);
            if let Some(reception) = reception {
                self.receptions.push(reception);
            }
        } else {
            self.wake_router(event.node);
            let port = Port::from_index(usize::from(event.port_code))
                .expect("flit events carry a valid router input port");
            let flit = self.slab.take(event.handle);
            self.routers[local].accept_flit(port, flit);
        }
    }

    /// Dismantles this partition into per-node state for repartitioning:
    /// every router, NIC, mask bit, weight and pending event is parked in
    /// `states` (indexed by global node id; pending flit payloads are
    /// materialised out of the slab, event lists in ascending cycle order).
    /// Returns the partition's idle-router-cycle ledger, which the network
    /// banks — it belongs to the run, not to any one partition shape.
    ///
    /// Must be called between steps (after the merge point): the per-cycle
    /// buffers are empty and every live slab handle is a pending flit event.
    pub(crate) fn dismantle(mut self, states: &mut [Option<NodeState>]) -> u64 {
        debug_assert!(self.receptions.is_empty() && self.registrations.is_empty());
        debug_assert!(self.outboxes.iter().all(Vec::is_empty));
        for (local, (router, nic)) in std::mem::take(&mut self.routers)
            .into_iter()
            .zip(std::mem::take(&mut self.nics))
            .enumerate()
        {
            let node = self.region.node_of(local);
            let bit = 1u64 << (local % 64);
            states[usize::from(node)] = Some(NodeState {
                router,
                nic,
                nic_awake: self.nic_awake[local / 64] & bit != 0,
                nic_wake_at: self.nic_wake_at[local],
                nic_slept_at: self.nic_slept_at[local],
                nic_active: self.nic_active[local / 64] & bit != 0,
                router_woken: self.router_wake[local / 64] & bit != 0,
                weight: self.weights[local],
                word_events: Vec::new(),
                flit_events: Vec::new(),
            });
        }
        let mut word_events = Vec::new();
        self.word_lane.drain_window_into(&mut word_events);
        for (at, event) in word_events {
            let node = match event {
                WordEvent::Lookahead { node, .. }
                | WordEvent::CreditToRouter { node, .. }
                | WordEvent::CreditToNic { node, .. } => node,
            };
            states[usize::from(node)]
                .as_mut()
                .expect("event targets an owned node")
                .word_events
                .push((at, event));
        }
        let mut flit_events = Vec::new();
        self.flit_lane.drain_window_into(&mut flit_events);
        for (at, event) in flit_events {
            let flit = self.slab.take(event.handle);
            states[usize::from(event.node)]
                .as_mut()
                .expect("event targets an owned node")
                .flit_events
                .push((at, event.port_code, flit));
        }
        debug_assert_eq!(self.slab.live(), 0, "every payload left with its event");
        self.idle_router_cycles
    }

    /// Rebuilds the partition owning `region` from dismantled per-node
    /// `states`, with both event-wheel cursors aligned to `cursor`
    /// (the cycle the network will step next). Nodes are consumed in
    /// ascending order, so within every rescheduled wheel slot events stay
    /// grouped by ascending node — preserving the serial within-cycle
    /// delivery order the reception merge depends on. Edge routing is wired
    /// afterwards by the network.
    pub(crate) fn assemble(
        config: &NocConfig,
        region: TileRegion,
        cursor: Cycle,
        states: &mut [Option<NodeState>],
    ) -> Self {
        let count = region.len();
        let words = count.div_ceil(64);
        let horizon = config
            .link_delay_cycles()
            .max(config.credit_delay_cycles)
            .max(1);
        let mut word_lane = EventWheel::new(horizon);
        word_lane.align_to(cursor);
        let mut flit_lane = EventWheel::new(horizon);
        flit_lane.align_to(cursor);
        let mut slab = FlitSlab::new();
        let mut routers = Vec::with_capacity(count);
        let mut nics = Vec::with_capacity(count);
        let mut router_wake = vec![0u64; words];
        let mut nic_active = vec![0u64; words];
        let mut nic_awake = vec![0u64; words];
        let mut nic_wake_at = vec![0u64; count];
        let mut nic_slept_at = vec![0u64; count];
        let mut weights = vec![0u64; count];
        let mut next_nic_wake = u64::MAX;
        for local in 0..count {
            let node = region.node_of(local);
            let state = states[usize::from(node)]
                .take()
                .expect("every node is dismantled exactly once");
            routers.push(state.router);
            nics.push(state.nic);
            let bit = 1u64 << (local % 64);
            if state.nic_awake {
                nic_awake[local / 64] |= bit;
            } else {
                next_nic_wake = next_nic_wake.min(state.nic_wake_at);
            }
            if state.nic_active {
                nic_active[local / 64] |= bit;
            }
            if state.router_woken {
                router_wake[local / 64] |= bit;
            }
            nic_wake_at[local] = state.nic_wake_at;
            nic_slept_at[local] = state.nic_slept_at;
            weights[local] = state.weight;
            for (at, event) in state.word_events {
                word_lane.schedule(at, event);
            }
            for (at, port_code, flit) in state.flit_events {
                let handle = slab.insert(flit);
                flit_lane.schedule(
                    at,
                    FlitEvent {
                        node,
                        port_code,
                        handle,
                    },
                );
            }
        }
        Self {
            region,
            routers,
            nics,
            word_lane,
            flit_lane,
            slab,
            router_scratch: RouterOutput::default(),
            router_wake,
            nic_active,
            idle_router_cycles: 0,
            nic_awake,
            nic_wake_at,
            nic_slept_at,
            next_nic_wake,
            weights,
            receptions: Vec::new(),
            registrations: Vec::new(),
            outboxes: [const { Vec::new() }; 4],
            edge_out: [None; 4],
        }
    }
}

/// One node's complete simulation state in transit between partition shapes:
/// its router and NIC, active-set and nap bookkeeping, cumulative activity
/// weight, and every pending event targeting it (flit payloads materialised,
/// lists in ascending cycle order). Produced by [`Partition::dismantle`] and
/// consumed by [`Partition::assemble`]; pure state relocation, so a
/// repartitioned run stays bit-identical.
#[derive(Debug)]
pub(crate) struct NodeState {
    router: Router,
    nic: Nic,
    nic_awake: bool,
    nic_wake_at: u64,
    nic_slept_at: u64,
    nic_active: bool,
    router_woken: bool,
    weight: u64,
    word_events: Vec<(Cycle, WordEvent)>,
    flit_events: Vec<(Cycle, u8, Flit)>,
}

/// Mask with one set bit per NIC of a `count`-node partition, spread over
/// `words` 64-bit words (the reset value of `nic_awake`).
fn full_awake_mask(words: usize, count: usize) -> Vec<u64> {
    let mut mask = vec![u64::MAX; words];
    if !count.is_multiple_of(64) {
        if let Some(last) = mask.last_mut() {
            *last = (1u64 << (count % 64)) - 1;
        }
    }
    mask
}

/// The work order the main thread publishes to the pool for one cycle:
/// raw access to the partition slice and edge mailboxes plus the copied
/// step parameters. Workers only ever touch `partitions[slot + 1]` for
/// their own fixed slot, so the `*mut` aliases are disjoint; the mailboxes
/// are shared read-only structure with interior mutability.
#[derive(Debug, Clone, Copy)]
struct StepJob {
    partitions: *mut Partition,
    count: usize,
    edges: *const DirectedEdge,
    edge_count: usize,
    ctx: StepCtx,
}

// SAFETY: the pointers refer to the `Network`'s partition and edge vectors,
// which outlive the job (the main thread publishes a job, waits for the done
// barrier, and only then regains mutable access); `Partition` and
// `DirectedEdge` own no thread-affine state (asserted below), and each
// worker dereferences a distinct element.
unsafe impl Send for StepJob {}

/// Compile-time proof that partition state may move between threads — the
/// `unsafe impl Send for StepJob` above leans on this.
#[allow(dead_code)]
fn assert_partition_state_is_send_sync() {
    fn assert_send<T: Send>() {}
    fn assert_sync<T: Sync>() {}
    assert_send::<Partition>();
    assert_send::<DirectedEdge>();
    assert_sync::<DirectedEdge>();
}

/// State shared between the main thread and the pool workers.
#[derive(Debug)]
struct PoolShared {
    /// Cycle-start barrier: main publishes a job (or the shutdown flag) and
    /// everyone crosses together.
    start: Barrier,
    /// Cycle-end barrier: every partition has finished and pushed its
    /// boundary batches; the main thread may merge.
    done: Barrier,
    /// The job for the current cycle (uncontended: written before the start
    /// barrier, read after it).
    job: Mutex<Option<StepJob>>,
    shutdown: AtomicBool,
}

/// A persistent pool of `threads - 1` workers that step partitions
/// `1..threads` while the main thread steps partition 0, synchronised by a
/// start and a done barrier per cycle. Spawned once per
/// `Network::set_step_threads` configuration and reused every step, so the
/// steady state pays two barrier crossings and zero thread spawns per cycle.
#[derive(Debug)]
pub(crate) struct StepPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl StepPool {
    /// Spawns a pool for `threads` total step threads (main + `threads - 1`
    /// workers; `threads` must be at least 2 — a single-partition network
    /// steps inline without a pool).
    pub(crate) fn spawn(threads: usize) -> Self {
        debug_assert!(threads >= 2, "a pool needs at least one worker");
        let shared = Arc::new(PoolShared {
            start: Barrier::new(threads),
            done: Barrier::new(threads),
            job: Mutex::new(None),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..threads - 1)
            .map(|slot| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("noc-step-{}", slot + 1))
                    .spawn(move || worker_loop(&shared, slot))
                    .expect("spawning a step worker thread")
            })
            .collect();
        Self { shared, workers }
    }

    /// Number of step threads (main included) this pool synchronises.
    pub(crate) fn threads(&self) -> usize {
        self.workers.len() + 1
    }

    /// Runs one cycle: publishes the job, steps partition 0 on the calling
    /// thread while the workers step the rest, and returns after the done
    /// barrier — at which point every partition has pushed its boundary
    /// batches and the caller holds exclusive access again.
    ///
    /// `partitions.len()` must be at least [`Self::threads`]... exactly: one
    /// partition per thread.
    pub(crate) fn step(&self, partitions: &mut [Partition], edges: &[DirectedEdge], ctx: StepCtx) {
        debug_assert_eq!(partitions.len(), self.threads());
        let base = partitions.as_mut_ptr();
        let job = StepJob {
            partitions: base,
            count: partitions.len(),
            edges: edges.as_ptr(),
            edge_count: edges.len(),
            ctx,
        };
        *self.shared.job.lock().expect("step pool poisoned") = Some(job);
        self.shared.start.wait();
        // SAFETY: workers only touch partitions[1..]; partition 0 is ours.
        // Going through the same base pointer (rather than re-borrowing the
        // slice) keeps the accesses provenance-disjoint.
        let first = unsafe { &mut *base };
        first.step_cycle(&ctx, edges);
        self.shared.done.wait();
    }
}

impl Drop for StepPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Release the workers from their start barrier; they observe the
        // flag and exit without touching the (absent) job.
        self.shared.start.wait();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, slot: usize) {
    loop {
        shared.start.wait();
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let job = shared
            .job
            .lock()
            .expect("step pool poisoned")
            .expect("start barrier crossed without a published job");
        if slot + 1 < job.count {
            // SAFETY: each worker owns exactly partition `slot + 1` for the
            // duration of the cycle; the main thread owns partition 0 and
            // does not reclaim the slice until the done barrier.
            let partition = unsafe { &mut *job.partitions.add(slot + 1) };
            // SAFETY: `edges`/`edge_count` were captured from the live edge
            // vector, which the main thread keeps alive (and borrows only
            // immutably) until the done barrier; mailboxes synchronise
            // internally.
            let edges = unsafe { std::slice::from_raw_parts(job.edges, job.edge_count) };
            partition.step_cycle(&job.ctx, edges);
        }
        shared.done.wait();
    }
}
