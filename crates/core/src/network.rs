//! The cycle-accurate network orchestrator.
//!
//! All inter-component messages (flits on links, lookaheads, returning
//! credits) travel at most a few cycles, so they are scheduled through
//! fixed-horizon [`noc_sim::EventWheel`]s instead of a general priority
//! queue: the steady-state [`Network::step`] performs zero heap allocation —
//! slot buffers, router outputs and NIC scratch space are all reused cycle
//! after cycle. The wheel is split into **typed lanes** (word-sized control
//! messages vs. slab-parked flit handles), and an **active-set scheduler**
//! visits only the routers woken by a delivery and naps quiescent NICs
//! through provably losing injection coin flips — both bit-identical to the
//! naive full scan (see `crate::partition` for the per-cycle phase
//! machinery).
//!
//! On top of that, the mesh is sharded into **spatial partitions** — row
//! strips or 2-D tiles ([`noc_topology::PartitionMap`]) — so
//! [`Network::with_step_threads`] / [`Network::set_partition_shape`] can
//! step them on a persistent worker pool. Each partition owns private
//! wheels, slab and masks; events crossing a cut ride per-directed-edge FIFO
//! mailboxes and are merged — together with the partitions' buffered
//! receptions and packet registrations — by the main thread at a single
//! merge point per cycle (mailboxes in fixed edge order, receptions in
//! ascending destination-node order — the serial within-cycle order).
//! Because every within-cycle delivery commutes and the merge order is
//! fixed, a partitioned run is **bit-identical to the serial one for any
//! shape and thread count** (`tests/determinism.rs` pins this). With one
//! partition (the default) the step runs inline with no barriers, pool or
//! locking.
//!
//! With [`set_rebalance_epoch`](Network::set_rebalance_epoch), the network
//! additionally recomputes the cut positions every N cycles from the
//! partitions' cumulative per-node activity weights (router steps of the
//! active-set walk) and migrates the per-node state to the new shape. The
//! weights are pure simulated state, so the partition shape is itself a
//! function of the simulation — rebalanced runs stay bit-identical too.

use std::collections::BTreeMap;

use noc_sim::{ActivityCounters, BoundaryMailbox, Clock, LatencyStats, ThroughputStats};
use noc_topology::{Mesh, PartitionMap};
use noc_traffic::TrafficSource;
use noc_types::{
    ConfigError, Cycle, Direction, NocError, NodeId, Packet, PacketId, Port, Trace, TraceEvent,
};

use crate::config::NocConfig;
use crate::nic::{PacketRegistration, Reception};
use crate::partition::{BoundaryEvent, DirectedEdge, NodeState, Partition, StepCtx, StepPool};

/// How the mesh is cut into spatial partitions for parallel stepping.
///
/// Both shapes produce axis-aligned rectangles; results are bit-identical
/// for every shape (`tests/determinism.rs`), so the choice only affects
/// wall-clock. Row strips minimise cut traffic on small meshes; tiles cut
/// both axes, which balances better when traffic concentrates in a corner
/// and is the natural shape for larger meshes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionShape {
    /// `n` horizontal row strips (clamped to the mesh's row count).
    Rows(usize),
    /// A `rows × cols` grid of rectangular tiles (each axis clamped to the
    /// mesh side).
    Tiles {
        /// Tile rows (cuts along the y axis).
        rows: usize,
        /// Tile columns (cuts along the x axis).
        cols: usize,
    },
}

impl PartitionShape {
    /// The unweighted partition map this shape produces on `mesh`.
    fn map(self, mesh: &Mesh) -> PartitionMap {
        match self {
            Self::Rows(parts) => PartitionMap::rows(mesh, parts),
            Self::Tiles { rows, cols } => PartitionMap::tiles(mesh, rows, cols),
        }
    }

    /// The weighted map with the same grid dimensions as `map`, cuts placed
    /// by per-node `weights`.
    fn weighted_map(self, mesh: &Mesh, map: &PartitionMap, weights: &[u64]) -> PartitionMap {
        match self {
            Self::Rows(_) => PartitionMap::weighted_rows(mesh, map.tile_rows(), weights),
            Self::Tiles { .. } => {
                PartitionMap::weighted_tiles(mesh, map.tile_rows(), map.tile_cols(), weights)
            }
        }
    }

    /// Validates that every requested axis is non-zero.
    pub(crate) fn validate(self) -> Result<(), NocError> {
        let zero = match self {
            Self::Rows(parts) => parts == 0,
            Self::Tiles { rows, cols } => rows == 0 || cols == 0,
        };
        if zero {
            return Err(ConfigError::InvalidParallelism {
                jobs: 1,
                step_threads: 0,
            }
            .into());
        }
        Ok(())
    }
}

/// Scoreboard entry tracking one packet until every destination received it.
#[derive(Debug, Clone, Copy)]
struct TrackedPacket {
    created_at: Cycle,
    remaining_receptions: u32,
    track_latency: bool,
}

/// A k×k mesh NoC: routers, NICs, links and the measurement machinery.
///
/// The network advances in lock-step cycles via [`Network::step`]. Traffic
/// injection and measurement are controlled per cycle so that a
/// [`crate::Simulation`] can run warmup / measurement / drain phases over the
/// same instance. Cloning snapshots the complete simulation state (used by
/// benches to replay from a fixed mid-flight state); the clone steps with
/// the same thread count but spawns its own worker pool lazily.
#[derive(Debug)]
pub struct Network {
    config: NocConfig,
    mesh: Mesh,
    /// Current per-NIC injection rate (kept so repartitioning can rebuild).
    rate: f64,
    /// The requested partition shape (grid dimensions); the current `map`
    /// may deviate from its unweighted cuts after a rebalance.
    shape: PartitionShape,
    /// The partition map currently instantiated in `partitions`.
    map: PartitionMap,
    /// Rectangular shards of the mesh, in `map` order (row-major over the
    /// partition grid). One partition means the serial inline step; more
    /// mean pool-stepped shards.
    partitions: Vec<Partition>,
    /// Boundary mailboxes, one per *directed* adjacent-partition edge, in
    /// the fixed order `wire_edges` produced them (ascending source
    /// partition, then [`Direction::ALL`] order).
    edges: Vec<DirectedEdge>,
    /// Recompute the cuts from accumulated node weights every this many
    /// cycles (`None` disables rebalancing).
    rebalance_epoch: Option<u64>,
    /// Idle-router-cycle ledgers of dismantled partitions: the counter
    /// belongs to the run, not to any one partition shape.
    banked_idle_router_cycles: u64,
    /// Reused drain buffer for the merge point's mailbox sweeps.
    boundary_scratch: Vec<BoundaryEvent>,
    /// Reused per-partition cursors for the merge point's reception merge.
    merge_cursors: Vec<usize>,
    /// Worker pool stepping partitions `1..` (`None` until the first
    /// multi-partition step, and on clones).
    pool: Option<StepPool>,
    clock: Clock,
    /// Completed injecting steps (`step(true)` calls) — the ordinal clock the
    /// NIC nap bookkeeping is keyed by. Non-injecting steps flip no PRBS
    /// coins and therefore do not advance it.
    inject_steps: u64,
    /// Chicken bit for the quiescent-NIC nap (on by default; `false` restores
    /// the serial one-coin-per-NIC-per-cycle loop).
    nic_idle_skip: bool,
    /// Keyed by a `BTreeMap` so iteration (diagnostics, drain checks) is
    /// deterministic — a hash map's order would depend on the hasher seed
    /// and leak into any output derived from a scan (noc-lint rule D01).
    scoreboard: BTreeMap<PacketId, TrackedPacket>,
    latency: LatencyStats,
    throughput: ThroughputStats,
    measuring: bool,
    /// When `true`, every reception is also appended to `deliveries` (in the
    /// deterministic merge order) for an external protocol layer to consume.
    log_deliveries: bool,
    /// Receptions logged since the last [`Network::clear_deliveries`].
    deliveries: Vec<Reception>,
}

impl Clone for Network {
    fn clone(&self) -> Self {
        Self {
            config: self.config,
            mesh: self.mesh,
            rate: self.rate,
            shape: self.shape,
            map: self.map.clone(),
            partitions: self.partitions.clone(),
            // Mailboxes are empty between steps; a clone gets fresh ones
            // with the same routing.
            edges: self
                .edges
                .iter()
                .map(|e| DirectedEdge {
                    to: e.to,
                    mailbox: BoundaryMailbox::new(),
                })
                .collect(),
            rebalance_epoch: self.rebalance_epoch,
            banked_idle_router_cycles: self.banked_idle_router_cycles,
            boundary_scratch: Vec::new(),
            merge_cursors: Vec::new(),
            // Worker pools are per-instance; the clone respawns lazily.
            pool: None,
            clock: self.clock,
            inject_steps: self.inject_steps,
            nic_idle_skip: self.nic_idle_skip,
            scoreboard: self.scoreboard.clone(),
            latency: self.latency.clone(),
            throughput: self.throughput,
            measuring: self.measuring,
            log_deliveries: self.log_deliveries,
            deliveries: self.deliveries.clone(),
        }
    }
}

impl Network {
    /// Builds a network from `config` with all NICs injecting at `rate`,
    /// stepped serially (one partition).
    ///
    /// # Errors
    ///
    /// Returns [`NocError::Config`] when the configuration is invalid.
    pub fn new(config: NocConfig, rate: f64) -> Result<Self, NocError> {
        Self::build(config, rate, PartitionShape::Rows(1))
    }

    /// Builds a network like [`Network::new`] and configures it to step with
    /// `threads` partition worker threads (see
    /// [`set_step_threads`](Network::set_step_threads) for clamping and
    /// determinism guarantees).
    ///
    /// # Errors
    ///
    /// Returns [`NocError::Config`] when the configuration is invalid or
    /// `threads` is zero.
    pub fn with_step_threads(
        config: NocConfig,
        rate: f64,
        threads: usize,
    ) -> Result<Self, NocError> {
        Self::build(config, rate, PartitionShape::Rows(threads))
    }

    /// Builds a network like [`Network::new`] partitioned into `shape` (see
    /// [`set_partition_shape`](Network::set_partition_shape)).
    ///
    /// # Errors
    ///
    /// Returns [`NocError::Config`] when the configuration is invalid or the
    /// shape has a zero axis.
    pub fn with_partition_shape(
        config: NocConfig,
        rate: f64,
        shape: PartitionShape,
    ) -> Result<Self, NocError> {
        Self::build(config, rate, shape)
    }

    fn build(config: NocConfig, rate: f64, shape: PartitionShape) -> Result<Self, NocError> {
        shape.validate()?;
        config.validate()?;
        let mesh = Mesh::new(config.k).map_err(NocError::from)?;
        let map = shape.map(&mesh);
        let mut partitions = (0..map.len())
            .map(|index| Partition::new(&config, mesh, map.region(index), rate))
            .collect::<Vec<_>>();
        let edges = Self::wire_edges(&map, &mut partitions);
        Ok(Self {
            config,
            mesh,
            rate,
            shape,
            map,
            partitions,
            edges,
            rebalance_epoch: None,
            banked_idle_router_cycles: 0,
            boundary_scratch: Vec::new(),
            merge_cursors: Vec::new(),
            pool: None,
            clock: Clock::new(),
            inject_steps: 0,
            nic_idle_skip: true,
            scoreboard: BTreeMap::new(),
            latency: LatencyStats::with_bins(4096),
            throughput: ThroughputStats::new(),
            measuring: false,
            log_deliveries: false,
            deliveries: Vec::new(),
        })
    }

    /// Builds the directed boundary edges of `map` and wires every
    /// partition's outboxes to them: for each partition in ascending order
    /// and each direction in [`Direction::ALL`] order with a neighbour on
    /// the partition grid, one [`DirectedEdge`] carrying that partition's
    /// departing events to the neighbour. The order is a pure function of
    /// the map, so the merge point's fixed edge sweep is deterministic.
    fn wire_edges(map: &PartitionMap, partitions: &mut [Partition]) -> Vec<DirectedEdge> {
        let mut edges = Vec::new();
        for (p, partition) in partitions.iter_mut().enumerate() {
            for dir in Direction::ALL {
                if let Some(to) = map.neighbor(p, dir) {
                    partition.set_edge_out(dir, edges.len());
                    edges.push(DirectedEdge {
                        to: usize::from(to),
                        mailbox: BoundaryMailbox::new(),
                    });
                }
            }
        }
        edges
    }

    /// The configuration this network was built from.
    #[must_use]
    pub fn config(&self) -> &NocConfig {
        &self.config
    }

    /// Reconfigures how many threads step the mesh: the mesh is re-sharded
    /// into `threads` row strips (clamped to the mesh's row count — a strip
    /// must own at least one row; deliberately *not* clamped to the
    /// machine's core count, so determinism across thread counts can be
    /// exercised anywhere) and subsequent [`step`](Network::step)s run one
    /// strip per thread on a persistent worker pool. Results are
    /// bit-identical for every thread count; `threads == 1` restores the
    /// inline serial step.
    ///
    /// Repartitioning determines where every in-flight event lives, so this
    /// is a *configuration-time* operation: when the partition count
    /// actually changes, the network is rebuilt cold (same config, seed and
    /// rate; clock, traffic and statistics state reset) — call it before
    /// running, or follow it with [`reset`](Network::reset).
    ///
    /// # Errors
    ///
    /// Returns [`NocError::Config`] with
    /// [`ConfigError::InvalidParallelism`] when `threads` is zero.
    pub fn set_step_threads(&mut self, threads: usize) -> Result<(), NocError> {
        self.set_partition_shape(PartitionShape::Rows(threads))
    }

    /// Reconfigures the partition shape: the mesh is re-sharded into
    /// `shape`'s row strips or tile grid (each axis clamped to the mesh
    /// side — a tile must own at least one row and column) and subsequent
    /// [`step`](Network::step)s run one partition per thread on a persistent
    /// worker pool. Results are bit-identical for every shape; a single
    /// partition restores the inline serial step.
    ///
    /// Like [`set_step_threads`](Network::set_step_threads) this is a
    /// *configuration-time* operation: when the node ownership actually
    /// changes, the network is rebuilt cold (same config, seed and rate;
    /// clock, traffic and statistics state reset) — call it before running,
    /// or follow it with [`reset`](Network::reset).
    ///
    /// # Errors
    ///
    /// Returns [`NocError::Config`] with
    /// [`ConfigError::InvalidParallelism`] when any axis of `shape` is zero.
    pub fn set_partition_shape(&mut self, shape: PartitionShape) -> Result<(), NocError> {
        shape.validate()?;
        let map = shape.map(&self.mesh);
        if map == self.map {
            // Same node ownership (e.g. `Rows(2)` vs `Tiles { 2, 1 }`, or a
            // re-request of the current shape): keep all run state, only
            // record the shape for future rebalances.
            self.shape = shape;
            return Ok(());
        }
        let nic_idle_skip = self.nic_idle_skip;
        let rebalance_epoch = self.rebalance_epoch;
        *self = Self::build(self.config, self.rate, shape)?;
        self.nic_idle_skip = nic_idle_skip;
        self.rebalance_epoch = rebalance_epoch;
        Ok(())
    }

    /// The currently requested partition shape (grid dimensions; the live
    /// cut positions may deviate after a rebalance).
    #[must_use]
    pub fn partition_shape(&self) -> PartitionShape {
        self.shape
    }

    /// Enables (`Some(epoch)`) or disables (`None`) deterministic load-aware
    /// repartitioning: every `epoch` cycles the merge point recomputes the
    /// cut positions of the current shape from the partitions' cumulative
    /// per-node activity weights and migrates the per-node state to the new
    /// cuts. The weights are pure simulated state, so the resulting shape —
    /// and therefore the run — is bit-identical for every thread count, and
    /// bit-identical to never rebalancing at all (`tests/determinism.rs`).
    ///
    /// # Panics
    ///
    /// Panics when `epoch` is `Some(0)`.
    pub fn set_rebalance_epoch(&mut self, epoch: Option<u64>) {
        assert!(epoch != Some(0), "rebalance epoch must be non-zero");
        self.rebalance_epoch = epoch;
    }

    /// Cumulative activity weight (router steps of the active-set walk) of
    /// every partition, in partition order — the per-partition busy metric
    /// the hotspot stressor reports.
    #[must_use]
    pub fn partition_loads(&self) -> Vec<u64> {
        self.partitions.iter().map(Partition::load).collect()
    }

    /// Number of threads (partitions) the network currently steps with.
    #[must_use]
    pub fn step_threads(&self) -> usize {
        self.partitions.len()
    }

    /// Restores the network to the state of a freshly built one whose
    /// configuration carries the given PRBS base seed, while keeping every
    /// warmed-up buffer capacity: the event wheels' slot rings, the NIC
    /// injection rings and segmentation scratch, the routers' VC buffers and
    /// fork caches, and the per-partition router-output scratch all survive
    /// with their high-water-mark storage intact — as do the partition
    /// structure and the worker pool. This is what lets a sweep runner batch
    /// many points through one network per worker thread without re-paying
    /// cold-start allocation (or thread spawning) per point.
    ///
    /// `seed` is folded (XOR of its 16-bit limbs, zero remapped to a fixed
    /// non-zero constant) into the 16-bit domain of the chip's PRBS LFSRs;
    /// seeds that already fit 16 bits are used as-is. Behaviour after a
    /// reset is bit-identical to `Network::new` with that base seed —
    /// `tests/determinism.rs` pins this.
    ///
    /// # Examples
    ///
    /// ```
    /// use mesh_noc::{Network, NocConfig};
    ///
    /// let mut network = Network::new(NocConfig::proposed_chip()?, 0.1)?;
    /// for _ in 0..50 {
    ///     network.step(true);
    /// }
    /// network.reset(0xBEEF);
    /// assert_eq!(network.now(), 0);
    /// assert_eq!(network.in_flight_flits(), 0);
    /// assert_eq!(network.injected_packets(), 0);
    /// assert_eq!(network.config().base_seed, 0xBEEF);
    /// # Ok::<(), noc_types::NocError>(())
    /// ```
    pub fn reset(&mut self, seed: u64) {
        let folded = (seed ^ (seed >> 16) ^ (seed >> 32) ^ (seed >> 48)) as u16;
        self.config.base_seed = if folded == 0 { 0x1D0C } else { folded };
        let config = self.config;
        let initial_map = self.shape.map(&self.mesh);
        if initial_map == self.map {
            for partition in &mut self.partitions {
                partition.reset(&config);
            }
        } else {
            // A mid-run rebalance moved the cuts; a fresh run must start
            // from the unweighted cuts to stay bit-identical to a cold
            // network (the warmed buffers of the displaced shape cannot be
            // kept — node ownership changes).
            let mesh = self.mesh;
            let rate = self.rate;
            self.partitions = (0..initial_map.len())
                .map(|index| Partition::new(&config, mesh, initial_map.region(index), rate))
                .collect();
            self.edges = Self::wire_edges(&initial_map, &mut self.partitions);
            self.map = initial_map;
        }
        self.banked_idle_router_cycles = 0;
        debug_assert!(self.edges.iter().all(|e| e.mailbox.is_empty()));
        self.boundary_scratch.clear();
        self.clock.reset();
        self.inject_steps = 0;
        self.scoreboard.clear();
        self.latency.reset();
        self.throughput.reset();
        self.measuring = false;
        // Delivery logging is a configuration knob; only the buffered log is
        // part of the run state.
        self.deliveries.clear();
    }

    /// The mesh topology.
    #[must_use]
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Current cycle.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.clock.now()
    }

    /// Changes the injection rate of every NIC.
    ///
    /// Sleeping NICs are woken first (replaying their napped-over coin
    /// flips), because a nap's length was promised under the old rate's
    /// Bernoulli threshold.
    pub fn set_rate(&mut self, rate: f64) {
        self.rate = rate;
        let inject_steps = self.inject_steps;
        for partition in &mut self.partitions {
            partition.set_rate(rate, inject_steps);
        }
    }

    /// Enables or disables the quiescent-NIC nap (on by default). Disabling
    /// restores the serial one-coin-per-NIC-per-cycle inject loop; the
    /// traffic streams are bit-identical either way — this knob exists to
    /// prove exactly that (`tests/determinism.rs`) and as an escape hatch.
    pub fn set_nic_idle_skip(&mut self, enabled: bool) {
        let inject_steps = self.inject_steps;
        for partition in &mut self.partitions {
            partition.wake_all_nics(inject_steps);
        }
        self.nic_idle_skip = enabled;
    }

    /// Starts or stops counting receptions and latencies.
    pub fn set_measuring(&mut self, measuring: bool) {
        self.measuring = measuring;
    }

    /// Latency statistics of packets injected while measuring.
    #[must_use]
    pub fn latency(&self) -> &LatencyStats {
        &self.latency
    }

    /// Throughput statistics of receptions while measuring.
    #[must_use]
    pub fn throughput(&self) -> &ThroughputStats {
        &self.throughput
    }

    /// Mutable access to the throughput accumulator (the simulation driver
    /// sets the measurement window length).
    pub fn throughput_mut(&mut self) -> &mut ThroughputStats {
        &mut self.throughput
    }

    /// Enables or disables the delivery log. While enabled, every reception
    /// (local NIC accepting the tail flit of a packet copy) is appended to
    /// the log in the deterministic merge order — ascending destination-node
    /// order within a cycle, the serial within-cycle order — so consumers
    /// see the exact same sequence for every partition shape and
    /// step-thread count. The closed-loop serving layer uses this to match
    /// replies to outstanding requests.
    pub fn set_delivery_logging(&mut self, enabled: bool) {
        self.log_deliveries = enabled;
        if !enabled {
            self.deliveries.clear();
        }
    }

    /// Receptions logged since the last [`clear_deliveries`](Self::clear_deliveries),
    /// in deterministic merge order. Empty unless
    /// [`set_delivery_logging`](Self::set_delivery_logging) enabled the log.
    #[must_use]
    pub fn deliveries(&self) -> &[Reception] {
        &self.deliveries
    }

    /// Empties the delivery log, keeping its storage for reuse.
    pub fn clear_deliveries(&mut self) {
        self.deliveries.clear();
    }

    /// Starts recording every packet injected by every NIC from now on into
    /// an in-memory trace; collect it with
    /// [`take_recorded_trace`](Self::take_recorded_trace). Restarting
    /// recording discards anything recorded so far, and
    /// [`reset`](Self::reset) rebuilds the NIC sources cold (recording off).
    pub fn record_trace(&mut self) {
        for partition in &mut self.partitions {
            for nic in partition.nics_mut() {
                nic.source_mut().start_recording();
            }
        }
    }

    /// Stops recording and returns everything recorded since
    /// [`record_trace`](Self::record_trace) as one trace, events sorted by
    /// `(cycle, source)`. Returns an empty trace when recording was never
    /// started.
    pub fn take_recorded_trace(&mut self) -> Trace {
        let mut events = Vec::new();
        for partition in &mut self.partitions {
            for nic in partition.nics_mut() {
                events.append(&mut nic.source_mut().take_recorded_events());
            }
        }
        Trace::from_events(self.config.k, events)
    }

    /// Replaces every NIC's traffic source with a deterministic replayer of
    /// its per-node slice of `trace`. A subsequent run over the same phase
    /// schedule reproduces the recorded run bit-for-bit; nodes without
    /// events simply stay quiet. [`set_rate`](Self::set_rate) becomes a
    /// no-op on replay sources, and [`reset`](Self::reset) restores live
    /// Bernoulli generation.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::Config`] when the trace was recorded on a mesh of
    /// a different side length than this network's.
    pub fn load_trace(&mut self, trace: &Trace) -> Result<(), NocError> {
        if trace.k() != self.config.k {
            return Err(ConfigError::InvalidPattern {
                reason: format!(
                    "trace recorded on a {0}x{0} mesh cannot replay on a {1}x{1} mesh",
                    trace.k(),
                    self.config.k
                ),
            }
            .into());
        }
        let nodes = usize::from(self.config.k) * usize::from(self.config.k);
        let mut per_node: Vec<Vec<TraceEvent>> = vec![Vec::new(); nodes];
        for event in trace.events() {
            per_node[usize::from(event.source)].push(*event);
        }
        for partition in &mut self.partitions {
            let region = partition.region();
            for (local, nic) in partition.nics_mut().iter_mut().enumerate() {
                let node = region.node_of(local);
                let source =
                    TrafficSource::replay(node, std::mem::take(&mut per_node[usize::from(node)]));
                nic.set_source(source);
            }
        }
        Ok(())
    }

    /// Enqueues an externally created packet at its source node's NIC, as if
    /// the NIC's own source had generated it this cycle. The packet is
    /// segmented and injected through the normal NIC queue (so it competes
    /// for link bandwidth like any other packet), its registration joins
    /// this cycle's deterministic merge, and the NIC stays active through
    /// non-injecting steps until its queue drains. This is the injection
    /// path of the closed-loop serving layer, which drives
    /// `step(inject = false)` and feeds every request and reply in by hand.
    ///
    /// # Panics
    ///
    /// Panics when the packet's source node is outside the mesh.
    pub fn inject_packet(&mut self, packet: Packet) {
        let node = packet.source();
        assert!(
            usize::from(node) < self.mesh.node_count(),
            "packet source node is inside the mesh"
        );
        let p = usize::from(self.map.partition_of(node));
        let local = self.partitions[p].region().local_of(node);
        self.partitions[p].enqueue_external(local, packet);
    }

    /// Merged activity counters of all routers and NICs.
    ///
    /// Routers skipped by the active-set scheduler never stepped, so their
    /// individual `cycles` counters undercount wall-clock cycles; the
    /// partitions' idle-cycle ledgers make up the difference here, keeping
    /// the merged counters identical to stepping every router every cycle.
    /// Partitions are visited in ascending order, so the merge is the same
    /// fold a serial node scan performs.
    #[must_use]
    pub fn counters(&self) -> ActivityCounters {
        let mut total = ActivityCounters::new();
        for partition in &self.partitions {
            for router in partition.routers() {
                total.merge(router.counters());
            }
        }
        for partition in &self.partitions {
            for nic in partition.nics() {
                total.merge(nic.counters());
            }
        }
        total.cycles += self
            .partitions
            .iter()
            .map(|p| p.idle_router_cycles)
            .sum::<u64>()
            + self.banked_idle_router_cycles;
        total
    }

    /// Total flits currently buffered in routers plus queued in NICs
    /// (used to detect drain completion and saturation).
    #[must_use]
    pub fn in_flight_flits(&self) -> usize {
        // Between steps the boundary mailboxes are drained; nothing hides
        // in transit between partitions.
        debug_assert!(self.edges.iter().all(|e| e.mailbox.is_empty()));
        self.partitions.iter().map(Partition::in_flight_flits).sum()
    }

    /// Number of tracked packets that have not yet reached every destination.
    #[must_use]
    pub fn outstanding_tracked_packets(&self) -> usize {
        self.scoreboard
            .values()
            .filter(|t| t.track_latency && t.remaining_receptions > 0)
            .count()
    }

    /// Total packets injected by all NICs so far.
    #[must_use]
    pub fn injected_packets(&self) -> u64 {
        self.partitions
            .iter()
            .flat_map(|p| p.nics().iter())
            .map(crate::nic::Nic::injected_packets)
            .sum()
    }

    /// Prints the location of every buffered or queued flit to stderr
    /// (diagnostic aid used by tests and examples when a network fails to
    /// drain).
    pub fn debug_dump(&self) {
        for partition in &self.partitions {
            for (local, nic) in partition.nics().iter().enumerate() {
                let node = partition.region().node_of(local);
                if nic.queued_flits() > 0 {
                    eprintln!("nic {node}: {} queued flits", nic.queued_flits());
                }
            }
        }
        for partition in &self.partitions {
            for (local, router) in partition.routers().iter().enumerate() {
                let node = partition.region().node_of(local);
                if router.buffered_flits() == 0 {
                    continue;
                }
                for port in Port::ALL {
                    let input = router.input(port);
                    for vc_idx in 0..input.vc_count() {
                        let vc = input.vc_at(vc_idx);
                        if vc.occupancy() > 0 {
                            let head = vc.head().expect("non-empty VC has a head");
                            eprintln!(
                                "router {node} port {port} vc#{vc_idx} ({:?} vc {:?}): {} flits, head packet {} kind {:?} dests {:?} route {:?}",
                                vc.class(),
                                vc.id(),
                                vc.occupancy(),
                                head.packet_id(),
                                head.kind(),
                                head.destinations(),
                                vc.route(),
                            );
                        }
                    }
                }
            }
        }
        for partition in &self.partitions {
            for (local, router) in partition.routers().iter().enumerate() {
                let node = partition.region().node_of(local);
                if router.buffered_flits() == 0 {
                    continue;
                }
                for port in Port::ALL {
                    if port.is_local() {
                        continue;
                    }
                    let output = router.output(port);
                    for class in noc_types::MessageClass::ALL {
                        for vc in 0..2u8 {
                            if let Some(state) = output.downstream_vc(class, vc) {
                                if state.allocated || state.credits < state.depth() {
                                    eprintln!(
                                        "router {node} output {port} {class:?} vc {vc}: allocated={} credits={} tail_sent={}",
                                        state.allocated, state.credits, state.tail_sent
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
        for (id, tracked) in &self.scoreboard {
            if tracked.remaining_receptions > 0 {
                eprintln!(
                    "scoreboard: packet {id} still needs {} receptions (created {})",
                    tracked.remaining_receptions, tracked.created_at
                );
            }
        }
    }

    /// Advances the network by one cycle.
    ///
    /// `inject` enables the NIC traffic generators for this cycle (warmup and
    /// measurement phases inject; the drain phase does not).
    ///
    /// With one partition the cycle runs inline; with more, each partition
    /// steps on its own thread between two barriers and this (main) thread
    /// then performs the deterministic merge: boundary mailboxes are drained
    /// in fixed edge order, buffered packet registrations are applied in
    /// ascending partition order and buffered receptions in ascending
    /// destination-node order — exactly the order a serial node scan would
    /// have produced them in.
    pub fn step(&mut self, inject: bool) {
        let ctx = StepCtx {
            now: self.clock.now(),
            inject,
            inject_ordinal: self.inject_steps,
            nic_idle_skip: self.nic_idle_skip,
            link_delay: self.config.link_delay_cycles(),
            credit_delay: self.config.credit_delay_cycles,
        };
        if self.partitions.len() == 1 {
            self.partitions[0].step_cycle(&ctx, &self.edges);
        } else {
            let pool = self
                .pool
                .get_or_insert_with(|| StepPool::spawn(self.partitions.len()));
            pool.step(&mut self.partitions, &self.edges, ctx);
        }
        self.merge_cycle();
        if inject {
            self.inject_steps += 1;
        }
        self.clock.tick();
        if let Some(epoch) = self.rebalance_epoch {
            if self.partitions.len() > 1 && self.clock.now().is_multiple_of(epoch) {
                self.rebalance();
            }
        }
    }

    /// The load-aware repartition pass, run at the merge point every
    /// rebalance epoch: recompute the cut positions of the current shape
    /// from the partitions' cumulative per-node activity weights and, when
    /// they moved, migrate every node's state to its new partition
    /// ([`Partition::dismantle`] / [`Partition::assemble`]). The weights are
    /// pure simulated state and the migration is pure state relocation, so
    /// the run stays bit-identical to never rebalancing.
    fn rebalance(&mut self) {
        let mut weights = vec![0u64; self.mesh.node_count()];
        for partition in &self.partitions {
            partition.node_weights_into(&mut weights);
        }
        let new_map = self.shape.weighted_map(&self.mesh, &self.map, &weights);
        if new_map == self.map {
            return;
        }
        let cursor = self.clock.now();
        let config = self.config;
        let mut states: Vec<Option<NodeState>> = Vec::new();
        states.resize_with(self.mesh.node_count(), || None);
        for partition in self.partitions.drain(..) {
            self.banked_idle_router_cycles += partition.dismantle(&mut states);
        }
        self.partitions = (0..new_map.len())
            .map(|index| Partition::assemble(&config, new_map.region(index), cursor, &mut states))
            .collect();
        self.edges = Self::wire_edges(&new_map, &mut self.partitions);
        self.map = new_map;
        // The partition count is fixed by the shape, so the pool carries
        // over unchanged.
        debug_assert_eq!(self.partitions.len(), self.map.len());
    }

    /// The single-threaded merge point closing one cycle: re-homes boundary
    /// events into their destination partitions (fixed edge order, FIFO
    /// within an edge), applies the buffered packet registrations in
    /// ascending partition order (they fully commute — keyed map inserts
    /// plus sums), and applies the buffered receptions in ascending
    /// destination-node order. Receptions are the one merge input whose
    /// order is observable (the delivery log), and ascending node is exactly
    /// the serial within-cycle order: ejections are scheduled only during
    /// the ascending-node router walk with a fixed delay, so each
    /// partition's reception list is node-ascending and a k-way min-head
    /// merge reproduces the global serial sequence for every partition
    /// shape. Everything else applied here commutes within a cycle, so the
    /// result is bit-identical to the serial interleaving.
    fn merge_cycle(&mut self) {
        for e in 0..self.edges.len() {
            self.edges[e].mailbox.drain_into(&mut self.boundary_scratch);
            if !self.boundary_scratch.is_empty() {
                let to = self.edges[e].to;
                let mut batch = std::mem::take(&mut self.boundary_scratch);
                for event in batch.drain(..) {
                    self.partitions[to].accept_boundary(event);
                }
                self.boundary_scratch = batch;
            }
        }
        for p in 0..self.partitions.len() {
            if !self.partitions[p].registrations.is_empty() {
                let mut registrations = std::mem::take(&mut self.partitions[p].registrations);
                for registration in registrations.drain(..) {
                    self.register_packet(registration);
                }
                self.partitions[p].registrations = registrations;
            }
        }
        self.merge_receptions();
    }

    /// K-way merges the partitions' node-ascending reception lists into the
    /// global ascending-node order and applies them. Node ownership is
    /// disjoint, so the minimum head node is unique; within one node the
    /// owning partition's list order is kept. With one partition this
    /// degenerates to an in-order drain.
    fn merge_receptions(&mut self) {
        self.merge_cursors.clear();
        self.merge_cursors.resize(self.partitions.len(), 0);
        loop {
            let mut best: Option<(NodeId, usize)> = None;
            for (p, partition) in self.partitions.iter().enumerate() {
                if let Some(reception) = partition.receptions.get(self.merge_cursors[p]) {
                    if best.is_none_or(|(node, _)| reception.node < node) {
                        best = Some((reception.node, p));
                    }
                }
            }
            let Some((_, p)) = best else { break };
            let reception = self.partitions[p].receptions[self.merge_cursors[p]];
            self.merge_cursors[p] += 1;
            self.apply_reception(reception);
        }
        for partition in &mut self.partitions {
            partition.receptions.clear();
        }
    }

    fn register_packet(&mut self, registration: PacketRegistration) {
        // Packets created outside a measurement window were never recorded
        // anywhere (`track_latency` would be false and receptions of
        // unknown ids are ignored), so they skip the scoreboard entirely —
        // at overdriven rates the map would otherwise grow without bound
        // and put a cache-missing hash lookup on every reception.
        if !self.measuring {
            return;
        }
        self.throughput
            .record_injection(u64::from(registration.flits_per_reception));
        self.scoreboard.insert(
            registration.id,
            TrackedPacket {
                created_at: registration.created_at,
                remaining_receptions: registration.expected_receptions,
                track_latency: true,
            },
        );
    }

    fn apply_reception(&mut self, reception: Reception) {
        if self.log_deliveries {
            self.deliveries.push(reception);
        }
        if self.measuring {
            self.throughput.record_reception(u64::from(reception.flits));
        }
        if let Some(tracked) = self.scoreboard.get_mut(&reception.id) {
            tracked.remaining_receptions = tracked.remaining_receptions.saturating_sub(1);
            if tracked.remaining_receptions == 0 {
                if tracked.track_latency {
                    self.latency.record(reception.at - tracked.created_at);
                }
                self.scoreboard.remove(&reception.id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NetworkVariant, NocConfig};

    fn run_cycles(network: &mut Network, cycles: u64, inject: bool) {
        for _ in 0..cycles {
            network.step(inject);
        }
    }

    #[test]
    fn an_idle_network_stays_idle() {
        let mut network = Network::new(NocConfig::proposed_chip().unwrap(), 0.0).unwrap();
        run_cycles(&mut network, 100, true);
        assert_eq!(network.in_flight_flits(), 0);
        assert_eq!(network.injected_packets(), 0);
        assert_eq!(network.latency().count(), 0);
    }

    #[test]
    fn low_load_traffic_is_delivered_and_drains() {
        let mut network = Network::new(NocConfig::proposed_chip().unwrap(), 0.05).unwrap();
        network.set_measuring(true);
        run_cycles(&mut network, 500, true);
        run_cycles(&mut network, 300, false);
        assert!(network.injected_packets() > 0);
        assert!(network.latency().count() > 0, "packets must complete");
        assert_eq!(network.in_flight_flits(), 0, "the network must drain");
        assert_eq!(network.outstanding_tracked_packets(), 0);
    }

    #[test]
    fn proposed_network_achieves_near_single_cycle_hops_at_low_load() {
        // With per-node seeds (no artifact) and a very low rate, the average
        // mixed-traffic latency should sit close to the theoretical limit
        // (hops + 2 NIC cycles + serialization).
        let config = NocConfig::proposed_chip()
            .unwrap()
            .with_seed_mode(noc_traffic::SeedMode::PerNode);
        let mut network = Network::new(config, 0.01).unwrap();
        network.set_measuring(true);
        run_cycles(&mut network, 3000, true);
        run_cycles(&mut network, 500, false);
        let avg = network.latency().mean();
        assert!(network.latency().count() > 20);
        // Mixed traffic limit is ~8 cycles; allow generous contention slack.
        assert!(avg < 12.0, "average latency too high: {avg}");
        assert!(avg >= 5.0, "average latency implausibly low: {avg}");
    }

    #[test]
    fn baseline_broadcasts_are_much_slower_than_proposed() {
        let run = |variant| {
            let config = NocConfig::variant(variant)
                .unwrap()
                .with_mix(noc_traffic::TrafficMix::broadcast_only())
                .with_seed_mode(noc_traffic::SeedMode::PerNode);
            let mut network = Network::new(config, 0.02).unwrap();
            network.set_measuring(true);
            run_cycles(&mut network, 2000, true);
            run_cycles(&mut network, 1000, false);
            network.latency().mean()
        };
        let baseline = run(NetworkVariant::FullSwingUnicast);
        let proposed = run(NetworkVariant::LowSwingBroadcastBypass);
        assert!(
            baseline > 1.5 * proposed,
            "baseline {baseline:.1} cycles should be well above proposed {proposed:.1}"
        );
    }

    #[test]
    fn bypassing_actually_happens_on_the_proposed_network() {
        let config = NocConfig::proposed_chip()
            .unwrap()
            .with_seed_mode(noc_traffic::SeedMode::PerNode);
        let mut network = Network::new(config, 0.02).unwrap();
        run_cycles(&mut network, 1000, true);
        let counters = network.counters();
        assert!(counters.bypasses > 0, "lookahead bypassing must occur");
        assert!(
            counters.bypass_fraction() > 0.5,
            "most hops should bypass at low load"
        );
        // The baseline never bypasses.
        let baseline = NocConfig::variant(NetworkVariant::FullSwingUnicast).unwrap();
        let mut baseline_net = Network::new(baseline, 0.02).unwrap();
        run_cycles(&mut baseline_net, 1000, true);
        assert_eq!(baseline_net.counters().bypasses, 0);
    }

    #[test]
    fn bypass_fraction_is_a_true_fraction_under_broadcast_traffic() {
        // Broadcast flits fork at bypass time and eject locally mid-tree;
        // counting bypasses per flit instead of per link traversal used to
        // push the ratio above 1.0 on broadcast-heavy runs.
        let config = NocConfig::proposed_chip()
            .unwrap()
            .with_mix(noc_traffic::TrafficMix::broadcast_only());
        let mut network = Network::new(config, 0.02).unwrap();
        run_cycles(&mut network, 2000, true);
        let counters = network.counters();
        assert!(counters.bypasses > 0, "broadcasts must bypass at low load");
        let fraction = counters.bypass_fraction();
        assert!(
            (0.0..=1.0).contains(&fraction),
            "bypass fraction must be a fraction: {fraction}"
        );
    }

    #[test]
    fn reset_reproduces_a_cold_network_exactly() {
        let config = NocConfig::proposed_chip()
            .unwrap()
            .with_seed_mode(noc_traffic::SeedMode::PerNode);
        let run = |network: &mut Network| {
            network.set_rate(0.1);
            network.set_measuring(true);
            run_cycles(network, 400, true);
            run_cycles(network, 400, false);
            (
                network.injected_packets(),
                network.latency().mean(),
                network.throughput().received_flits(),
                network.counters(),
            )
        };
        // Cold reference with the target seed.
        let mut cold = Network::new(config.with_base_seed(0x1234), 0.1).unwrap();
        let reference = run(&mut cold);
        // Warm network: drive it mid-flight on a different seed, then reset.
        let mut warm = Network::new(config, 0.2).unwrap();
        run_cycles(&mut warm, 300, true);
        assert!(warm.in_flight_flits() > 0, "warm network should be loaded");
        warm.reset(0x1234);
        assert_eq!(warm.now(), 0);
        assert_eq!(warm.in_flight_flits(), 0);
        assert_eq!(run(&mut warm), reference, "warm reset diverged from cold");
    }

    #[test]
    fn reset_folds_wide_seeds_into_the_lfsr_domain() {
        let mut network = Network::new(NocConfig::proposed_chip().unwrap(), 0.0).unwrap();
        network.reset(0xABCD);
        assert_eq!(network.config().base_seed, 0xABCD);
        network.reset(0x0001_0000_0000_ABCD);
        assert_eq!(network.config().base_seed, 0xABCC, "limbs are XOR-folded");
        network.reset(0);
        assert_ne!(network.config().base_seed, 0, "zero must be remapped");
    }

    #[test]
    fn conservation_no_flit_is_lost_or_duplicated() {
        // Inject for a while, drain completely, and check that every tracked
        // packet reached all of its destinations.
        let config = NocConfig::proposed_chip().unwrap();
        let mut network = Network::new(config, 0.08).unwrap();
        network.set_measuring(true);
        run_cycles(&mut network, 1500, true);
        run_cycles(&mut network, 1500, false);
        assert_eq!(network.in_flight_flits(), 0, "network must fully drain");
        assert_eq!(
            network.outstanding_tracked_packets(),
            0,
            "every measured packet must complete all receptions"
        );
        assert!(network.throughput().received_flits() > 0);
    }

    #[test]
    fn partitioned_stepping_matches_serial_exactly() {
        // The heavyweight cross-product lives in tests/determinism.rs; this
        // in-module test pins the core contract on one saturated run.
        let config = NocConfig::proposed_chip().unwrap();
        let run = |threads: usize| {
            let mut network = Network::with_step_threads(config, 0.2, threads).unwrap();
            assert_eq!(network.step_threads(), threads);
            network.set_measuring(true);
            run_cycles(&mut network, 400, true);
            run_cycles(&mut network, 400, false);
            (
                network.injected_packets(),
                network.in_flight_flits(),
                format!("{:?}", network.latency()),
                format!("{:?}", network.throughput()),
                network.counters(),
            )
        };
        let serial = run(1);
        assert_eq!(run(2), serial, "2-thread run diverged from serial");
        assert_eq!(run(4), serial, "4-thread run diverged from serial");
    }

    #[test]
    fn tiled_stepping_matches_serial_exactly() {
        // Vertical cuts exercise the East/West boundary mailboxes; the full
        // shape × thread × rebalance cross-product lives in
        // tests/determinism.rs.
        let config = NocConfig::proposed_chip().unwrap();
        let run = |shape: Option<PartitionShape>, epoch: Option<u64>| {
            let mut network = match shape {
                Some(shape) => Network::with_partition_shape(config, 0.2, shape).unwrap(),
                None => Network::new(config, 0.2).unwrap(),
            };
            network.set_rebalance_epoch(epoch);
            network.set_measuring(true);
            run_cycles(&mut network, 400, true);
            run_cycles(&mut network, 400, false);
            (
                network.injected_packets(),
                network.in_flight_flits(),
                format!("{:?}", network.latency()),
                format!("{:?}", network.throughput()),
                network.counters(),
            )
        };
        let serial = run(None, None);
        let tiles = PartitionShape::Tiles { rows: 2, cols: 2 };
        assert_eq!(
            run(Some(tiles), None),
            serial,
            "2x2-tile run diverged from serial"
        );
        assert_eq!(
            run(Some(tiles), Some(64)),
            serial,
            "rebalanced 2x2-tile run diverged from serial"
        );
        assert_eq!(
            run(Some(PartitionShape::Rows(4)), Some(100)),
            serial,
            "rebalanced 4-row run diverged from serial"
        );
    }

    #[test]
    fn rebalancing_moves_the_cuts_under_skewed_load() {
        // Drive a corner-hotspot pattern: the congestion tree rooted at the
        // far corner keeps the rows away from it busiest (blocked upstream
        // routers never nap), so the weighted cuts must displace the
        // unweighted even split once an epoch elapses.
        let mut hotspot = noc_types::DestinationSet::empty();
        hotspot.insert(15);
        let config = NocConfig::proposed_chip()
            .unwrap()
            .with_mix(noc_traffic::TrafficMix::unicast_only())
            .with_pattern(noc_traffic::SpatialPattern::hotspot(hotspot, 0.9));
        let mut network =
            Network::with_partition_shape(config, 0.05, PartitionShape::Rows(2)).unwrap();
        network.set_rebalance_epoch(Some(128));
        run_cycles(&mut network, 1024, true);
        let even = PartitionShape::Rows(2).map(network.mesh());
        assert_ne!(
            network.map, even,
            "hotspot load should displace the even cuts"
        );
        // A warm reset restores the unweighted cuts and replays bit-identically.
        let mut cold =
            Network::with_partition_shape(config, 0.05, PartitionShape::Rows(2)).unwrap();
        cold.reset(0x5EED);
        network.reset(0x5EED);
        assert_eq!(network.map, even, "reset must restore the unweighted cuts");
        run_cycles(&mut network, 300, true);
        run_cycles(&mut cold, 300, true);
        assert_eq!(network.counters(), cold.counters());
        assert_eq!(network.injected_packets(), cold.injected_packets());
    }

    #[test]
    fn partition_shape_requests_are_validated_and_clamped() {
        let config = NocConfig::proposed_chip().unwrap();
        assert!(matches!(
            Network::with_partition_shape(config, 0.0, PartitionShape::Tiles { rows: 0, cols: 2 }),
            Err(NocError::Config(ConfigError::InvalidParallelism { .. }))
        ));
        // Axes clamp to the mesh side (k = 4).
        let network =
            Network::with_partition_shape(config, 0.0, PartitionShape::Tiles { rows: 9, cols: 9 })
                .unwrap();
        assert_eq!(network.step_threads(), 16);
        // Same node ownership under a different name keeps all state.
        let mut network = Network::with_step_threads(config, 0.0, 2).unwrap();
        network
            .set_partition_shape(PartitionShape::Tiles { rows: 2, cols: 1 })
            .unwrap();
        assert_eq!(network.step_threads(), 2);
        assert_eq!(
            network.partition_shape(),
            PartitionShape::Tiles { rows: 2, cols: 1 }
        );
    }

    #[test]
    fn step_thread_requests_are_validated_and_clamped() {
        let config = NocConfig::proposed_chip().unwrap();
        assert!(matches!(
            Network::with_step_threads(config, 0.0, 0),
            Err(NocError::Config(ConfigError::InvalidParallelism { .. }))
        ));
        // Requests beyond the row count clamp to one strip per row (k = 4).
        let network = Network::with_step_threads(config, 0.0, 64).unwrap();
        assert_eq!(network.step_threads(), 4);
        // Reconfiguring to the same effective count is a cheap no-op.
        let mut network = Network::new(config, 0.0).unwrap();
        network.set_step_threads(1).unwrap();
        assert_eq!(network.step_threads(), 1);
        network.set_step_threads(2).unwrap();
        assert_eq!(network.step_threads(), 2);
        assert!(network.set_step_threads(0).is_err());
    }

    #[test]
    fn clones_of_partitioned_networks_step_independently() {
        let config = NocConfig::proposed_chip().unwrap();
        let mut network = Network::with_step_threads(config, 0.15, 2).unwrap();
        run_cycles(&mut network, 200, true);
        let mut clone = network.clone();
        run_cycles(&mut network, 100, true);
        run_cycles(&mut clone, 100, true);
        assert_eq!(network.injected_packets(), clone.injected_packets());
        assert_eq!(network.in_flight_flits(), clone.in_flight_flits());
        assert_eq!(network.counters(), clone.counters());
    }
}
