//! The cycle-accurate network orchestrator.
//!
//! All inter-component messages (flits on links, lookaheads, returning
//! credits) travel at most a few cycles, so they are scheduled through
//! fixed-horizon [`noc_sim::EventWheel`]s instead of a general priority
//! queue: the steady-state [`Network::step`] performs zero heap allocation —
//! slot buffers, router outputs and NIC scratch space are all reused cycle
//! after cycle. The wheel is split into **typed lanes** (word-sized control
//! messages vs. slab-parked flit handles), and an **active-set scheduler**
//! visits only the routers woken by a delivery and naps quiescent NICs
//! through provably losing injection coin flips — both bit-identical to the
//! naive full scan (see `crate::partition` for the per-cycle phase
//! machinery).
//!
//! On top of that, the mesh is sharded into **spatial partitions**
//! (contiguous row strips, [`noc_topology::PartitionMap`]) so
//! [`Network::with_step_threads`] can step strips on a persistent worker
//! pool. Each partition owns private wheels, slab and masks; events crossing
//! a strip boundary ride per-edge FIFO mailboxes and are merged — together
//! with the partitions' buffered receptions and packet registrations — by
//! the main thread in fixed partition order at a single merge point per
//! cycle. Because every within-cycle delivery commutes and the merge order
//! is fixed, a partitioned run is **bit-identical to the serial one for any
//! thread count** (`tests/determinism.rs` pins this). With one partition
//! (the default) the step runs inline with no barriers, pool or locking.

use std::collections::BTreeMap;

use noc_sim::{ActivityCounters, Clock, LatencyStats, ThroughputStats};
use noc_topology::{Mesh, PartitionMap};
use noc_traffic::TrafficSource;
use noc_types::{ConfigError, Cycle, NocError, NodeId, Packet, PacketId, Port, Trace, TraceEvent};

use crate::config::NocConfig;
use crate::nic::{PacketRegistration, Reception};
use crate::partition::{BoundaryEvent, EdgeMailboxes, Partition, StepCtx, StepPool};

/// Scoreboard entry tracking one packet until every destination received it.
#[derive(Debug, Clone, Copy)]
struct TrackedPacket {
    created_at: Cycle,
    remaining_receptions: u32,
    track_latency: bool,
}

/// A k×k mesh NoC: routers, NICs, links and the measurement machinery.
///
/// The network advances in lock-step cycles via [`Network::step`]. Traffic
/// injection and measurement are controlled per cycle so that a
/// [`crate::Simulation`] can run warmup / measurement / drain phases over the
/// same instance. Cloning snapshots the complete simulation state (used by
/// benches to replay from a fixed mid-flight state); the clone steps with
/// the same thread count but spawns its own worker pool lazily.
#[derive(Debug)]
pub struct Network {
    config: NocConfig,
    mesh: Mesh,
    /// Current per-NIC injection rate (kept so repartitioning can rebuild).
    rate: f64,
    /// Row-strip shards of the mesh, in ascending node order. One partition
    /// means the serial inline step; more mean pool-stepped strips.
    partitions: Vec<Partition>,
    /// Boundary mailboxes, one pair per adjacent-partition edge
    /// (`edges[e]` sits between partitions `e` and `e + 1`).
    edges: Vec<EdgeMailboxes>,
    /// Reused drain buffer for the merge point's mailbox sweeps.
    boundary_scratch: Vec<BoundaryEvent>,
    /// Worker pool stepping partitions `1..` (`None` until the first
    /// multi-partition step, and on clones).
    pool: Option<StepPool>,
    clock: Clock,
    /// Completed injecting steps (`step(true)` calls) — the ordinal clock the
    /// NIC nap bookkeeping is keyed by. Non-injecting steps flip no PRBS
    /// coins and therefore do not advance it.
    inject_steps: u64,
    /// Chicken bit for the quiescent-NIC nap (on by default; `false` restores
    /// the serial one-coin-per-NIC-per-cycle loop).
    nic_idle_skip: bool,
    /// Keyed by a `BTreeMap` so iteration (diagnostics, drain checks) is
    /// deterministic — a hash map's order would depend on the hasher seed
    /// and leak into any output derived from a scan (noc-lint rule D01).
    scoreboard: BTreeMap<PacketId, TrackedPacket>,
    latency: LatencyStats,
    throughput: ThroughputStats,
    measuring: bool,
    /// When `true`, every reception is also appended to `deliveries` (in the
    /// deterministic merge order) for an external protocol layer to consume.
    log_deliveries: bool,
    /// Receptions logged since the last [`Network::clear_deliveries`].
    deliveries: Vec<Reception>,
}

impl Clone for Network {
    fn clone(&self) -> Self {
        Self {
            config: self.config,
            mesh: self.mesh,
            rate: self.rate,
            partitions: self.partitions.clone(),
            // Mailboxes are empty between steps; a clone gets fresh ones.
            edges: (0..self.edges.len())
                .map(|_| EdgeMailboxes::default())
                .collect(),
            boundary_scratch: Vec::new(),
            // Worker pools are per-instance; the clone respawns lazily.
            pool: None,
            clock: self.clock,
            inject_steps: self.inject_steps,
            nic_idle_skip: self.nic_idle_skip,
            scoreboard: self.scoreboard.clone(),
            latency: self.latency.clone(),
            throughput: self.throughput,
            measuring: self.measuring,
            log_deliveries: self.log_deliveries,
            deliveries: self.deliveries.clone(),
        }
    }
}

impl Network {
    /// Builds a network from `config` with all NICs injecting at `rate`,
    /// stepped serially (one partition).
    ///
    /// # Errors
    ///
    /// Returns [`NocError::Config`] when the configuration is invalid.
    pub fn new(config: NocConfig, rate: f64) -> Result<Self, NocError> {
        Self::build(config, rate, 1)
    }

    /// Builds a network like [`Network::new`] and configures it to step with
    /// `threads` partition worker threads (see
    /// [`set_step_threads`](Network::set_step_threads) for clamping and
    /// determinism guarantees).
    ///
    /// # Errors
    ///
    /// Returns [`NocError::Config`] when the configuration is invalid or
    /// `threads` is zero.
    pub fn with_step_threads(
        config: NocConfig,
        rate: f64,
        threads: usize,
    ) -> Result<Self, NocError> {
        if threads == 0 {
            return Err(ConfigError::InvalidParallelism {
                jobs: 1,
                step_threads: 0,
            }
            .into());
        }
        Self::build(config, rate, threads)
    }

    fn build(config: NocConfig, rate: f64, threads: usize) -> Result<Self, NocError> {
        config.validate()?;
        let mesh = Mesh::new(config.k).map_err(NocError::from)?;
        let map = PartitionMap::rows(&mesh, threads);
        let partitions = (0..map.len())
            .map(|index| Partition::new(&config, mesh, &map, index, rate))
            .collect::<Vec<_>>();
        let edges = (0..map.len().saturating_sub(1))
            .map(|_| EdgeMailboxes::default())
            .collect();
        Ok(Self {
            config,
            mesh,
            rate,
            partitions,
            edges,
            boundary_scratch: Vec::new(),
            pool: None,
            clock: Clock::new(),
            inject_steps: 0,
            nic_idle_skip: true,
            scoreboard: BTreeMap::new(),
            latency: LatencyStats::new(),
            throughput: ThroughputStats::new(),
            measuring: false,
            log_deliveries: false,
            deliveries: Vec::new(),
        })
    }

    /// The configuration this network was built from.
    #[must_use]
    pub fn config(&self) -> &NocConfig {
        &self.config
    }

    /// Reconfigures how many threads step the mesh: the mesh is re-sharded
    /// into `threads` row strips (clamped to the mesh's row count — a strip
    /// must own at least one row; deliberately *not* clamped to the
    /// machine's core count, so determinism across thread counts can be
    /// exercised anywhere) and subsequent [`step`](Network::step)s run one
    /// strip per thread on a persistent worker pool. Results are
    /// bit-identical for every thread count; `threads == 1` restores the
    /// inline serial step.
    ///
    /// Repartitioning determines where every in-flight event lives, so this
    /// is a *configuration-time* operation: when the partition count
    /// actually changes, the network is rebuilt cold (same config, seed and
    /// rate; clock, traffic and statistics state reset) — call it before
    /// running, or follow it with [`reset`](Network::reset).
    ///
    /// # Errors
    ///
    /// Returns [`NocError::Config`] with
    /// [`ConfigError::InvalidParallelism`] when `threads` is zero.
    pub fn set_step_threads(&mut self, threads: usize) -> Result<(), NocError> {
        if threads == 0 {
            return Err(ConfigError::InvalidParallelism {
                jobs: 1,
                step_threads: 0,
            }
            .into());
        }
        let effective = threads.min(usize::from(self.config.k)).max(1);
        if effective == self.partitions.len() {
            return Ok(());
        }
        let nic_idle_skip = self.nic_idle_skip;
        *self = Self::build(self.config, self.rate, effective)?;
        self.nic_idle_skip = nic_idle_skip;
        Ok(())
    }

    /// Number of threads (partitions) the network currently steps with.
    #[must_use]
    pub fn step_threads(&self) -> usize {
        self.partitions.len()
    }

    /// Restores the network to the state of a freshly built one whose
    /// configuration carries the given PRBS base seed, while keeping every
    /// warmed-up buffer capacity: the event wheels' slot rings, the NIC
    /// injection rings and segmentation scratch, the routers' VC buffers and
    /// fork caches, and the per-partition router-output scratch all survive
    /// with their high-water-mark storage intact — as do the partition
    /// structure and the worker pool. This is what lets a sweep runner batch
    /// many points through one network per worker thread without re-paying
    /// cold-start allocation (or thread spawning) per point.
    ///
    /// `seed` is folded (XOR of its 16-bit limbs, zero remapped to a fixed
    /// non-zero constant) into the 16-bit domain of the chip's PRBS LFSRs;
    /// seeds that already fit 16 bits are used as-is. Behaviour after a
    /// reset is bit-identical to `Network::new` with that base seed —
    /// `tests/determinism.rs` pins this.
    ///
    /// # Examples
    ///
    /// ```
    /// use mesh_noc::{Network, NocConfig};
    ///
    /// let mut network = Network::new(NocConfig::proposed_chip()?, 0.1)?;
    /// for _ in 0..50 {
    ///     network.step(true);
    /// }
    /// network.reset(0xBEEF);
    /// assert_eq!(network.now(), 0);
    /// assert_eq!(network.in_flight_flits(), 0);
    /// assert_eq!(network.injected_packets(), 0);
    /// assert_eq!(network.config().base_seed, 0xBEEF);
    /// # Ok::<(), noc_types::NocError>(())
    /// ```
    pub fn reset(&mut self, seed: u64) {
        let folded = (seed ^ (seed >> 16) ^ (seed >> 32) ^ (seed >> 48)) as u16;
        self.config.base_seed = if folded == 0 { 0x1D0C } else { folded };
        let config = self.config;
        for partition in &mut self.partitions {
            partition.reset(&config);
        }
        debug_assert!(self
            .edges
            .iter()
            .all(|e| e.up.is_empty() && e.down.is_empty()));
        self.boundary_scratch.clear();
        self.clock.reset();
        self.inject_steps = 0;
        self.scoreboard.clear();
        self.latency.reset();
        self.throughput.reset();
        self.measuring = false;
        // Delivery logging is a configuration knob; only the buffered log is
        // part of the run state.
        self.deliveries.clear();
    }

    /// The mesh topology.
    #[must_use]
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Current cycle.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.clock.now()
    }

    /// Changes the injection rate of every NIC.
    ///
    /// Sleeping NICs are woken first (replaying their napped-over coin
    /// flips), because a nap's length was promised under the old rate's
    /// Bernoulli threshold.
    pub fn set_rate(&mut self, rate: f64) {
        self.rate = rate;
        let inject_steps = self.inject_steps;
        for partition in &mut self.partitions {
            partition.set_rate(rate, inject_steps);
        }
    }

    /// Enables or disables the quiescent-NIC nap (on by default). Disabling
    /// restores the serial one-coin-per-NIC-per-cycle inject loop; the
    /// traffic streams are bit-identical either way — this knob exists to
    /// prove exactly that (`tests/determinism.rs`) and as an escape hatch.
    pub fn set_nic_idle_skip(&mut self, enabled: bool) {
        let inject_steps = self.inject_steps;
        for partition in &mut self.partitions {
            partition.wake_all_nics(inject_steps);
        }
        self.nic_idle_skip = enabled;
    }

    /// Starts or stops counting receptions and latencies.
    pub fn set_measuring(&mut self, measuring: bool) {
        self.measuring = measuring;
    }

    /// Latency statistics of packets injected while measuring.
    #[must_use]
    pub fn latency(&self) -> &LatencyStats {
        &self.latency
    }

    /// Throughput statistics of receptions while measuring.
    #[must_use]
    pub fn throughput(&self) -> &ThroughputStats {
        &self.throughput
    }

    /// Mutable access to the throughput accumulator (the simulation driver
    /// sets the measurement window length).
    pub fn throughput_mut(&mut self) -> &mut ThroughputStats {
        &mut self.throughput
    }

    /// Enables or disables the delivery log. While enabled, every reception
    /// (local NIC accepting the tail flit of a packet copy) is appended to
    /// the log in the deterministic merge order — fixed edge order, then
    /// ascending partition order — so consumers see the exact same sequence
    /// for every step-thread count. The closed-loop serving layer uses this
    /// to match replies to outstanding requests.
    pub fn set_delivery_logging(&mut self, enabled: bool) {
        self.log_deliveries = enabled;
        if !enabled {
            self.deliveries.clear();
        }
    }

    /// Receptions logged since the last [`clear_deliveries`](Self::clear_deliveries),
    /// in deterministic merge order. Empty unless
    /// [`set_delivery_logging`](Self::set_delivery_logging) enabled the log.
    #[must_use]
    pub fn deliveries(&self) -> &[Reception] {
        &self.deliveries
    }

    /// Empties the delivery log, keeping its storage for reuse.
    pub fn clear_deliveries(&mut self) {
        self.deliveries.clear();
    }

    /// Starts recording every packet injected by every NIC from now on into
    /// an in-memory trace; collect it with
    /// [`take_recorded_trace`](Self::take_recorded_trace). Restarting
    /// recording discards anything recorded so far, and
    /// [`reset`](Self::reset) rebuilds the NIC sources cold (recording off).
    pub fn record_trace(&mut self) {
        for partition in &mut self.partitions {
            for nic in partition.nics_mut() {
                nic.source_mut().start_recording();
            }
        }
    }

    /// Stops recording and returns everything recorded since
    /// [`record_trace`](Self::record_trace) as one trace, events sorted by
    /// `(cycle, source)`. Returns an empty trace when recording was never
    /// started.
    pub fn take_recorded_trace(&mut self) -> Trace {
        let mut events = Vec::new();
        for partition in &mut self.partitions {
            for nic in partition.nics_mut() {
                events.append(&mut nic.source_mut().take_recorded_events());
            }
        }
        Trace::from_events(self.config.k, events)
    }

    /// Replaces every NIC's traffic source with a deterministic replayer of
    /// its per-node slice of `trace`. A subsequent run over the same phase
    /// schedule reproduces the recorded run bit-for-bit; nodes without
    /// events simply stay quiet. [`set_rate`](Self::set_rate) becomes a
    /// no-op on replay sources, and [`reset`](Self::reset) restores live
    /// Bernoulli generation.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::Config`] when the trace was recorded on a mesh of
    /// a different side length than this network's.
    pub fn load_trace(&mut self, trace: &Trace) -> Result<(), NocError> {
        if trace.k() != self.config.k {
            return Err(ConfigError::InvalidPattern {
                reason: format!(
                    "trace recorded on a {0}x{0} mesh cannot replay on a {1}x{1} mesh",
                    trace.k(),
                    self.config.k
                ),
            }
            .into());
        }
        let nodes = usize::from(self.config.k) * usize::from(self.config.k);
        let mut per_node: Vec<Vec<TraceEvent>> = vec![Vec::new(); nodes];
        for event in trace.events() {
            per_node[usize::from(event.source)].push(*event);
        }
        for partition in &mut self.partitions {
            let first = partition.first_node();
            for (local, nic) in partition.nics_mut().iter_mut().enumerate() {
                let node = first + local;
                let source = TrafficSource::replay(
                    NodeId::try_from(node).expect("mesh nodes fit NodeId"),
                    std::mem::take(&mut per_node[node]),
                );
                nic.set_source(source);
            }
        }
        Ok(())
    }

    /// Enqueues an externally created packet at its source node's NIC, as if
    /// the NIC's own source had generated it this cycle. The packet is
    /// segmented and injected through the normal NIC queue (so it competes
    /// for link bandwidth like any other packet), its registration joins
    /// this cycle's deterministic merge, and the NIC stays active through
    /// non-injecting steps until its queue drains. This is the injection
    /// path of the closed-loop serving layer, which drives
    /// `step(inject = false)` and feeds every request and reply in by hand.
    ///
    /// # Panics
    ///
    /// Panics when the packet's source node is outside the mesh.
    pub fn inject_packet(&mut self, packet: Packet) {
        let node = usize::from(packet.source());
        let partition = self
            .partitions
            .iter_mut()
            .find(|p| {
                let first = p.first_node();
                node >= first && node < first + p.nics().len()
            })
            .expect("packet source node is inside the mesh");
        let local = node - partition.first_node();
        partition.enqueue_external(local, packet);
    }

    /// Merged activity counters of all routers and NICs.
    ///
    /// Routers skipped by the active-set scheduler never stepped, so their
    /// individual `cycles` counters undercount wall-clock cycles; the
    /// partitions' idle-cycle ledgers make up the difference here, keeping
    /// the merged counters identical to stepping every router every cycle.
    /// Partitions are visited in ascending order, so the merge is the same
    /// fold a serial node scan performs.
    #[must_use]
    pub fn counters(&self) -> ActivityCounters {
        let mut total = ActivityCounters::new();
        for partition in &self.partitions {
            for router in partition.routers() {
                total.merge(router.counters());
            }
        }
        for partition in &self.partitions {
            for nic in partition.nics() {
                total.merge(nic.counters());
            }
        }
        total.cycles += self
            .partitions
            .iter()
            .map(|p| p.idle_router_cycles)
            .sum::<u64>();
        total
    }

    /// Total flits currently buffered in routers plus queued in NICs
    /// (used to detect drain completion and saturation).
    #[must_use]
    pub fn in_flight_flits(&self) -> usize {
        // Between steps the boundary mailboxes are drained; nothing hides
        // in transit between partitions.
        debug_assert!(self
            .edges
            .iter()
            .all(|e| e.up.is_empty() && e.down.is_empty()));
        self.partitions.iter().map(Partition::in_flight_flits).sum()
    }

    /// Number of tracked packets that have not yet reached every destination.
    #[must_use]
    pub fn outstanding_tracked_packets(&self) -> usize {
        self.scoreboard
            .values()
            .filter(|t| t.track_latency && t.remaining_receptions > 0)
            .count()
    }

    /// Total packets injected by all NICs so far.
    #[must_use]
    pub fn injected_packets(&self) -> u64 {
        self.partitions
            .iter()
            .flat_map(|p| p.nics().iter())
            .map(crate::nic::Nic::injected_packets)
            .sum()
    }

    /// Prints the location of every buffered or queued flit to stderr
    /// (diagnostic aid used by tests and examples when a network fails to
    /// drain).
    pub fn debug_dump(&self) {
        for partition in &self.partitions {
            for (local, nic) in partition.nics().iter().enumerate() {
                let node = partition.first_node() + local;
                if nic.queued_flits() > 0 {
                    eprintln!("nic {node}: {} queued flits", nic.queued_flits());
                }
            }
        }
        for partition in &self.partitions {
            for (local, router) in partition.routers().iter().enumerate() {
                let node = partition.first_node() + local;
                if router.buffered_flits() == 0 {
                    continue;
                }
                for port in Port::ALL {
                    let input = router.input(port);
                    for vc_idx in 0..input.vc_count() {
                        let vc = input.vc_at(vc_idx);
                        if vc.occupancy() > 0 {
                            let head = vc.head().expect("non-empty VC has a head");
                            eprintln!(
                                "router {node} port {port} vc#{vc_idx} ({:?} vc {:?}): {} flits, head packet {} kind {:?} dests {:?} route {:?}",
                                vc.class(),
                                vc.id(),
                                vc.occupancy(),
                                head.packet_id(),
                                head.kind(),
                                head.destinations(),
                                vc.route(),
                            );
                        }
                    }
                }
            }
        }
        for partition in &self.partitions {
            for (local, router) in partition.routers().iter().enumerate() {
                let node = partition.first_node() + local;
                if router.buffered_flits() == 0 {
                    continue;
                }
                for port in Port::ALL {
                    if port.is_local() {
                        continue;
                    }
                    let output = router.output(port);
                    for class in noc_types::MessageClass::ALL {
                        for vc in 0..2u8 {
                            if let Some(state) = output.downstream_vc(class, vc) {
                                if state.allocated || state.credits < state.depth() {
                                    eprintln!(
                                        "router {node} output {port} {class:?} vc {vc}: allocated={} credits={} tail_sent={}",
                                        state.allocated, state.credits, state.tail_sent
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
        for (id, tracked) in &self.scoreboard {
            if tracked.remaining_receptions > 0 {
                eprintln!(
                    "scoreboard: packet {id} still needs {} receptions (created {})",
                    tracked.remaining_receptions, tracked.created_at
                );
            }
        }
    }

    /// Advances the network by one cycle.
    ///
    /// `inject` enables the NIC traffic generators for this cycle (warmup and
    /// measurement phases inject; the drain phase does not).
    ///
    /// With one partition the cycle runs inline; with more, each partition
    /// steps on its own thread between two barriers and this (main) thread
    /// then performs the deterministic merge: boundary mailboxes are drained
    /// in fixed edge order and each partition's buffered receptions and
    /// packet registrations are applied in ascending partition order —
    /// exactly the order a serial node scan would have produced them in.
    pub fn step(&mut self, inject: bool) {
        let ctx = StepCtx {
            now: self.clock.now(),
            inject,
            inject_ordinal: self.inject_steps,
            nic_idle_skip: self.nic_idle_skip,
            link_delay: self.config.link_delay_cycles(),
            credit_delay: self.config.credit_delay_cycles,
        };
        if self.partitions.len() == 1 {
            self.partitions[0].step_cycle(&ctx, &self.edges);
        } else {
            let pool = self
                .pool
                .get_or_insert_with(|| StepPool::spawn(self.partitions.len()));
            pool.step(&mut self.partitions, &self.edges, ctx);
        }
        self.merge_cycle();
        if inject {
            self.inject_steps += 1;
        }
        self.clock.tick();
    }

    /// The single-threaded merge point closing one cycle: re-homes boundary
    /// events into their destination partitions (fixed edge order, FIFO
    /// within an edge) and applies the buffered packet registrations and
    /// receptions to the shared scoreboard and statistics in ascending
    /// partition order. Everything applied here commutes within a cycle, so
    /// the result is bit-identical to the serial interleaving.
    fn merge_cycle(&mut self) {
        for e in 0..self.edges.len() {
            self.edges[e].up.drain_into(&mut self.boundary_scratch);
            if !self.boundary_scratch.is_empty() {
                let mut batch = std::mem::take(&mut self.boundary_scratch);
                for event in batch.drain(..) {
                    self.partitions[e + 1].accept_boundary(event);
                }
                self.boundary_scratch = batch;
            }
            self.edges[e].down.drain_into(&mut self.boundary_scratch);
            if !self.boundary_scratch.is_empty() {
                let mut batch = std::mem::take(&mut self.boundary_scratch);
                for event in batch.drain(..) {
                    self.partitions[e].accept_boundary(event);
                }
                self.boundary_scratch = batch;
            }
        }
        for p in 0..self.partitions.len() {
            if !self.partitions[p].registrations.is_empty() {
                let mut registrations = std::mem::take(&mut self.partitions[p].registrations);
                for registration in registrations.drain(..) {
                    self.register_packet(registration);
                }
                self.partitions[p].registrations = registrations;
            }
            if !self.partitions[p].receptions.is_empty() {
                let mut receptions = std::mem::take(&mut self.partitions[p].receptions);
                for reception in receptions.drain(..) {
                    self.apply_reception(reception);
                }
                self.partitions[p].receptions = receptions;
            }
        }
    }

    fn register_packet(&mut self, registration: PacketRegistration) {
        // Packets created outside a measurement window were never recorded
        // anywhere (`track_latency` would be false and receptions of
        // unknown ids are ignored), so they skip the scoreboard entirely —
        // at overdriven rates the map would otherwise grow without bound
        // and put a cache-missing hash lookup on every reception.
        if !self.measuring {
            return;
        }
        self.throughput
            .record_injection(u64::from(registration.flits_per_reception));
        self.scoreboard.insert(
            registration.id,
            TrackedPacket {
                created_at: registration.created_at,
                remaining_receptions: registration.expected_receptions,
                track_latency: true,
            },
        );
    }

    fn apply_reception(&mut self, reception: Reception) {
        if self.log_deliveries {
            self.deliveries.push(reception);
        }
        if self.measuring {
            self.throughput.record_reception(u64::from(reception.flits));
        }
        if let Some(tracked) = self.scoreboard.get_mut(&reception.id) {
            tracked.remaining_receptions = tracked.remaining_receptions.saturating_sub(1);
            if tracked.remaining_receptions == 0 {
                if tracked.track_latency {
                    self.latency.record(reception.at - tracked.created_at);
                }
                self.scoreboard.remove(&reception.id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NetworkVariant, NocConfig};

    fn run_cycles(network: &mut Network, cycles: u64, inject: bool) {
        for _ in 0..cycles {
            network.step(inject);
        }
    }

    #[test]
    fn an_idle_network_stays_idle() {
        let mut network = Network::new(NocConfig::proposed_chip().unwrap(), 0.0).unwrap();
        run_cycles(&mut network, 100, true);
        assert_eq!(network.in_flight_flits(), 0);
        assert_eq!(network.injected_packets(), 0);
        assert_eq!(network.latency().count(), 0);
    }

    #[test]
    fn low_load_traffic_is_delivered_and_drains() {
        let mut network = Network::new(NocConfig::proposed_chip().unwrap(), 0.05).unwrap();
        network.set_measuring(true);
        run_cycles(&mut network, 500, true);
        run_cycles(&mut network, 300, false);
        assert!(network.injected_packets() > 0);
        assert!(network.latency().count() > 0, "packets must complete");
        assert_eq!(network.in_flight_flits(), 0, "the network must drain");
        assert_eq!(network.outstanding_tracked_packets(), 0);
    }

    #[test]
    fn proposed_network_achieves_near_single_cycle_hops_at_low_load() {
        // With per-node seeds (no artifact) and a very low rate, the average
        // mixed-traffic latency should sit close to the theoretical limit
        // (hops + 2 NIC cycles + serialization).
        let config = NocConfig::proposed_chip()
            .unwrap()
            .with_seed_mode(noc_traffic::SeedMode::PerNode);
        let mut network = Network::new(config, 0.01).unwrap();
        network.set_measuring(true);
        run_cycles(&mut network, 3000, true);
        run_cycles(&mut network, 500, false);
        let avg = network.latency().mean();
        assert!(network.latency().count() > 20);
        // Mixed traffic limit is ~8 cycles; allow generous contention slack.
        assert!(avg < 12.0, "average latency too high: {avg}");
        assert!(avg >= 5.0, "average latency implausibly low: {avg}");
    }

    #[test]
    fn baseline_broadcasts_are_much_slower_than_proposed() {
        let run = |variant| {
            let config = NocConfig::variant(variant)
                .unwrap()
                .with_mix(noc_traffic::TrafficMix::broadcast_only())
                .with_seed_mode(noc_traffic::SeedMode::PerNode);
            let mut network = Network::new(config, 0.02).unwrap();
            network.set_measuring(true);
            run_cycles(&mut network, 2000, true);
            run_cycles(&mut network, 1000, false);
            network.latency().mean()
        };
        let baseline = run(NetworkVariant::FullSwingUnicast);
        let proposed = run(NetworkVariant::LowSwingBroadcastBypass);
        assert!(
            baseline > 1.5 * proposed,
            "baseline {baseline:.1} cycles should be well above proposed {proposed:.1}"
        );
    }

    #[test]
    fn bypassing_actually_happens_on_the_proposed_network() {
        let config = NocConfig::proposed_chip()
            .unwrap()
            .with_seed_mode(noc_traffic::SeedMode::PerNode);
        let mut network = Network::new(config, 0.02).unwrap();
        run_cycles(&mut network, 1000, true);
        let counters = network.counters();
        assert!(counters.bypasses > 0, "lookahead bypassing must occur");
        assert!(
            counters.bypass_fraction() > 0.5,
            "most hops should bypass at low load"
        );
        // The baseline never bypasses.
        let baseline = NocConfig::variant(NetworkVariant::FullSwingUnicast).unwrap();
        let mut baseline_net = Network::new(baseline, 0.02).unwrap();
        run_cycles(&mut baseline_net, 1000, true);
        assert_eq!(baseline_net.counters().bypasses, 0);
    }

    #[test]
    fn reset_reproduces_a_cold_network_exactly() {
        let config = NocConfig::proposed_chip()
            .unwrap()
            .with_seed_mode(noc_traffic::SeedMode::PerNode);
        let run = |network: &mut Network| {
            network.set_rate(0.1);
            network.set_measuring(true);
            run_cycles(network, 400, true);
            run_cycles(network, 400, false);
            (
                network.injected_packets(),
                network.latency().mean(),
                network.throughput().received_flits(),
                network.counters(),
            )
        };
        // Cold reference with the target seed.
        let mut cold = Network::new(config.with_base_seed(0x1234), 0.1).unwrap();
        let reference = run(&mut cold);
        // Warm network: drive it mid-flight on a different seed, then reset.
        let mut warm = Network::new(config, 0.2).unwrap();
        run_cycles(&mut warm, 300, true);
        assert!(warm.in_flight_flits() > 0, "warm network should be loaded");
        warm.reset(0x1234);
        assert_eq!(warm.now(), 0);
        assert_eq!(warm.in_flight_flits(), 0);
        assert_eq!(run(&mut warm), reference, "warm reset diverged from cold");
    }

    #[test]
    fn reset_folds_wide_seeds_into_the_lfsr_domain() {
        let mut network = Network::new(NocConfig::proposed_chip().unwrap(), 0.0).unwrap();
        network.reset(0xABCD);
        assert_eq!(network.config().base_seed, 0xABCD);
        network.reset(0x0001_0000_0000_ABCD);
        assert_eq!(network.config().base_seed, 0xABCC, "limbs are XOR-folded");
        network.reset(0);
        assert_ne!(network.config().base_seed, 0, "zero must be remapped");
    }

    #[test]
    fn conservation_no_flit_is_lost_or_duplicated() {
        // Inject for a while, drain completely, and check that every tracked
        // packet reached all of its destinations.
        let config = NocConfig::proposed_chip().unwrap();
        let mut network = Network::new(config, 0.08).unwrap();
        network.set_measuring(true);
        run_cycles(&mut network, 1500, true);
        run_cycles(&mut network, 1500, false);
        assert_eq!(network.in_flight_flits(), 0, "network must fully drain");
        assert_eq!(
            network.outstanding_tracked_packets(),
            0,
            "every measured packet must complete all receptions"
        );
        assert!(network.throughput().received_flits() > 0);
    }

    #[test]
    fn partitioned_stepping_matches_serial_exactly() {
        // The heavyweight cross-product lives in tests/determinism.rs; this
        // in-module test pins the core contract on one saturated run.
        let config = NocConfig::proposed_chip().unwrap();
        let run = |threads: usize| {
            let mut network = Network::with_step_threads(config, 0.2, threads).unwrap();
            assert_eq!(network.step_threads(), threads);
            network.set_measuring(true);
            run_cycles(&mut network, 400, true);
            run_cycles(&mut network, 400, false);
            (
                network.injected_packets(),
                network.in_flight_flits(),
                format!("{:?}", network.latency()),
                format!("{:?}", network.throughput()),
                network.counters(),
            )
        };
        let serial = run(1);
        assert_eq!(run(2), serial, "2-thread run diverged from serial");
        assert_eq!(run(4), serial, "4-thread run diverged from serial");
    }

    #[test]
    fn step_thread_requests_are_validated_and_clamped() {
        let config = NocConfig::proposed_chip().unwrap();
        assert!(matches!(
            Network::with_step_threads(config, 0.0, 0),
            Err(NocError::Config(ConfigError::InvalidParallelism { .. }))
        ));
        // Requests beyond the row count clamp to one strip per row (k = 4).
        let network = Network::with_step_threads(config, 0.0, 64).unwrap();
        assert_eq!(network.step_threads(), 4);
        // Reconfiguring to the same effective count is a cheap no-op.
        let mut network = Network::new(config, 0.0).unwrap();
        network.set_step_threads(1).unwrap();
        assert_eq!(network.step_threads(), 1);
        network.set_step_threads(2).unwrap();
        assert_eq!(network.step_threads(), 2);
        assert!(network.set_step_threads(0).is_err());
    }

    #[test]
    fn clones_of_partitioned_networks_step_independently() {
        let config = NocConfig::proposed_chip().unwrap();
        let mut network = Network::with_step_threads(config, 0.15, 2).unwrap();
        run_cycles(&mut network, 200, true);
        let mut clone = network.clone();
        run_cycles(&mut network, 100, true);
        run_cycles(&mut clone, 100, true);
        assert_eq!(network.injected_packets(), clone.injected_packets());
        assert_eq!(network.in_flight_flits(), clone.in_flight_flits());
        assert_eq!(network.counters(), clone.counters());
    }
}
