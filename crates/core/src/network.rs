//! The cycle-accurate network orchestrator.
//!
//! All inter-component messages (flits on links, lookaheads, returning
//! credits) travel at most a few cycles, so they are scheduled through
//! fixed-horizon [`EventWheel`]s instead of a general priority queue: the
//! steady-state [`Network::step`] performs zero heap allocation — slot
//! buffers, router outputs and NIC scratch space are all reused cycle after
//! cycle.
//!
//! The wheel is split into **typed lanes**. Word-sized control messages
//! (lookaheads and returning credits) ride a [`WordEvent`] lane, while flits
//! park their payload in a pooled, refcounted [`FlitSlab`] and ride the
//! [`FlitEvent`] lane as small handles — so saturated stepping moves ~8-byte
//! tickets instead of ~100-byte enum variants, and a multicast fork becomes
//! a handle copy per branch instead of a `Flit` clone. Each cycle drains the
//! word lane, then the flit lane; the two classes touch disjoint component
//! state and each lane preserves FIFO order, so the split is bit-identical
//! to the old single mixed queue.
//!
//! On top of the lanes sits an **active-set scheduler**: `step` visits only
//! the nodes that can do work this cycle. A dirty bitmask over routers is
//! maintained by the lanes' deliveries (any flit, lookahead or credit
//! arriving at a router wakes it) and by post-step occupancy (a router that
//! still buffers flits stays set); a second mask tracks NICs with queued
//! flits so the drain phase skips empty ones. An idle router would spend its
//! step doing nothing observable — no eligible heads means no arbitration,
//! no arbiter state change and no departures — so skipping it is exact, and
//! the per-router `cycles` activity counter is topped up in bulk from the
//! network's idle-cycle ledger. While injecting, the scheduler also naps
//! **quiescent NICs**: a NIC with an empty queue scouts its PRBS coin stream
//! ([`noc_traffic::TrafficGenerator::idle_cycles_hint`]) and sleeps through
//! flips that provably lose, replaying them in one batched
//! [`Lfsr::leap16`](noc_sim::Lfsr::leap16)-powered skip at wake — bit-exact
//! with the serial one-coin-per-cycle contract. At saturation every node is
//! set and the masks cost one word scan; at the low-load end of a sweep most
//! cycles visit a handful of nodes instead of all `k²`.

use std::collections::HashMap;

use noc_router::{Departure, Lookahead, Router, RouterOutput};
use noc_sim::{
    ActivityCounters, Clock, EventWheel, FlitHandle, FlitSlab, LatencyStats, ThroughputStats,
};
use noc_topology::Mesh;
use noc_types::{Credit, Cycle, NocError, NodeId, PacketId, Port, PORT_COUNT};

use crate::config::NocConfig;
use crate::nic::{Nic, PacketRegistration};

/// `port_code` value of a [`FlitEvent`] ejecting to the node's NIC (router
/// input ports use their `Port::index()`, `0..PORT_COUNT`).
const NIC_PORT_CODE: u8 = PORT_COUNT as u8;

/// Cap on how far a NIC scouts its injection coin stream ahead: one full
/// 16-bit LFSR word period. Bounds the scout's worst-case work; a NIC whose
/// idle run is longer simply naps in `MAX_NIC_SCOUT` instalments.
const MAX_NIC_SCOUT: u64 = 65_535;

/// A flit hop in flight on the flit lane: the payload is parked in the
/// network's [`FlitSlab`] and only this small ticket rides the wheel.
#[derive(Debug, Clone, Copy)]
struct FlitEvent {
    node: NodeId,
    /// Router input-port index (`Port::from_index`), or [`NIC_PORT_CODE`]
    /// for ejection to the node's NIC.
    port_code: u8,
    handle: FlitHandle,
}

/// A word-sized control message in flight on the word lane.
#[derive(Debug, Clone, Copy)]
enum WordEvent {
    Lookahead {
        node: NodeId,
        port: Port,
        lookahead: Lookahead,
    },
    CreditToRouter {
        node: NodeId,
        port: Port,
        credit: Credit,
    },
    CreditToNic {
        node: NodeId,
        credit: Credit,
    },
}

/// Scoreboard entry tracking one packet until every destination received it.
#[derive(Debug, Clone, Copy)]
struct TrackedPacket {
    created_at: Cycle,
    remaining_receptions: u32,
    track_latency: bool,
}

/// A k×k mesh NoC: routers, NICs, links and the measurement machinery.
///
/// The network advances in lock-step cycles via [`Network::step`]. Traffic
/// injection and measurement are controlled per cycle so that a
/// [`crate::Simulation`] can run warmup / measurement / drain phases over the
/// same instance. Cloning snapshots the complete simulation state (used by
/// benches to replay from a fixed mid-flight state).
#[derive(Debug, Clone)]
pub struct Network {
    config: NocConfig,
    mesh: Mesh,
    routers: Vec<Router>,
    nics: Vec<Nic>,
    clock: Clock,
    /// Calendar of in-flight word-sized control messages (lookaheads,
    /// credits), sized by the largest link/credit delay; slot buffers are
    /// recycled so scheduling never allocates in steady state.
    word_lane: EventWheel<WordEvent>,
    /// Calendar of in-flight flit hops, as slab handles.
    flit_lane: EventWheel<FlitEvent>,
    /// Pooled payload storage behind the flit lane's handles.
    slab: FlitSlab,
    /// Reused output buffer for [`Router::step_into`].
    router_scratch: RouterOutput,
    /// Active-set words over routers: bit `n` of word `n / 64` set ⇔ router
    /// `n` must step this cycle (woken by a delivery or still buffering
    /// flits after its last step).
    router_wake: Vec<u64>,
    /// Bit `n` set ⇔ NIC `n` has queued flits; the drain phase (no
    /// injection, so no PRBS draws are owed) ticks only these.
    nic_active: Vec<u64>,
    /// Router-cycles skipped by the active-set scheduler, folded back into
    /// the merged `cycles` activity counter so power accounting is unchanged.
    idle_router_cycles: u64,
    /// Completed injecting steps (`step(true)` calls) — the ordinal clock the
    /// NIC nap bookkeeping below is keyed by. Non-injecting steps flip no
    /// PRBS coins and therefore do not advance it.
    inject_steps: u64,
    /// Bit `n` set ⇔ NIC `n` is awake (must flip its injection coin when an
    /// injecting step runs). Quiescent NICs clear their bit and record when
    /// to wake below.
    nic_awake: Vec<u64>,
    /// Per-NIC inject ordinal at which a sleeping NIC must be woken
    /// (`u64::MAX` = never, i.e. a zero-rate generator).
    nic_wake_at: Vec<u64>,
    /// Per-NIC inject ordinal of the tick after which the NIC went to sleep.
    nic_slept_at: Vec<u64>,
    /// Minimum of `nic_wake_at` over sleeping NICs (`u64::MAX` when all are
    /// awake) — the inject ordinal of the next required wake scan.
    next_nic_wake: u64,
    /// Chicken bit for the quiescent-NIC nap (on by default; `false` restores
    /// the serial one-coin-per-NIC-per-cycle loop).
    nic_idle_skip: bool,
    scoreboard: HashMap<PacketId, TrackedPacket>,
    latency: LatencyStats,
    throughput: ThroughputStats,
    measuring: bool,
}

impl Network {
    /// Builds a network from `config` with all NICs injecting at `rate`
    /// flits/cycle.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::Config`] when the configuration is invalid.
    pub fn new(config: NocConfig, rate: f64) -> Result<Self, NocError> {
        config.validate()?;
        let mesh = Mesh::new(config.k).map_err(NocError::from)?;
        let routers = mesh
            .nodes()
            .map(|coord| Router::new(&config.router, mesh, coord))
            .collect();
        let nics = (0..mesh.node_count() as NodeId)
            .map(|node| Nic::new(&config, mesh, node, rate))
            .collect();
        // The wheel must cover the furthest any message is ever scheduled:
        // NIC<->router traversals (1 cycle), link traversals and credit
        // returns.
        let horizon = config
            .link_delay_cycles()
            .max(config.credit_delay_cycles)
            .max(1);
        let words = mesh.node_count().div_ceil(64);
        Ok(Self {
            config,
            mesh,
            routers,
            nics,
            clock: Clock::new(),
            word_lane: EventWheel::new(horizon),
            flit_lane: EventWheel::new(horizon),
            slab: FlitSlab::new(),
            router_scratch: RouterOutput::default(),
            router_wake: vec![0; words],
            nic_active: vec![0; words],
            idle_router_cycles: 0,
            inject_steps: 0,
            nic_awake: Self::full_awake_mask(words, mesh.node_count()),
            nic_wake_at: vec![0; mesh.node_count()],
            nic_slept_at: vec![0; mesh.node_count()],
            next_nic_wake: u64::MAX,
            nic_idle_skip: true,
            scoreboard: HashMap::new(),
            latency: LatencyStats::new(),
            throughput: ThroughputStats::new(),
            measuring: false,
        })
    }

    /// The configuration this network was built from.
    #[must_use]
    pub fn config(&self) -> &NocConfig {
        &self.config
    }

    /// Restores the network to the state of a freshly built one whose
    /// configuration carries the given PRBS base seed, while keeping every
    /// warmed-up buffer capacity: the event wheel's slot rings, the NIC
    /// injection rings and segmentation scratch, the routers' VC buffers and
    /// fork caches, and the shared router-output scratch all survive with
    /// their high-water-mark storage intact. This is what lets a sweep
    /// runner batch many points through one network per worker thread
    /// without re-paying cold-start allocation per point.
    ///
    /// `seed` is folded (XOR of its 16-bit limbs, zero remapped to a fixed
    /// non-zero constant) into the 16-bit domain of the chip's PRBS LFSRs;
    /// seeds that already fit 16 bits are used as-is. Behaviour after a
    /// reset is bit-identical to `Network::new` with that base seed —
    /// `tests/determinism.rs` pins this.
    ///
    /// # Examples
    ///
    /// ```
    /// use mesh_noc::{Network, NocConfig};
    ///
    /// let mut network = Network::new(NocConfig::proposed_chip()?, 0.1)?;
    /// for _ in 0..50 {
    ///     network.step(true);
    /// }
    /// network.reset(0xBEEF);
    /// assert_eq!(network.now(), 0);
    /// assert_eq!(network.in_flight_flits(), 0);
    /// assert_eq!(network.injected_packets(), 0);
    /// assert_eq!(network.config().base_seed, 0xBEEF);
    /// # Ok::<(), noc_types::NocError>(())
    /// ```
    pub fn reset(&mut self, seed: u64) {
        let folded = (seed ^ (seed >> 16) ^ (seed >> 32) ^ (seed >> 48)) as u16;
        self.config.base_seed = if folded == 0 { 0x1D0C } else { folded };
        for router in &mut self.routers {
            router.reset();
        }
        let config = self.config;
        for nic in &mut self.nics {
            nic.reset(&config);
        }
        self.clock.reset();
        self.word_lane.reset();
        self.flit_lane.reset();
        self.slab.reset();
        self.router_scratch.clear();
        self.router_wake.fill(0);
        self.nic_active.fill(0);
        self.idle_router_cycles = 0;
        self.inject_steps = 0;
        self.nic_awake = Self::full_awake_mask(self.nic_awake.len(), self.nics.len());
        self.nic_wake_at.fill(0);
        self.nic_slept_at.fill(0);
        self.next_nic_wake = u64::MAX;
        self.scoreboard.clear();
        self.latency.reset();
        self.throughput.reset();
        self.measuring = false;
    }

    /// The mesh topology.
    #[must_use]
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Current cycle.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.clock.now()
    }

    /// Changes the injection rate of every NIC.
    ///
    /// Sleeping NICs are woken first (replaying their napped-over coin
    /// flips), because a nap's length was promised under the old rate's
    /// Bernoulli threshold.
    pub fn set_rate(&mut self, rate: f64) {
        self.wake_all_nics();
        for nic in &mut self.nics {
            nic.set_rate(rate);
        }
    }

    /// Enables or disables the quiescent-NIC nap (on by default). Disabling
    /// restores the serial one-coin-per-NIC-per-cycle inject loop; the
    /// traffic streams are bit-identical either way — this knob exists to
    /// prove exactly that (`tests/determinism.rs`) and as an escape hatch.
    pub fn set_nic_idle_skip(&mut self, enabled: bool) {
        self.wake_all_nics();
        self.nic_idle_skip = enabled;
    }

    /// Starts or stops counting receptions and latencies.
    pub fn set_measuring(&mut self, measuring: bool) {
        self.measuring = measuring;
    }

    /// Latency statistics of packets injected while measuring.
    #[must_use]
    pub fn latency(&self) -> &LatencyStats {
        &self.latency
    }

    /// Throughput statistics of receptions while measuring.
    #[must_use]
    pub fn throughput(&self) -> &ThroughputStats {
        &self.throughput
    }

    /// Mutable access to the throughput accumulator (the simulation driver
    /// sets the measurement window length).
    pub fn throughput_mut(&mut self) -> &mut ThroughputStats {
        &mut self.throughput
    }

    /// Merged activity counters of all routers and NICs.
    ///
    /// Routers skipped by the active-set scheduler never stepped, so their
    /// individual `cycles` counters undercount wall-clock cycles; the
    /// network's idle-cycle ledger makes up the difference here, keeping the
    /// merged counters identical to stepping every router every cycle.
    #[must_use]
    pub fn counters(&self) -> ActivityCounters {
        let mut total = ActivityCounters::new();
        for router in &self.routers {
            total.merge(router.counters());
        }
        for nic in &self.nics {
            total.merge(nic.counters());
        }
        total.cycles += self.idle_router_cycles;
        total
    }

    /// Total flits currently buffered in routers plus queued in NICs
    /// (used to detect drain completion and saturation).
    #[must_use]
    pub fn in_flight_flits(&self) -> usize {
        let buffered: usize = self.routers.iter().map(Router::buffered_flits).sum();
        let queued: usize = self.nics.iter().map(Nic::queued_flits).sum();
        // Between steps every live slab handle is exactly one scheduled
        // flit-lane event, so the slab doubles as the on-links scoreboard.
        debug_assert_eq!(self.slab.live(), self.flit_lane.pending());
        buffered + queued + self.slab.live()
    }

    /// Number of tracked packets that have not yet reached every destination.
    #[must_use]
    pub fn outstanding_tracked_packets(&self) -> usize {
        self.scoreboard
            .values()
            .filter(|t| t.track_latency && t.remaining_receptions > 0)
            .count()
    }

    /// Total packets injected by all NICs so far.
    #[must_use]
    pub fn injected_packets(&self) -> u64 {
        self.nics.iter().map(Nic::injected_packets).sum()
    }

    /// Prints the location of every buffered or queued flit to stderr
    /// (diagnostic aid used by tests and examples when a network fails to
    /// drain).
    pub fn debug_dump(&self) {
        for (node, nic) in self.nics.iter().enumerate() {
            if nic.queued_flits() > 0 {
                eprintln!("nic {node}: {} queued flits", nic.queued_flits());
            }
        }
        for (node, router) in self.routers.iter().enumerate() {
            if router.buffered_flits() == 0 {
                continue;
            }
            for port in Port::ALL {
                let input = router.input(port);
                for vc_idx in 0..input.vc_count() {
                    let vc = input.vc_at(vc_idx);
                    if vc.occupancy() > 0 {
                        let head = vc.head().expect("non-empty VC has a head");
                        eprintln!(
                            "router {node} port {port} vc#{vc_idx} ({:?} vc {:?}): {} flits, head packet {} kind {:?} dests {:?} route {:?}",
                            vc.class(),
                            vc.id(),
                            vc.occupancy(),
                            head.packet_id(),
                            head.kind(),
                            head.destinations(),
                            vc.route(),
                        );
                    }
                }
            }
        }
        for (node, router) in self.routers.iter().enumerate() {
            if router.buffered_flits() == 0 {
                continue;
            }
            for port in Port::ALL {
                if port.is_local() {
                    continue;
                }
                let output = router.output(port);
                for class in noc_types::MessageClass::ALL {
                    for vc in 0..2u8 {
                        if let Some(state) = output.downstream_vc(class, vc) {
                            if state.allocated || state.credits < state.depth() {
                                eprintln!(
                                    "router {node} output {port} {class:?} vc {vc}: allocated={} credits={} tail_sent={}",
                                    state.allocated, state.credits, state.tail_sent
                                );
                            }
                        }
                    }
                }
            }
        }
        for (id, tracked) in &self.scoreboard {
            if tracked.remaining_receptions > 0 {
                eprintln!(
                    "scoreboard: packet {id} still needs {} receptions (created {})",
                    tracked.remaining_receptions, tracked.created_at
                );
            }
        }
    }

    /// Advances the network by one cycle.
    ///
    /// `inject` enables the NIC traffic generators for this cycle (warmup and
    /// measurement phases inject; the drain phase does not).
    pub fn step(&mut self, inject: bool) {
        let now = self.clock.now();

        // Phase A: deliver everything scheduled for this cycle — the word
        // lane (credits and lookaheads) first, then the flit lane. Each due
        // slot is detached from its wheel so deliveries can schedule
        // follow-up events, then its (drained) buffer is recycled. Every
        // delivery to a router marks it in the wake mask phase B2 walks.
        // The two event classes touch disjoint component state and each lane
        // preserves FIFO order, so lane-by-lane draining is bit-identical to
        // the old single mixed queue.
        let mut due_words = self.word_lane.take_due(now);
        while let Some(event) = due_words.pop_front() {
            self.deliver_word(event);
        }
        self.word_lane.restore(due_words);
        let mut due_flits = self.flit_lane.take_due(now);
        while let Some(event) = due_flits.pop_front() {
            self.deliver_flit(event, now);
        }
        self.flit_lane.restore(due_flits);

        // Phase B1: NICs create and inject traffic. While injecting, the
        // serial contract is one Bernoulli PRBS coin per NIC per cycle;
        // quiescent NICs (empty queue, scouted-idle generator) nap through
        // provably losing flips and replay them in one batched leap at wake,
        // so only awake NICs are ticked — bit-exact with ticking all of
        // them (see `maybe_sleep_nic`). In the drain phase the generators
        // are quiescent and only NICs that still hold queued flits can do
        // anything.
        if inject {
            let ordinal = self.inject_steps;
            if self.nic_idle_skip {
                if self.next_nic_wake <= ordinal {
                    self.wake_due_nics(ordinal);
                }
                for w in 0..self.nic_awake.len() {
                    let mut bits = self.nic_awake[w];
                    while bits != 0 {
                        let node = w * 64 + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        self.tick_nic(node, now, true);
                        self.maybe_sleep_nic(node, ordinal);
                    }
                }
            } else {
                for node in 0..self.nics.len() {
                    self.tick_nic(node, now, true);
                }
            }
            self.inject_steps += 1;
        } else {
            for w in 0..self.nic_active.len() {
                let mut bits = self.nic_active[w];
                while bits != 0 {
                    let node = w * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    self.tick_nic(node, now, false);
                }
            }
        }

        // Phase B2: step only the woken routers (ascending node order, the
        // same relative order a full scan used — skipped routers would have
        // produced nothing). Each word is detached first so the carryover
        // bits routers set for the next cycle do not feed back into this
        // one's scan.
        let link_delay = self.config.link_delay_cycles();
        let credit_delay = self.config.credit_delay_cycles;
        let mut output = std::mem::take(&mut self.router_scratch);
        let mut stepped = 0usize;
        for w in 0..self.router_wake.len() {
            let mut bits = std::mem::take(&mut self.router_wake[w]);
            stepped += bits.count_ones() as usize;
            while bits != 0 {
                let offset = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let node = w * 64 + offset;
                self.step_router(node, now, link_delay, credit_delay, &mut output);
                if self.routers[node].buffered_flits() > 0 {
                    self.router_wake[w] |= 1 << offset;
                }
            }
        }
        self.idle_router_cycles += (self.routers.len() - stepped) as u64;
        self.router_scratch = output;

        self.clock.tick();
    }

    /// Ticks NIC `node` (phase B1), schedules whatever it produced, and
    /// refreshes its bit in the queued-flits mask.
    fn tick_nic(&mut self, node: usize, now: Cycle, inject: bool) {
        let (injection, registration) = self.nics[node].tick(now, inject);
        if let Some(registration) = registration {
            self.register_packet(registration);
        }
        if let Some(injection) = injection {
            let arrival = now + 1;
            let handle = self.slab.insert(injection.flit);
            self.flit_lane.schedule(
                arrival,
                FlitEvent {
                    node: node as NodeId,
                    port_code: Port::Local.index() as u8,
                    handle,
                },
            );
            if let Some(lookahead) = injection.lookahead {
                self.word_lane.schedule(
                    arrival,
                    WordEvent::Lookahead {
                        node: node as NodeId,
                        port: Port::Local,
                        lookahead,
                    },
                );
            }
        }
        let bit = 1u64 << (node % 64);
        if self.nics[node].queued_flits() > 0 {
            self.nic_active[node / 64] |= bit;
        } else {
            self.nic_active[node / 64] &= !bit;
        }
    }

    /// Runs router `node`'s allocation/traversal cycle (phase B2) and
    /// schedules its departures and credits, reusing `output` as scratch.
    fn step_router(
        &mut self,
        node: usize,
        now: Cycle,
        link_delay: u64,
        credit_delay: u64,
        output: &mut RouterOutput,
    ) {
        self.routers[node].step_into(now, &mut self.slab, output);
        let coord = self.mesh.coord_of(node as NodeId);
        for Departure {
            port,
            flit,
            lookahead,
        } in output.departures.drain(..)
        {
            if port.is_local() {
                self.flit_lane.schedule(
                    now + 1,
                    FlitEvent {
                        node: node as NodeId,
                        port_code: NIC_PORT_CODE,
                        handle: flit,
                    },
                );
            } else {
                let dir = port.direction().expect("non-local port has a direction");
                let neighbor = self
                    .mesh
                    .neighbor(coord, dir)
                    .expect("routers never send off the mesh edge");
                let dest_node = self.mesh.id_of(neighbor);
                let dest_port = dir.opposite().port();
                let arrival = now + link_delay;
                self.flit_lane.schedule(
                    arrival,
                    FlitEvent {
                        node: dest_node,
                        port_code: dest_port.index() as u8,
                        handle: flit,
                    },
                );
                if let Some(lookahead) = lookahead {
                    self.word_lane.schedule(
                        arrival,
                        WordEvent::Lookahead {
                            node: dest_node,
                            port: dest_port,
                            lookahead,
                        },
                    );
                }
            }
        }
        for (in_port, credit) in output.credits.drain(..) {
            let arrival = now + credit_delay;
            if in_port.is_local() {
                self.word_lane.schedule(
                    arrival,
                    WordEvent::CreditToNic {
                        node: node as NodeId,
                        credit,
                    },
                );
            } else {
                let dir = in_port.direction().expect("non-local port has a direction");
                let upstream = self
                    .mesh
                    .neighbor(coord, dir)
                    .expect("credits only go to existing neighbours");
                self.word_lane.schedule(
                    arrival,
                    WordEvent::CreditToRouter {
                        node: self.mesh.id_of(upstream),
                        port: dir.opposite().port(),
                        credit,
                    },
                );
            }
        }
    }

    /// Marks router `node` as having work this cycle.
    #[inline]
    fn wake_router(&mut self, node: NodeId) {
        let node = usize::from(node);
        self.router_wake[node / 64] |= 1 << (node % 64);
    }

    /// Mask with one set bit per NIC of a `count`-node network, spread over
    /// `words` 64-bit words (the reset value of `nic_awake`).
    fn full_awake_mask(words: usize, count: usize) -> Vec<u64> {
        let mut mask = vec![u64::MAX; words];
        if !count.is_multiple_of(64) {
            if let Some(last) = mask.last_mut() {
                *last = (1u64 << (count % 64)) - 1;
            }
        }
        mask
    }

    /// Puts NIC `node` to sleep after its tick at inject ordinal `ordinal`
    /// if it provably cannot act for a while: its injection queue is empty
    /// (nothing to send regardless of coins) and the scouted PRBS stream
    /// promises `idle ≥ 1` losing coin flips ahead. The NIC then skips the
    /// inject phase until ordinal `ordinal + idle + 1` — the first flip that
    /// might win — and the skipped flips are replayed in one batched leap at
    /// wake, keeping the coin stream bit-identical to serial ticking.
    fn maybe_sleep_nic(&mut self, node: usize, ordinal: u64) {
        if self.nics[node].queued_flits() > 0 {
            return;
        }
        let idle = self.nics[node].idle_inject_cycles_hint(MAX_NIC_SCOUT);
        if idle == 0 {
            return;
        }
        let wake_at = if idle == u64::MAX {
            u64::MAX
        } else {
            ordinal + idle + 1
        };
        self.nic_awake[node / 64] &= !(1 << (node % 64));
        self.nic_wake_at[node] = wake_at;
        self.nic_slept_at[node] = ordinal;
        self.next_nic_wake = self.next_nic_wake.min(wake_at);
    }

    /// Wakes every sleeping NIC whose wake ordinal has arrived (replaying
    /// its napped-over coin flips) and recomputes `next_nic_wake` from the
    /// NICs still asleep.
    fn wake_due_nics(&mut self, ordinal: u64) {
        let mut next = u64::MAX;
        for node in 0..self.nics.len() {
            let bit = 1u64 << (node % 64);
            if self.nic_awake[node / 64] & bit != 0 {
                continue;
            }
            if self.nic_wake_at[node] <= ordinal {
                // The nap covered inject ordinals slept_at+1 ..= ordinal-1;
                // this ordinal's coin is consumed by the NIC's own tick.
                let missed = ordinal.saturating_sub(self.nic_slept_at[node] + 1);
                if missed > 0 {
                    self.nics[node].skip_inject_cycles(missed);
                }
                self.nic_awake[node / 64] |= bit;
            } else {
                next = next.min(self.nic_wake_at[node]);
            }
        }
        self.next_nic_wake = next;
    }

    /// Wakes every sleeping NIC immediately, replaying the coin flips of all
    /// completed inject ordinals it napped through. Called before anything
    /// that invalidates a promised nap (rate changes, toggling the nap
    /// feature itself).
    fn wake_all_nics(&mut self) {
        for node in 0..self.nics.len() {
            let bit = 1u64 << (node % 64);
            if self.nic_awake[node / 64] & bit != 0 {
                continue;
            }
            let missed = self
                .inject_steps
                .saturating_sub(self.nic_slept_at[node] + 1);
            if missed > 0 {
                self.nics[node].skip_inject_cycles(missed);
            }
            self.nic_awake[node / 64] |= bit;
        }
        self.next_nic_wake = u64::MAX;
    }

    fn register_packet(&mut self, registration: PacketRegistration) {
        // Packets created outside a measurement window were never recorded
        // anywhere (`track_latency` would be false and receptions of
        // unknown ids are ignored), so they skip the scoreboard entirely —
        // at overdriven rates the map would otherwise grow without bound
        // and put a cache-missing hash lookup on every reception.
        if !self.measuring {
            return;
        }
        self.throughput
            .record_injection(u64::from(registration.flits_per_reception));
        self.scoreboard.insert(
            registration.id,
            TrackedPacket {
                created_at: registration.created_at,
                remaining_receptions: registration.expected_receptions,
                track_latency: true,
            },
        );
    }

    fn deliver_word(&mut self, event: WordEvent) {
        match event {
            WordEvent::Lookahead {
                node,
                port,
                lookahead,
            } => {
                self.wake_router(node);
                self.routers[usize::from(node)].accept_lookahead(port, lookahead);
            }
            WordEvent::CreditToRouter { node, port, credit } => {
                self.wake_router(node);
                self.routers[usize::from(node)].accept_credit(port, credit);
            }
            WordEvent::CreditToNic { node, credit } => {
                self.nics[usize::from(node)].accept_credit(credit);
            }
        }
    }

    fn deliver_flit(&mut self, event: FlitEvent, now: Cycle) {
        let node = usize::from(event.node);
        if event.port_code == NIC_PORT_CODE {
            // NIC reception reads only override-independent payload fields
            // (kind, packet id, packet length), so a fork replica's shared
            // payload is peeked in place and never materialised.
            let reception = self.nics[node].accept_flit(self.slab.peek_payload(event.handle), now);
            self.slab.release(event.handle);
            if let Some(reception) = reception {
                if self.measuring {
                    self.throughput.record_reception(u64::from(reception.flits));
                }
                if let Some(tracked) = self.scoreboard.get_mut(&reception.id) {
                    tracked.remaining_receptions = tracked.remaining_receptions.saturating_sub(1);
                    if tracked.remaining_receptions == 0 {
                        if tracked.track_latency {
                            self.latency.record(now - tracked.created_at);
                        }
                        self.scoreboard.remove(&reception.id);
                    }
                }
            }
        } else {
            self.wake_router(event.node);
            let port = Port::from_index(usize::from(event.port_code))
                .expect("flit events carry a valid router input port");
            let flit = self.slab.take(event.handle);
            self.routers[node].accept_flit(port, flit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NetworkVariant, NocConfig};

    fn run_cycles(network: &mut Network, cycles: u64, inject: bool) {
        for _ in 0..cycles {
            network.step(inject);
        }
    }

    #[test]
    fn an_idle_network_stays_idle() {
        let mut network = Network::new(NocConfig::proposed_chip().unwrap(), 0.0).unwrap();
        run_cycles(&mut network, 100, true);
        assert_eq!(network.in_flight_flits(), 0);
        assert_eq!(network.injected_packets(), 0);
        assert_eq!(network.latency().count(), 0);
    }

    #[test]
    fn low_load_traffic_is_delivered_and_drains() {
        let mut network = Network::new(NocConfig::proposed_chip().unwrap(), 0.05).unwrap();
        network.set_measuring(true);
        run_cycles(&mut network, 500, true);
        run_cycles(&mut network, 300, false);
        assert!(network.injected_packets() > 0);
        assert!(network.latency().count() > 0, "packets must complete");
        assert_eq!(network.in_flight_flits(), 0, "the network must drain");
        assert_eq!(network.outstanding_tracked_packets(), 0);
    }

    #[test]
    fn proposed_network_achieves_near_single_cycle_hops_at_low_load() {
        // With per-node seeds (no artifact) and a very low rate, the average
        // mixed-traffic latency should sit close to the theoretical limit
        // (hops + 2 NIC cycles + serialization).
        let config = NocConfig::proposed_chip()
            .unwrap()
            .with_seed_mode(noc_traffic::SeedMode::PerNode);
        let mut network = Network::new(config, 0.01).unwrap();
        network.set_measuring(true);
        run_cycles(&mut network, 3000, true);
        run_cycles(&mut network, 500, false);
        let avg = network.latency().mean();
        assert!(network.latency().count() > 20);
        // Mixed traffic limit is ~8 cycles; allow generous contention slack.
        assert!(avg < 12.0, "average latency too high: {avg}");
        assert!(avg >= 5.0, "average latency implausibly low: {avg}");
    }

    #[test]
    fn baseline_broadcasts_are_much_slower_than_proposed() {
        let run = |variant| {
            let config = NocConfig::variant(variant)
                .unwrap()
                .with_mix(noc_traffic::TrafficMix::broadcast_only())
                .with_seed_mode(noc_traffic::SeedMode::PerNode);
            let mut network = Network::new(config, 0.02).unwrap();
            network.set_measuring(true);
            run_cycles(&mut network, 2000, true);
            run_cycles(&mut network, 1000, false);
            network.latency().mean()
        };
        let baseline = run(NetworkVariant::FullSwingUnicast);
        let proposed = run(NetworkVariant::LowSwingBroadcastBypass);
        assert!(
            baseline > 1.5 * proposed,
            "baseline {baseline:.1} cycles should be well above proposed {proposed:.1}"
        );
    }

    #[test]
    fn bypassing_actually_happens_on_the_proposed_network() {
        let config = NocConfig::proposed_chip()
            .unwrap()
            .with_seed_mode(noc_traffic::SeedMode::PerNode);
        let mut network = Network::new(config, 0.02).unwrap();
        run_cycles(&mut network, 1000, true);
        let counters = network.counters();
        assert!(counters.bypasses > 0, "lookahead bypassing must occur");
        assert!(
            counters.bypass_fraction() > 0.5,
            "most hops should bypass at low load"
        );
        // The baseline never bypasses.
        let baseline = NocConfig::variant(NetworkVariant::FullSwingUnicast).unwrap();
        let mut baseline_net = Network::new(baseline, 0.02).unwrap();
        run_cycles(&mut baseline_net, 1000, true);
        assert_eq!(baseline_net.counters().bypasses, 0);
    }

    #[test]
    fn reset_reproduces_a_cold_network_exactly() {
        let config = NocConfig::proposed_chip()
            .unwrap()
            .with_seed_mode(noc_traffic::SeedMode::PerNode);
        let run = |network: &mut Network| {
            network.set_rate(0.1);
            network.set_measuring(true);
            run_cycles(network, 400, true);
            run_cycles(network, 400, false);
            (
                network.injected_packets(),
                network.latency().mean(),
                network.throughput().received_flits(),
                network.counters(),
            )
        };
        // Cold reference with the target seed.
        let mut cold = Network::new(config.with_base_seed(0x1234), 0.1).unwrap();
        let reference = run(&mut cold);
        // Warm network: drive it mid-flight on a different seed, then reset.
        let mut warm = Network::new(config, 0.2).unwrap();
        run_cycles(&mut warm, 300, true);
        assert!(warm.in_flight_flits() > 0, "warm network should be loaded");
        warm.reset(0x1234);
        assert_eq!(warm.now(), 0);
        assert_eq!(warm.in_flight_flits(), 0);
        assert_eq!(run(&mut warm), reference, "warm reset diverged from cold");
    }

    #[test]
    fn reset_folds_wide_seeds_into_the_lfsr_domain() {
        let mut network = Network::new(NocConfig::proposed_chip().unwrap(), 0.0).unwrap();
        network.reset(0xABCD);
        assert_eq!(network.config().base_seed, 0xABCD);
        network.reset(0x0001_0000_0000_ABCD);
        assert_eq!(network.config().base_seed, 0xABCC, "limbs are XOR-folded");
        network.reset(0);
        assert_ne!(network.config().base_seed, 0, "zero must be remapped");
    }

    #[test]
    fn conservation_no_flit_is_lost_or_duplicated() {
        // Inject for a while, drain completely, and check that every tracked
        // packet reached all of its destinations.
        let config = NocConfig::proposed_chip().unwrap();
        let mut network = Network::new(config, 0.08).unwrap();
        network.set_measuring(true);
        run_cycles(&mut network, 1500, true);
        run_cycles(&mut network, 1500, false);
        assert_eq!(network.in_flight_flits(), 0, "network must fully drain");
        assert_eq!(
            network.outstanding_tracked_packets(),
            0,
            "every measured packet must complete all receptions"
        );
        assert!(network.throughput().received_flits() > 0);
    }
}
