//! Closed-loop request/reply serving on top of the mesh.
//!
//! The paper characterises its chip with *open-loop* synthetic injection:
//! every NIC flips an independent Bernoulli coin per cycle, so offered load
//! is fixed regardless of how the network responds. A serving system behaves
//! differently — each **client** keeps a bounded number of requests
//! outstanding and only issues a new one when a reply comes back, so the
//! network's own latency throttles the offered load. This module models that
//! shape (the master–slave request/reply pattern of MultiNoC-style NoC
//! workload studies):
//!
//! * [`ClosedLoop`] — clients round-robin-mapped onto mesh nodes issue
//!   unicast 1-flit [`PacketKind::Request`]s to uniformly drawn home nodes;
//!   every node doubles as a **home node** that answers each request with a
//!   5-flit [`PacketKind::Response`] after a configurable service latency.
//!   Requests ride the request VC class and replies the response class, so
//!   the protocol inherits the chip's message-class deadlock avoidance.
//! * [`ServingRunner`] — sweeps the client population across worker threads
//!   (like [`crate::SweepRunner`] does injection rates) and reports, per
//!   population point, the delivered throughput and the end-to-end
//!   request→reply round-trip latency distribution (mean / p50 / p95 / p99).
//!
//! ## Determinism
//!
//! Everything is deterministic by construction: client destination draws are
//! SplitMix64 streams seeded from `(base_seed, client index)`, replies are
//! released in reception merge order (which the network pins to be identical
//! for every step-thread count), and population points get index-derived
//! seeds and are stitched in index order — so a serving sweep is
//! bit-identical for any `jobs` × `step_threads` combination.
//!
//! ## Latency accounting
//!
//! RTT is measured from the cycle a request is *created* at the client to
//! the cycle the reply's tail flit is *accepted* back at the client's NIC —
//! the closed-loop analogue of the paper's "complete action" convention. A
//! request is measured iff it was issued during the measurement window;
//! after the window closes the loop keeps running (clients keep issuing
//! unmeasured requests, so measured stragglers complete under load) until
//! every measured request has its reply or the drain bound hits.

use std::collections::BTreeMap;
use std::time::Instant;

use noc_sim::LatencyStats;
use noc_types::{
    ConfigError, Cycle, DestinationSet, NocError, NodeId, Packet, PacketId, PacketKind,
};

use crate::config::NocConfig;
use crate::network::Network;
use crate::nic::Reception;
use crate::sweep::SweepRunner;

/// Tag bit marking closed-loop request packet ids (bit 59 — flit ids are
/// `packet_id * 16 + seq`, so packet ids must stay below 2^60).
/// NIC-generated ids are `(node << 40) | seq` with node ≤ 255, so tagged
/// ids can never collide with them.
const REQUEST_BIT: PacketId = 1 << 59;
/// Tag bit marking closed-loop reply packet ids (bit 58).
const REPLY_BIT: PacketId = 1 << 58;
/// Low bits shared by a request id and its reply id.
const PAIR_MASK: PacketId = REPLY_BIT - 1;

/// RTT histogram width: one-cycle bins to 4094 cycles plus overflow — a
/// round trip stacks two network traversals on the service latency, so the
/// default 256-cycle histogram would clip saturated populations.
const RTT_BINS: usize = 4096;

/// Knobs of the closed-loop protocol (population and windows live on
/// [`ClosedLoop::new`] / [`ServingRunner`] instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServingOpts {
    /// Maximum outstanding requests per client (the closed-loop window).
    pub window: u32,
    /// Cycles a home node takes to service a request before injecting the
    /// reply.
    pub service_cycles: Cycle,
}

impl Default for ServingOpts {
    fn default() -> Self {
        Self {
            window: 4,
            service_cycles: 16,
        }
    }
}

/// One closed-loop client.
#[derive(Debug, Clone)]
struct Client {
    node: NodeId,
    outstanding: u32,
    /// SplitMix64 state driving this client's destination draws.
    rng: u64,
    next_seq: u64,
}

/// A request that has been issued and not yet answered.
#[derive(Debug, Clone, Copy)]
struct InFlightRequest {
    client: u32,
    issued_at: Cycle,
    measured: bool,
}

/// A serviced request waiting for its reply to be injected.
#[derive(Debug, Clone, Copy)]
struct PendingReply {
    home: NodeId,
    client_node: NodeId,
    reply_id: PacketId,
}

/// Everything measured during one closed-loop run at a fixed client
/// population.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingResult {
    /// Number of closed-loop clients.
    pub clients: usize,
    /// Outstanding-request window per client.
    pub window: u32,
    /// Home-node service latency in cycles.
    pub service_cycles: Cycle,
    /// Requests issued over the whole run.
    pub requests_issued: u64,
    /// Replies completed over the whole run.
    pub replies_completed: u64,
    /// Requests whose round trip was measured.
    pub measured_requests: u64,
    /// Cycles in the measurement window.
    pub measured_cycles: u64,
    /// Mean request→reply round trip in cycles.
    pub rtt_mean_cycles: f64,
    /// Median round trip in cycles.
    pub rtt_p50_cycles: f64,
    /// 95th-percentile round trip in cycles.
    pub rtt_p95_cycles: f64,
    /// 99th-percentile round trip in cycles.
    pub rtt_p99_cycles: f64,
    /// Replies completed per cycle during the measurement window (the
    /// delivered closed-loop throughput).
    pub completed_per_cycle: f64,
    /// Network-wide received flits per cycle during the window.
    pub received_flits_per_cycle: f64,
    /// Received throughput in Gb/s at the configured flit width and clock.
    pub received_gbps: f64,
    /// Fraction of router-to-router hops that used the bypass path.
    pub bypass_fraction: f64,
    /// Total cycles simulated (warmup + measurement + drain).
    pub total_cycles: u64,
}

/// A closed-loop request/reply simulation at one client population.
///
/// Drive it with [`run`](Self::run) for the standard warmup / measure /
/// drain methodology, or manually with [`advance`](Self::advance) +
/// [`drain_remaining`](Self::drain_remaining) (the conservation property
/// tests do the latter).
#[derive(Debug)]
pub struct ClosedLoop {
    network: Network,
    opts: ServingOpts,
    clients: Vec<Client>,
    /// Serviced requests keyed by the cycle their reply becomes ready.
    /// Within one ready cycle, insertion (= reception merge) order.
    service_queue: BTreeMap<Cycle, Vec<PendingReply>>,
    /// Outstanding requests by packet id. A `BTreeMap` keeps every scan
    /// deterministic (noc-lint rule D01) — lookups are keyed, but the drain
    /// bookkeeping must not depend on a hasher's iteration order.
    in_flight: BTreeMap<PacketId, InFlightRequest>,
    rtt: LatencyStats,
    /// Copy buffer for the network's delivery log (reused every cycle).
    delivery_scratch: Vec<Reception>,
    issuing: bool,
    /// `true` while requests issued now should have their RTT measured.
    window_active: bool,
    measured_in_flight: u64,
    requests_issued: u64,
    replies_completed: u64,
    completed_in_window: u64,
    peak_outstanding: u32,
}

impl ClosedLoop {
    /// Builds a closed loop of `clients` clients over a fresh network of
    /// `config`. Client `i` lives on node `i % k²` and draws destinations
    /// from a SplitMix64 stream seeded by `(config.base_seed, i)`.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::Config`] when the configuration is invalid, the
    /// mesh has fewer than two nodes (a client cannot address itself) or
    /// `clients` or the window is zero.
    pub fn new(config: NocConfig, clients: usize, opts: ServingOpts) -> Result<Self, NocError> {
        let mut network = Network::new(config, 0.0)?;
        let nodes = usize::from(config.k) * usize::from(config.k);
        if nodes < 2 {
            return Err(ConfigError::InvalidPattern {
                reason: "closed-loop serving needs a mesh of at least two nodes".to_owned(),
            }
            .into());
        }
        if clients == 0 || opts.window == 0 {
            return Err(ConfigError::InvalidPattern {
                reason: format!(
                    "closed-loop serving needs at least one client and a non-zero \
                     window, got {clients} clients with window {}",
                    opts.window
                ),
            }
            .into());
        }
        network.set_delivery_logging(true);
        let clients = (0..clients)
            .map(|i| Client {
                node: NodeId::try_from(i % nodes).expect("mesh nodes fit NodeId"),
                outstanding: 0,
                rng: splitmix_seed(config.base_seed, i),
                next_seq: 0,
            })
            .collect();
        Ok(Self {
            network,
            opts,
            clients,
            service_queue: BTreeMap::new(),
            in_flight: BTreeMap::new(),
            rtt: LatencyStats::with_bins(RTT_BINS),
            delivery_scratch: Vec::new(),
            issuing: true,
            window_active: false,
            measured_in_flight: 0,
            requests_issued: 0,
            replies_completed: 0,
            completed_in_window: 0,
            peak_outstanding: 0,
        })
    }

    /// Reconfigures how many threads step the underlying mesh (see
    /// [`Network::set_step_threads`]); results are bit-identical for any
    /// count. Call before driving the loop.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::Config`] when `threads` is zero.
    pub fn with_step_threads(mut self, threads: usize) -> Result<Self, NocError> {
        self.network.set_step_threads(threads)?;
        // Repartitioning rebuilds the network cold, which drops config knobs
        // that are not part of `NocConfig`.
        self.network.set_delivery_logging(true);
        Ok(self)
    }

    /// Total requests issued so far.
    #[must_use]
    pub fn requests_issued(&self) -> u64 {
        self.requests_issued
    }

    /// Total replies completed (received back at their client) so far.
    #[must_use]
    pub fn replies_completed(&self) -> u64 {
        self.replies_completed
    }

    /// Requests currently awaiting service or a reply in flight.
    #[must_use]
    pub fn outstanding_requests(&self) -> usize {
        self.in_flight.len()
    }

    /// Highest per-client outstanding count ever observed (the
    /// window-bound property tests pin this at ≤ the configured window).
    #[must_use]
    pub fn peak_outstanding(&self) -> u32 {
        self.peak_outstanding
    }

    /// The configured protocol knobs.
    #[must_use]
    pub fn opts(&self) -> ServingOpts {
        self.opts
    }

    /// Runs `cycles` closed-loop cycles with clients issuing.
    pub fn advance(&mut self, cycles: u64) {
        self.issuing = true;
        for _ in 0..cycles {
            self.cycle();
        }
    }

    /// Stops issuing and keeps the loop running until every outstanding
    /// request has completed or `limit` cycles elapse. Returns `true` when
    /// fully drained (at which point every issued request has exactly one
    /// completed reply).
    pub fn drain_remaining(&mut self, limit: u64) -> bool {
        self.issuing = false;
        let mut drained = 0;
        while (!self.in_flight.is_empty() || !self.service_queue.is_empty()) && drained < limit {
            self.cycle();
            drained += 1;
        }
        self.in_flight.is_empty() && self.service_queue.is_empty()
    }

    /// Runs the standard closed-loop methodology: warmup (RTTs not
    /// recorded), measurement (requests issued in this window are RTT-
    /// measured and completions counted), then a bounded drain during which
    /// clients keep issuing unmeasured requests so measured stragglers
    /// complete under load.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::Config`] when `measure_cycles` is zero (the
    /// throughput would divide by zero).
    pub fn run(
        &mut self,
        warmup_cycles: u64,
        measure_cycles: u64,
    ) -> Result<ServingResult, NocError> {
        if measure_cycles == 0 {
            return Err(ConfigError::InvalidSweepWindow { measure_cycles }.into());
        }
        self.issuing = true;
        self.window_active = false;
        for _ in 0..warmup_cycles {
            self.cycle();
        }

        self.window_active = true;
        self.network.set_measuring(true);
        for _ in 0..measure_cycles {
            self.cycle();
        }
        self.window_active = false;
        self.network.set_measuring(false);
        self.network
            .throughput_mut()
            .set_measured_cycles(measure_cycles);

        let drain_limit = 4 * measure_cycles + 2000;
        let mut drained = 0;
        while self.measured_in_flight > 0 && drained < drain_limit {
            self.cycle();
            drained += 1;
        }

        let throughput = self.network.throughput();
        let counters = self.network.counters();
        Ok(ServingResult {
            clients: self.clients.len(),
            window: self.opts.window,
            service_cycles: self.opts.service_cycles,
            requests_issued: self.requests_issued,
            replies_completed: self.replies_completed,
            measured_requests: self.rtt.count(),
            measured_cycles: measure_cycles,
            rtt_mean_cycles: self.rtt.mean(),
            rtt_p50_cycles: self.rtt.percentile(0.50).unwrap_or(0) as f64,
            rtt_p95_cycles: self.rtt.percentile(0.95).unwrap_or(0) as f64,
            rtt_p99_cycles: self.rtt.percentile(0.99).unwrap_or(0) as f64,
            completed_per_cycle: self.completed_in_window as f64 / measure_cycles as f64,
            received_flits_per_cycle: throughput.received_flits_per_cycle(),
            received_gbps: throughput.received_gbps(
                self.network.config().flit_bits,
                self.network.config().frequency_ghz,
            ),
            bypass_fraction: counters.bypass_fraction(),
            total_cycles: warmup_cycles + measure_cycles + drained,
        })
    }

    /// One closed-loop cycle: consume last cycle's deliveries (requests
    /// reaching home nodes, replies reaching clients), release due replies
    /// from the service queues, let clients refill their windows, then step
    /// the network one cycle.
    fn cycle(&mut self) {
        let now = self.network.now();

        // 1. Deliveries from the previous step, in deterministic merge order.
        let mut deliveries = std::mem::take(&mut self.delivery_scratch);
        deliveries.clear();
        deliveries.extend_from_slice(self.network.deliveries());
        self.network.clear_deliveries();
        for reception in &deliveries {
            self.handle_delivery(*reception);
        }
        self.delivery_scratch = deliveries;

        // 2. Replies whose service latency has elapsed are injected at their
        //    home nodes, oldest ready-cycle first, merge order within one.
        while let Some(entry) = self.service_queue.first_entry() {
            if *entry.key() > now {
                break;
            }
            let batch = entry.remove();
            for pending in batch {
                self.network.inject_packet(Packet::new(
                    pending.reply_id,
                    pending.home,
                    DestinationSet::unicast(pending.client_node),
                    PacketKind::Response,
                    now,
                ));
            }
        }

        // 3. Clients refill their windows in client-index order.
        if self.issuing {
            for ci in 0..self.clients.len() {
                while self.clients[ci].outstanding < self.opts.window {
                    self.issue_request(ci, now);
                }
                self.peak_outstanding = self.peak_outstanding.max(self.clients[ci].outstanding);
            }
        }

        // 4. One network cycle. Closed-loop packets enter through
        //    `Network::inject_packet`, so the NIC Bernoulli sources stay
        //    silent (`inject = false`) and the PRBS state untouched.
        self.network.step(false);
    }

    fn handle_delivery(&mut self, reception: Reception) {
        if reception.id & REQUEST_BIT != 0 {
            // A request reached its home node: schedule the reply.
            let request = self.in_flight[&reception.id];
            let client_node = self.clients[request.client as usize].node;
            let ready = reception.at + self.opts.service_cycles;
            self.service_queue
                .entry(ready)
                .or_default()
                .push(PendingReply {
                    home: reception.node,
                    client_node,
                    reply_id: REPLY_BIT | (reception.id & PAIR_MASK),
                });
        } else if reception.id & REPLY_BIT != 0 {
            // A reply made it back to its client: the round trip is complete.
            let request_id = REQUEST_BIT | (reception.id & PAIR_MASK);
            let request = self
                .in_flight
                .remove(&request_id)
                .expect("reply matches an in-flight request");
            let client = &mut self.clients[request.client as usize];
            debug_assert_eq!(client.node, reception.node);
            client.outstanding -= 1;
            self.replies_completed += 1;
            if self.window_active {
                self.completed_in_window += 1;
            }
            if request.measured {
                self.rtt.record(reception.at - request.issued_at);
                self.measured_in_flight -= 1;
            }
        }
        // NIC-generated ids (no tag bit) cannot appear: the loop never
        // injects through the Bernoulli sources.
    }

    fn issue_request(&mut self, ci: usize, now: Cycle) {
        let nodes = u64::from(self.network.config().k) * u64::from(self.network.config().k);
        let client = &mut self.clients[ci];
        // Uniform draw over the other nodes.
        let draw = splitmix_next(&mut client.rng) % (nodes - 1);
        let dest = if draw >= u64::from(client.node) {
            draw + 1
        } else {
            draw
        };
        let id = REQUEST_BIT | ((ci as PacketId) << 32) | (client.next_seq & 0xFFFF_FFFF);
        client.next_seq += 1;
        client.outstanding += 1;
        let source = client.node;
        self.in_flight.insert(
            id,
            InFlightRequest {
                client: u32::try_from(ci).expect("client index fits u32"),
                issued_at: now,
                measured: self.window_active,
            },
        );
        if self.window_active {
            self.measured_in_flight += 1;
        }
        self.requests_issued += 1;
        self.network.inject_packet(Packet::new(
            id,
            source,
            DestinationSet::unicast(NodeId::try_from(dest).expect("mesh nodes fit NodeId")),
            PacketKind::Request,
            now,
        ));
    }
}

/// One fully measured population point of a serving sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingPointOutcome {
    /// Client population of this point.
    pub clients: usize,
    /// The point's full closed-loop result.
    pub result: ServingResult,
    /// Wall-clock milliseconds spent simulating this point.
    pub wall_ms: f64,
}

/// Everything a [`ServingRunner`] run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingOutcome {
    /// Per-population outcomes in input order.
    pub points: Vec<ServingPointOutcome>,
    /// Total wall-clock milliseconds for the whole sweep.
    pub total_wall_ms: f64,
}

/// Sweeps the client population of a closed-loop serving workload, sharding
/// points across worker threads with bit-identical results for any thread
/// count (the serving analogue of [`SweepRunner`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServingRunner {
    jobs: usize,
    step_threads: usize,
    warmup_cycles: u64,
    measure_cycles: u64,
    opts: ServingOpts,
}

impl ServingRunner {
    /// A runner distributing population points over `jobs` worker threads
    /// (`0` is treated as `1`) with default windows of 1000/5000 cycles and
    /// default [`ServingOpts`].
    #[must_use]
    pub fn new(jobs: usize) -> Self {
        Self {
            jobs: jobs.max(1),
            step_threads: 1,
            warmup_cycles: 1_000,
            measure_cycles: 5_000,
            opts: ServingOpts::default(),
        }
    }

    /// Replaces the warmup and measurement windows (cycles).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidSweepWindow`] when `measure_cycles == 0`.
    pub fn with_windows(
        mut self,
        warmup_cycles: u64,
        measure_cycles: u64,
    ) -> Result<Self, NocError> {
        if measure_cycles == 0 {
            return Err(ConfigError::InvalidSweepWindow { measure_cycles }.into());
        }
        self.warmup_cycles = warmup_cycles;
        self.measure_cycles = measure_cycles;
        Ok(self)
    }

    /// Replaces the closed-loop protocol knobs.
    #[must_use]
    pub fn with_opts(mut self, opts: ServingOpts) -> Self {
        self.opts = opts;
        self
    }

    /// Worker threads population points are sharded across.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Requested mesh-partition threads per worker.
    #[must_use]
    pub fn step_threads(&self) -> usize {
        self.step_threads
    }

    /// Requests `step_threads` partition worker threads inside each point's
    /// network, with the same jobs-win oversubscription cap as
    /// [`SweepRunner::with_step_threads`].
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidParallelism`] when `step_threads == 0`.
    pub fn with_step_threads(mut self, step_threads: usize) -> Result<Self, NocError> {
        if step_threads == 0 {
            return Err(ConfigError::InvalidParallelism {
                jobs: self.jobs,
                step_threads,
            }
            .into());
        }
        self.step_threads = step_threads;
        Ok(self)
    }

    /// Runs one population sweep over `populations`, sharding points across
    /// the runner's worker threads. Point `index` runs on a network seeded
    /// with [`SweepRunner::point_seed`]`(config, index)`, so results depend
    /// only on inputs — never on scheduling.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the underlying simulations.
    ///
    /// # Panics
    ///
    /// Panics if `populations` is empty or a worker thread panics.
    pub fn run(
        &self,
        config: NocConfig,
        populations: &[usize],
    ) -> Result<ServingOutcome, NocError> {
        assert!(
            !populations.is_empty(),
            "a serving sweep needs at least one point"
        );
        let sweep_start = Instant::now();
        let jobs = self.jobs.min(populations.len());
        let step_threads = SweepRunner::new(jobs)
            .with_step_threads(self.step_threads)?
            .effective_step_threads(jobs);
        let mut outcomes: Vec<Option<ServingPointOutcome>> = vec![None; populations.len()];

        if jobs <= 1 {
            for (index, slot) in outcomes.iter_mut().enumerate() {
                *slot = Some(self.run_point(&config, populations, index, step_threads)?);
            }
        } else {
            let results: Vec<Result<Vec<(usize, ServingPointOutcome)>, NocError>> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..jobs)
                        .map(|worker| {
                            scope.spawn(move || {
                                let mut mine = Vec::new();
                                for index in (worker..populations.len()).step_by(jobs) {
                                    mine.push((
                                        index,
                                        self.run_point(&config, populations, index, step_threads)?,
                                    ));
                                }
                                Ok(mine)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("serving worker thread panicked"))
                        .collect()
                });
            for worker_results in results {
                for (index, outcome) in worker_results? {
                    outcomes[index] = Some(outcome);
                }
            }
        }

        Ok(ServingOutcome {
            points: outcomes
                .into_iter()
                .map(|o| o.expect("every population point was simulated"))
                .collect(),
            total_wall_ms: sweep_start.elapsed().as_secs_f64() * 1_000.0,
        })
    }

    fn run_point(
        &self,
        config: &NocConfig,
        populations: &[usize],
        index: usize,
        step_threads: usize,
    ) -> Result<ServingPointOutcome, NocError> {
        let start = Instant::now();
        let seeded = config.with_base_seed(SweepRunner::point_seed(config, index));
        let mut loop_ = ClosedLoop::new(seeded, populations[index], self.opts)?
            .with_step_threads(step_threads)?;
        let result = loop_.run(self.warmup_cycles, self.measure_cycles)?;
        Ok(ServingPointOutcome {
            clients: populations[index],
            result,
            wall_ms: start.elapsed().as_secs_f64() * 1_000.0,
        })
    }
}

/// Seeds client `index`'s SplitMix64 stream from the configuration seed.
fn splitmix_seed(base_seed: u16, index: usize) -> u64 {
    let mut state =
        (u64::from(base_seed) << 32) ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    // Burn one output so adjacent clients decorrelate immediately.
    splitmix_next(&mut state);
    state
}

/// One SplitMix64 step (same finalizer the sweep point seeds use).
fn splitmix_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NocConfig;

    fn quick_config() -> NocConfig {
        NocConfig::proposed_chip().unwrap()
    }

    #[test]
    fn rejects_degenerate_setups() {
        let config = quick_config();
        assert!(ClosedLoop::new(config, 0, ServingOpts::default()).is_err());
        assert!(ClosedLoop::new(
            config,
            4,
            ServingOpts {
                window: 0,
                service_cycles: 8
            }
        )
        .is_err());
        let one_node = NocConfig { k: 1, ..config };
        assert!(ClosedLoop::new(one_node, 4, ServingOpts::default()).is_err());
        assert!(ServingRunner::new(1).with_windows(100, 0).is_err());
        assert!(ServingRunner::new(1).with_step_threads(0).is_err());
    }

    #[test]
    fn every_request_gets_exactly_one_reply() {
        let mut loop_ = ClosedLoop::new(quick_config(), 24, ServingOpts::default()).unwrap();
        loop_.advance(400);
        assert!(loop_.requests_issued() > 0);
        assert!(loop_.drain_remaining(10_000), "closed loop must drain");
        assert_eq!(loop_.replies_completed(), loop_.requests_issued());
        assert_eq!(loop_.outstanding_requests(), 0);
        assert!(loop_.peak_outstanding() <= loop_.opts().window);
    }

    #[test]
    fn run_reports_sane_statistics() {
        let mut loop_ = ClosedLoop::new(quick_config(), 16, ServingOpts::default()).unwrap();
        let result = loop_.run(200, 800).unwrap();
        assert!(result.measured_requests > 0);
        assert!(result.rtt_mean_cycles > result.service_cycles as f64);
        assert!(result.rtt_p50_cycles <= result.rtt_p95_cycles);
        assert!(result.rtt_p95_cycles <= result.rtt_p99_cycles);
        assert!(result.completed_per_cycle > 0.0);
        assert!(result.received_gbps > 0.0);
        assert_eq!(result.measured_cycles, 800);
    }

    #[test]
    fn serving_is_deterministic_across_jobs_and_step_threads() {
        let config = quick_config();
        let populations = [4, 16, 32];
        let strip = |outcome: ServingOutcome| -> Vec<ServingResult> {
            outcome.points.into_iter().map(|p| p.result).collect()
        };
        let base = strip(
            ServingRunner::new(1)
                .with_windows(100, 300)
                .unwrap()
                .run(config, &populations)
                .unwrap(),
        );
        let sharded = strip(
            ServingRunner::new(3)
                .with_windows(100, 300)
                .unwrap()
                .run(config, &populations)
                .unwrap(),
        );
        let partitioned = strip(
            ServingRunner::new(1)
                .with_windows(100, 300)
                .unwrap()
                .with_step_threads(2)
                .unwrap()
                .run(config, &populations)
                .unwrap(),
        );
        assert_eq!(base, sharded);
        assert_eq!(base, partitioned);
    }

    #[test]
    fn throughput_grows_then_saturates_with_population() {
        let config = quick_config();
        let populations = [2, 16, 96];
        let outcome = ServingRunner::new(2)
            .with_windows(200, 800)
            .unwrap()
            .run(config, &populations)
            .unwrap();
        let tput: Vec<f64> = outcome
            .points
            .iter()
            .map(|p| p.result.completed_per_cycle)
            .collect();
        assert!(
            tput[1] > tput[0],
            "throughput must grow with population: {tput:?}"
        );
        // At 96 clients the network is the bottleneck; RTT inflates instead
        // of throughput growing linearly.
        let rtts: Vec<f64> = outcome
            .points
            .iter()
            .map(|p| p.result.rtt_mean_cycles)
            .collect();
        assert!(
            rtts[2] > rtts[0],
            "saturated RTT must exceed low-load RTT: {rtts:?}"
        );
    }
}
