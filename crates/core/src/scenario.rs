//! Fluent scenario construction: a configuration plus an operating point.
//!
//! Examples and experiments used to hand-assemble [`NocConfig`]s and thread
//! injection rates alongside them; [`Scenario`] packages the two together and
//! [`ScenarioBuilder`] provides the fluent surface:
//!
//! ```
//! use mesh_noc::{NetworkVariant, Scenario};
//! use noc_traffic::{SeedMode, SpatialPattern, TrafficMix};
//!
//! let scenario = Scenario::builder()
//!     .variant(NetworkVariant::LowSwingBroadcastBypass)
//!     .mesh(8)
//!     .pattern(SpatialPattern::Transpose)
//!     .mix(TrafficMix::unicast_only())
//!     .seed_mode(SeedMode::PerNode)
//!     .rate(0.6)
//!     .seed(7)
//!     .build()?;
//! assert_eq!(scenario.config().k, 8);
//! assert_eq!(scenario.rate(), 0.6);
//! # Ok::<(), noc_types::NocError>(())
//! ```
//!
//! Building validates everything at once (mesh side, pattern/mesh
//! compatibility, router configuration, rate range), so a `Scenario` is
//! always runnable.

use noc_traffic::{SeedMode, SpatialPattern, TrafficMix};
use noc_types::{ConfigError, NocError};

use crate::config::{NetworkVariant, NocConfig};
use crate::result::SimulationResult;
use crate::simulation::Simulation;
use crate::sweep::{SweepOutcome, SweepRunner};

/// A fully validated experiment scenario: one network configuration plus the
/// injection rate to drive it at.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario {
    config: NocConfig,
    rate: f64,
}

impl Scenario {
    /// Starts building a scenario from the fabricated chip's defaults.
    #[must_use]
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::new()
    }

    /// The network configuration.
    #[must_use]
    pub fn config(&self) -> &NocConfig {
        &self.config
    }

    /// The offered injection rate (flits/node/cycle).
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Creates a fresh [`Simulation`] of this scenario's network.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::Config`] if the configuration became invalid after
    /// direct field edits (a freshly built scenario never fails).
    pub fn simulation(&self) -> Result<Simulation, NocError> {
        Simulation::new(self.config)
    }

    /// Runs warmup + measurement + drain at the scenario's rate.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the underlying simulation.
    pub fn run(
        &self,
        warmup_cycles: u64,
        measure_cycles: u64,
    ) -> Result<SimulationResult, NocError> {
        self.simulation()?
            .run(self.rate, warmup_cycles, measure_cycles)
    }

    /// Sweeps this scenario's network over `rates` through `runner` (the
    /// scenario's own rate is ignored; it marks the nominal operating point).
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the underlying simulations.
    pub fn sweep(&self, runner: &SweepRunner, rates: &[f64]) -> Result<SweepOutcome, NocError> {
        runner.run(self.config, rates)
    }
}

/// Fluent builder for [`Scenario`]s.
///
/// Every knob defaults to the fabricated chip (`ProposedChip` on a 4×4 mesh,
/// mixed traffic, legacy-uniform destinations, identical PRBS seeds, rate
/// 0.02); call only the setters you need and finish with
/// [`build`](ScenarioBuilder::build).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioBuilder {
    variant: NetworkVariant,
    k: u16,
    pattern: SpatialPattern,
    mix: TrafficMix,
    seed_mode: SeedMode,
    base_seed: u16,
    rate: f64,
}

impl ScenarioBuilder {
    /// A builder seeded with the fabricated chip's defaults.
    #[must_use]
    pub fn new() -> Self {
        Self {
            variant: NetworkVariant::ProposedChip,
            k: 4,
            pattern: SpatialPattern::uniform_legacy(),
            mix: TrafficMix::mixed(),
            seed_mode: SeedMode::Identical,
            base_seed: noc_traffic::TrafficGenerator::DEFAULT_BASE_SEED,
            rate: 0.02,
        }
    }

    /// Selects the network variant (router microarchitecture + datapath).
    #[must_use]
    pub fn variant(mut self, variant: NetworkVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Selects the mesh side length (`k` for a k×k mesh).
    #[must_use]
    pub fn mesh(mut self, k: u16) -> Self {
        self.k = k;
        self
    }

    /// Selects the spatial traffic pattern.
    #[must_use]
    pub fn pattern(mut self, pattern: SpatialPattern) -> Self {
        self.pattern = pattern;
        self
    }

    /// Selects the traffic mix.
    #[must_use]
    pub fn mix(mut self, mix: TrafficMix) -> Self {
        self.mix = mix;
        self
    }

    /// Selects the PRBS seeding discipline.
    #[must_use]
    pub fn seed_mode(mut self, seed_mode: SeedMode) -> Self {
        self.seed_mode = seed_mode;
        self
    }

    /// Selects the base PRBS seed.
    #[must_use]
    pub fn seed(mut self, base_seed: u16) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// Selects the offered injection rate (flits/node/cycle).
    #[must_use]
    pub fn rate(mut self, rate: f64) -> Self {
        self.rate = rate;
        self
    }

    /// Validates the assembled configuration and rate.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::Config`] when the mesh side, pattern, router
    /// configuration or rate is invalid.
    pub fn build(self) -> Result<Scenario, NocError> {
        let config = NocConfig::variant(self.variant)?
            .with_side(self.k)
            .with_pattern(self.pattern)
            .with_mix(self.mix)
            .with_seed_mode(self.seed_mode)
            .with_base_seed(self.base_seed);
        config.validate()?;
        if !(0.0..=1.0).contains(&self.rate) {
            return Err(ConfigError::InvalidInjectionRate { rate: self.rate }.into());
        }
        Ok(Scenario {
            config,
            rate: self.rate,
        })
    }
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_the_chip_preset() {
        let scenario = Scenario::builder().build().unwrap();
        assert_eq!(scenario.config(), &NocConfig::proposed_chip().unwrap());
        assert_eq!(scenario.rate(), 0.02);
    }

    #[test]
    fn builder_threads_every_knob_through() {
        let scenario = Scenario::builder()
            .variant(NetworkVariant::FullSwingUnicast)
            .mesh(8)
            .pattern(SpatialPattern::Tornado)
            .mix(TrafficMix::unicast_only())
            .seed_mode(SeedMode::PerNode)
            .seed(0x1234)
            .rate(0.3)
            .build()
            .unwrap();
        let config = scenario.config();
        assert_eq!(config.k, 8);
        assert_eq!(config.pattern, SpatialPattern::Tornado);
        assert_eq!(config.mix, TrafficMix::unicast_only());
        assert_eq!(config.seed_mode, SeedMode::PerNode);
        assert_eq!(config.base_seed, 0x1234);
        assert_eq!(scenario.rate(), 0.3);
    }

    #[test]
    fn builder_rejects_invalid_combinations() {
        // Bit-reverse on a 5×5 mesh: not a power-of-two node count.
        assert!(Scenario::builder()
            .mesh(5)
            .pattern(SpatialPattern::BitReverse)
            .build()
            .is_err());
        // Rates outside [0, 1] are rejected at build time.
        assert!(Scenario::builder().rate(1.5).build().is_err());
        assert!(Scenario::builder().rate(-0.1).build().is_err());
        // Mesh side 0 is rejected.
        assert!(Scenario::builder().mesh(0).build().is_err());
    }

    #[test]
    fn scenario_runs_and_matches_a_hand_assembled_config() {
        let scenario = Scenario::builder()
            .pattern(SpatialPattern::Transpose)
            .mix(TrafficMix::unicast_only())
            .seed_mode(SeedMode::PerNode)
            .rate(0.05)
            .build()
            .unwrap();
        let via_scenario = scenario.run(100, 400).unwrap();
        let config = NocConfig::proposed_chip()
            .unwrap()
            .with_pattern(SpatialPattern::Transpose)
            .with_mix(TrafficMix::unicast_only())
            .with_seed_mode(SeedMode::PerNode);
        let mut sim = Simulation::new(config).unwrap();
        let by_hand = sim.run(0.05, 100, 400).unwrap();
        assert_eq!(via_scenario, by_hand);
    }
}
