//! Network interface controllers (NICs).
//!
//! Each node's NIC generates packets (via `noc-traffic`), segments them into
//! flits, injects them into its router's local input port under credit-based
//! flow control, and sinks ejected flits. The NIC-to-router and router-to-NIC
//! traversals each take one cycle — the "two extra cycles" the paper adds to
//! its theoretical latency limits.
//!
//! The injection queue is a [`RingQueue`] — the same reusable slot-buffer
//! type the network's event wheel is built from — and packets are segmented
//! through a reused scratch buffer ([`noc_types::Packet::write_flits_into`]),
//! so steady-state injection performs no heap allocation.

use noc_router::{Lookahead, OutputBank};
use noc_sim::{ActivityCounters, RingQueue};
use noc_topology::{routing::XyPortMasks, Mesh};
use noc_traffic::{TrafficGenerator, TrafficSource};
use noc_types::{Credit, Cycle, DestinationSet, Flit, NodeId, Packet, PacketId, VcId};

use crate::config::NocConfig;

/// Port index of the single tracked port of a NIC's injection-side
/// [`OutputBank`] (see [`OutputBank::for_injection`]).
const INJECT_PORT: usize = 0;

/// A flit (and optional lookahead) the NIC sends towards its router this
/// cycle.
#[derive(Debug, Clone)]
pub struct NicInjection {
    /// The injected flit (already assigned its input VC at the router).
    pub flit: Flit,
    /// Lookahead pre-allocating the source router's crossbar, when virtual
    /// bypassing is enabled.
    pub lookahead: Option<Lookahead>,
}

/// Registration data for a packet the NIC just created, used by the network's
/// scoreboard to track end-to-end latency and reception counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketRegistration {
    /// Packet identifier (shared by all duplicated copies of a broadcast on
    /// networks without multicast support).
    pub id: PacketId,
    /// Cycle the packet was created.
    pub created_at: Cycle,
    /// Number of destination NICs that must receive the packet.
    pub expected_receptions: u32,
    /// Flits delivered per reception.
    pub flits_per_reception: u32,
}

/// Notification that a tail flit completed a packet reception at this NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reception {
    /// Packet identifier.
    pub id: PacketId,
    /// Node whose NIC completed the reception.
    pub node: NodeId,
    /// Flits in the received packet.
    pub flits: u32,
    /// Cycle the reception completed.
    pub at: Cycle,
}

/// One node's network interface controller.
#[derive(Debug, Clone)]
pub struct Nic {
    node: NodeId,
    /// Precomputed XY first-hop port masks for this node, so per-flit
    /// lookahead generation avoids a destination-set scan.
    port_masks: XyPortMasks,
    lookahead_enabled: bool,
    duplicate_broadcasts: bool,
    source: TrafficSource,
    inject_queue: RingQueue<Flit>,
    /// Scratch buffer packets are segmented through before entering the
    /// injection queue; reused across every packet this NIC ever creates.
    flit_scratch: Vec<Flit>,
    /// Credit/VC tracker for the router input port this NIC injects into: a
    /// single-port [`OutputBank`] addressed as port [`INJECT_PORT`].
    upstream: OutputBank,
    current_vc: Option<(PacketId, VcId)>,
    counters: ActivityCounters,
    injected_flits: u64,
    injected_packets: u64,
    received_flits: u64,
}

impl Nic {
    /// Creates the NIC of `node` under `config`, generating traffic at
    /// `rate` flits/cycle.
    #[must_use]
    pub fn new(config: &NocConfig, mesh: Mesh, node: NodeId, rate: f64) -> Self {
        let generator = TrafficGenerator::with_pattern(
            node,
            config.k,
            config.mix,
            config.pattern,
            config.seed_mode,
            rate,
            config.base_seed,
        );
        Self {
            node,
            port_masks: XyPortMasks::new(&mesh, mesh.coord_of(node)),
            lookahead_enabled: config.lookahead_enabled(),
            duplicate_broadcasts: config.nic_duplicates_broadcasts(),
            source: TrafficSource::bernoulli(generator),
            inject_queue: RingQueue::with_capacity(16),
            flit_scratch: Vec::new(),
            upstream: OutputBank::for_injection(&config.router),
            current_vc: None,
            counters: ActivityCounters::new(),
            injected_flits: 0,
            injected_packets: 0,
            received_flits: 0,
        }
    }

    /// Node this NIC belongs to.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Restores the NIC to its post-construction state under `config` —
    /// injection queue empty, all upstream credits returned, statistics
    /// zeroed, and the traffic generator re-seeded from `config.base_seed` —
    /// keeping the queue and scratch-buffer capacity. The injection rate is
    /// preserved (a following [`set_rate`](Nic::set_rate), as every
    /// simulation run performs, makes the warm NIC indistinguishable from a
    /// cold one).
    pub fn reset(&mut self, config: &NocConfig) {
        self.source = TrafficSource::bernoulli(TrafficGenerator::with_pattern(
            self.node,
            config.k,
            config.mix,
            config.pattern,
            config.seed_mode,
            self.source.rate(),
            config.base_seed,
        ));
        self.inject_queue.clear();
        self.upstream.reset();
        self.current_vc = None;
        self.counters = ActivityCounters::new();
        self.injected_flits = 0;
        self.injected_packets = 0;
        self.received_flits = 0;
    }

    /// Changes the injection rate (used between sweep points).
    pub fn set_rate(&mut self, rate: f64) {
        self.source.set_rate(rate);
    }

    /// The packet source this NIC polls (Bernoulli generator or trace
    /// replayer).
    #[must_use]
    pub fn source(&self) -> &TrafficSource {
        &self.source
    }

    /// Mutable access to the packet source — how the network starts/stops
    /// trace recording and collects recorded events.
    pub fn source_mut(&mut self) -> &mut TrafficSource {
        &mut self.source
    }

    /// Replaces the packet source (how trace replay is installed). The
    /// source must belong to this node.
    ///
    /// # Panics
    ///
    /// Panics if `source.node()` differs from this NIC's node.
    pub fn set_source(&mut self, source: TrafficSource) {
        assert_eq!(source.node(), self.node, "source node mismatch");
        self.source = source;
    }

    /// Flits currently waiting in the injection queue.
    #[must_use]
    pub fn queued_flits(&self) -> usize {
        self.inject_queue.len()
    }

    /// Scouts how many upcoming injecting ticks are guaranteed to create no
    /// packet (see [`TrafficGenerator::idle_cycles_hint`]), capped at `cap`.
    /// Only meaningful while the injection queue is empty — a queued flit
    /// makes a tick observable regardless of the generator.
    #[must_use]
    pub fn idle_inject_cycles_hint(&self, cap: u64) -> u64 {
        self.source.idle_cycles_hint(cap)
    }

    /// Replays `cycles` skipped injecting ticks' PRBS coin flips at once
    /// (each previously promised idle by
    /// [`idle_inject_cycles_hint`](Nic::idle_inject_cycles_hint)), leaving
    /// the generator exactly as `cycles` packet-less ticks would.
    pub fn skip_inject_cycles(&mut self, cycles: u64) {
        self.source.skip_idle_cycles(cycles);
    }

    /// Flits injected into the router so far.
    #[must_use]
    pub fn injected_flits(&self) -> u64 {
        self.injected_flits
    }

    /// Packets created so far.
    #[must_use]
    pub fn injected_packets(&self) -> u64 {
        self.injected_packets
    }

    /// Flits ejected to this NIC so far.
    #[must_use]
    pub fn received_flits(&self) -> u64 {
        self.received_flits
    }

    /// Activity counters (injection-link traversals).
    #[must_use]
    pub fn counters(&self) -> &ActivityCounters {
        &self.counters
    }

    /// Runs one NIC cycle: possibly create a packet, and possibly inject one
    /// queued flit towards the router.
    ///
    /// Returns the injection (if any) and the registration of the packet
    /// created this cycle, if one was (the chip's NICs create at most one
    /// packet per cycle).
    pub fn tick(
        &mut self,
        now: Cycle,
        inject: bool,
    ) -> (Option<NicInjection>, Option<PacketRegistration>) {
        let registration = if inject {
            self.source.generate(now).map(|p| self.enqueue(p))
        } else {
            None
        };
        (self.try_inject(now), registration)
    }

    /// Queues one externally built packet (used by deterministic workloads in
    /// examples and tests) and returns its registration.
    pub fn enqueue_packet(&mut self, packet: Packet) -> PacketRegistration {
        self.enqueue(packet)
    }

    fn enqueue(&mut self, packet: Packet) -> PacketRegistration {
        self.injected_packets += 1;
        let expected_receptions = packet.destinations().len() as u32;
        let flits_per_reception = packet.flit_count() as u32;
        let registration = PacketRegistration {
            id: packet.id(),
            created_at: packet.created_at(),
            expected_receptions,
            flits_per_reception,
        };
        if packet.is_multicast() && self.duplicate_broadcasts {
            // No router-level multicast support: the NIC must inject one
            // unicast copy per destination, serialising them through its
            // single injection port (the k²-1 penalty of §2.3).
            for dest in packet.destinations().iter() {
                let copy = Packet::new(
                    packet.id(),
                    packet.source(),
                    DestinationSet::unicast(dest),
                    packet.kind(),
                    packet.created_at(),
                );
                self.queue_flits_of(&copy);
            }
        } else {
            self.queue_flits_of(&packet);
        }
        registration
    }

    /// Segments `packet` through the reused scratch buffer into the
    /// injection ring.
    fn queue_flits_of(&mut self, packet: &Packet) {
        self.flit_scratch.clear();
        packet.write_flits_into(&mut self.flit_scratch);
        for flit in self.flit_scratch.drain(..) {
            self.inject_queue.push_back(flit);
        }
    }

    /// Attempts to send the flit at the head of the injection queue.
    fn try_inject(&mut self, now: Cycle) -> Option<NicInjection> {
        let front = self.inject_queue.front()?;
        let class = front.message_class();
        let vc = if front.kind().is_head() {
            let vc = self.upstream.peek_free_vc(INJECT_PORT, class)?;
            if !self.upstream.has_credit(INJECT_PORT, class, vc) {
                return None;
            }
            self.upstream.allocate_vc(INJECT_PORT, class, vc);
            vc
        } else {
            let (_, vc) = self.current_vc?;
            if !self.upstream.has_credit(INJECT_PORT, class, vc) {
                return None;
            }
            vc
        };

        let mut flit = self.inject_queue.pop_front().expect("front checked above");
        self.upstream
            .send_flit(INJECT_PORT, class, vc, flit.kind().is_tail());
        flit.set_vc(vc);
        flit.mark_injected(now);
        if flit.kind().is_head() && !flit.kind().is_tail() {
            self.current_vc = Some((flit.packet_id(), vc));
        }
        if flit.kind().is_tail() {
            self.current_vc = None;
        }
        self.injected_flits += 1;
        self.counters.local_link_traversals += 1;

        let lookahead = if self.lookahead_enabled {
            let ports = self.port_masks.ports(flit.destinations());
            self.counters.lookaheads_sent += 1;
            Some(Lookahead::new(flit.id(), class, vc, ports))
        } else {
            None
        };
        Some(NicInjection { flit, lookahead })
    }

    /// Accepts a flit ejected by the router; returns a [`Reception`] when the
    /// flit completes a packet at this NIC.
    pub fn accept_flit(&mut self, flit: &Flit, now: Cycle) -> Option<Reception> {
        self.received_flits += 1;
        if flit.kind().is_tail() {
            Some(Reception {
                id: flit.packet_id(),
                node: self.node,
                flits: u32::from(flit.packet_len()),
                at: now,
            })
        } else {
            None
        }
    }

    /// Accepts a credit returned by the router's local input port.
    pub fn accept_credit(&mut self, credit: Credit) {
        self.upstream.on_credit(INJECT_PORT, credit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NetworkVariant, NocConfig};
    use noc_types::{PacketKind, TrafficKind};

    fn mesh4() -> Mesh {
        Mesh::new(4).unwrap()
    }

    fn chip_nic(rate: f64) -> Nic {
        Nic::new(&NocConfig::proposed_chip().unwrap(), mesh4(), 5, rate)
    }

    #[test]
    fn injection_assigns_a_vc_and_sends_a_lookahead() {
        let mut nic = chip_nic(0.0);
        let packet = Packet::new(1, 5, DestinationSet::unicast(10), PacketKind::Request, 0);
        nic.enqueue_packet(packet);
        let (injection, _) = nic.tick(0, false);
        let injection = injection.expect("a queued flit must inject when credits exist");
        assert!(injection.flit.vc().is_some());
        assert!(injection.lookahead.is_some());
        assert_eq!(nic.injected_flits(), 1);
    }

    #[test]
    fn baseline_nic_duplicates_broadcasts() {
        let config = NocConfig::variant(NetworkVariant::FullSwingUnicast).unwrap();
        let mut nic = Nic::new(&config, mesh4(), 0, 0.0);
        let bcast = Packet::new(
            9,
            0,
            DestinationSet::broadcast(4, 0),
            PacketKind::Request,
            0,
        );
        let reg = nic.enqueue_packet(bcast);
        assert_eq!(reg.expected_receptions, 15);
        // 15 unicast copies of a single-flit request.
        assert_eq!(nic.queued_flits(), 15);
        // Without lookaheads on the baseline.
        let (injection, _) = nic.tick(0, false);
        assert!(injection.unwrap().lookahead.is_none());
    }

    #[test]
    fn proposed_nic_keeps_broadcasts_as_one_flit() {
        let mut nic = chip_nic(0.0);
        let bcast = Packet::new(
            9,
            5,
            DestinationSet::broadcast(4, 5),
            PacketKind::Request,
            0,
        );
        let reg = nic.enqueue_packet(bcast);
        assert_eq!(reg.expected_receptions, 15);
        assert_eq!(nic.queued_flits(), 1);
    }

    #[test]
    fn injection_stalls_without_credits_and_resumes_on_credit_return() {
        let mut nic = chip_nic(0.0);
        // Fill all four request VCs with single-flit packets.
        for i in 0..4u64 {
            nic.enqueue_packet(Packet::new(
                i,
                5,
                DestinationSet::unicast(1),
                PacketKind::Request,
                0,
            ));
        }
        nic.enqueue_packet(Packet::new(
            99,
            5,
            DestinationSet::unicast(2),
            PacketKind::Request,
            0,
        ));
        for cycle in 0..4 {
            assert!(nic.tick(cycle, false).0.is_some());
        }
        // All request VCs are now allocated with no credits: the fifth packet
        // must wait.
        assert!(nic.tick(4, false).0.is_none());
        assert_eq!(nic.queued_flits(), 1);
        // A credit (and the implied VC release) lets it go.
        nic.accept_credit(Credit::new(noc_types::MessageClass::Request, 0));
        assert!(nic.tick(5, false).0.is_some());
    }

    #[test]
    fn five_flit_responses_inject_on_one_vc_in_order() {
        let mut nic = chip_nic(0.0);
        nic.enqueue_packet(Packet::new(
            3,
            5,
            DestinationSet::unicast(2),
            PacketKind::Response,
            0,
        ));
        let mut sequences = Vec::new();
        let mut vcs = Vec::new();
        // Credits come back two cycles after each injection, as the router
        // forwards the flit and frees the buffer slot — modelled with the
        // same fixed-horizon EventWheel the production credit path rides, so
        // the test and production timelines share one mechanism.
        let mut credit_wheel: noc_sim::EventWheel<Credit> = noc_sim::EventWheel::new(2);
        for cycle in 0..12 {
            if let (Some(injection), _) = nic.tick(cycle, false) {
                sequences.push(injection.flit.sequence());
                vcs.push(injection.flit.vc().unwrap());
                credit_wheel.schedule(cycle + 2, Credit::new(noc_types::MessageClass::Response, 0));
            }
            let mut due = credit_wheel.take_due(cycle);
            while let Some(credit) = due.pop_front() {
                nic.accept_credit(credit);
            }
            credit_wheel.restore(due);
        }
        assert_eq!(sequences, vec![0, 1, 2, 3, 4]);
        assert!(vcs.iter().all(|&vc| vc == vcs[0]), "one VC per packet");
    }

    #[test]
    fn reception_reports_tail_flits_only() {
        let mut nic = chip_nic(0.0);
        let packet = Packet::new(4, 0, DestinationSet::unicast(5), PacketKind::Response, 10);
        let flits = packet.to_flits();
        assert!(nic.accept_flit(&flits[0], 20).is_none());
        assert!(nic.accept_flit(&flits[1], 21).is_none());
        let reception = nic.accept_flit(&flits[4], 24).unwrap();
        assert_eq!(reception.id, 4);
        assert_eq!(reception.flits, 5);
        assert_eq!(reception.at, 24);
        assert_eq!(nic.received_flits(), 3);
    }

    #[test]
    fn generator_traffic_registers_packets() {
        let mut nic = chip_nic(1.0);
        let mut total = 0;
        for cycle in 0..200 {
            let (_, regs) = nic.tick(cycle, true);
            total += usize::from(regs.is_some());
        }
        assert!(total > 0, "a rate-1.0 NIC must create packets");
        assert_eq!(nic.injected_packets(), total as u64);
    }

    #[test]
    fn deterministic_kind_builder_is_exposed_via_traffic_generator() {
        // Sanity-check that TrafficKind broadcast maps to a 15-destination
        // registration through the NIC path.
        let config = NocConfig::proposed_chip().unwrap();
        let mut gen = TrafficGenerator::new(5, 4, config.mix, config.seed_mode, 0.0);
        let packet = gen.build_packet(TrafficKind::BroadcastRequest, 7);
        let mut nic = chip_nic(0.0);
        let reg = nic.enqueue_packet(packet);
        assert_eq!(reg.expected_receptions, 15);
        assert_eq!(reg.created_at, 7);
    }
}
