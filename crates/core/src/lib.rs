//! # mesh-noc
//!
//! The paper's contribution as a library: a 16-node (or k×k) mesh
//! Network-on-Chip with router-level multicast support, lookahead virtual
//! bypassing and a low-swing datapath model, together with the baseline
//! networks and measurement machinery needed to reproduce every experiment of
//! *"Approaching the Theoretical Limits of a Mesh NoC with a 16-Node Chip
//! Prototype in 45nm SOI"* (Park et al., DAC 2012).
//!
//! ## What lives where
//!
//! * [`NocConfig`] / [`NetworkVariant`] — configuration presets for every
//!   network the paper measures: the textbook and aggressive baselines, the
//!   four power-study variants A–D of Fig. 6, and the fabricated chip.
//! * [`Scenario`] / [`ScenarioBuilder`] — fluent construction of a validated
//!   configuration plus operating point
//!   (`Scenario::builder().variant(..).mesh(8).pattern(..).rate(0.6)`), so
//!   examples and tests stop hand-assembling configs. Spatial traffic
//!   patterns themselves live in `noc-traffic` ([`noc_traffic::SpatialPattern`]).
//! * [`Network`] — the cycle-accurate orchestrator that wires 16 routers
//!   (from `noc-router`) and 16 NICs together, advances them cycle by cycle
//!   and keeps latency / throughput / activity statistics.
//! * [`Simulation`] — warmup + measurement + drain around a [`Network`],
//!   producing a [`SimulationResult`].
//! * [`sweep`] — injection-rate sweeps, saturation detection and the summary
//!   statistics (latency reduction, saturation-throughput gain, fraction of
//!   the theoretical limit) the paper quotes in §4.1; [`SweepRunner`] shards
//!   sweep points across threads with bit-identical results for any thread
//!   count, batching each worker's points through one warmed network via
//!   [`Network::reset`] (buffer capacity survives, PRBS state re-seeds).
//! * [`serving`] — the closed-loop request/reply layer: [`ClosedLoop`]
//!   attaches per-node clients (bounded outstanding windows) and homes
//!   (fixed service latency) to a [`Network`], measures request round-trip
//!   times into a p50/p95/p99 histogram, and [`ServingRunner`] sweeps the
//!   client population with the same bit-identical sharding as
//!   [`SweepRunner`]. Trace record/replay (`Simulation::record_trace` /
//!   `Simulation::load_trace`) reuses the same delivery machinery with the
//!   Bernoulli sources swapped out for [`noc_types::Trace`] playback.
//!
//! The layering above this crate, the event-wheel core it steps, and the
//! determinism contract behind [`SweepRunner`] are documented in
//! `ARCHITECTURE.md` at the repository root.
//!
//! ## Quickstart
//!
//! ```
//! use mesh_noc::{NetworkVariant, NocConfig, Simulation};
//!
//! // The fabricated chip: proposed router, bypassing, low-swing datapath.
//! let config = NocConfig::variant(NetworkVariant::ProposedChip)?;
//! let mut sim = Simulation::new(config)?;
//! let result = sim.run(0.02, 200, 1_000)?;
//! assert!(result.average_latency_cycles > 0.0);
//! assert!(result.received_flits_per_cycle > 0.0);
//! # Ok::<(), noc_types::NocError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod network;
mod nic;
mod partition;
mod result;
mod scenario;
pub mod serving;
mod simulation;
pub mod sweep;

pub use config::{DatapathKind, NetworkVariant, NocConfig};
pub use network::{Network, PartitionShape};
pub use nic::{Nic, Reception};
pub use result::SimulationResult;
pub use scenario::{Scenario, ScenarioBuilder};
pub use serving::{
    ClosedLoop, ServingOpts, ServingOutcome, ServingPointOutcome, ServingResult, ServingRunner,
};
pub use simulation::Simulation;
pub use sweep::{SweepOutcome, SweepPointOutcome, SweepRunner};
