//! Network configuration and the paper's named network variants.

use noc_power::EnergyParams;
use noc_router::RouterConfig;
use noc_traffic::{SeedMode, SpatialPattern, TrafficMix};
use noc_types::{ConfigError, NocError};
use serde::{Deserialize, Serialize};

/// Which signaling technology the datapath (crossbar + links) uses.
///
/// This only affects energy accounting — both datapaths support single-cycle
/// ST+LT at 1 GHz (the paper explicitly chooses a baseline with single-cycle
/// ST+LT because even a full-swing datapath can achieve it at 1 GHz).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatapathKind {
    /// Conventional full-swing repeated wires.
    FullSwing,
    /// Tri-state reduced-swing-driver crossbar and differential links.
    LowSwing,
}

/// The named network configurations measured in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetworkVariant {
    /// The textbook 4-stage baseline router of Fig. 1 (separate ST and LT
    /// stages), full-swing datapath, broadcasts duplicated at the NIC.
    TextbookBaseline,
    /// Fig. 6 config A and the Fig. 5 baseline: aggressive baseline router
    /// (single-cycle ST+LT), full-swing datapath, no multicast support.
    FullSwingUnicast,
    /// Fig. 6 config B: the same unicast network with a low-swing datapath.
    LowSwingUnicast,
    /// Fig. 6 config C: low-swing datapath plus router-level broadcast
    /// support, but no multicast buffer bypass.
    LowSwingBroadcastNoBypass,
    /// Fig. 6 config D and the fabricated chip: low-swing datapath,
    /// router-level broadcast support and multicast virtual bypassing.
    LowSwingBroadcastBypass,
    /// Alias of [`NetworkVariant::LowSwingBroadcastBypass`] used where the
    /// intent is "the chip as fabricated".
    ProposedChip,
}

impl NetworkVariant {
    /// All four Fig. 6 variants in waterfall order (A, B, C, D).
    pub const FIG6: [NetworkVariant; 4] = [
        NetworkVariant::FullSwingUnicast,
        NetworkVariant::LowSwingUnicast,
        NetworkVariant::LowSwingBroadcastNoBypass,
        NetworkVariant::LowSwingBroadcastBypass,
    ];

    /// The single-letter label Fig. 6 uses for this variant, if it has one.
    #[must_use]
    pub fn fig6_label(self) -> Option<char> {
        match self {
            NetworkVariant::FullSwingUnicast => Some('A'),
            NetworkVariant::LowSwingUnicast => Some('B'),
            NetworkVariant::LowSwingBroadcastNoBypass => Some('C'),
            NetworkVariant::LowSwingBroadcastBypass | NetworkVariant::ProposedChip => Some('D'),
            NetworkVariant::TextbookBaseline => None,
        }
    }

    /// Router configuration of this variant.
    #[must_use]
    pub fn router_config(self) -> RouterConfig {
        match self {
            NetworkVariant::TextbookBaseline => RouterConfig::textbook_baseline(),
            NetworkVariant::FullSwingUnicast | NetworkVariant::LowSwingUnicast => {
                RouterConfig::aggressive_baseline()
            }
            NetworkVariant::LowSwingBroadcastNoBypass => RouterConfig::proposed(false),
            NetworkVariant::LowSwingBroadcastBypass | NetworkVariant::ProposedChip => {
                RouterConfig::proposed(true)
            }
        }
    }

    /// Datapath signaling technology of this variant.
    #[must_use]
    pub fn datapath(self) -> DatapathKind {
        match self {
            NetworkVariant::TextbookBaseline | NetworkVariant::FullSwingUnicast => {
                DatapathKind::FullSwing
            }
            _ => DatapathKind::LowSwing,
        }
    }
}

/// Full configuration of one simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NocConfig {
    /// Mesh side length (4 for the fabricated chip).
    pub k: u16,
    /// Router microarchitecture.
    pub router: RouterConfig,
    /// Datapath signaling technology (energy accounting only).
    pub datapath: DatapathKind,
    /// Traffic mix injected by every NIC.
    pub mix: TrafficMix,
    /// Spatial pattern every NIC draws unicast destinations through. The
    /// presets use [`SpatialPattern::uniform_legacy`] — bit-identical to the
    /// chip RTL's inline PRBS draw — so all historical curves reproduce
    /// exactly; swap in any other pattern with
    /// [`with_pattern`](NocConfig::with_pattern).
    pub pattern: SpatialPattern,
    /// PRBS seeding discipline of the NICs.
    pub seed_mode: SeedMode,
    /// Base seed the NIC PRBS generators boot from (combined with the node
    /// id under [`SeedMode::PerNode`]). Sweep runners derive one base seed
    /// per sweep point from this value so points stay reproducible and
    /// order-independent.
    pub base_seed: u16,
    /// Network clock in GHz (1.0 for the chip).
    pub frequency_ghz: f64,
    /// Flit width in bits (64 for the chip).
    pub flit_bits: u32,
    /// Cycles a credit takes to return and be processed upstream.
    pub credit_delay_cycles: u64,
}

impl NocConfig {
    /// Configuration of one of the paper's named variants on the 4×4 mesh
    /// with mixed traffic and the chip's identical-seed PRBS artifact.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::Config`] if the built-in configuration fails
    /// validation (it never should; the check guards future edits).
    pub fn variant(variant: NetworkVariant) -> Result<Self, NocError> {
        let config = Self {
            k: 4,
            router: variant.router_config(),
            datapath: variant.datapath(),
            mix: TrafficMix::mixed(),
            pattern: SpatialPattern::uniform_legacy(),
            seed_mode: SeedMode::Identical,
            base_seed: noc_traffic::TrafficGenerator::DEFAULT_BASE_SEED,
            frequency_ghz: 1.0,
            flit_bits: 64,
            credit_delay_cycles: 2,
        };
        config.validate()?;
        Ok(config)
    }

    /// The fabricated chip's configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::Config`] if the built-in configuration fails
    /// validation.
    pub fn proposed_chip() -> Result<Self, NocError> {
        Self::variant(NetworkVariant::ProposedChip)
    }

    /// Replaces the traffic mix.
    #[must_use]
    pub fn with_mix(mut self, mix: TrafficMix) -> Self {
        self.mix = mix;
        self
    }

    /// Replaces the spatial traffic pattern.
    #[must_use]
    pub fn with_pattern(mut self, pattern: SpatialPattern) -> Self {
        self.pattern = pattern;
        self
    }

    /// Replaces the PRBS seeding discipline.
    #[must_use]
    pub fn with_seed_mode(mut self, seed_mode: SeedMode) -> Self {
        self.seed_mode = seed_mode;
        self
    }

    /// Replaces the base PRBS seed (see [`NocConfig::base_seed`]).
    #[must_use]
    pub fn with_base_seed(mut self, base_seed: u16) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// Replaces the mesh side length.
    #[must_use]
    pub fn with_side(mut self, k: u16) -> Self {
        self.k = k;
        self
    }

    /// Whether the NICs must expand broadcasts into per-destination unicasts
    /// (true exactly when the routers cannot replicate flits).
    #[must_use]
    pub fn nic_duplicates_broadcasts(&self) -> bool {
        !self.router.kind.multicast_support()
    }

    /// Whether NICs send lookaheads with injected flits.
    #[must_use]
    pub fn lookahead_enabled(&self) -> bool {
        self.router.kind.lookahead_enabled()
    }

    /// Link delay in cycles between a switch traversal and the arrival at the
    /// next router (1, plus an extra cycle for the textbook baseline's
    /// separate LT stage).
    #[must_use]
    pub fn link_delay_cycles(&self) -> u64 {
        1 + self.router.kind.separate_lt_cycles()
    }

    /// Energy parameters matching the configured datapath.
    #[must_use]
    pub fn energy_params(&self) -> EnergyParams {
        match self.datapath {
            DatapathKind::FullSwing => EnergyParams::chip_full_swing(),
            DatapathKind::LowSwing => EnergyParams::chip_low_swing(),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::Config`] when the mesh side, VC configuration or
    /// clock frequency is invalid.
    pub fn validate(&self) -> Result<(), NocError> {
        if self.k == 0 || self.k > 16 {
            return Err(ConfigError::InvalidMeshSide { k: self.k }.into());
        }
        self.pattern.validate(self.k)?;
        self.router.validate()?;
        if self.frequency_ghz <= 0.0 {
            return Err(ConfigError::InvalidVcConfig {
                reason: "clock frequency must be positive".to_owned(),
            }
            .into());
        }
        if self.credit_delay_cycles == 0 {
            // A zero-cycle credit return would have to be delivered in the
            // cycle that produced it — the event wheel (rightly) rejects
            // scheduling into the current cycle, so catch it here with a
            // config error instead.
            return Err(ConfigError::InvalidVcConfig {
                reason: "credit delay must be at least one cycle".to_owned(),
            }
            .into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_variants_form_the_expected_waterfall() {
        let a = NocConfig::variant(NetworkVariant::FullSwingUnicast).unwrap();
        let b = NocConfig::variant(NetworkVariant::LowSwingUnicast).unwrap();
        let c = NocConfig::variant(NetworkVariant::LowSwingBroadcastNoBypass).unwrap();
        let d = NocConfig::variant(NetworkVariant::LowSwingBroadcastBypass).unwrap();
        // A -> B changes only the datapath.
        assert_eq!(a.router, b.router);
        assert_ne!(a.datapath, b.datapath);
        // B -> C adds multicast support.
        assert!(b.nic_duplicates_broadcasts());
        assert!(!c.nic_duplicates_broadcasts());
        // C -> D adds bypassing.
        assert!(!c.lookahead_enabled());
        assert!(d.lookahead_enabled());
        assert_eq!(
            NetworkVariant::FIG6.map(|v| v.fig6_label().unwrap()),
            ['A', 'B', 'C', 'D']
        );
    }

    #[test]
    fn chip_preset_matches_the_fabricated_configuration() {
        let chip = NocConfig::proposed_chip().unwrap();
        assert_eq!(chip.k, 4);
        assert_eq!(chip.flit_bits, 64);
        assert_eq!(chip.frequency_ghz, 1.0);
        assert!(chip.lookahead_enabled());
        assert!(!chip.nic_duplicates_broadcasts());
        assert_eq!(chip.router.total_vcs(), 6);
        assert_eq!(chip.router.total_buffers(), 10);
        assert_eq!(chip.link_delay_cycles(), 1);
    }

    #[test]
    fn textbook_baseline_pays_a_separate_link_cycle() {
        let t = NocConfig::variant(NetworkVariant::TextbookBaseline).unwrap();
        assert_eq!(t.link_delay_cycles(), 2);
        assert!(matches!(
            t.router.kind,
            noc_router::RouterKind::Baseline {
                combined_st_lt: false
            }
        ));
    }

    #[test]
    fn validation_rejects_bad_sides_and_frequencies() {
        let mut cfg = NocConfig::proposed_chip().unwrap();
        cfg.k = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = NocConfig::proposed_chip().unwrap();
        cfg.frequency_ghz = 0.0;
        assert!(cfg.validate().is_err());
        let mut cfg = NocConfig::proposed_chip().unwrap();
        cfg.k = 17;
        assert!(cfg.validate().is_err());
        let mut cfg = NocConfig::proposed_chip().unwrap();
        cfg.credit_delay_cycles = 0;
        assert!(
            cfg.validate().is_err(),
            "zero credit delay must be rejected"
        );
    }

    #[test]
    fn pattern_validation_rides_config_validation() {
        let chip = NocConfig::proposed_chip().unwrap();
        assert_eq!(chip.pattern, SpatialPattern::uniform_legacy());
        assert!(chip
            .with_pattern(SpatialPattern::Transpose)
            .validate()
            .is_ok());
        // Bit permutations need a power-of-two node count: 5×5 = 25 fails.
        let bad = chip.with_side(5).with_pattern(SpatialPattern::BitReverse);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn energy_params_follow_the_datapath() {
        let a = NocConfig::variant(NetworkVariant::FullSwingUnicast).unwrap();
        let d = NocConfig::variant(NetworkVariant::LowSwingBroadcastBypass).unwrap();
        assert!(a.energy_params().crossbar_pj > d.energy_params().crossbar_pj);
    }
}
