//! Theoretical limits of a k×k mesh NoC (Table 1 of the paper).
//!
//! The limits assume (Appendix A of the paper):
//!
//! 1. *Perfect routing* — minimal paths, perfectly balanced channel load,
//! 2. *Perfect flow control* — links never idle while traffic wants them,
//! 3. *Perfect router microarchitecture* — flits only pay the datapath
//!    (crossbar + link) delay and energy: one cycle and `Exbar + Elink` per
//!    hop, nothing for buffering, arbitration or VC state.
//!
//! Traffic model: every NIC injects flits as a Bernoulli process of rate `R`
//! flits/cycle; unicasts pick a uniformly random destination, broadcasts go
//! from a uniformly random source to all other nodes.

use serde::{Deserialize, Serialize};

/// Per-traversal datapath energy used by the theoretical energy limit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatapathEnergy {
    /// Energy of one crossbar traversal, in picojoules.
    pub crossbar_pj: f64,
    /// Energy of one link traversal, in picojoules.
    pub link_pj: f64,
}

impl DatapathEnergy {
    /// Creates a datapath energy description.
    #[must_use]
    pub fn new(crossbar_pj: f64, link_pj: f64) -> Self {
        Self {
            crossbar_pj,
            link_pj,
        }
    }
}

impl Default for DatapathEnergy {
    /// Representative 45nm full-swing values used when the caller does not
    /// supply calibrated numbers (the relative shape of the limits does not
    /// depend on them).
    fn default() -> Self {
        Self::new(1.0, 1.5)
    }
}

/// Closed-form theoretical limits of a k×k mesh (Table 1).
///
/// # Examples
///
/// ```
/// use noc_topology::limits::MeshLimits;
///
/// let limits = MeshLimits::new(4);
/// // Unicast average hop count: 2(k+1)/3.
/// assert!((limits.unicast_average_hops() - 10.0 / 3.0).abs() < 1e-12);
/// // Broadcast average hop count for even k: (3k-1)/2.
/// assert!((limits.broadcast_average_hops() - 5.5).abs() < 1e-12);
/// // Broadcast throughput is limited by the ejection links: R_sat = 1/k^2.
/// assert!((limits.broadcast_saturation_rate() - 1.0 / 16.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeshLimits {
    k: u16,
}

impl MeshLimits {
    /// Limits for a k×k mesh.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(k: u16) -> Self {
        assert!(k > 0, "mesh side length must be positive");
        Self { k }
    }

    /// Mesh side length.
    #[must_use]
    pub fn side(&self) -> u16 {
        self.k
    }

    /// Number of nodes, `k²`.
    #[must_use]
    pub fn node_count(&self) -> f64 {
        let k = f64::from(self.k);
        k * k
    }

    // --- Latency ----------------------------------------------------------

    /// Average unicast hop count `H_avg = 2(k+1)/3` (Table 1).
    ///
    /// This is also the theoretical unicast latency limit in cycles, since a
    /// perfect router spends exactly one cycle per hop.
    #[must_use]
    pub fn unicast_average_hops(&self) -> f64 {
        2.0 * (f64::from(self.k) + 1.0) / 3.0
    }

    /// Average broadcast hop count (source to *furthest* destination),
    /// `(3k-1)/2` for even k and `(k-1)(3k+1)/(2k)` for odd k (Table 1).
    #[must_use]
    pub fn broadcast_average_hops(&self) -> f64 {
        let k = f64::from(self.k);
        if self.k.is_multiple_of(2) {
            (3.0 * k - 1.0) / 2.0
        } else {
            (k - 1.0) * (3.0 * k + 1.0) / (2.0 * k)
        }
    }

    /// Theoretical unicast latency limit in cycles (equals
    /// [`unicast_average_hops`](Self::unicast_average_hops)).
    #[must_use]
    pub fn unicast_latency_limit(&self) -> f64 {
        self.unicast_average_hops()
    }

    /// Theoretical broadcast latency limit in cycles (equals
    /// [`broadcast_average_hops`](Self::broadcast_average_hops)).
    #[must_use]
    pub fn broadcast_latency_limit(&self) -> f64 {
        self.broadcast_average_hops()
    }

    /// Theoretical *packet* latency limit including the NIC-to-router and
    /// router-to-NIC traversals (two extra cycles) and the serialization of a
    /// packet of `packet_flits` flits, as used for the latency-limit curves
    /// of Fig. 5 / Fig. 13.
    #[must_use]
    pub fn packet_latency_limit(&self, broadcast: bool, packet_flits: usize) -> f64 {
        let hops = if broadcast {
            self.broadcast_average_hops()
        } else {
            self.unicast_average_hops()
        };
        hops + 2.0 + (packet_flits as f64 - 1.0)
    }

    // --- Throughput -------------------------------------------------------

    /// Channel load on each bisection link under unicast traffic at
    /// injection rate `rate`: `k·R/4` (Table 1).
    #[must_use]
    pub fn unicast_bisection_load(&self, rate: f64) -> f64 {
        f64::from(self.k) * rate / 4.0
    }

    /// Channel load on each ejection link under unicast traffic: `R`.
    #[must_use]
    pub fn unicast_ejection_load(&self, rate: f64) -> f64 {
        rate
    }

    /// Channel load on each bisection link under broadcast traffic: `k²·R/4`.
    #[must_use]
    pub fn broadcast_bisection_load(&self, rate: f64) -> f64 {
        self.node_count() * rate / 4.0
    }

    /// Channel load on each ejection link under broadcast traffic: `k²·R`.
    ///
    /// Every node must eject a copy of every other node's broadcast, so the
    /// ejection links saturate first — this is what makes broadcast
    /// throughput ejection-limited rather than bisection-limited.
    #[must_use]
    pub fn broadcast_ejection_load(&self, rate: f64) -> f64 {
        self.node_count() * rate
    }

    /// Maximum channel load anywhere in the network under unicast traffic.
    #[must_use]
    pub fn unicast_max_channel_load(&self, rate: f64) -> f64 {
        self.unicast_bisection_load(rate)
            .max(self.unicast_ejection_load(rate))
    }

    /// Maximum channel load anywhere in the network under broadcast traffic.
    #[must_use]
    pub fn broadcast_max_channel_load(&self, rate: f64) -> f64 {
        self.broadcast_bisection_load(rate)
            .max(self.broadcast_ejection_load(rate))
    }

    /// Saturation injection rate for unicast traffic: the largest `R` (in
    /// flits/node/cycle) for which no channel exceeds unit load.
    ///
    /// For `k <= 4` the ejection links limit throughput (`R_sat = 1`); for
    /// larger meshes the bisection limits it (`R_sat = 4/k`).
    #[must_use]
    pub fn unicast_saturation_rate(&self) -> f64 {
        if self.k <= 4 {
            1.0
        } else {
            4.0 / f64::from(self.k)
        }
    }

    /// Saturation injection rate for broadcast traffic: `1/k²` (ejection
    /// limited).
    #[must_use]
    pub fn broadcast_saturation_rate(&self) -> f64 {
        1.0 / self.node_count()
    }

    /// Theoretical network throughput limit in accepted (received) flits per
    /// cycle across the whole network, for unicast traffic.
    ///
    /// Each of the `k²` nodes can accept at most one flit per cycle, and the
    /// bisection further caps acceptance for `k > 4`.
    #[must_use]
    pub fn unicast_throughput_limit_flits_per_cycle(&self) -> f64 {
        self.node_count() * self.unicast_saturation_rate()
    }

    /// Theoretical network throughput limit in *received* flits per cycle for
    /// broadcast traffic.
    ///
    /// At the saturation injection rate `1/k²`, each of the `k²` ejection
    /// links delivers one flit per cycle, so the network-wide received
    /// throughput is `k²` flits/cycle — for the 4×4 chip at 1 GHz with 64-bit
    /// flits this is the 1024 Gb/s theoretical limit quoted in §4.1.
    #[must_use]
    pub fn broadcast_throughput_limit_flits_per_cycle(&self) -> f64 {
        self.node_count()
    }

    /// Theoretical received-throughput limit converted to Gb/s.
    #[must_use]
    pub fn throughput_limit_gbps(
        &self,
        broadcast: bool,
        flit_bits: u32,
        frequency_ghz: f64,
    ) -> f64 {
        let flits = if broadcast {
            self.broadcast_throughput_limit_flits_per_cycle()
        } else {
            self.unicast_throughput_limit_flits_per_cycle()
        };
        flits * f64::from(flit_bits) * frequency_ghz
    }

    // --- Energy -----------------------------------------------------------

    /// Theoretical energy limit per unicast flit (Table 1):
    /// `H_avg·E_xbar + E_xbar + H_avg·E_link`.
    ///
    /// A flit traverses one crossbar per hop plus the ejection crossbar at
    /// the destination, and one link per hop.
    #[must_use]
    pub fn unicast_energy_limit_pj(&self, energy: DatapathEnergy) -> f64 {
        let h = self.unicast_average_hops();
        h * energy.crossbar_pj + energy.crossbar_pj + h * energy.link_pj
    }

    /// Theoretical energy limit per broadcast flit (Table 1):
    /// `k²·E_xbar + E_xbar + (k²-1)·E_link`.
    ///
    /// A broadcast must visit all `k²` routers (plus the injection crossbar)
    /// and traverse the `k²-1` tree links connecting them, so the limit grows
    /// quadratically with the number of routers.
    #[must_use]
    pub fn broadcast_energy_limit_pj(&self, energy: DatapathEnergy) -> f64 {
        let n = self.node_count();
        n * energy.crossbar_pj + energy.crossbar_pj + (n - 1.0) * energy.link_pj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn table1_hop_counts_for_the_prototype() {
        let l = MeshLimits::new(4);
        assert!((l.unicast_average_hops() - 10.0 / 3.0).abs() < EPS);
        assert!((l.broadcast_average_hops() - 5.5).abs() < EPS);
    }

    #[test]
    fn table1_hop_counts_odd_mesh() {
        let l = MeshLimits::new(5);
        // (k-1)(3k+1)/(2k) = 4*16/10 = 6.4
        assert!((l.broadcast_average_hops() - 6.4).abs() < EPS);
        assert!((l.unicast_average_hops() - 4.0).abs() < EPS);
    }

    #[test]
    fn table2_zero_load_latencies_match_hop_counts() {
        // "This work" zero-load latencies in Table 2: 3.3 / 5.5 cycles (4x4)
        // and 6 / 11.5 cycles (modeled as 8x8).
        let l4 = MeshLimits::new(4);
        assert!((l4.unicast_latency_limit() - 10.0 / 3.0).abs() < EPS);
        assert!((l4.broadcast_latency_limit() - 5.5).abs() < EPS);
        let l8 = MeshLimits::new(8);
        assert!((l8.unicast_latency_limit() - 6.0).abs() < EPS);
        assert!((l8.broadcast_latency_limit() - 11.5).abs() < EPS);
    }

    #[test]
    fn channel_loads_scale_with_rate_and_k() {
        let l = MeshLimits::new(8);
        let r = 0.1;
        assert!((l.unicast_bisection_load(r) - 0.2).abs() < EPS);
        assert!((l.unicast_ejection_load(r) - 0.1).abs() < EPS);
        assert!((l.broadcast_bisection_load(r) - 1.6).abs() < EPS);
        assert!((l.broadcast_ejection_load(r) - 6.4).abs() < EPS);
    }

    #[test]
    fn unicast_saturation_switches_at_k4() {
        assert!((MeshLimits::new(2).unicast_saturation_rate() - 1.0).abs() < EPS);
        assert!((MeshLimits::new(4).unicast_saturation_rate() - 1.0).abs() < EPS);
        assert!((MeshLimits::new(8).unicast_saturation_rate() - 0.5).abs() < EPS);
        assert!((MeshLimits::new(16).unicast_saturation_rate() - 0.25).abs() < EPS);
    }

    #[test]
    fn broadcast_is_ejection_limited() {
        let l = MeshLimits::new(4);
        let r_sat = l.broadcast_saturation_rate();
        assert!((r_sat - 1.0 / 16.0).abs() < EPS);
        // At saturation the ejection load is exactly 1 and the bisection load
        // is below 1.
        assert!((l.broadcast_ejection_load(r_sat) - 1.0).abs() < EPS);
        assert!(l.broadcast_bisection_load(r_sat) < 1.0);
    }

    #[test]
    fn theoretical_throughput_limit_is_1024_gbps_for_the_chip() {
        // 16 nodes x 64 bits x 1 GHz = 1024 Gb/s (Section 4.1).
        let l = MeshLimits::new(4);
        assert!((l.throughput_limit_gbps(true, 64, 1.0) - 1024.0).abs() < EPS);
        assert!((l.throughput_limit_gbps(false, 64, 1.0) - 1024.0).abs() < EPS);
    }

    #[test]
    fn energy_limits_grow_linearly_and_quadratically() {
        let e = DatapathEnergy::new(1.0, 1.0);
        let l4 = MeshLimits::new(4);
        let l8 = MeshLimits::new(8);
        // Unicast energy grows roughly linearly with k.
        let ratio_uni = l8.unicast_energy_limit_pj(e) / l4.unicast_energy_limit_pj(e);
        assert!(ratio_uni > 1.5 && ratio_uni < 2.5, "ratio was {ratio_uni}");
        // Broadcast energy grows quadratically (x4 when k doubles).
        let ratio_bc = l8.broadcast_energy_limit_pj(e) / l4.broadcast_energy_limit_pj(e);
        assert!(ratio_bc > 3.5 && ratio_bc < 4.5, "ratio was {ratio_bc}");
    }

    #[test]
    fn packet_latency_limit_adds_nic_and_serialization() {
        let l = MeshLimits::new(4);
        // Single-flit broadcast request: hops + 2 NIC cycles.
        assert!((l.packet_latency_limit(true, 1) - 7.5).abs() < EPS);
        // Five-flit unicast response: hops + 2 + 4 serialization cycles.
        assert!((l.packet_latency_limit(false, 5) - (10.0 / 3.0 + 6.0)).abs() < EPS);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_k_panics() {
        let _ = MeshLimits::new(0);
    }
}
