//! Spatial partitioning of a k×k mesh into contiguous row strips.
//!
//! The partitioned `Network::step` shards the mesh across worker threads;
//! this module answers the purely structural questions that sharding needs:
//! which rows (and therefore which node ids) each partition owns, which
//! partition a node belongs to, and which directed links cross a partition
//! boundary.
//!
//! Row strips are the shape that makes the determinism contract cheap to
//! keep. Node ids are row-major (`id = y·k + x`), so a strip of consecutive
//! rows is a *contiguous node-id range*: iterating partitions in ascending
//! order visits nodes in exactly the order a serial scan would, which is what
//! lets counters and statistics merge in fixed partition order and still be
//! bit-identical to the serial path. Every cross-partition link is a
//! North/South link between adjacent strips, so a partition exchanges
//! boundary traffic with at most two neighbours.

use std::ops::Range;

use noc_types::{Coord, Direction, NodeId, PartitionId};

use crate::mesh::{Link, Mesh};

/// A division of a k×k mesh into contiguous row-strip partitions.
///
/// Built with [`PartitionMap::rows`]; partition `p` owns rows
/// `row_start(p) .. row_start(p + 1)` and therefore the contiguous node-id
/// range [`node_range(p)`](PartitionMap::node_range).
///
/// # Examples
///
/// ```
/// use noc_topology::{Mesh, PartitionMap};
///
/// let mesh = Mesh::new(4)?;
/// let map = PartitionMap::rows(&mesh, 2);
/// assert_eq!(map.len(), 2);
/// assert_eq!(map.node_range(0), 0..8);
/// assert_eq!(map.node_range(1), 8..16);
/// assert_eq!(map.partition_of(5), 0);
/// assert_eq!(map.partition_of(12), 1);
/// # Ok::<(), noc_types::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionMap {
    k: u16,
    /// `row_starts[p] .. row_starts[p + 1]` are the rows of partition `p`;
    /// length is `len() + 1` with `row_starts[len()] == k`.
    row_starts: Vec<u16>,
}

impl PartitionMap {
    /// Splits `mesh` into at most `parts` balanced row strips.
    ///
    /// `parts` is clamped to `1..=k` (a strip must own at least one row);
    /// when `k` does not divide evenly, the first `k % parts` strips get one
    /// extra row. The split depends only on `(k, parts)` — never on thread
    /// scheduling — so a partitioned run is reproducible by construction.
    #[must_use]
    pub fn rows(mesh: &Mesh, parts: usize) -> Self {
        let k = mesh.side();
        let parts = parts.clamp(1, usize::from(k)) as u16;
        let base = k / parts;
        let extra = k % parts;
        let mut row_starts = Vec::with_capacity(usize::from(parts) + 1);
        let mut row = 0u16;
        row_starts.push(row);
        for p in 0..parts {
            row += base + u16::from(p < extra);
            row_starts.push(row);
        }
        debug_assert_eq!(row, k);
        Self { k, row_starts }
    }

    /// Number of partitions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.row_starts.len() - 1
    }

    /// Always `false`: a map owns at least one partition by construction
    /// (present for the `len`/`is_empty` API convention).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Side length of the partitioned mesh.
    #[must_use]
    pub fn side(&self) -> u16 {
        self.k
    }

    /// First row owned by partition `p` (equals the side length for
    /// `p == len()`, the one-past-the-end sentinel).
    ///
    /// # Panics
    ///
    /// Panics if `p > len()`.
    #[must_use]
    pub fn row_start(&self, p: usize) -> u16 {
        self.row_starts[p]
    }

    /// The contiguous node-id range owned by partition `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p >= len()`.
    #[must_use]
    pub fn node_range(&self, p: usize) -> Range<usize> {
        let k = usize::from(self.k);
        usize::from(self.row_starts[p]) * k..usize::from(self.row_starts[p + 1]) * k
    }

    /// The partition owning node `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` lies outside the mesh.
    #[must_use]
    pub fn partition_of(&self, node: NodeId) -> PartitionId {
        let row = node / self.k;
        assert!(
            row < self.k,
            "node {node} outside a {k}x{k} mesh",
            k = self.k
        );
        // At most 16 partitions on a k<=16 mesh: a linear scan beats a
        // binary search and the branch predictor learns it instantly.
        let mut p = 0u16;
        while self.row_starts[usize::from(p) + 1] <= row {
            p += 1;
        }
        p
    }

    /// Every directed link leaving partition `p` for another partition.
    ///
    /// With row strips these are exactly the North links of `p`'s top row
    /// and the South links of its bottom row — `k` links per interior
    /// boundary side.
    ///
    /// # Panics
    ///
    /// Panics if `p >= len()`.
    #[must_use]
    pub fn boundary_links(&self, mesh: &Mesh, p: usize) -> Vec<Link> {
        assert!(p < self.len(), "partition {p} out of range");
        let mut links = Vec::new();
        let (lo, hi) = (self.row_starts[p], self.row_starts[p + 1]);
        for x in 0..self.k {
            for (row, dir) in [(hi - 1, Direction::North), (lo, Direction::South)] {
                let coord = Coord::new(x, row);
                if let Some(next) = mesh.neighbor(coord, dir) {
                    if self.partition_of(mesh.id_of(next)) != p as PartitionId {
                        links.push(Link {
                            from: mesh.id_of(coord),
                            to: mesh.id_of(next),
                            direction: dir,
                        });
                    }
                }
            }
        }
        links
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_the_mesh_exactly_once() {
        for k in [1u16, 3, 4, 7, 8, 16] {
            let mesh = Mesh::new(k).unwrap();
            for parts in 1..=usize::from(k) + 2 {
                let map = PartitionMap::rows(&mesh, parts);
                assert!(map.len() <= usize::from(k));
                let mut next = 0usize;
                for p in 0..map.len() {
                    let range = map.node_range(p);
                    assert_eq!(range.start, next, "k={k} parts={parts} gap at {p}");
                    assert!(!range.is_empty(), "k={k} parts={parts} empty strip {p}");
                    next = range.end;
                    for node in range {
                        assert_eq!(map.partition_of(node as NodeId), p as PartitionId);
                    }
                }
                assert_eq!(next, mesh.node_count());
            }
        }
    }

    #[test]
    fn balanced_split_spreads_the_remainder_over_leading_strips() {
        let mesh = Mesh::new(7).unwrap();
        let map = PartitionMap::rows(&mesh, 3);
        // 7 rows over 3 strips: 3 + 2 + 2.
        assert_eq!(map.node_range(0), 0..21);
        assert_eq!(map.node_range(1), 21..35);
        assert_eq!(map.node_range(2), 35..49);
    }

    #[test]
    fn parts_are_clamped_to_the_row_count() {
        let mesh = Mesh::new(4).unwrap();
        assert_eq!(PartitionMap::rows(&mesh, 0).len(), 1);
        assert_eq!(PartitionMap::rows(&mesh, 9).len(), 4);
    }

    #[test]
    fn boundary_links_are_exactly_the_north_south_strip_crossings() {
        let mesh = Mesh::new(4).unwrap();
        let map = PartitionMap::rows(&mesh, 2);
        // Interior partitions of a 2-way split each have one boundary side
        // with k links.
        let bottom = map.boundary_links(&mesh, 0);
        let top = map.boundary_links(&mesh, 1);
        assert_eq!(bottom.len(), 4);
        assert_eq!(top.len(), 4);
        for link in bottom.iter().chain(top.iter()) {
            assert!(matches!(
                link.direction,
                Direction::North | Direction::South
            ));
            assert_ne!(
                map.partition_of(link.from),
                map.partition_of(link.to),
                "boundary link must cross partitions"
            );
        }
        // A middle strip of a 3-way 6x6 split has both sides.
        let mesh6 = Mesh::new(6).unwrap();
        let map6 = PartitionMap::rows(&mesh6, 3);
        assert_eq!(map6.boundary_links(&mesh6, 1).len(), 12);
    }

    #[test]
    fn single_partition_has_no_boundaries() {
        let mesh = Mesh::new(4).unwrap();
        let map = PartitionMap::rows(&mesh, 1);
        assert_eq!(map.len(), 1);
        assert!(map.boundary_links(&mesh, 0).is_empty());
    }
}
