//! Spatial partitioning of a k×k mesh into contiguous row strips or 2-D
//! tile grids.
//!
//! The partitioned `Network::step` shards the mesh across worker threads;
//! this module answers the purely structural questions that sharding needs:
//! which rows and columns (and therefore which node ids) each partition owns,
//! which partition a node belongs to, which partitions are grid neighbours,
//! and which directed links cross a partition boundary.
//!
//! Two shapes are supported, both products of axis-aligned cuts:
//!
//! - **Row strips** ([`PartitionMap::rows`]): node ids are row-major
//!   (`id = y·k + x`), so a strip of consecutive rows is a *contiguous
//!   node-id range* and every cut link is a North/South link between
//!   adjacent strips.
//! - **Tiles** ([`PartitionMap::tiles`]): the row axis *and* the column axis
//!   are cut, producing a `rows × cols` grid of rectangular tiles. A tile's
//!   nodes are no longer id-contiguous, but each tile still owns a
//!   rectangular [`TileRegion`] with a fixed node-ascending local order, and
//!   every cut link leaves through one of at most four grid neighbours.
//!
//! Both shapes also come in *weighted* variants
//! ([`PartitionMap::weighted_rows`], [`PartitionMap::weighted_tiles`]) that
//! place the cuts by a deterministic greedy prefix split over per-row /
//! per-column activity weights: the cut positions are a pure function of
//! `(k, parts, weights)`, never of thread scheduling, which is what lets the
//! load-aware repartitioning upstream keep the partitioned ≡ serial
//! bit-identity contract.

use std::ops::Range;

use noc_types::{Direction, NodeId, PartitionId};

use crate::mesh::{Link, Mesh};

/// The rectangular node region owned by one partition of a [`PartitionMap`].
///
/// A region covers columns `col0..col1` of rows `row0..row1` in a k×k mesh.
/// Its nodes have a fixed *local order* — row-major within the rectangle —
/// which ascends with global node id, so walking a region's locals visits
/// nodes in exactly the order a serial scan restricted to the region would.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileRegion {
    k: u16,
    row0: u16,
    row1: u16,
    col0: u16,
    col1: u16,
}

impl TileRegion {
    /// Side length of the mesh this region belongs to.
    #[must_use]
    pub fn side(&self) -> u16 {
        self.k
    }

    /// First row of the region.
    #[must_use]
    pub fn row0(&self) -> u16 {
        self.row0
    }

    /// One past the last row of the region.
    #[must_use]
    pub fn row1(&self) -> u16 {
        self.row1
    }

    /// First column of the region.
    #[must_use]
    pub fn col0(&self) -> u16 {
        self.col0
    }

    /// One past the last column of the region.
    #[must_use]
    pub fn col1(&self) -> u16 {
        self.col1
    }

    /// Number of columns in the region.
    #[must_use]
    pub fn width(&self) -> usize {
        usize::from(self.col1 - self.col0)
    }

    /// Number of rows in the region.
    #[must_use]
    pub fn height(&self) -> usize {
        usize::from(self.row1 - self.row0)
    }

    /// Number of nodes in the region (always at least 1).
    #[must_use]
    pub fn len(&self) -> usize {
        self.width() * self.height()
    }

    /// Always `false`: regions own at least one node by construction.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether global node id `node` lies inside the region.
    #[must_use]
    pub fn contains(&self, node: NodeId) -> bool {
        let (x, y) = (node % self.k, node / self.k);
        y >= self.row0 && y < self.row1 && x >= self.col0 && x < self.col1
    }

    /// Local index of global node `node` (row-major within the region).
    ///
    /// # Panics
    ///
    /// Panics if `node` lies outside the region.
    #[must_use]
    pub fn local_of(&self, node: NodeId) -> usize {
        assert!(self.contains(node), "node {node} outside region {self:?}");
        let (x, y) = (node % self.k, node / self.k);
        usize::from(y - self.row0) * self.width() + usize::from(x - self.col0)
    }

    /// Global node id of local index `local`.
    ///
    /// # Panics
    ///
    /// Panics if `local >= len()`.
    #[must_use]
    pub fn node_of(&self, local: usize) -> NodeId {
        assert!(local < self.len(), "local {local} outside region {self:?}");
        let y = self.row0 + (local / self.width()) as u16;
        let x = self.col0 + (local % self.width()) as u16;
        y * self.k + x
    }

    /// Iterates the region's global node ids in local (ascending) order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.len()).map(|local| self.node_of(local))
    }
}

/// A division of a k×k mesh into an axis-aligned grid of rectangular
/// partitions (row strips are the one-column special case).
///
/// Built with [`PartitionMap::rows`] / [`PartitionMap::tiles`] or their
/// weighted variants. Partition `p` of a `rows × cols` grid sits at tile row
/// `p / cols`, tile column `p % cols` and owns the [`TileRegion`] returned
/// by [`region(p)`](PartitionMap::region).
///
/// # Examples
///
/// ```
/// use noc_topology::{Mesh, PartitionMap};
///
/// let mesh = Mesh::new(4)?;
/// let map = PartitionMap::rows(&mesh, 2);
/// assert_eq!(map.len(), 2);
/// assert_eq!(map.node_range(0), 0..8);
/// assert_eq!(map.node_range(1), 8..16);
/// assert_eq!(map.partition_of(5), 0);
/// assert_eq!(map.partition_of(12), 1);
///
/// let tiles = PartitionMap::tiles(&mesh, 2, 2);
/// assert_eq!(tiles.len(), 4);
/// assert_eq!(tiles.partition_of(0), 0);
/// assert_eq!(tiles.partition_of(3), 1);
/// assert_eq!(tiles.partition_of(15), 3);
/// # Ok::<(), noc_types::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionMap {
    k: u16,
    /// `row_starts[r] .. row_starts[r + 1]` are the mesh rows of tile row
    /// `r`; length is `tile_rows() + 1` with `row_starts[tile_rows()] == k`.
    row_starts: Vec<u16>,
    /// `col_starts[c] .. col_starts[c + 1]` are the mesh columns of tile
    /// column `c`; `[0, k]` for row strips.
    col_starts: Vec<u16>,
}

/// Splits `0..len` into `parts` contiguous chunks by a deterministic greedy
/// prefix walk over `weights`: each chunk takes lines while its accumulated
/// weight stays within its fair share of the remaining weight, and every
/// chunk keeps at least one line. Falls back to the balanced even split when
/// the total weight is zero.
fn split_axis_weighted(len: u16, parts: u16, weights: &[u64]) -> Vec<u16> {
    debug_assert_eq!(weights.len(), usize::from(len));
    debug_assert!((1..=len).contains(&parts));
    let total: u128 = weights.iter().map(|&w| u128::from(w)).sum();
    if total == 0 {
        return split_axis_even(len, parts);
    }
    let mut starts = Vec::with_capacity(usize::from(parts) + 1);
    starts.push(0u16);
    let mut start = 0u16;
    let mut remaining_weight = total;
    for p in 0..parts {
        let remaining_parts = u128::from(parts - p);
        let end = if p + 1 == parts {
            len
        } else {
            // Each of the chunks still to be placed needs at least one line.
            let max_end = len - (parts - p - 1);
            let mut end = start + 1;
            let mut acc = u128::from(weights[usize::from(start)]);
            while end < max_end
                && (acc + u128::from(weights[usize::from(end)])) * remaining_parts
                    <= remaining_weight
            {
                acc += u128::from(weights[usize::from(end)]);
                end += 1;
            }
            remaining_weight -= acc;
            end
        };
        starts.push(end);
        start = end;
    }
    debug_assert_eq!(*starts.last().unwrap(), len);
    starts
}

/// The balanced even split of `0..len` into `parts` chunks: the first
/// `len % parts` chunks get one extra line.
fn split_axis_even(len: u16, parts: u16) -> Vec<u16> {
    let base = len / parts;
    let extra = len % parts;
    let mut starts = Vec::with_capacity(usize::from(parts) + 1);
    let mut at = 0u16;
    starts.push(at);
    for p in 0..parts {
        at += base + u16::from(p < extra);
        starts.push(at);
    }
    debug_assert_eq!(at, len);
    starts
}

impl PartitionMap {
    /// Splits `mesh` into at most `parts` balanced row strips.
    ///
    /// `parts` is clamped to `1..=k` (a strip must own at least one row);
    /// when `k` does not divide evenly, the first `k % parts` strips get one
    /// extra row. The split depends only on `(k, parts)` — never on thread
    /// scheduling — so a partitioned run is reproducible by construction.
    #[must_use]
    pub fn rows(mesh: &Mesh, parts: usize) -> Self {
        let k = mesh.side();
        let parts = parts.clamp(1, usize::from(k)) as u16;
        Self {
            k,
            row_starts: split_axis_even(k, parts),
            col_starts: vec![0, k],
        }
    }

    /// Splits `mesh` into a grid of at most `rows × cols` balanced tiles.
    ///
    /// Each axis is clamped to `1..=k` and split evenly (leading tile
    /// rows/columns absorb the remainder, as in [`rows`](Self::rows)). The
    /// grid depends only on `(k, rows, cols)`.
    #[must_use]
    pub fn tiles(mesh: &Mesh, rows: usize, cols: usize) -> Self {
        let k = mesh.side();
        let rows = rows.clamp(1, usize::from(k)) as u16;
        let cols = cols.clamp(1, usize::from(k)) as u16;
        Self {
            k,
            row_starts: split_axis_even(k, rows),
            col_starts: split_axis_even(k, cols),
        }
    }

    /// Splits `mesh` into at most `parts` row strips whose boundaries are
    /// placed by per-node activity `weights` (indexed by node id, length
    /// `k²`): each strip greedily takes rows while its accumulated weight
    /// stays within its fair share of the remaining total, so hot rows get
    /// narrow strips. Falls back to the even split when all weights are zero.
    ///
    /// The cut positions are a pure function of `(k, parts, weights)`.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != mesh.node_count()`.
    #[must_use]
    pub fn weighted_rows(mesh: &Mesh, parts: usize, weights: &[u64]) -> Self {
        Self::weighted_tiles(mesh, parts, 1, weights)
    }

    /// Splits `mesh` into a grid of at most `rows × cols` tiles whose row
    /// and column boundaries are placed independently by the per-row and
    /// per-column sums of the per-node activity `weights` (indexed by node
    /// id, length `k²`). See [`weighted_rows`](Self::weighted_rows).
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != mesh.node_count()`.
    #[must_use]
    pub fn weighted_tiles(mesh: &Mesh, rows: usize, cols: usize, weights: &[u64]) -> Self {
        let k = mesh.side();
        assert_eq!(
            weights.len(),
            mesh.node_count(),
            "one weight per node required"
        );
        let rows = rows.clamp(1, usize::from(k)) as u16;
        let cols = cols.clamp(1, usize::from(k)) as u16;
        let mut row_sums = vec![0u64; usize::from(k)];
        let mut col_sums = vec![0u64; usize::from(k)];
        for (node, &w) in weights.iter().enumerate() {
            row_sums[node / usize::from(k)] = row_sums[node / usize::from(k)].saturating_add(w);
            col_sums[node % usize::from(k)] = col_sums[node % usize::from(k)].saturating_add(w);
        }
        Self {
            k,
            row_starts: split_axis_weighted(k, rows, &row_sums),
            col_starts: split_axis_weighted(k, cols, &col_sums),
        }
    }

    /// Number of partitions (`tile_rows() × tile_cols()`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.tile_rows() * self.tile_cols()
    }

    /// Always `false`: a map owns at least one partition by construction
    /// (present for the `len`/`is_empty` API convention).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Side length of the partitioned mesh.
    #[must_use]
    pub fn side(&self) -> u16 {
        self.k
    }

    /// Number of tile rows in the partition grid.
    #[must_use]
    pub fn tile_rows(&self) -> usize {
        self.row_starts.len() - 1
    }

    /// Number of tile columns in the partition grid (1 for row strips).
    #[must_use]
    pub fn tile_cols(&self) -> usize {
        self.col_starts.len() - 1
    }

    /// Whether this map is a pure row-strip split (one tile column), i.e.
    /// every partition owns a contiguous node-id range.
    #[must_use]
    pub fn is_strips(&self) -> bool {
        self.tile_cols() == 1
    }

    /// First row owned by tile row `p` (equals the side length for
    /// `p == tile_rows()`, the one-past-the-end sentinel).
    ///
    /// # Panics
    ///
    /// Panics if `p > tile_rows()`.
    #[must_use]
    pub fn row_start(&self, p: usize) -> u16 {
        self.row_starts[p]
    }

    /// The rectangular node region owned by partition `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p >= len()`.
    #[must_use]
    pub fn region(&self, p: usize) -> TileRegion {
        assert!(p < self.len(), "partition {p} out of range");
        let (r, c) = (p / self.tile_cols(), p % self.tile_cols());
        TileRegion {
            k: self.k,
            row0: self.row_starts[r],
            row1: self.row_starts[r + 1],
            col0: self.col_starts[c],
            col1: self.col_starts[c + 1],
        }
    }

    /// The contiguous node-id range owned by strip partition `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p >= len()` or if the map is a multi-column tile grid
    /// (tile regions are not id-contiguous; use [`region`](Self::region)).
    #[must_use]
    pub fn node_range(&self, p: usize) -> Range<usize> {
        assert!(
            self.is_strips(),
            "node_range is only defined for row-strip maps; use region()"
        );
        let k = usize::from(self.k);
        usize::from(self.row_starts[p]) * k..usize::from(self.row_starts[p + 1]) * k
    }

    /// The partition owning node `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` lies outside the mesh.
    #[must_use]
    pub fn partition_of(&self, node: NodeId) -> PartitionId {
        let (x, y) = (node % self.k, node / self.k);
        assert!(y < self.k, "node {node} outside a {k}x{k} mesh", k = self.k);
        // At most 16 cuts per axis on a k<=16 mesh: a linear scan beats a
        // binary search and the branch predictor learns it instantly.
        let mut r = 0usize;
        while self.row_starts[r + 1] <= y {
            r += 1;
        }
        let mut c = 0usize;
        while self.col_starts[c + 1] <= x {
            c += 1;
        }
        (r * self.tile_cols() + c) as PartitionId
    }

    /// The grid neighbour of partition `p` one tile over in direction `dir`
    /// (`None` at the grid edge). Because cuts are axis-aligned and span the
    /// full mesh, every cut link leaving `p` in direction `dir` lands in
    /// exactly this partition.
    ///
    /// # Panics
    ///
    /// Panics if `p >= len()`.
    #[must_use]
    pub fn neighbor(&self, p: usize, dir: Direction) -> Option<PartitionId> {
        assert!(p < self.len(), "partition {p} out of range");
        let cols = self.tile_cols();
        let (r, c) = (p / cols, p % cols);
        let (nr, nc) = match dir {
            Direction::North => (r.checked_add(1).filter(|&n| n < self.tile_rows())?, c),
            Direction::South => (r.checked_sub(1)?, c),
            Direction::East => (r, c.checked_add(1).filter(|&n| n < cols)?),
            Direction::West => (r, c.checked_sub(1)?),
        };
        Some((nr * cols + nc) as PartitionId)
    }

    /// Every directed link leaving partition `p` for another partition, in
    /// the deterministic order (owning node ascending, then direction in
    /// port order).
    ///
    /// For row strips these are exactly the North links of `p`'s top row and
    /// the South links of its bottom row; tile grids add the East/West links
    /// of the vertical cuts.
    ///
    /// # Panics
    ///
    /// Panics if `p >= len()`.
    #[must_use]
    pub fn boundary_links(&self, mesh: &Mesh, p: usize) -> Vec<Link> {
        let region = self.region(p);
        let mut links = Vec::new();
        for node in region.nodes() {
            let coord = mesh.coord_of(node);
            for dir in Direction::ALL {
                if let Some(next) = mesh.neighbor(coord, dir) {
                    if self.partition_of(mesh.id_of(next)) != p as PartitionId {
                        links.push(Link {
                            from: node,
                            to: mesh.id_of(next),
                            direction: dir,
                        });
                    }
                }
            }
        }
        links
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_the_mesh_exactly_once() {
        for k in [1u16, 3, 4, 7, 8, 16] {
            let mesh = Mesh::new(k).unwrap();
            for parts in 1..=usize::from(k) + 2 {
                let map = PartitionMap::rows(&mesh, parts);
                assert!(map.len() <= usize::from(k));
                let mut next = 0usize;
                for p in 0..map.len() {
                    let range = map.node_range(p);
                    assert_eq!(range.start, next, "k={k} parts={parts} gap at {p}");
                    assert!(!range.is_empty(), "k={k} parts={parts} empty strip {p}");
                    next = range.end;
                    for node in range {
                        assert_eq!(map.partition_of(node as NodeId), p as PartitionId);
                    }
                }
                assert_eq!(next, mesh.node_count());
            }
        }
    }

    #[test]
    fn tile_regions_cover_the_mesh_exactly_once() {
        for k in [1u16, 4, 5, 8, 16] {
            let mesh = Mesh::new(k).unwrap();
            for rows in 1..=3usize {
                for cols in 1..=3usize {
                    let map = PartitionMap::tiles(&mesh, rows, cols);
                    let mut owner = vec![usize::MAX; mesh.node_count()];
                    for p in 0..map.len() {
                        let region = map.region(p);
                        for (local, node) in region.nodes().enumerate() {
                            assert_eq!(owner[usize::from(node)], usize::MAX, "double cover");
                            owner[usize::from(node)] = p;
                            assert_eq!(map.partition_of(node), p as PartitionId);
                            assert_eq!(region.local_of(node), local);
                            assert_eq!(region.node_of(local), node);
                        }
                    }
                    assert!(owner.iter().all(|&p| p != usize::MAX), "full cover");
                }
            }
        }
    }

    #[test]
    fn region_local_order_ascends_with_global_node_id() {
        let mesh = Mesh::new(8).unwrap();
        let map = PartitionMap::tiles(&mesh, 2, 2);
        for p in 0..map.len() {
            let nodes: Vec<NodeId> = map.region(p).nodes().collect();
            assert!(nodes.windows(2).all(|w| w[0] < w[1]), "partition {p}");
        }
    }

    #[test]
    fn balanced_split_spreads_the_remainder_over_leading_strips() {
        let mesh = Mesh::new(7).unwrap();
        let map = PartitionMap::rows(&mesh, 3);
        // 7 rows over 3 strips: 3 + 2 + 2.
        assert_eq!(map.node_range(0), 0..21);
        assert_eq!(map.node_range(1), 21..35);
        assert_eq!(map.node_range(2), 35..49);
    }

    #[test]
    fn parts_are_clamped_to_the_row_count() {
        let mesh = Mesh::new(4).unwrap();
        assert_eq!(PartitionMap::rows(&mesh, 0).len(), 1);
        assert_eq!(PartitionMap::rows(&mesh, 9).len(), 4);
        assert_eq!(PartitionMap::tiles(&mesh, 0, 9).len(), 4);
        assert_eq!(PartitionMap::tiles(&mesh, 9, 9).len(), 16);
    }

    #[test]
    fn weighted_rows_narrow_the_hot_strip() {
        let mesh = Mesh::new(8).unwrap();
        // All the weight on row 2: the strip containing it shrinks to that
        // single row and the remaining strips share the cold rows.
        let mut weights = vec![0u64; mesh.node_count()];
        for x in 0..8usize {
            weights[2 * 8 + x] = 1_000;
        }
        let map = PartitionMap::weighted_rows(&mesh, 4, &weights);
        assert_eq!(map.len(), 4);
        let hot = map.partition_of(2 * 8) as usize;
        let hot_region = map.region(hot);
        assert_eq!(hot_region.height(), 1, "hot strip shrinks to one row");
        // Every node is still owned exactly once.
        let mut seen = 0usize;
        for p in 0..map.len() {
            seen += map.region(p).len();
        }
        assert_eq!(seen, mesh.node_count());
    }

    #[test]
    fn weighted_split_with_zero_weights_matches_the_even_split() {
        let mesh = Mesh::new(8).unwrap();
        let weights = vec![0u64; mesh.node_count()];
        assert_eq!(
            PartitionMap::weighted_tiles(&mesh, 2, 2, &weights),
            PartitionMap::tiles(&mesh, 2, 2)
        );
        assert_eq!(
            PartitionMap::weighted_rows(&mesh, 3, &weights),
            PartitionMap::rows(&mesh, 3)
        );
    }

    #[test]
    fn grid_neighbors_follow_the_direction_convention() {
        let mesh = Mesh::new(8).unwrap();
        let map = PartitionMap::tiles(&mesh, 2, 2);
        // Grid layout (tile row r = y band, tile col c = x band):
        //   p0 = (r0,c0)  p1 = (r0,c1)
        //   p2 = (r1,c0)  p3 = (r1,c1)
        assert_eq!(map.neighbor(0, Direction::North), Some(2));
        assert_eq!(map.neighbor(0, Direction::East), Some(1));
        assert_eq!(map.neighbor(0, Direction::South), None);
        assert_eq!(map.neighbor(0, Direction::West), None);
        assert_eq!(map.neighbor(3, Direction::South), Some(1));
        assert_eq!(map.neighbor(3, Direction::West), Some(2));
    }

    #[test]
    fn boundary_links_are_exactly_the_north_south_strip_crossings() {
        let mesh = Mesh::new(4).unwrap();
        let map = PartitionMap::rows(&mesh, 2);
        // Interior partitions of a 2-way split each have one boundary side
        // with k links.
        let bottom = map.boundary_links(&mesh, 0);
        let top = map.boundary_links(&mesh, 1);
        assert_eq!(bottom.len(), 4);
        assert_eq!(top.len(), 4);
        for link in bottom.iter().chain(top.iter()) {
            assert!(matches!(
                link.direction,
                Direction::North | Direction::South
            ));
            assert_ne!(
                map.partition_of(link.from),
                map.partition_of(link.to),
                "boundary link must cross partitions"
            );
        }
        // A middle strip of a 3-way 6x6 split has both sides.
        let mesh6 = Mesh::new(6).unwrap();
        let map6 = PartitionMap::rows(&mesh6, 3);
        assert_eq!(map6.boundary_links(&mesh6, 1).len(), 12);
    }

    #[test]
    fn tile_boundary_links_include_the_vertical_cuts() {
        let mesh = Mesh::new(4).unwrap();
        let map = PartitionMap::tiles(&mesh, 2, 2);
        // Each corner tile of a 2x2 grid on 4x4 has 2 East/West + 2
        // North/South crossings.
        for p in 0..4 {
            let links = map.boundary_links(&mesh, p);
            assert_eq!(links.len(), 4, "partition {p}");
            let vertical = links
                .iter()
                .filter(|l| matches!(l.direction, Direction::East | Direction::West))
                .count();
            assert_eq!(vertical, 2, "partition {p} vertical cuts");
            for link in &links {
                assert_eq!(
                    map.partition_of(link.to),
                    map.neighbor(p, link.direction).unwrap(),
                    "cut links land in the grid neighbour"
                );
            }
        }
    }

    #[test]
    fn single_partition_has_no_boundaries() {
        let mesh = Mesh::new(4).unwrap();
        let map = PartitionMap::rows(&mesh, 1);
        assert_eq!(map.len(), 1);
        assert!(map.boundary_links(&mesh, 0).is_empty());
    }
}
