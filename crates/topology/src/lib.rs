//! # noc-topology
//!
//! Mesh topology, routing and the *theoretical mesh limits* of the DAC 2012
//! paper "Approaching the Theoretical Limits of a Mesh NoC with a 16-Node
//! Chip Prototype in 45nm SOI" (Park et al.).
//!
//! The crate provides three layers:
//!
//! * [`Mesh`] — a k×k mesh topology: neighbours, links, bisection and
//!   ejection link enumeration.
//! * [`routing`] — dimension-ordered XY unicast routing and the XY-tree
//!   multicast routing used by the chip (deadlock-free, fork-on-demand).
//! * [`PartitionMap`] — row-strip and 2-D tile spatial partitioning for the
//!   partitioned parallel stepper ([`TileRegion`] node ownership,
//!   weighted/load-aware cut placement, boundary-link enumeration).
//! * [`limits`] — closed-form theoretical limits for latency, throughput and
//!   energy under uniform-random unicast and broadcast traffic (Table 1 of
//!   the paper), and [`chips`] — the analytical zero-load latency / channel
//!   load model used for the prior-chip comparison (Table 2).
//!
//! # Examples
//!
//! ```
//! use noc_topology::{limits::MeshLimits, Mesh};
//!
//! let mesh = Mesh::new(4)?;
//! let limits = MeshLimits::new(4);
//! // Average unicast hop count of a 4x4 mesh is 2(k+1)/3 = 10/3.
//! assert!((limits.unicast_average_hops() - 10.0 / 3.0).abs() < 1e-12);
//! assert_eq!(mesh.bisection_links(), 4);
//! # Ok::<(), noc_types::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chips;
pub mod limits;
mod mesh;
mod partition;
pub mod routing;

pub use mesh::{Link, Mesh};
pub use partition::{PartitionMap, TileRegion};
