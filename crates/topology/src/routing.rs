//! Dimension-ordered XY routing and XY-tree multicast routing.
//!
//! The chip routes unicasts with deterministic XY (dimension-ordered)
//! routing: a flit first travels along the X dimension until it reaches the
//! destination column, then along Y. Multicasts and broadcasts use a
//! *dimension-ordered XY-tree*: the flit travels as a single copy for as long
//! as its remaining destinations share the next hop, and the router forks it
//! (replicates it in the crossbar) only when destinations diverge. Because
//! every branch of the tree is itself an XY route, the tree inherits XY's
//! deadlock freedom.

use noc_types::{Coord, DestinationSet, NodeId, Port, PortSet, PORT_COUNT};

use crate::mesh::Mesh;

/// The output port a flit at `current` must take to make progress towards
/// `dest` under XY routing, or [`Port::Local`] when it has arrived.
///
/// # Examples
///
/// ```
/// use noc_topology::{routing, Mesh};
/// use noc_types::{Coord, Port};
///
/// let mesh = Mesh::new(4)?;
/// assert_eq!(routing::xy_next_port(&mesh, Coord::new(0, 0), Coord::new(2, 3)), Port::East);
/// assert_eq!(routing::xy_next_port(&mesh, Coord::new(2, 0), Coord::new(2, 3)), Port::North);
/// assert_eq!(routing::xy_next_port(&mesh, Coord::new(2, 3), Coord::new(2, 3)), Port::Local);
/// # Ok::<(), noc_types::ConfigError>(())
/// ```
#[must_use]
pub fn xy_next_port(mesh: &Mesh, current: Coord, dest: Coord) -> Port {
    debug_assert!(mesh.contains(current) && mesh.contains(dest));
    if dest.x > current.x {
        Port::East
    } else if dest.x < current.x {
        Port::West
    } else if dest.y > current.y {
        Port::North
    } else if dest.y < current.y {
        Port::South
    } else {
        Port::Local
    }
}

/// The full XY route from `from` to `to`, as the sequence of nodes visited
/// (including both endpoints).
#[must_use]
pub fn xy_route(mesh: &Mesh, from: Coord, to: Coord) -> Vec<Coord> {
    let mut route = vec![from];
    let mut current = from;
    while current != to {
        let port = xy_next_port(mesh, current, to);
        let dir = port
            .direction()
            .expect("xy_next_port only returns Local at the destination");
        current = mesh
            .neighbor(current, dir)
            .expect("XY routing never walks off the mesh");
        route.push(current);
    }
    route
}

/// One branch of a multicast fork: the output port to drive and the subset of
/// destinations served through that port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteBranch {
    /// Output port to replicate the flit onto.
    pub port: Port,
    /// Destinations reachable through `port` (for [`Port::Local`], the
    /// current node itself).
    pub destinations: DestinationSet,
}

/// The branches of one multicast fork, stored inline (a flit forks onto at
/// most [`PORT_COUNT`] output ports, so the list never heap-allocates —
/// this type sits on the router's per-cycle fast path).
///
/// Dereferences to a slice of [`RouteBranch`], so it iterates and indexes
/// like the `Vec` it replaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchList {
    branches: [RouteBranch; PORT_COUNT],
    len: usize,
}

impl Default for BranchList {
    fn default() -> Self {
        Self::new()
    }
}

impl BranchList {
    /// An empty branch list.
    #[must_use]
    pub fn new() -> Self {
        Self {
            branches: [RouteBranch {
                port: Port::Local,
                destinations: DestinationSet::empty(),
            }; PORT_COUNT],
            len: 0,
        }
    }

    /// Appends a branch.
    ///
    /// # Panics
    ///
    /// Panics if the list already holds [`PORT_COUNT`] branches.
    pub fn push(&mut self, branch: RouteBranch) {
        assert!(self.len < PORT_COUNT, "a flit forks onto at most 5 ports");
        self.branches[self.len] = branch;
        self.len += 1;
    }

    /// The set of output ports requested across all branches.
    #[must_use]
    pub fn ports(&self) -> PortSet {
        self.iter().map(|b| b.port).collect()
    }
}

impl std::ops::Deref for BranchList {
    type Target = [RouteBranch];

    fn deref(&self) -> &[RouteBranch] {
        &self.branches[..self.len]
    }
}

impl IntoIterator for BranchList {
    type Item = RouteBranch;
    type IntoIter = std::iter::Take<std::array::IntoIter<RouteBranch, PORT_COUNT>>;

    fn into_iter(self) -> Self::IntoIter {
        self.branches.into_iter().take(self.len)
    }
}

impl<'a> IntoIterator for &'a BranchList {
    type Item = &'a RouteBranch;
    type IntoIter = std::slice::Iter<'a, RouteBranch>;

    fn into_iter(self) -> Self::IntoIter {
        self.branches[..self.len].iter()
    }
}

/// Computes the set of output ports (and per-port destination subsets) a flit
/// at `current` with destination set `dests` must be replicated onto, under
/// dimension-ordered XY-tree routing.
///
/// Unicast flits always produce exactly one branch; broadcast flits produce
/// up to five (the four directions plus local ejection).
///
/// # Examples
///
/// ```
/// use noc_topology::{routing, Mesh};
/// use noc_types::{Coord, DestinationSet, Port};
///
/// let mesh = Mesh::new(4)?;
/// // A broadcast from the node at (1, 1), observed at the source router:
/// let dests = DestinationSet::broadcast(4, Coord::new(1, 1).node_id(4));
/// let branches = routing::multicast_branches(&mesh, Coord::new(1, 1), &dests);
/// // Forks East, West (to cover other columns) and North, South (own column).
/// assert_eq!(branches.len(), 4);
/// assert!(branches.iter().all(|b| b.port != Port::Local));
/// # Ok::<(), noc_types::ConfigError>(())
/// ```
#[must_use]
pub fn multicast_branches(mesh: &Mesh, current: Coord, dests: &DestinationSet) -> BranchList {
    let mut by_port: [DestinationSet; PORT_COUNT] = [DestinationSet::empty(); PORT_COUNT];
    for dest_id in dests.iter() {
        let dest = mesh.coord_of(dest_id);
        let port = xy_next_port(mesh, current, dest);
        by_port[port.index()].insert(dest_id);
    }
    let mut branches = BranchList::new();
    for port in Port::ALL {
        let destinations = by_port[port.index()];
        if !destinations.is_empty() {
            branches.push(RouteBranch { port, destinations });
        }
    }
    branches
}

/// The set of output ports requested by a flit at `current` with destination
/// set `dests` (the 5-bit output-port request vector of mSA-I).
#[must_use]
pub fn requested_ports(mesh: &Mesh, current: Coord, dests: &DestinationSet) -> PortSet {
    multicast_branches(mesh, current, dests).ports()
}

/// Precomputed XY-routing port partition of one observer coordinate.
///
/// For a fixed `current` node, XY dimension-order routing sends every
/// destination of the mesh through one specific output port — so the five
/// per-port destination subsets of [`multicast_branches`] are intersections
/// of the flit's destination set with five *fixed* masks. Components that
/// route from a fixed coordinate every cycle (a router's fork paths, a NIC's
/// lookahead generation) precompute the masks once and turn the per-flit
/// per-destination scan into a handful of word-wide ANDs.
///
/// [`branches`](Self::branches) and [`ports`](Self::ports) are bit-exact
/// drop-in replacements for [`multicast_branches`] / [`requested_ports`] at
/// the precomputed coordinate (same branch order, same subsets); a test pins
/// the equivalence for every observer of the largest supported mesh.
///
/// # Examples
///
/// ```
/// use noc_topology::{routing, Mesh};
/// use noc_types::{Coord, DestinationSet};
///
/// let mesh = Mesh::new(4)?;
/// let at = Coord::new(1, 1);
/// let masks = routing::XyPortMasks::new(&mesh, at);
/// let dests = DestinationSet::broadcast(4, at.node_id(4));
/// assert_eq!(masks.branches(&dests), routing::multicast_branches(&mesh, at, &dests));
/// # Ok::<(), noc_types::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct XyPortMasks {
    masks: [DestinationSet; PORT_COUNT],
}

impl XyPortMasks {
    /// Builds the per-port destination masks of the observer at `current`.
    #[must_use]
    pub fn new(mesh: &Mesh, current: Coord) -> Self {
        let mut masks = [DestinationSet::empty(); PORT_COUNT];
        for dest in mesh.nodes() {
            let port = xy_next_port(mesh, current, dest);
            masks[port.index()].insert(mesh.id_of(dest));
        }
        Self { masks }
    }

    /// [`multicast_branches`] at the precomputed coordinate.
    #[must_use]
    pub fn branches(&self, dests: &DestinationSet) -> BranchList {
        let mut branches = BranchList::new();
        for port in Port::ALL {
            let destinations = dests.intersection(&self.masks[port.index()]);
            if !destinations.is_empty() {
                branches.push(RouteBranch { port, destinations });
            }
        }
        branches
    }

    /// [`requested_ports`] at the precomputed coordinate.
    #[must_use]
    pub fn ports(&self, dests: &DestinationSet) -> PortSet {
        let mut ports = PortSet::empty();
        for port in Port::ALL {
            if !dests.intersection(&self.masks[port.index()]).is_empty() {
                ports.insert(port);
            }
        }
        ports
    }
}

/// Number of link traversals an XY-tree multicast from `source` to `dests`
/// performs in total (used by the theoretical energy accounting and by tests
/// that check the tree never re-visits a link).
#[must_use]
pub fn multicast_link_traversals(mesh: &Mesh, source: Coord, dests: &DestinationSet) -> usize {
    // Walk the tree: breadth-first expansion of (node, remaining destinations).
    let mut frontier = vec![(source, *dests)];
    let mut traversals = 0usize;
    while let Some((node, remaining)) = frontier.pop() {
        for branch in multicast_branches(mesh, node, &remaining) {
            match branch.port.direction() {
                Some(dir) => {
                    let next = mesh
                        .neighbor(node, dir)
                        .expect("XY-tree routing never walks off the mesh");
                    traversals += 1;
                    frontier.push((next, branch.destinations));
                }
                None => {
                    // Local ejection: no router-to-router link traversal.
                }
            }
        }
    }
    traversals
}

/// Nodes visited by the XY-tree rooted at `source` covering `dests`
/// (including the source itself).
#[must_use]
pub fn multicast_tree_nodes(mesh: &Mesh, source: Coord, dests: &DestinationSet) -> Vec<NodeId> {
    let mut visited = vec![mesh.id_of(source)];
    let mut frontier = vec![(source, *dests)];
    while let Some((node, remaining)) = frontier.pop() {
        for branch in multicast_branches(mesh, node, &remaining) {
            if let Some(dir) = branch.port.direction() {
                let next = mesh
                    .neighbor(node, dir)
                    .expect("XY-tree routing never walks off the mesh");
                let id = mesh.id_of(next);
                if !visited.contains(&id) {
                    visited.push(id);
                }
                frontier.push((next, branch.destinations));
            }
        }
    }
    visited
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh4() -> Mesh {
        Mesh::new(4).unwrap()
    }

    #[test]
    fn xy_route_goes_x_then_y() {
        let mesh = mesh4();
        let route = xy_route(&mesh, Coord::new(0, 0), Coord::new(2, 2));
        assert_eq!(
            route,
            vec![
                Coord::new(0, 0),
                Coord::new(1, 0),
                Coord::new(2, 0),
                Coord::new(2, 1),
                Coord::new(2, 2)
            ]
        );
    }

    #[test]
    fn xy_route_length_is_manhattan_distance() {
        let mesh = Mesh::new(6).unwrap();
        for from in mesh.nodes() {
            for to in mesh.nodes() {
                let route = xy_route(&mesh, from, to);
                assert_eq!(route.len() as u32 - 1, from.manhattan_distance(to));
            }
        }
    }

    #[test]
    fn unicast_has_single_branch() {
        let mesh = mesh4();
        let dests = DestinationSet::unicast(15);
        let branches = multicast_branches(&mesh, Coord::new(0, 0), &dests);
        assert_eq!(branches.len(), 1);
        assert_eq!(branches[0].port, Port::East);
        assert_eq!(branches[0].destinations, dests);
    }

    #[test]
    fn arrived_unicast_requests_local_port() {
        let mesh = mesh4();
        let dests = DestinationSet::unicast(5);
        let branches = multicast_branches(&mesh, mesh.coord_of(5), &dests);
        assert_eq!(branches.len(), 1);
        assert_eq!(branches[0].port, Port::Local);
    }

    #[test]
    fn broadcast_from_corner_forks_east_and_north() {
        let mesh = mesh4();
        let source = Coord::new(0, 0);
        let dests = DestinationSet::broadcast(4, mesh.id_of(source));
        let ports = requested_ports(&mesh, source, &dests);
        assert!(ports.contains(Port::East));
        assert!(ports.contains(Port::North));
        assert!(!ports.contains(Port::West));
        assert!(!ports.contains(Port::South));
        assert!(!ports.contains(Port::Local));
    }

    #[test]
    fn broadcast_tree_visits_every_node_exactly_once_per_link() {
        let mesh = mesh4();
        for source in mesh.nodes() {
            let dests = DestinationSet::broadcast(4, mesh.id_of(source));
            let nodes = multicast_tree_nodes(&mesh, source, &dests);
            assert_eq!(nodes.len(), 16, "tree from {source} must reach all nodes");
            // A tree spanning 16 nodes uses exactly 15 link traversals.
            assert_eq!(multicast_link_traversals(&mesh, source, &dests), 15);
        }
    }

    #[test]
    fn multicast_branches_partition_destinations() {
        let mesh = mesh4();
        let dests: DestinationSet = [0u16, 3, 12, 15, 5].into_iter().collect();
        let current = Coord::new(1, 1);
        let branches = multicast_branches(&mesh, current, &dests);
        let mut covered = DestinationSet::empty();
        let mut total = 0;
        for b in &branches {
            total += b.destinations.len();
            covered = covered.union(&b.destinations);
        }
        assert_eq!(covered, dests, "branches must cover all destinations");
        assert_eq!(
            total,
            dests.len(),
            "branches must not duplicate destinations"
        );
    }

    #[test]
    fn tree_link_count_matches_unicast_route_for_single_destination() {
        let mesh = mesh4();
        let source = Coord::new(0, 3);
        let dest = Coord::new(3, 0);
        let dests = DestinationSet::unicast(mesh.id_of(dest));
        assert_eq!(
            multicast_link_traversals(&mesh, source, &dests) as u32,
            source.manhattan_distance(dest)
        );
    }
}
