//! Analytical model of prior mesh NoC chip prototypes (Table 2 of the paper).
//!
//! Table 2 compares the fabricated chip against Intel Teraflops, Tilera
//! TILE64 and SWIFT. Its latency and channel-load rows are *computed*, not
//! measured: zero-load latency is average hop count × pipeline depth (plus
//! source serialization when the chip lacks multicast support and the NIC
//! must inject `k²-1` unicast copies of each broadcast), and channel load is
//! the network-wide injected flit load per unit injection rate.
//!
//! The same arithmetic is reproduced here, parameterised per chip, so the
//! whole table can be regenerated (`repro table2`).

use serde::{Deserialize, Serialize};

use crate::limits::MeshLimits;

/// Description of one chip prototype as modelled in Table 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipModel {
    /// Chip name as it appears in the paper.
    pub name: String,
    /// Mesh side length the chip is modelled as (8 for the prior chips,
    /// 4 for the fabricated prototype).
    pub modeled_k: u16,
    /// Process node, for reporting only (e.g. "65nm").
    pub process: String,
    /// Router clock frequency in GHz.
    pub frequency_ghz: f64,
    /// Channel (flit) width in bits of one physical network.
    pub channel_bits: u32,
    /// Number of parallel physical networks (5 for TILE64, 1 otherwise).
    pub networks: u32,
    /// Cycles a flit needs to traverse one hop (router pipeline + link).
    pub cycles_per_hop: f64,
    /// Fixed per-packet overhead cycles (NIC injection/ejection, turn
    /// penalties) added on top of `hops × cycles_per_hop`.
    pub fixed_overhead_cycles: f64,
    /// Whether routers can replicate flits (router-level multicast support).
    pub multicast_support: bool,
    /// Reported total power, for the comparison table (string because the
    /// paper mixes W and mW).
    pub reported_power: String,
    /// Reported per-hop delay in nanoseconds (string: the paper quotes ranges).
    pub reported_delay_per_hop_ns: String,
}

impl ChipModel {
    /// Intel Teraflops, modelled as an 8×8 network: 5 GHz, 39-bit channels,
    /// 5-stage router pipeline, no multicast support.
    #[must_use]
    pub fn teraflops() -> Self {
        Self {
            name: "Intel Teraflops".to_owned(),
            modeled_k: 8,
            process: "65nm".to_owned(),
            frequency_ghz: 5.0,
            channel_bits: 39,
            networks: 1,
            cycles_per_hop: 5.0,
            fixed_overhead_cycles: 0.0,
            multicast_support: false,
            reported_power: "97W".to_owned(),
            reported_delay_per_hop_ns: "1".to_owned(),
        }
    }

    /// Tilera TILE64, modelled as an 8×8 network: 750 MHz, five 32-bit
    /// networks, single-cycle straight-through pipeline with turn and
    /// injection/ejection overheads, no multicast support.
    #[must_use]
    pub fn tile64() -> Self {
        Self {
            name: "Tilera TILE64".to_owned(),
            modeled_k: 8,
            process: "90nm".to_owned(),
            frequency_ghz: 0.75,
            channel_bits: 32,
            networks: 5,
            cycles_per_hop: 1.0,
            // One extra cycle for the (on average one) turning hop plus two
            // cycles of NIC injection/ejection.
            fixed_overhead_cycles: 3.0,
            multicast_support: false,
            reported_power: "15-22W".to_owned(),
            reported_delay_per_hop_ns: "1.3".to_owned(),
        }
    }

    /// SWIFT, modelled as an 8×8 network: 225 MHz, 64-bit channels,
    /// effectively two cycles per hop, no multicast support.
    #[must_use]
    pub fn swift() -> Self {
        Self {
            name: "SWIFT".to_owned(),
            modeled_k: 8,
            process: "90nm".to_owned(),
            frequency_ghz: 0.225,
            channel_bits: 64,
            networks: 1,
            cycles_per_hop: 2.0,
            fixed_overhead_cycles: 0.0,
            multicast_support: false,
            reported_power: "116.5mW".to_owned(),
            reported_delay_per_hop_ns: "8.9-17.8".to_owned(),
        }
    }

    /// The fabricated prototype modelled as an 8×8 network (for apples-to-
    /// apples comparison with the prior chips): 1 GHz, 64-bit channels,
    /// single cycle per hop, router-level multicast support.
    #[must_use]
    pub fn this_work_8x8() -> Self {
        Self {
            name: "This work (modeled 8x8)".to_owned(),
            modeled_k: 8,
            process: "45nm SOI".to_owned(),
            frequency_ghz: 1.0,
            channel_bits: 64,
            networks: 1,
            cycles_per_hop: 1.0,
            fixed_overhead_cycles: 0.0,
            multicast_support: true,
            reported_power: "427.3mW".to_owned(),
            reported_delay_per_hop_ns: "1-3".to_owned(),
        }
    }

    /// The fabricated 4×4 prototype itself.
    #[must_use]
    pub fn this_work_4x4() -> Self {
        Self {
            name: "This work (4x4)".to_owned(),
            modeled_k: 4,
            process: "45nm SOI".to_owned(),
            frequency_ghz: 1.0,
            channel_bits: 64,
            networks: 1,
            cycles_per_hop: 1.0,
            fixed_overhead_cycles: 0.0,
            multicast_support: true,
            reported_power: "427.3mW".to_owned(),
            reported_delay_per_hop_ns: "1-3".to_owned(),
        }
    }

    /// All five columns of Table 2 in paper order.
    #[must_use]
    pub fn table2_chips() -> Vec<ChipModel> {
        vec![
            Self::teraflops(),
            Self::tile64(),
            Self::swift(),
            Self::this_work_8x8(),
            Self::this_work_4x4(),
        ]
    }

    fn limits(&self) -> MeshLimits {
        MeshLimits::new(self.modeled_k)
    }

    /// Zero-load unicast latency in cycles:
    /// `H_avg × cycles_per_hop + fixed_overhead`.
    #[must_use]
    pub fn unicast_zero_load_latency_cycles(&self) -> f64 {
        self.limits().unicast_average_hops() * self.cycles_per_hop + self.fixed_overhead_cycles
    }

    /// Zero-load broadcast latency in cycles.
    ///
    /// Chips without router-level multicast support must inject `k²-1`
    /// unicast copies back-to-back from the source NIC; the last copy waits
    /// `k²-1` cycles of serialization before it even enters the network,
    /// which dominates their broadcast latency.
    #[must_use]
    pub fn broadcast_zero_load_latency_cycles(&self) -> f64 {
        let l = self.limits();
        let base = l.broadcast_average_hops() * self.cycles_per_hop + self.fixed_overhead_cycles;
        if self.multicast_support {
            base
        } else {
            base + (l.node_count() - 1.0)
        }
    }

    /// Network-wide injected channel load per unit injection rate `R`, for
    /// unicast traffic (the "64R"/"16R" unicast entries of Table 2).
    #[must_use]
    pub fn unicast_channel_load_factor(&self) -> f64 {
        self.limits().node_count()
    }

    /// Network-wide injected channel load per unit injection rate `R`, for
    /// broadcast traffic.
    ///
    /// With multicast support a broadcast enters the network once (`k²·R`
    /// total). Without it the source NIC injects `k²-1 ≈ k²` copies, so the
    /// load is `k²` times larger ("4096R" vs "64R" in Table 2).
    #[must_use]
    pub fn broadcast_channel_load_factor(&self) -> f64 {
        let n = self.limits().node_count();
        if self.multicast_support {
            n
        } else {
            n * n
        }
    }

    /// Bisection bandwidth in Gb/s.
    #[must_use]
    pub fn bisection_bandwidth_gbps(&self) -> f64 {
        f64::from(self.modeled_k)
            * f64::from(self.channel_bits)
            * self.frequency_ghz
            * f64::from(self.networks)
    }

    /// Per-hop delay in nanoseconds implied by the model
    /// (`cycles_per_hop / frequency`).
    #[must_use]
    pub fn delay_per_hop_ns(&self) -> f64 {
        self.cycles_per_hop / self.frequency_ghz
    }
}

/// One computed row of Table 2 for a single chip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Chip name.
    pub name: String,
    /// Zero-load unicast latency in cycles.
    pub unicast_zero_load_cycles: f64,
    /// Zero-load broadcast latency in cycles.
    pub broadcast_zero_load_cycles: f64,
    /// Unicast channel-load factor (multiply by R).
    pub unicast_channel_load_factor: f64,
    /// Broadcast channel-load factor (multiply by R).
    pub broadcast_channel_load_factor: f64,
    /// Bisection bandwidth in Gb/s.
    pub bisection_bandwidth_gbps: f64,
    /// Per-hop delay in nanoseconds.
    pub delay_per_hop_ns: f64,
}

/// Computes every row of Table 2.
#[must_use]
pub fn table2() -> Vec<Table2Row> {
    ChipModel::table2_chips()
        .into_iter()
        .map(|chip| Table2Row {
            name: chip.name.clone(),
            unicast_zero_load_cycles: chip.unicast_zero_load_latency_cycles(),
            broadcast_zero_load_cycles: chip.broadcast_zero_load_latency_cycles(),
            unicast_channel_load_factor: chip.unicast_channel_load_factor(),
            broadcast_channel_load_factor: chip.broadcast_channel_load_factor(),
            bisection_bandwidth_gbps: chip.bisection_bandwidth_gbps(),
            delay_per_hop_ns: chip.delay_per_hop_ns(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn teraflops_matches_table2() {
        let c = ChipModel::teraflops();
        assert!(close(c.unicast_zero_load_latency_cycles(), 30.0, 1e-9));
        assert!(close(c.broadcast_zero_load_latency_cycles(), 120.5, 1e-9));
        assert!(close(c.unicast_channel_load_factor(), 64.0, 1e-9));
        assert!(close(c.broadcast_channel_load_factor(), 4096.0, 1e-9));
        assert!(close(c.bisection_bandwidth_gbps(), 1560.0, 1e-9));
        assert!(close(c.delay_per_hop_ns(), 1.0, 1e-9));
    }

    #[test]
    fn tile64_matches_table2() {
        let c = ChipModel::tile64();
        assert!(close(c.unicast_zero_load_latency_cycles(), 9.0, 1e-9));
        assert!(close(c.broadcast_zero_load_latency_cycles(), 77.5, 1e-9));
        assert!(close(c.unicast_channel_load_factor(), 64.0, 1e-9));
        assert!(close(c.broadcast_channel_load_factor(), 4096.0, 1e-9));
        // The paper reports 937.5 Gb/s; five 32-bit networks at 750 MHz over
        // 8 bisection links give 960 Gb/s — within a few percent (the paper
        // appears to use a slightly lower effective clock).
        assert!(close(c.bisection_bandwidth_gbps(), 960.0, 1e-9));
        assert!(c.delay_per_hop_ns() > 1.2 && c.delay_per_hop_ns() < 1.4);
    }

    #[test]
    fn swift_matches_table2() {
        let c = ChipModel::swift();
        assert!(close(c.unicast_zero_load_latency_cycles(), 12.0, 1e-9));
        assert!(close(c.broadcast_zero_load_latency_cycles(), 86.0, 1e-9));
        // Paper reports 112.5 Gb/s; 8 x 64b x 225 MHz = 115.2 Gb/s.
        assert!(close(c.bisection_bandwidth_gbps(), 115.2, 1e-9));
    }

    #[test]
    fn this_work_matches_table2() {
        let c8 = ChipModel::this_work_8x8();
        assert!(close(c8.unicast_zero_load_latency_cycles(), 6.0, 1e-9));
        assert!(close(c8.broadcast_zero_load_latency_cycles(), 11.5, 1e-9));
        assert!(close(c8.unicast_channel_load_factor(), 64.0, 1e-9));
        assert!(close(c8.broadcast_channel_load_factor(), 64.0, 1e-9));
        assert!(close(c8.bisection_bandwidth_gbps(), 512.0, 1e-9));

        let c4 = ChipModel::this_work_4x4();
        assert!(close(
            c4.unicast_zero_load_latency_cycles(),
            10.0 / 3.0,
            1e-9
        ));
        assert!(close(c4.broadcast_zero_load_latency_cycles(), 5.5, 1e-9));
        assert!(close(c4.unicast_channel_load_factor(), 16.0, 1e-9));
        assert!(close(c4.broadcast_channel_load_factor(), 16.0, 1e-9));
        assert!(close(c4.bisection_bandwidth_gbps(), 256.0, 1e-9));
    }

    #[test]
    fn multicast_support_removes_the_serialization_penalty() {
        let mut with = ChipModel::this_work_8x8();
        let mut without = ChipModel::this_work_8x8();
        with.multicast_support = true;
        without.multicast_support = false;
        let diff = without.broadcast_zero_load_latency_cycles()
            - with.broadcast_zero_load_latency_cycles();
        assert!(close(diff, 63.0, 1e-9));
        assert!(close(
            without.broadcast_channel_load_factor() / with.broadcast_channel_load_factor(),
            64.0,
            1e-9
        ));
    }

    #[test]
    fn table2_has_five_rows_in_paper_order() {
        let rows = table2();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].name, "Intel Teraflops");
        assert_eq!(rows[4].name, "This work (4x4)");
        // The proposed NoC has the lowest broadcast zero-load latency.
        let min = rows
            .iter()
            .map(|r| r.broadcast_zero_load_cycles)
            .fold(f64::INFINITY, f64::min);
        assert!(close(rows[4].broadcast_zero_load_cycles, min, 1e-9));
    }
}
