//! The k×k mesh topology.

use noc_types::{ConfigError, Coord, Direction, NodeId};
use serde::{Deserialize, Serialize};

/// A directed router-to-router link of the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Link {
    /// Upstream (sending) node.
    pub from: NodeId,
    /// Downstream (receiving) node.
    pub to: NodeId,
    /// Direction of travel as seen from `from`.
    pub direction: Direction,
}

/// A k×k mesh topology.
///
/// The mesh is the substrate every experiment in the paper runs on: 4×4 for
/// the fabricated prototype, 8×8 for the Table 2 comparisons against prior
/// chips. This type answers purely structural questions — neighbours, link
/// enumeration, bisection size — and leaves routing decisions to
/// [`crate::routing`].
///
/// # Examples
///
/// ```
/// use noc_topology::Mesh;
/// use noc_types::{Coord, Direction};
///
/// let mesh = Mesh::new(4)?;
/// assert_eq!(mesh.node_count(), 16);
/// assert_eq!(mesh.neighbor(Coord::new(0, 0), Direction::North), Some(Coord::new(0, 1)));
/// assert_eq!(mesh.neighbor(Coord::new(0, 0), Direction::West), None);
/// # Ok::<(), noc_types::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mesh {
    k: u16,
}

impl Mesh {
    /// Creates a k×k mesh.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidMeshSide`] when `k` is zero or larger
    /// than 16 (the largest mesh a [`noc_types::DestinationSet`] can
    /// represent).
    pub fn new(k: u16) -> Result<Self, ConfigError> {
        if k == 0 || k > 16 {
            return Err(ConfigError::InvalidMeshSide { k });
        }
        Ok(Self { k })
    }

    /// Side length of the mesh.
    #[must_use]
    pub fn side(&self) -> u16 {
        self.k
    }

    /// Number of nodes (routers / NICs) in the mesh.
    #[must_use]
    pub fn node_count(&self) -> usize {
        usize::from(self.k) * usize::from(self.k)
    }

    /// Returns `true` when `coord` is a valid node of this mesh.
    #[must_use]
    pub fn contains(&self, coord: Coord) -> bool {
        coord.is_within(self.k)
    }

    /// Coordinate of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node of this mesh.
    #[must_use]
    pub fn coord_of(&self, id: NodeId) -> Coord {
        assert!(
            usize::from(id) < self.node_count(),
            "node id {id} out of range for a {k}x{k} mesh",
            k = self.k
        );
        Coord::from_node_id(id, self.k)
    }

    /// Node id of `coord`.
    ///
    /// # Panics
    ///
    /// Panics if `coord` lies outside the mesh.
    #[must_use]
    pub fn id_of(&self, coord: Coord) -> NodeId {
        assert!(self.contains(coord), "coordinate {coord} outside mesh");
        coord.node_id(self.k)
    }

    /// The neighbouring coordinate in `direction`, or `None` at the mesh edge.
    #[must_use]
    pub fn neighbor(&self, coord: Coord, direction: Direction) -> Option<Coord> {
        let (x, y) = (coord.x, coord.y);
        let next = match direction {
            Direction::North if y + 1 < self.k => Coord::new(x, y + 1),
            Direction::East if x + 1 < self.k => Coord::new(x + 1, y),
            Direction::South if y > 0 => Coord::new(x, y - 1),
            Direction::West if x > 0 => Coord::new(x - 1, y),
            _ => return None,
        };
        Some(next)
    }

    /// Iterates over every node coordinate in row-major order.
    pub fn nodes(&self) -> impl Iterator<Item = Coord> {
        Coord::all(self.k)
    }

    /// Enumerates every directed router-to-router link of the mesh.
    #[must_use]
    pub fn links(&self) -> Vec<Link> {
        let mut links = Vec::new();
        for coord in self.nodes() {
            for dir in Direction::ALL {
                if let Some(next) = self.neighbor(coord, dir) {
                    links.push(Link {
                        from: self.id_of(coord),
                        to: self.id_of(next),
                        direction: dir,
                    });
                }
            }
        }
        links
    }

    /// Number of unidirectional links crossing the vertical bisection of the
    /// mesh (between columns `k/2 - 1` and `k/2`), counted in one direction.
    ///
    /// For the 4×4 prototype this is 4 links of 64 bits at 1 GHz, i.e. the
    /// 256 Gb/s bisection bandwidth quoted in Table 2.
    #[must_use]
    pub fn bisection_links(&self) -> usize {
        usize::from(self.k)
    }

    /// Number of ejection links (router → NIC), one per node.
    #[must_use]
    pub fn ejection_links(&self) -> usize {
        self.node_count()
    }

    /// Bisection bandwidth in Gb/s for a given channel width and clock.
    ///
    /// `channel_bits` is the flit width of one network; `frequency_ghz` the
    /// link clock; `networks` the number of parallel physical networks
    /// (5 for TILE64, 1 for the other chips in Table 2).
    #[must_use]
    pub fn bisection_bandwidth_gbps(
        &self,
        channel_bits: u32,
        frequency_ghz: f64,
        networks: u32,
    ) -> f64 {
        self.bisection_links() as f64
            * f64::from(channel_bits)
            * frequency_ghz
            * f64::from(networks)
    }

    /// Manhattan hop count between two nodes.
    #[must_use]
    pub fn hops(&self, from: Coord, to: Coord) -> u32 {
        from.manhattan_distance(to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid_sides() {
        assert!(Mesh::new(0).is_err());
        assert!(Mesh::new(17).is_err());
        assert!(Mesh::new(1).is_ok());
        assert!(Mesh::new(16).is_ok());
    }

    #[test]
    fn four_by_four_has_sixteen_nodes_and_forty_eight_links() {
        let mesh = Mesh::new(4).unwrap();
        assert_eq!(mesh.node_count(), 16);
        // 2 * k * (k-1) bidirectional links = 24, i.e. 48 directed links.
        assert_eq!(mesh.links().len(), 48);
    }

    #[test]
    fn neighbors_respect_mesh_edges() {
        let mesh = Mesh::new(4).unwrap();
        let corner = Coord::new(0, 0);
        assert_eq!(mesh.neighbor(corner, Direction::South), None);
        assert_eq!(mesh.neighbor(corner, Direction::West), None);
        assert_eq!(
            mesh.neighbor(corner, Direction::North),
            Some(Coord::new(0, 1))
        );
        assert_eq!(
            mesh.neighbor(corner, Direction::East),
            Some(Coord::new(1, 0))
        );
        let opposite = Coord::new(3, 3);
        assert_eq!(mesh.neighbor(opposite, Direction::North), None);
        assert_eq!(mesh.neighbor(opposite, Direction::East), None);
    }

    #[test]
    fn neighbor_relation_is_symmetric() {
        let mesh = Mesh::new(5).unwrap();
        for coord in mesh.nodes() {
            for dir in Direction::ALL {
                if let Some(next) = mesh.neighbor(coord, dir) {
                    assert_eq!(mesh.neighbor(next, dir.opposite()), Some(coord));
                }
            }
        }
    }

    #[test]
    fn bisection_bandwidth_matches_table2_this_work() {
        // 4x4, 64-bit channels at 1 GHz -> 256 Gb/s (Table 2, "this work").
        let mesh = Mesh::new(4).unwrap();
        assert_eq!(mesh.bisection_bandwidth_gbps(64, 1.0, 1), 256.0);
        // Modeled as an 8x8 network -> 512 Gb/s.
        let mesh8 = Mesh::new(8).unwrap();
        assert_eq!(mesh8.bisection_bandwidth_gbps(64, 1.0, 1), 512.0);
    }

    #[test]
    fn id_coord_round_trip() {
        let mesh = Mesh::new(6).unwrap();
        for coord in mesh.nodes() {
            assert_eq!(mesh.coord_of(mesh.id_of(coord)), coord);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn coord_of_rejects_out_of_range() {
        let mesh = Mesh::new(4).unwrap();
        let _ = mesh.coord_of(16);
    }
}
