//! Arbiters used by the separable switch allocator.
//!
//! The chip uses a round-robin circuit for the first allocation stage
//! (mSA-I: each input port picks one of its VCs' output-port requests) and a
//! matrix arbiter for the second stage (mSA-II: each output port grants the
//! crossbar to one input port). Both are starvation-free.
//!
//! Both arbiters expose two equivalent request encodings:
//!
//! * a `&[bool]` slice ([`RoundRobinArbiter::arbitrate`],
//!   [`MatrixArbiter::arbitrate`]) — the readable form used by tests, and
//! * a `u32` bitmask word ([`RoundRobinArbiter::arbitrate_mask`],
//!   [`MatrixArbiter::arbitrate_mask`]) — the form the router's hot path
//!   uses, mirroring the chip where request vectors are hardware bit-vectors
//!   (5-bit port requests into mSA-II, 6-bit VC requests into mSA-I). The
//!   slice entry points delegate to the mask ones, so the two can never
//!   disagree; `tests/properties.rs` additionally pins the agreement over
//!   randomized 32-bit patterns.

use serde::{Deserialize, Serialize};

/// Largest number of requestors the `u32` mask fast path supports.
const MASK_BITS: usize = u32::BITS as usize;

/// Converts a request slice into its bitmask form (bit `i` = `requests[i]`).
fn mask_of(requests: &[bool]) -> u32 {
    requests
        .iter()
        .enumerate()
        .fold(0, |m, (i, &r)| m | (u32::from(r) << i))
}

/// The mask of valid requestor bits for an arbiter of `size` requestors
/// (`size` is between 1 and [`MASK_BITS`], enforced at construction).
fn valid_mask(size: usize) -> u32 {
    if size == MASK_BITS {
        u32::MAX
    } else {
        (1u32 << size) - 1
    }
}

/// A round-robin arbiter over `n` requestors.
///
/// The winner of each arbitration becomes the *lowest* priority for the next
/// one, guaranteeing fairness and starvation freedom.
///
/// # Examples
///
/// ```
/// use noc_router::RoundRobinArbiter;
///
/// let mut arb = RoundRobinArbiter::new(4);
/// assert_eq!(arb.arbitrate(&[true, false, true, false]), Some(0));
/// // 0 just won, so 2 now has priority.
/// assert_eq!(arb.arbitrate(&[true, false, true, false]), Some(2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundRobinArbiter {
    size: usize,
    /// Index with the highest priority in the next arbitration.
    next_priority: usize,
}

impl RoundRobinArbiter {
    /// Creates an arbiter over `size` requestors.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0` or `size > 32` (request vectors are `u32` words
    /// internally; the chip's are 5 and 6 bits wide).
    #[must_use]
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "arbiter must have at least one requestor");
        assert!(
            size <= MASK_BITS,
            "arbiter request vectors are u32 words ({size} > {MASK_BITS})"
        );
        Self {
            size,
            next_priority: 0,
        }
    }

    /// Number of requestors.
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Restores the arbiter to its post-construction state (requestor 0 has
    /// the highest priority), as part of a warm network reset.
    pub fn reset(&mut self) {
        self.next_priority = 0;
    }

    /// Picks a winner among the asserted requests, or `None` when no request
    /// is asserted.
    ///
    /// # Panics
    ///
    /// Panics if `requests.len()` differs from the arbiter size.
    pub fn arbitrate(&mut self, requests: &[bool]) -> Option<usize> {
        assert_eq!(requests.len(), self.size, "request vector size mismatch");
        self.arbitrate_mask(mask_of(requests))
    }

    /// [`arbitrate`](Self::arbitrate) over a bitmask request word: bit `i`
    /// asserts requestor `i`. Bits at or above [`size`](Self::size) are
    /// ignored.
    ///
    /// This is the hot-path form: the rotating-priority scan collapses into
    /// two masks and a `trailing_zeros`, the word-wide analogue of the
    /// chip's one-hot rotate-and-pick circuit.
    ///
    /// # Examples
    ///
    /// ```
    /// use noc_router::RoundRobinArbiter;
    ///
    /// let mut arb = RoundRobinArbiter::new(4);
    /// assert_eq!(arb.arbitrate_mask(0b0101), Some(0));
    /// // 0 just won, so the scan now starts at 1 and finds 2.
    /// assert_eq!(arb.arbitrate_mask(0b0101), Some(2));
    /// assert_eq!(arb.arbitrate_mask(0), None);
    /// ```
    pub fn arbitrate_mask(&mut self, requests: u32) -> Option<usize> {
        let winner = self.peek_mask(requests)?;
        self.next_priority = (winner + 1) % self.size;
        Some(winner)
    }

    /// Peeks at the winner without updating the priority pointer.
    ///
    /// # Panics
    ///
    /// Panics if `requests.len()` differs from the arbiter size.
    #[must_use]
    pub fn peek(&self, requests: &[bool]) -> Option<usize> {
        assert_eq!(requests.len(), self.size, "request vector size mismatch");
        self.peek_mask(mask_of(requests))
    }

    /// [`peek`](Self::peek) over a bitmask request word.
    #[must_use]
    pub fn peek_mask(&self, requests: u32) -> Option<usize> {
        let requests = requests & valid_mask(self.size);
        if requests == 0 {
            return None;
        }
        // Requests at or above the priority pointer win first; only when
        // none is asserted does the scan wrap around to the low indices.
        let unwrapped = requests & (u32::MAX << self.next_priority);
        let winner = if unwrapped != 0 {
            unwrapped.trailing_zeros()
        } else {
            requests.trailing_zeros()
        };
        Some(winner as usize)
    }
}

/// A matrix arbiter over `n` requestors (least-recently-served priority).
///
/// Row `i` of the precedence matrix is stored as a bitmask of the requestors
/// `i` currently beats. After `i` wins, every other requestor gains priority
/// over `i` (row `i` clears, column `i` sets). This is the arbiter the chip
/// instantiates at each output port for mSA-II.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatrixArbiter {
    size: usize,
    /// `rows[i]` bit `j` set means requestor `i` beats requestor `j`.
    rows: Vec<u32>,
}

impl MatrixArbiter {
    /// Creates a matrix arbiter over `size` requestors with an initial
    /// priority ordering 0 > 1 > … > n-1.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0` or `size > 32` (request vectors are `u32` words
    /// internally).
    #[must_use]
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "arbiter must have at least one requestor");
        assert!(
            size <= MASK_BITS,
            "arbiter request vectors are u32 words ({size} > {MASK_BITS})"
        );
        let mut arb = Self {
            size,
            rows: vec![0; size],
        };
        arb.reset();
        arb
    }

    /// Number of requestors.
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Restores the initial priority ordering 0 > 1 > … > n-1, as part of a
    /// warm network reset.
    pub fn reset(&mut self) {
        let valid = valid_mask(self.size);
        for (i, row) in self.rows.iter_mut().enumerate() {
            // Row i beats everything with a larger index (the last row beats
            // nobody — the shift would overflow the word).
            *row = valid & u32::MAX.checked_shl(i as u32 + 1).unwrap_or(0);
        }
    }

    /// Picks the requestor that beats all other asserted requestors, updating
    /// the priority matrix so the winner drops to lowest priority.
    ///
    /// # Panics
    ///
    /// Panics if `requests.len()` differs from the arbiter size.
    pub fn arbitrate(&mut self, requests: &[bool]) -> Option<usize> {
        assert_eq!(requests.len(), self.size, "request vector size mismatch");
        self.arbitrate_mask(mask_of(requests))
    }

    /// [`arbitrate`](Self::arbitrate) over a bitmask request word: bit `i`
    /// asserts requestor `i`. Bits at or above [`size`](Self::size) are
    /// ignored.
    ///
    /// The winner test is one word comparison per asserted requestor
    /// (`requests ⊆ row[i] ∪ {i}`), and the priority update is a row clear
    /// plus a column set — exactly the flip-flop matrix of the hardware.
    ///
    /// # Examples
    ///
    /// ```
    /// use noc_router::MatrixArbiter;
    ///
    /// let mut arb = MatrixArbiter::new(5);
    /// // Initial priority is index order...
    /// assert_eq!(arb.arbitrate_mask(0b11010), Some(1));
    /// // ...and a winner drops below everyone else.
    /// assert_eq!(arb.arbitrate_mask(0b11010), Some(3));
    /// assert_eq!(arb.arbitrate_mask(0b00000), None);
    /// ```
    pub fn arbitrate_mask(&mut self, requests: u32) -> Option<usize> {
        let winner = self.peek_mask(requests)?;
        // Winner loses priority against everyone else: clear its row, set
        // its column.
        self.rows[winner] = 0;
        let column = 1u32 << winner;
        for (j, row) in self.rows.iter_mut().enumerate() {
            if j != winner {
                *row |= column;
            }
        }
        Some(winner)
    }

    /// Peeks at the winner without updating the priority matrix.
    ///
    /// # Panics
    ///
    /// Panics if `requests.len()` differs from the arbiter size.
    #[must_use]
    pub fn peek(&self, requests: &[bool]) -> Option<usize> {
        assert_eq!(requests.len(), self.size, "request vector size mismatch");
        self.peek_mask(mask_of(requests))
    }

    /// [`peek`](Self::peek) over a bitmask request word.
    #[must_use]
    pub fn peek_mask(&self, requests: u32) -> Option<usize> {
        let valid = valid_mask(self.size);
        let mut remaining = requests & valid;
        while remaining != 0 {
            let i = remaining.trailing_zeros() as usize;
            // i wins when every other asserted requestor is one it beats.
            if (requests & valid) & !self.rows[i] & !(1u32 << i) == 0 {
                return Some(i);
            }
            remaining &= remaining - 1;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_rotates_priority() {
        let mut arb = RoundRobinArbiter::new(3);
        let all = [true, true, true];
        assert_eq!(arb.arbitrate(&all), Some(0));
        assert_eq!(arb.arbitrate(&all), Some(1));
        assert_eq!(arb.arbitrate(&all), Some(2));
        assert_eq!(arb.arbitrate(&all), Some(0));
    }

    #[test]
    fn round_robin_skips_idle_requestors() {
        let mut arb = RoundRobinArbiter::new(4);
        assert_eq!(arb.arbitrate(&[false, false, true, false]), Some(2));
        assert_eq!(arb.arbitrate(&[true, false, false, false]), Some(0));
        assert_eq!(arb.arbitrate(&[false; 4]), None);
    }

    #[test]
    fn round_robin_is_starvation_free() {
        let mut arb = RoundRobinArbiter::new(4);
        let mut wins = [0u32; 4];
        for _ in 0..400 {
            let w = arb.arbitrate(&[true, true, true, true]).unwrap();
            wins[w] += 1;
        }
        assert!(wins.iter().all(|&w| w == 100), "wins = {wins:?}");
    }

    #[test]
    fn peek_does_not_change_state() {
        let arb = RoundRobinArbiter::new(2);
        assert_eq!(arb.peek(&[false, true]), Some(1));
        assert_eq!(arb.peek(&[false, true]), Some(1));
    }

    #[test]
    fn round_robin_mask_agrees_with_slice_exhaustively() {
        // Every 4-bit request pattern from every rotation state.
        for start in 0..4usize {
            for pattern in 0u32..16 {
                let mut slice_arb = RoundRobinArbiter::new(4);
                let mut mask_arb = RoundRobinArbiter::new(4);
                // Drive both arbiters into rotation state `start`.
                for _ in 0..start {
                    slice_arb.arbitrate(&[true; 4]);
                    mask_arb.arbitrate_mask(0b1111);
                }
                let requests: Vec<bool> = (0..4).map(|i| pattern & (1 << i) != 0).collect();
                assert_eq!(
                    slice_arb.arbitrate(&requests),
                    mask_arb.arbitrate_mask(pattern),
                    "pattern {pattern:04b} from state {start}"
                );
                assert_eq!(slice_arb, mask_arb, "state diverged after the pick");
            }
        }
    }

    #[test]
    fn round_robin_mask_ignores_out_of_range_bits() {
        let mut arb = RoundRobinArbiter::new(4);
        assert_eq!(arb.arbitrate_mask(0xFFFF_FFF0), None);
        assert_eq!(arb.arbitrate_mask(0xFFFF_FFF4), Some(2));
    }

    #[test]
    fn full_width_round_robin_works() {
        let mut arb = RoundRobinArbiter::new(32);
        assert_eq!(arb.arbitrate_mask(u32::MAX), Some(0));
        assert_eq!(arb.arbitrate_mask(u32::MAX), Some(1));
        assert_eq!(arb.arbitrate_mask(1 << 31), Some(31));
        assert_eq!(arb.arbitrate_mask(u32::MAX), Some(0), "wraps past the top");
    }

    #[test]
    fn arbiter_reset_restores_initial_priority() {
        let mut rr = RoundRobinArbiter::new(4);
        rr.arbitrate_mask(0b1111);
        rr.reset();
        assert_eq!(rr, RoundRobinArbiter::new(4));
        let mut matrix = MatrixArbiter::new(5);
        matrix.arbitrate_mask(0b11111);
        matrix.arbitrate_mask(0b11111);
        matrix.reset();
        assert_eq!(matrix, MatrixArbiter::new(5));
    }

    #[test]
    fn matrix_initial_priority_is_index_order() {
        let mut arb = MatrixArbiter::new(3);
        assert_eq!(arb.arbitrate(&[true, true, true]), Some(0));
    }

    #[test]
    fn matrix_winner_drops_to_lowest_priority() {
        let mut arb = MatrixArbiter::new(3);
        assert_eq!(arb.arbitrate(&[true, true, true]), Some(0));
        assert_eq!(arb.arbitrate(&[true, true, true]), Some(1));
        assert_eq!(arb.arbitrate(&[true, true, true]), Some(2));
        assert_eq!(arb.arbitrate(&[true, true, true]), Some(0));
    }

    #[test]
    fn matrix_is_fair_under_sustained_load() {
        let mut arb = MatrixArbiter::new(5);
        let mut wins = [0u32; 5];
        for _ in 0..500 {
            let w = arb.arbitrate(&[true; 5]).unwrap();
            wins[w] += 1;
        }
        assert!(wins.iter().all(|&w| w == 100), "wins = {wins:?}");
    }

    #[test]
    fn matrix_handles_single_and_no_request() {
        let mut arb = MatrixArbiter::new(4);
        assert_eq!(arb.arbitrate(&[false, false, false, true]), Some(3));
        assert_eq!(arb.arbitrate(&[false; 4]), None);
    }

    #[test]
    fn matrix_mask_agrees_with_slice_exhaustively() {
        // Every 4-bit request pattern after every warm-up history length.
        for history in 0..6usize {
            for pattern in 0u32..16 {
                let mut slice_arb = MatrixArbiter::new(4);
                let mut mask_arb = MatrixArbiter::new(4);
                for round in 0..history {
                    let warm = 0b1111 ^ (1 << (round % 4));
                    slice_arb.arbitrate_mask(warm);
                    mask_arb.arbitrate_mask(warm);
                }
                let requests: Vec<bool> = (0..4).map(|i| pattern & (1 << i) != 0).collect();
                assert_eq!(
                    slice_arb.arbitrate(&requests),
                    mask_arb.arbitrate_mask(pattern),
                    "pattern {pattern:04b} after {history} rounds"
                );
                assert_eq!(slice_arb, mask_arb, "state diverged after the pick");
            }
        }
    }

    #[test]
    fn matrix_mask_ignores_out_of_range_bits() {
        let mut arb = MatrixArbiter::new(4);
        assert_eq!(arb.arbitrate_mask(0xFFFF_FFF0), None);
        assert_eq!(arb.arbitrate_mask(0xFFFF_FFF8), Some(3));
    }

    #[test]
    #[should_panic(expected = "at least one requestor")]
    fn zero_size_panics() {
        let _ = RoundRobinArbiter::new(0);
    }

    #[test]
    #[should_panic(expected = "u32 words")]
    fn oversized_arbiter_panics() {
        let _ = MatrixArbiter::new(33);
    }
}
