//! Arbiters used by the separable switch allocator.
//!
//! The chip uses a round-robin circuit for the first allocation stage
//! (mSA-I: each input port picks one of its VCs' output-port requests) and a
//! matrix arbiter for the second stage (mSA-II: each output port grants the
//! crossbar to one input port). Both are starvation-free.

use serde::{Deserialize, Serialize};

/// A round-robin arbiter over `n` requestors.
///
/// The winner of each arbitration becomes the *lowest* priority for the next
/// one, guaranteeing fairness and starvation freedom.
///
/// # Examples
///
/// ```
/// use noc_router::RoundRobinArbiter;
///
/// let mut arb = RoundRobinArbiter::new(4);
/// assert_eq!(arb.arbitrate(&[true, false, true, false]), Some(0));
/// // 0 just won, so 2 now has priority.
/// assert_eq!(arb.arbitrate(&[true, false, true, false]), Some(2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundRobinArbiter {
    size: usize,
    /// Index with the highest priority in the next arbitration.
    next_priority: usize,
}

impl RoundRobinArbiter {
    /// Creates an arbiter over `size` requestors.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    #[must_use]
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "arbiter must have at least one requestor");
        Self {
            size,
            next_priority: 0,
        }
    }

    /// Number of requestors.
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Picks a winner among the asserted requests, or `None` when no request
    /// is asserted.
    ///
    /// # Panics
    ///
    /// Panics if `requests.len()` differs from the arbiter size.
    pub fn arbitrate(&mut self, requests: &[bool]) -> Option<usize> {
        assert_eq!(requests.len(), self.size, "request vector size mismatch");
        for offset in 0..self.size {
            let candidate = (self.next_priority + offset) % self.size;
            if requests[candidate] {
                self.next_priority = (candidate + 1) % self.size;
                return Some(candidate);
            }
        }
        None
    }

    /// Peeks at the winner without updating the priority pointer.
    #[must_use]
    pub fn peek(&self, requests: &[bool]) -> Option<usize> {
        assert_eq!(requests.len(), self.size, "request vector size mismatch");
        (0..self.size)
            .map(|offset| (self.next_priority + offset) % self.size)
            .find(|&candidate| requests[candidate])
    }
}

/// A matrix arbiter over `n` requestors (least-recently-served priority).
///
/// `priority[i][j] == true` means requestor `i` currently beats requestor
/// `j`. After `i` wins, every other requestor gains priority over `i`.
/// This is the arbiter the chip instantiates at each output port for mSA-II.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatrixArbiter {
    size: usize,
    priority: Vec<bool>,
}

impl MatrixArbiter {
    /// Creates a matrix arbiter over `size` requestors with an initial
    /// priority ordering 0 > 1 > … > n-1.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    #[must_use]
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "arbiter must have at least one requestor");
        let mut priority = vec![false; size * size];
        for i in 0..size {
            for j in (i + 1)..size {
                priority[i * size + j] = true;
            }
        }
        Self { size, priority }
    }

    /// Number of requestors.
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    fn beats(&self, i: usize, j: usize) -> bool {
        self.priority[i * self.size + j]
    }

    /// Picks the requestor that beats all other asserted requestors, updating
    /// the priority matrix so the winner drops to lowest priority.
    ///
    /// # Panics
    ///
    /// Panics if `requests.len()` differs from the arbiter size.
    pub fn arbitrate(&mut self, requests: &[bool]) -> Option<usize> {
        let winner = self.peek(requests)?;
        // Winner loses priority against everyone else.
        for j in 0..self.size {
            if j != winner {
                self.priority[winner * self.size + j] = false;
                self.priority[j * self.size + winner] = true;
            }
        }
        Some(winner)
    }

    /// Peeks at the winner without updating the priority matrix.
    #[must_use]
    pub fn peek(&self, requests: &[bool]) -> Option<usize> {
        assert_eq!(requests.len(), self.size, "request vector size mismatch");
        (0..self.size).find(|&i| {
            requests[i] && (0..self.size).all(|j| j == i || !requests[j] || self.beats(i, j))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_rotates_priority() {
        let mut arb = RoundRobinArbiter::new(3);
        let all = [true, true, true];
        assert_eq!(arb.arbitrate(&all), Some(0));
        assert_eq!(arb.arbitrate(&all), Some(1));
        assert_eq!(arb.arbitrate(&all), Some(2));
        assert_eq!(arb.arbitrate(&all), Some(0));
    }

    #[test]
    fn round_robin_skips_idle_requestors() {
        let mut arb = RoundRobinArbiter::new(4);
        assert_eq!(arb.arbitrate(&[false, false, true, false]), Some(2));
        assert_eq!(arb.arbitrate(&[true, false, false, false]), Some(0));
        assert_eq!(arb.arbitrate(&[false; 4]), None);
    }

    #[test]
    fn round_robin_is_starvation_free() {
        let mut arb = RoundRobinArbiter::new(4);
        let mut wins = [0u32; 4];
        for _ in 0..400 {
            let w = arb.arbitrate(&[true, true, true, true]).unwrap();
            wins[w] += 1;
        }
        assert!(wins.iter().all(|&w| w == 100), "wins = {wins:?}");
    }

    #[test]
    fn peek_does_not_change_state() {
        let arb = RoundRobinArbiter::new(2);
        assert_eq!(arb.peek(&[false, true]), Some(1));
        assert_eq!(arb.peek(&[false, true]), Some(1));
    }

    #[test]
    fn matrix_initial_priority_is_index_order() {
        let mut arb = MatrixArbiter::new(3);
        assert_eq!(arb.arbitrate(&[true, true, true]), Some(0));
    }

    #[test]
    fn matrix_winner_drops_to_lowest_priority() {
        let mut arb = MatrixArbiter::new(3);
        assert_eq!(arb.arbitrate(&[true, true, true]), Some(0));
        assert_eq!(arb.arbitrate(&[true, true, true]), Some(1));
        assert_eq!(arb.arbitrate(&[true, true, true]), Some(2));
        assert_eq!(arb.arbitrate(&[true, true, true]), Some(0));
    }

    #[test]
    fn matrix_is_fair_under_sustained_load() {
        let mut arb = MatrixArbiter::new(5);
        let mut wins = [0u32; 5];
        for _ in 0..500 {
            let w = arb.arbitrate(&[true; 5]).unwrap();
            wins[w] += 1;
        }
        assert!(wins.iter().all(|&w| w == 100), "wins = {wins:?}");
    }

    #[test]
    fn matrix_handles_single_and_no_request() {
        let mut arb = MatrixArbiter::new(4);
        assert_eq!(arb.arbitrate(&[false, false, false, true]), Some(3));
        assert_eq!(arb.arbitrate(&[false; 4]), None);
    }

    #[test]
    #[should_panic(expected = "at least one requestor")]
    fn zero_size_panics() {
        let _ = RoundRobinArbiter::new(0);
    }
}
