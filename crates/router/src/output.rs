//! Output-side state of a router: downstream virtual-channel bookkeeping and
//! credit tracking, laid out struct-of-arrays.
//!
//! One [`OutputBank`] mirrors the state of every *downstream* input port the
//! router drives: which downstream VCs are allocated to in-flight packets,
//! how many buffer slots (credits) each has free, and whether the current
//! packet's tail has been sent. Credits live in one flat byte array indexed
//! `port * vc_count + vc`; the allocation / credit / tail summaries are
//! per-`(port, class)` bitmask words. The switch-allocation hot path reads
//! only those words: "can this port take a new head flit?" collapses to
//! `free & credit != 0`, a per-branch credit check to a single bit test.
//!
//! The local (ejection) output connects to the NIC, which always sinks one
//! flit per cycle, so it is *untracked* — every operation on it is a no-op.
//! A NIC's injection side reuses the same bank with a single tracked port
//! ([`OutputBank::for_injection`]), since the NIC sits upstream of the
//! router's local input port exactly like a neighbouring router sits
//! upstream of a mesh input port.

use noc_types::{Credit, MessageClass, Port, VcId, PORT_COUNT};

use crate::config::{RouterConfig, VcLayout};

/// Snapshot of one downstream virtual channel's bookkeeping.
///
/// The bank stores this state in parallel flat arrays; `DownstreamVc` is the
/// assembled per-VC view handed to diagnostics and tests
/// ([`OutputBank::downstream_vc`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DownstreamVc {
    /// Free buffer slots at the downstream VC.
    pub credits: u8,
    /// Whether the VC is currently allocated to an in-flight packet.
    pub allocated: bool,
    /// Whether the tail flit of the current packet has been sent.
    pub tail_sent: bool,
    depth: u8,
}

impl DownstreamVc {
    /// Buffer depth of the downstream VC.
    #[must_use]
    pub fn depth(&self) -> u8 {
        self.depth
    }

    /// Returns `true` when the VC can be handed to a new packet.
    #[must_use]
    pub fn is_free(&self) -> bool {
        !self.allocated
    }
}

/// The output-side bookkeeping of every port of one router (or of a NIC's
/// single injection link), struct-of-arrays.
///
/// Per-VC credits are indexed `port * vc_count + flat_vc` (request VCs
/// first, then response); the free/credit/allocated/tail summaries are
/// per-class bitmask words indexed `port * 2 + class`, with bit `v` standing
/// for VC `v` *within its class* — the same bit layout the chip's free-VC
/// queues and credit counters expose to the allocator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputBank {
    ports: usize,
    layout: VcLayout,
    /// Bit `p` set ⇔ port `p` performs no VC/credit tracking (the ejection
    /// port, whose NIC sinks one flit per cycle unconditionally).
    untracked: u32,
    /// Free buffer slots per downstream VC.
    credits: Vec<u8>,
    /// Per-`(port, class)` masks of unallocated VCs.
    free_mask: Vec<u32>,
    /// Per-`(port, class)` masks of VCs with at least one credit.
    credit_mask: Vec<u32>,
    /// Per-`(port, class)` masks of allocated VCs.
    allocated: Vec<u32>,
    /// Per-`(port, class)` masks of VCs whose current packet's tail left.
    tail_sent: Vec<u32>,
}

impl OutputBank {
    /// Creates the output bank of a router whose downstream input ports are
    /// provisioned per `config`; the local (ejection) port is untracked.
    #[must_use]
    pub fn new(config: &RouterConfig) -> Self {
        Self::with_ports(config, PORT_COUNT, 1 << Port::Local.index())
    }

    /// Creates the credit/VC tracker a NIC uses for the router input port it
    /// injects into: a single-port bank with full VC and credit tracking,
    /// addressed as port `0`.
    #[must_use]
    pub fn for_injection(config: &RouterConfig) -> Self {
        Self::with_ports(config, 1, 0)
    }

    fn with_ports(config: &RouterConfig, ports: usize, untracked: u32) -> Self {
        let layout = VcLayout::new(config);
        let mut bank = Self {
            ports,
            layout,
            untracked,
            credits: vec![0; ports * layout.vc_count()],
            free_mask: vec![0; ports * 2],
            credit_mask: vec![0; ports * 2],
            allocated: vec![0; ports * 2],
            tail_sent: vec![0; ports * 2],
        };
        bank.reset();
        bank
    }

    /// Restores the bank to its post-construction state — every downstream
    /// VC free, every credit returned — keeping the storage (used by warm
    /// network resets; see `mesh_noc::Network::reset`).
    pub fn reset(&mut self) {
        self.allocated.fill(0);
        self.tail_sent.fill(0);
        for port in 0..self.ports {
            let untracked = self.is_untracked(port);
            for class in MessageClass::ALL {
                let cs = self.class_slot(port, class);
                if untracked {
                    self.free_mask[cs] = 0;
                    self.credit_mask[cs] = 0;
                    continue;
                }
                let count = self.class_count(class);
                let full = (1u32 << count) - 1;
                self.free_mask[cs] = full;
                self.credit_mask[cs] = full;
                let depth = self.class_depth(class);
                for vc in 0..count {
                    let slot = self.vc_slot(port, class, vc as VcId);
                    self.credits[slot] = depth;
                }
            }
        }
    }

    /// Returns `true` when `port` performs no VC/credit tracking.
    #[inline]
    #[must_use]
    pub fn is_untracked(&self, port: usize) -> bool {
        self.untracked & (1 << port) != 0
    }

    /// Number of downstream VCs in `class` (identical for every tracked
    /// port).
    #[must_use]
    pub fn class_count(&self, class: MessageClass) -> usize {
        self.layout.class_count(class)
    }

    fn class_depth(&self, class: MessageClass) -> u8 {
        self.layout.class_depth(class)
    }

    #[inline]
    fn class_slot(&self, port: usize, class: MessageClass) -> usize {
        debug_assert!(port < self.ports);
        port * 2 + class.index()
    }

    #[inline]
    fn vc_slot(&self, port: usize, class: MessageClass, vc: VcId) -> usize {
        self.layout.slot(port, self.layout.flat_vc(class, vc))
    }

    /// State of downstream VC `(class, vc)` of `port`, or `None` for an
    /// untracked port or a VC outside the configuration.
    #[must_use]
    pub fn downstream_vc(
        &self,
        port: usize,
        class: MessageClass,
        vc: VcId,
    ) -> Option<DownstreamVc> {
        if self.is_untracked(port) || usize::from(vc) >= self.class_count(class) {
            return None;
        }
        let bit = 1u32 << vc;
        let cs = self.class_slot(port, class);
        Some(DownstreamVc {
            credits: self.credits[self.vc_slot(port, class, vc)],
            allocated: self.allocated[cs] & bit != 0,
            tail_sent: self.tail_sent[cs] & bit != 0,
            depth: self.class_depth(class),
        })
    }

    /// Finds a free downstream VC of `port` with at least one credit,
    /// without allocating it (the VA check performed before committing a
    /// grant). Always returns `Some(0)` for an untracked port.
    #[must_use]
    pub fn peek_free_vc(&self, port: usize, class: MessageClass) -> Option<VcId> {
        if self.is_untracked(port) {
            return Some(0);
        }
        let cs = self.class_slot(port, class);
        let ready = self.free_mask[cs] & self.credit_mask[cs];
        if ready == 0 {
            None
        } else {
            Some(ready.trailing_zeros() as VcId)
        }
    }

    /// Returns `true` when a new packet head could be granted `port`: a
    /// downstream VC is both free and credited (always `true` for an
    /// untracked port).
    ///
    /// This is the single-word form of [`peek_free_vc`](Self::peek_free_vc)
    /// the switch-allocation eligibility masks are built from.
    #[inline]
    #[must_use]
    pub fn can_accept_head(&self, port: usize, class: MessageClass) -> bool {
        if self.is_untracked(port) {
            return true;
        }
        let cs = self.class_slot(port, class);
        self.free_mask[cs] & self.credit_mask[cs] != 0
    }

    /// Bitmask of downstream VCs of `(port, class)` that currently hold at
    /// least one credit (bit `v` = VC `v`). All-ones for an untracked port.
    #[inline]
    #[must_use]
    pub fn credit_mask(&self, port: usize, class: MessageClass) -> u32 {
        if self.is_untracked(port) {
            u32::MAX
        } else {
            self.credit_mask[self.class_slot(port, class)]
        }
    }

    /// Returns `true` when downstream VC `(class, vc)` of `port` has a free
    /// buffer slot. Always `true` for an untracked port; `false` for a VC
    /// outside the mask width.
    #[must_use]
    pub fn has_credit(&self, port: usize, class: MessageClass, vc: VcId) -> bool {
        if self.is_untracked(port) {
            return true;
        }
        let bit = 1u32.checked_shl(u32::from(vc)).unwrap_or(0);
        self.credit_mask[self.class_slot(port, class)] & bit != 0
    }

    /// Allocates downstream VC `vc` of `port` to a new packet.
    ///
    /// # Panics
    ///
    /// Panics if the VC is already allocated (the caller must only commit
    /// VCs returned by [`peek_free_vc`](Self::peek_free_vc) in the same
    /// cycle).
    pub fn allocate_vc(&mut self, port: usize, class: MessageClass, vc: VcId) {
        if self.is_untracked(port) {
            return;
        }
        let cs = self.class_slot(port, class);
        let bit = 1u32 << vc;
        assert!(
            self.allocated[cs] & bit == 0,
            "double allocation of downstream VC"
        );
        self.allocated[cs] |= bit;
        self.tail_sent[cs] &= !bit;
        self.free_mask[cs] &= !bit;
    }

    /// Records the departure of a flit on downstream VC `(class, vc)` of
    /// `port`, consuming one credit; `is_tail` marks the end of the packet.
    ///
    /// # Panics
    ///
    /// Panics if no credit is available (flow-control bug).
    pub fn send_flit(&mut self, port: usize, class: MessageClass, vc: VcId, is_tail: bool) {
        if self.is_untracked(port) {
            return;
        }
        let slot = self.vc_slot(port, class, vc);
        assert!(self.credits[slot] > 0, "sent a flit without a credit");
        self.credits[slot] -= 1;
        let cs = self.class_slot(port, class);
        let bit = 1u32 << vc;
        if is_tail {
            self.tail_sent[cs] |= bit;
        }
        if self.credits[slot] == 0 {
            self.credit_mask[cs] &= !bit;
        }
    }

    /// Processes a credit returned by the downstream router attached to
    /// `port`.
    ///
    /// When the packet's tail has been sent and every buffer slot has been
    /// returned, the VC goes back to the free pool — this is the VC
    /// turnaround the paper sizes its buffers against (3 cycles with
    /// single-cycle hops and bypassing).
    ///
    /// # Panics
    ///
    /// Panics if more credits return than the downstream VC has buffer
    /// slots.
    pub fn on_credit(&mut self, port: usize, credit: Credit) {
        if self.is_untracked(port) {
            return;
        }
        let slot = self.vc_slot(port, credit.class, credit.vc);
        let depth = self.class_depth(credit.class);
        assert!(
            self.credits[slot] < depth,
            "credit overflow on downstream VC (more credits than buffer slots)"
        );
        self.credits[slot] += 1;
        let cs = self.class_slot(port, credit.class);
        let bit = 1u32 << credit.vc;
        self.credit_mask[cs] |= bit;
        if self.allocated[cs] & bit != 0
            && self.tail_sent[cs] & bit != 0
            && self.credits[slot] == depth
        {
            self.allocated[cs] &= !bit;
            self.tail_sent[cs] &= !bit;
            self.free_mask[cs] |= bit;
        }
    }

    /// Number of free VCs of `(port, class)` (for occupancy statistics).
    #[must_use]
    pub fn free_vcs(&self, port: usize, class: MessageClass) -> usize {
        if self.is_untracked(port) {
            return 0;
        }
        let count = self.class_count(class) as u32;
        count as usize - self.allocated[self.class_slot(port, class)].count_ones() as usize
    }

    /// Read-only view of one output port (for diagnostics and tests).
    #[must_use]
    pub fn port(&self, port: Port) -> OutputPortRef<'_> {
        OutputPortRef { bank: self, port }
    }
}

/// Read-only view of one output port of an [`OutputBank`].
#[derive(Debug, Clone, Copy)]
pub struct OutputPortRef<'a> {
    bank: &'a OutputBank,
    port: Port,
}

impl OutputPortRef<'_> {
    /// Which router port this view covers.
    #[must_use]
    pub fn port(&self) -> Port {
        self.port
    }

    /// Returns `true` for the ejection (NIC) port.
    #[must_use]
    pub fn is_local(&self) -> bool {
        self.port.is_local()
    }

    /// State of downstream VC `(class, vc)`, or `None` for an untracked
    /// port.
    #[must_use]
    pub fn downstream_vc(&self, class: MessageClass, vc: VcId) -> Option<DownstreamVc> {
        self.bank.downstream_vc(self.port.index(), class, vc)
    }

    /// Finds a free, credited downstream VC without allocating it.
    #[must_use]
    pub fn peek_free_vc(&self, class: MessageClass) -> Option<VcId> {
        self.bank.peek_free_vc(self.port.index(), class)
    }

    /// Returns `true` when a new packet head could be granted this port.
    #[must_use]
    pub fn can_accept_head(&self, class: MessageClass) -> bool {
        self.bank.can_accept_head(self.port.index(), class)
    }

    /// Returns `true` when downstream VC `(class, vc)` has a credit.
    #[must_use]
    pub fn has_credit(&self, class: MessageClass, vc: VcId) -> bool {
        self.bank.has_credit(self.port.index(), class, vc)
    }

    /// Number of free VCs in `class`.
    #[must_use]
    pub fn free_vcs(&self, class: MessageClass) -> usize {
        self.bank.free_vcs(self.port.index(), class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RouterConfig;

    const EAST: usize = 1;
    const SOUTH: usize = 2;
    const NORTH: usize = 0;
    const LOCAL: usize = 4;

    fn bank() -> OutputBank {
        OutputBank::new(&RouterConfig::proposed(true))
    }

    #[test]
    fn local_port_is_always_available() {
        let mut out = bank();
        assert!(out.is_untracked(LOCAL));
        assert_eq!(out.peek_free_vc(LOCAL, MessageClass::Request), Some(0));
        assert!(out.has_credit(LOCAL, MessageClass::Response, 0));
        assert!(out.downstream_vc(LOCAL, MessageClass::Request, 0).is_none());
        // These must be no-ops rather than panics.
        out.allocate_vc(LOCAL, MessageClass::Request, 0);
        out.send_flit(LOCAL, MessageClass::Request, 0, true);
        out.on_credit(LOCAL, Credit::new(MessageClass::Request, 0));
    }

    #[test]
    fn injection_bank_tracks_its_single_port() {
        let mut inj = OutputBank::for_injection(&RouterConfig::proposed(true));
        assert!(!inj.is_untracked(0));
        let vc = inj.peek_free_vc(0, MessageClass::Request).unwrap();
        inj.allocate_vc(0, MessageClass::Request, vc);
        inj.send_flit(0, MessageClass::Request, vc, true);
        assert!(!inj.has_credit(0, MessageClass::Request, vc));
        inj.on_credit(0, Credit::new(MessageClass::Request, vc));
        assert!(inj.has_credit(0, MessageClass::Request, vc));
        assert_eq!(inj.free_vcs(0, MessageClass::Request), 4);
    }

    #[test]
    fn vc_allocation_lifecycle() {
        let mut out = bank();
        assert_eq!(out.free_vcs(EAST, MessageClass::Request), 4);
        let vc = out.peek_free_vc(EAST, MessageClass::Request).unwrap();
        out.allocate_vc(EAST, MessageClass::Request, vc);
        assert_eq!(out.free_vcs(EAST, MessageClass::Request), 3);
        out.send_flit(EAST, MessageClass::Request, vc, true);
        assert!(
            !out.has_credit(EAST, MessageClass::Request, vc),
            "depth-1 VC exhausted"
        );
        // Credit comes back after the downstream router forwards the flit.
        out.on_credit(EAST, Credit::new(MessageClass::Request, vc));
        assert_eq!(out.free_vcs(EAST, MessageClass::Request), 4);
        assert!(out.has_credit(EAST, MessageClass::Request, vc));
    }

    #[test]
    fn multi_flit_packet_frees_vc_only_after_tail_and_all_credits() {
        let mut out = bank();
        let vc = out.peek_free_vc(NORTH, MessageClass::Response).unwrap();
        out.allocate_vc(NORTH, MessageClass::Response, vc);
        // Send three flits (head + 2 body) filling the 3-deep buffer.
        out.send_flit(NORTH, MessageClass::Response, vc, false);
        out.send_flit(NORTH, MessageClass::Response, vc, false);
        out.send_flit(NORTH, MessageClass::Response, vc, false);
        assert!(!out.has_credit(NORTH, MessageClass::Response, vc));
        // Two credits return; send body + tail.
        out.on_credit(NORTH, Credit::new(MessageClass::Response, vc));
        out.on_credit(NORTH, Credit::new(MessageClass::Response, vc));
        out.send_flit(NORTH, MessageClass::Response, vc, false);
        out.send_flit(NORTH, MessageClass::Response, vc, true);
        assert_eq!(
            out.free_vcs(NORTH, MessageClass::Response),
            1,
            "still allocated"
        );
        // All outstanding credits return: VC becomes free again.
        out.on_credit(NORTH, Credit::new(MessageClass::Response, vc));
        out.on_credit(NORTH, Credit::new(MessageClass::Response, vc));
        out.on_credit(NORTH, Credit::new(MessageClass::Response, vc));
        assert_eq!(out.free_vcs(NORTH, MessageClass::Response), 2);
    }

    /// The mask summaries must agree with the per-VC snapshots at all times.
    fn assert_masks_consistent(out: &OutputBank, port: usize) {
        for class in MessageClass::ALL {
            for vc in 0..4u8 {
                let Some(state) = out.downstream_vc(port, class, vc) else {
                    continue;
                };
                assert_eq!(
                    out.has_credit(port, class, vc),
                    state.credits > 0,
                    "credit mask diverged on {class:?} vc {vc}"
                );
            }
            let scan = (0..out.class_count(class) as VcId).find(|&vc| {
                let state = out.downstream_vc(port, class, vc).unwrap();
                state.is_free() && state.credits > 0
            });
            assert_eq!(out.peek_free_vc(port, class), scan, "free mask diverged");
            assert_eq!(out.can_accept_head(port, class), scan.is_some());
        }
    }

    #[test]
    fn masks_track_the_vc_records_through_a_lifecycle() {
        let mut out = bank();
        assert_masks_consistent(&out, EAST);
        let vc = out.peek_free_vc(EAST, MessageClass::Response).unwrap();
        out.allocate_vc(EAST, MessageClass::Response, vc);
        assert_masks_consistent(&out, EAST);
        for _ in 0..3 {
            out.send_flit(EAST, MessageClass::Response, vc, false);
            assert_masks_consistent(&out, EAST);
        }
        assert_eq!(out.credit_mask(EAST, MessageClass::Response) & (1 << vc), 0);
        out.on_credit(EAST, Credit::new(MessageClass::Response, vc));
        assert_masks_consistent(&out, EAST);
        out.send_flit(EAST, MessageClass::Response, vc, true);
        for _ in 0..3 {
            out.on_credit(EAST, Credit::new(MessageClass::Response, vc));
        }
        assert_masks_consistent(&out, EAST);
        assert!(out.can_accept_head(EAST, MessageClass::Response));
    }

    #[test]
    fn has_credit_is_false_for_out_of_range_vcs() {
        let out = bank();
        assert!(!out.has_credit(EAST, MessageClass::Request, 31));
        assert!(
            !out.has_credit(EAST, MessageClass::Request, 32),
            "no shift overflow"
        );
        assert!(!out.has_credit(EAST, MessageClass::Response, 255));
    }

    #[test]
    fn reset_restores_the_fresh_state() {
        let mut out = bank();
        let fresh = out.clone();
        out.allocate_vc(NORTH, MessageClass::Request, 2);
        out.send_flit(NORTH, MessageClass::Request, 2, true);
        out.allocate_vc(NORTH, MessageClass::Response, 0);
        out.reset();
        assert_eq!(out, fresh, "reset must reproduce the constructed state");
        assert_masks_consistent(&out, NORTH);
    }

    #[test]
    fn port_views_expose_the_per_port_slice() {
        let mut out = bank();
        out.allocate_vc(EAST, MessageClass::Request, 1);
        let east = out.port(Port::East);
        assert!(!east.is_local());
        assert!(!east
            .downstream_vc(MessageClass::Request, 1)
            .unwrap()
            .is_free());
        assert_eq!(east.free_vcs(MessageClass::Request), 3);
        assert!(east.can_accept_head(MessageClass::Request));
        assert!(out.port(Port::Local).is_local());
    }

    #[test]
    #[should_panic(expected = "without a credit")]
    fn sending_without_credit_panics() {
        let mut out = bank();
        out.allocate_vc(SOUTH, MessageClass::Request, 0);
        out.send_flit(SOUTH, MessageClass::Request, 0, false);
        out.send_flit(SOUTH, MessageClass::Request, 0, false);
    }

    #[test]
    #[should_panic(expected = "double allocation")]
    fn double_allocation_panics() {
        let mut out = bank();
        out.allocate_vc(3, MessageClass::Request, 1);
        out.allocate_vc(3, MessageClass::Request, 1);
    }
}
