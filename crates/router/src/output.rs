//! Output ports: downstream virtual-channel bookkeeping and credit tracking.
//!
//! Each output port mirrors the state of the *downstream* router's input
//! port: which of its VCs are currently allocated to in-flight packets, how
//! many buffer slots (credits) each has free, and whether the tail flit of
//! the current packet has been sent. This is the state the chip's VA stage
//! (free-VC queues) and credit counters maintain.

use noc_types::{Credit, MessageClass, Port, VcId};
use serde::{Deserialize, Serialize};

use crate::config::RouterConfig;

/// Bookkeeping for one virtual channel of the downstream input port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DownstreamVc {
    /// Free buffer slots at the downstream VC.
    pub credits: u8,
    /// Whether the VC is currently allocated to an in-flight packet.
    pub allocated: bool,
    /// Whether the tail flit of the current packet has been sent.
    pub tail_sent: bool,
    depth: u8,
}

impl DownstreamVc {
    fn new(depth: u8) -> Self {
        Self {
            credits: depth,
            allocated: false,
            tail_sent: false,
            depth,
        }
    }

    /// Buffer depth of the downstream VC.
    #[must_use]
    pub fn depth(&self) -> u8 {
        self.depth
    }

    /// Returns `true` when the VC can be handed to a new packet.
    #[must_use]
    pub fn is_free(&self) -> bool {
        !self.allocated
    }
}

/// One of the five output ports of a router.
///
/// The local (ejection) output port connects to the NIC, which is modelled as
/// always able to sink one flit per cycle; it therefore skips VC and credit
/// bookkeeping. All other ports track the downstream router's input VCs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutputPort {
    port: Port,
    request: Vec<DownstreamVc>,
    response: Vec<DownstreamVc>,
}

impl OutputPort {
    /// Creates an output port whose downstream input port is provisioned per
    /// `config`.
    #[must_use]
    pub fn new(port: Port, config: &RouterConfig) -> Self {
        if port.is_local() {
            return Self {
                port,
                request: Vec::new(),
                response: Vec::new(),
            };
        }
        Self {
            port,
            request: (0..config.request_vcs.count)
                .map(|_| DownstreamVc::new(config.request_vcs.depth))
                .collect(),
            response: (0..config.response_vcs.count)
                .map(|_| DownstreamVc::new(config.response_vcs.depth))
                .collect(),
        }
    }

    /// Creates the credit/VC tracker a NIC uses for the router input port it
    /// injects into.
    ///
    /// The NIC sits upstream of the router's local input port exactly like a
    /// neighbouring router sits upstream of a mesh input port, so it needs
    /// the same bookkeeping; this constructor provides it with full VC and
    /// credit tracking (unlike [`OutputPort::new`] with [`Port::Local`],
    /// which models the *ejection* side where the NIC always sinks flits).
    #[must_use]
    pub fn for_injection(config: &RouterConfig) -> Self {
        Self {
            port: Port::Local,
            request: (0..config.request_vcs.count)
                .map(|_| DownstreamVc::new(config.request_vcs.depth))
                .collect(),
            response: (0..config.response_vcs.count)
                .map(|_| DownstreamVc::new(config.response_vcs.depth))
                .collect(),
        }
    }

    /// Which router port this output drives.
    #[must_use]
    pub fn port(&self) -> Port {
        self.port
    }

    /// Returns `true` for the ejection (NIC) port.
    #[must_use]
    pub fn is_local(&self) -> bool {
        self.port.is_local()
    }

    /// Returns `true` when this output performs no VC/credit tracking (the
    /// ejection port, whose NIC always sinks one flit per cycle).
    fn untracked(&self) -> bool {
        self.request.is_empty() && self.response.is_empty()
    }

    fn class(&self, class: MessageClass) -> &Vec<DownstreamVc> {
        match class {
            MessageClass::Request => &self.request,
            MessageClass::Response => &self.response,
        }
    }

    fn class_mut(&mut self, class: MessageClass) -> &mut Vec<DownstreamVc> {
        match class {
            MessageClass::Request => &mut self.request,
            MessageClass::Response => &mut self.response,
        }
    }

    /// State of downstream VC `(class, vc)`, or `None` for the local port.
    #[must_use]
    pub fn downstream_vc(&self, class: MessageClass, vc: VcId) -> Option<&DownstreamVc> {
        self.class(class).get(usize::from(vc))
    }

    /// Finds a free downstream VC with at least one credit, without
    /// allocating it (the VA check performed before committing a grant).
    ///
    /// Always returns `Some(0)` for the local port, which needs no VC.
    #[must_use]
    pub fn peek_free_vc(&self, class: MessageClass) -> Option<VcId> {
        if self.untracked() {
            return Some(0);
        }
        self.class(class)
            .iter()
            .position(|vc| vc.is_free() && vc.credits > 0)
            .map(|i| i as VcId)
    }

    /// Allocates downstream VC `vc` to a new packet.
    ///
    /// # Panics
    ///
    /// Panics if the VC is already allocated (the caller must only commit
    /// VCs returned by [`peek_free_vc`](Self::peek_free_vc) in the same
    /// cycle).
    pub fn allocate_vc(&mut self, class: MessageClass, vc: VcId) {
        if self.untracked() {
            return;
        }
        let slot = &mut self.class_mut(class)[usize::from(vc)];
        assert!(slot.is_free(), "double allocation of downstream VC");
        slot.allocated = true;
        slot.tail_sent = false;
    }

    /// Returns `true` when downstream VC `(class, vc)` has a free buffer slot.
    ///
    /// Always `true` for the local port.
    #[must_use]
    pub fn has_credit(&self, class: MessageClass, vc: VcId) -> bool {
        if self.untracked() {
            return true;
        }
        self.class(class)
            .get(usize::from(vc))
            .is_some_and(|v| v.credits > 0)
    }

    /// Records the departure of a flit on downstream VC `(class, vc)`,
    /// consuming one credit; `is_tail` marks the end of the packet.
    ///
    /// # Panics
    ///
    /// Panics if no credit is available (flow-control bug).
    pub fn send_flit(&mut self, class: MessageClass, vc: VcId, is_tail: bool) {
        if self.untracked() {
            return;
        }
        let slot = &mut self.class_mut(class)[usize::from(vc)];
        assert!(slot.credits > 0, "sent a flit without a credit");
        slot.credits -= 1;
        if is_tail {
            slot.tail_sent = true;
        }
    }

    /// Processes a credit returned by the downstream router.
    ///
    /// When the packet's tail has been sent and every buffer slot has been
    /// returned, the VC goes back to the free pool — this is the VC
    /// turnaround the paper sizes its buffers against (3 cycles with
    /// single-cycle hops and bypassing).
    pub fn on_credit(&mut self, credit: Credit) {
        if self.untracked() {
            return;
        }
        let slot = &mut self.class_mut(credit.class)[usize::from(credit.vc)];
        let depth = slot.depth;
        assert!(
            slot.credits < depth,
            "credit overflow on downstream VC (more credits than buffer slots)"
        );
        slot.credits += 1;
        if slot.allocated && slot.tail_sent && slot.credits == depth {
            slot.allocated = false;
            slot.tail_sent = false;
        }
    }

    /// Number of free VCs in `class` (for occupancy statistics).
    #[must_use]
    pub fn free_vcs(&self, class: MessageClass) -> usize {
        self.class(class).iter().filter(|v| v.is_free()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RouterConfig;

    fn output(port: Port) -> OutputPort {
        OutputPort::new(port, &RouterConfig::proposed(true))
    }

    #[test]
    fn local_port_is_always_available() {
        let mut local = output(Port::Local);
        assert!(local.is_local());
        assert_eq!(local.peek_free_vc(MessageClass::Request), Some(0));
        assert!(local.has_credit(MessageClass::Response, 0));
        // These must be no-ops rather than panics.
        local.allocate_vc(MessageClass::Request, 0);
        local.send_flit(MessageClass::Request, 0, true);
        local.on_credit(Credit::new(MessageClass::Request, 0));
    }

    #[test]
    fn vc_allocation_lifecycle() {
        let mut out = output(Port::East);
        assert_eq!(out.free_vcs(MessageClass::Request), 4);
        let vc = out.peek_free_vc(MessageClass::Request).unwrap();
        out.allocate_vc(MessageClass::Request, vc);
        assert_eq!(out.free_vcs(MessageClass::Request), 3);
        out.send_flit(MessageClass::Request, vc, true);
        assert!(
            !out.has_credit(MessageClass::Request, vc),
            "depth-1 VC exhausted"
        );
        // Credit comes back after the downstream router forwards the flit.
        out.on_credit(Credit::new(MessageClass::Request, vc));
        assert_eq!(out.free_vcs(MessageClass::Request), 4);
        assert!(out.has_credit(MessageClass::Request, vc));
    }

    #[test]
    fn multi_flit_packet_frees_vc_only_after_tail_and_all_credits() {
        let mut out = output(Port::North);
        let vc = out.peek_free_vc(MessageClass::Response).unwrap();
        out.allocate_vc(MessageClass::Response, vc);
        // Send three flits (head + 2 body) filling the 3-deep buffer.
        out.send_flit(MessageClass::Response, vc, false);
        out.send_flit(MessageClass::Response, vc, false);
        out.send_flit(MessageClass::Response, vc, false);
        assert!(!out.has_credit(MessageClass::Response, vc));
        // Two credits return; send body + tail.
        out.on_credit(Credit::new(MessageClass::Response, vc));
        out.on_credit(Credit::new(MessageClass::Response, vc));
        out.send_flit(MessageClass::Response, vc, false);
        out.send_flit(MessageClass::Response, vc, true);
        assert_eq!(out.free_vcs(MessageClass::Response), 1, "still allocated");
        // All outstanding credits return: VC becomes free again.
        out.on_credit(Credit::new(MessageClass::Response, vc));
        out.on_credit(Credit::new(MessageClass::Response, vc));
        out.on_credit(Credit::new(MessageClass::Response, vc));
        assert_eq!(out.free_vcs(MessageClass::Response), 2);
    }

    #[test]
    #[should_panic(expected = "without a credit")]
    fn sending_without_credit_panics() {
        let mut out = output(Port::South);
        out.allocate_vc(MessageClass::Request, 0);
        out.send_flit(MessageClass::Request, 0, false);
        out.send_flit(MessageClass::Request, 0, false);
    }

    #[test]
    #[should_panic(expected = "double allocation")]
    fn double_allocation_panics() {
        let mut out = output(Port::West);
        out.allocate_vc(MessageClass::Request, 1);
        out.allocate_vc(MessageClass::Request, 1);
    }
}
