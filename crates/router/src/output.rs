//! Output ports: downstream virtual-channel bookkeeping and credit tracking.
//!
//! Each output port mirrors the state of the *downstream* router's input
//! port: which of its VCs are currently allocated to in-flight packets, how
//! many buffer slots (credits) each has free, and whether the tail flit of
//! the current packet has been sent. This is the state the chip's VA stage
//! (free-VC queues) and credit counters maintain.

use noc_types::{Credit, MessageClass, Port, VcId};
use serde::{Deserialize, Serialize};

use crate::config::RouterConfig;

/// Bookkeeping for one virtual channel of the downstream input port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DownstreamVc {
    /// Free buffer slots at the downstream VC.
    pub credits: u8,
    /// Whether the VC is currently allocated to an in-flight packet.
    pub allocated: bool,
    /// Whether the tail flit of the current packet has been sent.
    pub tail_sent: bool,
    depth: u8,
}

impl DownstreamVc {
    fn new(depth: u8) -> Self {
        Self {
            credits: depth,
            allocated: false,
            tail_sent: false,
            depth,
        }
    }

    /// Buffer depth of the downstream VC.
    #[must_use]
    pub fn depth(&self) -> u8 {
        self.depth
    }

    /// Returns `true` when the VC can be handed to a new packet.
    #[must_use]
    pub fn is_free(&self) -> bool {
        !self.allocated
    }
}

/// One of the five output ports of a router.
///
/// The local (ejection) output port connects to the NIC, which is modelled as
/// always able to sink one flit per cycle; it therefore skips VC and credit
/// bookkeeping. All other ports track the downstream router's input VCs.
///
/// Besides the per-VC [`DownstreamVc`] records, the port maintains two
/// per-class bitmask summaries — which VCs are unallocated (`free_mask`) and
/// which have at least one credit (`credit_mask`) — refreshed incrementally
/// on every send, allocation and credit event. The router's switch-allocation
/// hot path reads only these words: "can this port take a new head flit?"
/// collapses to `free & credit != 0` and a per-branch credit check to a
/// single bit test, instead of scanning the VC records every cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutputPort {
    port: Port,
    request: Vec<DownstreamVc>,
    response: Vec<DownstreamVc>,
    /// Per-class masks of unallocated VCs (index matches [`MessageClass`]).
    free_mask: [u32; 2],
    /// Per-class masks of VCs with at least one credit.
    credit_mask: [u32; 2],
}

impl OutputPort {
    /// Creates an output port whose downstream input port is provisioned per
    /// `config`.
    #[must_use]
    pub fn new(port: Port, config: &RouterConfig) -> Self {
        if port.is_local() {
            return Self {
                port,
                request: Vec::new(),
                response: Vec::new(),
                free_mask: [0; 2],
                credit_mask: [0; 2],
            };
        }
        let mut out = Self {
            port,
            request: (0..config.request_vcs.count)
                .map(|_| DownstreamVc::new(config.request_vcs.depth))
                .collect(),
            response: (0..config.response_vcs.count)
                .map(|_| DownstreamVc::new(config.response_vcs.depth))
                .collect(),
            free_mask: [0; 2],
            credit_mask: [0; 2],
        };
        out.rebuild_masks();
        out
    }

    /// Creates the credit/VC tracker a NIC uses for the router input port it
    /// injects into.
    ///
    /// The NIC sits upstream of the router's local input port exactly like a
    /// neighbouring router sits upstream of a mesh input port, so it needs
    /// the same bookkeeping; this constructor provides it with full VC and
    /// credit tracking (unlike [`OutputPort::new`] with [`Port::Local`],
    /// which models the *ejection* side where the NIC always sinks flits).
    #[must_use]
    pub fn for_injection(config: &RouterConfig) -> Self {
        let mut out = Self {
            port: Port::Local,
            request: (0..config.request_vcs.count)
                .map(|_| DownstreamVc::new(config.request_vcs.depth))
                .collect(),
            response: (0..config.response_vcs.count)
                .map(|_| DownstreamVc::new(config.response_vcs.depth))
                .collect(),
            free_mask: [0; 2],
            credit_mask: [0; 2],
        };
        out.rebuild_masks();
        out
    }

    /// Recomputes the per-class free/credit masks from the VC records
    /// (construction and [`reset`](Self::reset) only; every steady-state
    /// update is incremental).
    fn rebuild_masks(&mut self) {
        for class in MessageClass::ALL {
            let ci = class.index();
            let mut free = 0;
            let mut credit = 0;
            for (i, vc) in self.class(class).iter().enumerate() {
                if vc.is_free() {
                    free |= 1 << i;
                }
                if vc.credits > 0 {
                    credit |= 1 << i;
                }
            }
            self.free_mask[ci] = free;
            self.credit_mask[ci] = credit;
        }
    }

    /// Restores the port to its post-construction state — every downstream VC
    /// free, every credit returned — keeping the storage (used by warm
    /// network resets; see `mesh_noc::Network::reset`).
    pub fn reset(&mut self) {
        for class in MessageClass::ALL {
            for vc in self.class_mut(class) {
                let depth = vc.depth;
                *vc = DownstreamVc::new(depth);
            }
        }
        self.rebuild_masks();
    }

    /// Which router port this output drives.
    #[must_use]
    pub fn port(&self) -> Port {
        self.port
    }

    /// Returns `true` for the ejection (NIC) port.
    #[must_use]
    pub fn is_local(&self) -> bool {
        self.port.is_local()
    }

    /// Returns `true` when this output performs no VC/credit tracking (the
    /// ejection port, whose NIC always sinks one flit per cycle).
    fn untracked(&self) -> bool {
        self.request.is_empty() && self.response.is_empty()
    }

    fn class(&self, class: MessageClass) -> &Vec<DownstreamVc> {
        match class {
            MessageClass::Request => &self.request,
            MessageClass::Response => &self.response,
        }
    }

    fn class_mut(&mut self, class: MessageClass) -> &mut Vec<DownstreamVc> {
        match class {
            MessageClass::Request => &mut self.request,
            MessageClass::Response => &mut self.response,
        }
    }

    /// State of downstream VC `(class, vc)`, or `None` for the local port.
    #[must_use]
    pub fn downstream_vc(&self, class: MessageClass, vc: VcId) -> Option<&DownstreamVc> {
        self.class(class).get(usize::from(vc))
    }

    /// Finds a free downstream VC with at least one credit, without
    /// allocating it (the VA check performed before committing a grant).
    ///
    /// Always returns `Some(0)` for the local port, which needs no VC.
    #[must_use]
    pub fn peek_free_vc(&self, class: MessageClass) -> Option<VcId> {
        if self.untracked() {
            return Some(0);
        }
        let ready = self.free_mask[class.index()] & self.credit_mask[class.index()];
        if ready == 0 {
            None
        } else {
            Some(ready.trailing_zeros() as VcId)
        }
    }

    /// Returns `true` when a new packet head could be granted this port: a
    /// downstream VC is both free and credited (always `true` for the
    /// ejection port, whose NIC sinks one flit per cycle unconditionally).
    ///
    /// This is the single-word form of [`peek_free_vc`](Self::peek_free_vc)
    /// the switch-allocation eligibility masks are built from.
    #[must_use]
    pub fn can_accept_head(&self, class: MessageClass) -> bool {
        self.untracked() || self.free_mask[class.index()] & self.credit_mask[class.index()] != 0
    }

    /// Bitmask of downstream VCs of `class` that currently hold at least one
    /// credit (bit `v` = VC `v`). All-ones for the untracked local port.
    #[must_use]
    pub fn credit_mask(&self, class: MessageClass) -> u32 {
        if self.untracked() {
            u32::MAX
        } else {
            self.credit_mask[class.index()]
        }
    }

    /// Allocates downstream VC `vc` to a new packet.
    ///
    /// # Panics
    ///
    /// Panics if the VC is already allocated (the caller must only commit
    /// VCs returned by [`peek_free_vc`](Self::peek_free_vc) in the same
    /// cycle).
    pub fn allocate_vc(&mut self, class: MessageClass, vc: VcId) {
        if self.untracked() {
            return;
        }
        let slot = &mut self.class_mut(class)[usize::from(vc)];
        assert!(slot.is_free(), "double allocation of downstream VC");
        slot.allocated = true;
        slot.tail_sent = false;
        self.free_mask[class.index()] &= !(1 << vc);
    }

    /// Returns `true` when downstream VC `(class, vc)` has a free buffer slot.
    ///
    /// Always `true` for the local port; `false` for a VC outside the mask
    /// width (a `VcId` this configuration cannot have).
    #[must_use]
    pub fn has_credit(&self, class: MessageClass, vc: VcId) -> bool {
        if self.untracked() {
            return true;
        }
        let bit = 1u32.checked_shl(u32::from(vc)).unwrap_or(0);
        self.credit_mask[class.index()] & bit != 0
    }

    /// Records the departure of a flit on downstream VC `(class, vc)`,
    /// consuming one credit; `is_tail` marks the end of the packet.
    ///
    /// # Panics
    ///
    /// Panics if no credit is available (flow-control bug).
    pub fn send_flit(&mut self, class: MessageClass, vc: VcId, is_tail: bool) {
        if self.untracked() {
            return;
        }
        let slot = &mut self.class_mut(class)[usize::from(vc)];
        assert!(slot.credits > 0, "sent a flit without a credit");
        slot.credits -= 1;
        if is_tail {
            slot.tail_sent = true;
        }
        if slot.credits == 0 {
            self.credit_mask[class.index()] &= !(1 << vc);
        }
    }

    /// Processes a credit returned by the downstream router.
    ///
    /// When the packet's tail has been sent and every buffer slot has been
    /// returned, the VC goes back to the free pool — this is the VC
    /// turnaround the paper sizes its buffers against (3 cycles with
    /// single-cycle hops and bypassing).
    pub fn on_credit(&mut self, credit: Credit) {
        if self.untracked() {
            return;
        }
        let slot = &mut self.class_mut(credit.class)[usize::from(credit.vc)];
        let depth = slot.depth;
        assert!(
            slot.credits < depth,
            "credit overflow on downstream VC (more credits than buffer slots)"
        );
        slot.credits += 1;
        let mut freed = false;
        if slot.allocated && slot.tail_sent && slot.credits == depth {
            slot.allocated = false;
            slot.tail_sent = false;
            freed = true;
        }
        let ci = credit.class.index();
        self.credit_mask[ci] |= 1 << credit.vc;
        if freed {
            self.free_mask[ci] |= 1 << credit.vc;
        }
    }

    /// Number of free VCs in `class` (for occupancy statistics).
    #[must_use]
    pub fn free_vcs(&self, class: MessageClass) -> usize {
        self.class(class).iter().filter(|v| v.is_free()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RouterConfig;

    fn output(port: Port) -> OutputPort {
        OutputPort::new(port, &RouterConfig::proposed(true))
    }

    #[test]
    fn local_port_is_always_available() {
        let mut local = output(Port::Local);
        assert!(local.is_local());
        assert_eq!(local.peek_free_vc(MessageClass::Request), Some(0));
        assert!(local.has_credit(MessageClass::Response, 0));
        // These must be no-ops rather than panics.
        local.allocate_vc(MessageClass::Request, 0);
        local.send_flit(MessageClass::Request, 0, true);
        local.on_credit(Credit::new(MessageClass::Request, 0));
    }

    #[test]
    fn vc_allocation_lifecycle() {
        let mut out = output(Port::East);
        assert_eq!(out.free_vcs(MessageClass::Request), 4);
        let vc = out.peek_free_vc(MessageClass::Request).unwrap();
        out.allocate_vc(MessageClass::Request, vc);
        assert_eq!(out.free_vcs(MessageClass::Request), 3);
        out.send_flit(MessageClass::Request, vc, true);
        assert!(
            !out.has_credit(MessageClass::Request, vc),
            "depth-1 VC exhausted"
        );
        // Credit comes back after the downstream router forwards the flit.
        out.on_credit(Credit::new(MessageClass::Request, vc));
        assert_eq!(out.free_vcs(MessageClass::Request), 4);
        assert!(out.has_credit(MessageClass::Request, vc));
    }

    #[test]
    fn multi_flit_packet_frees_vc_only_after_tail_and_all_credits() {
        let mut out = output(Port::North);
        let vc = out.peek_free_vc(MessageClass::Response).unwrap();
        out.allocate_vc(MessageClass::Response, vc);
        // Send three flits (head + 2 body) filling the 3-deep buffer.
        out.send_flit(MessageClass::Response, vc, false);
        out.send_flit(MessageClass::Response, vc, false);
        out.send_flit(MessageClass::Response, vc, false);
        assert!(!out.has_credit(MessageClass::Response, vc));
        // Two credits return; send body + tail.
        out.on_credit(Credit::new(MessageClass::Response, vc));
        out.on_credit(Credit::new(MessageClass::Response, vc));
        out.send_flit(MessageClass::Response, vc, false);
        out.send_flit(MessageClass::Response, vc, true);
        assert_eq!(out.free_vcs(MessageClass::Response), 1, "still allocated");
        // All outstanding credits return: VC becomes free again.
        out.on_credit(Credit::new(MessageClass::Response, vc));
        out.on_credit(Credit::new(MessageClass::Response, vc));
        out.on_credit(Credit::new(MessageClass::Response, vc));
        assert_eq!(out.free_vcs(MessageClass::Response), 2);
    }

    /// The mask summaries must agree with the per-VC records at all times.
    fn assert_masks_consistent(out: &OutputPort) {
        for class in MessageClass::ALL {
            for vc in 0..4u8 {
                let Some(state) = out.downstream_vc(class, vc) else {
                    continue;
                };
                assert_eq!(
                    out.has_credit(class, vc),
                    state.credits > 0,
                    "credit mask diverged on {class:?} vc {vc}"
                );
            }
            let scan = out
                .class(class)
                .iter()
                .position(|vc| vc.is_free() && vc.credits > 0)
                .map(|i| i as VcId);
            assert_eq!(out.peek_free_vc(class), scan, "free mask diverged");
            assert_eq!(out.can_accept_head(class), scan.is_some());
        }
    }

    #[test]
    fn masks_track_the_vc_records_through_a_lifecycle() {
        let mut out = output(Port::East);
        assert_masks_consistent(&out);
        let vc = out.peek_free_vc(MessageClass::Response).unwrap();
        out.allocate_vc(MessageClass::Response, vc);
        assert_masks_consistent(&out);
        for _ in 0..3 {
            out.send_flit(MessageClass::Response, vc, false);
            assert_masks_consistent(&out);
        }
        assert_eq!(out.credit_mask(MessageClass::Response) & (1 << vc), 0);
        out.on_credit(Credit::new(MessageClass::Response, vc));
        assert_masks_consistent(&out);
        out.send_flit(MessageClass::Response, vc, true);
        for _ in 0..3 {
            out.on_credit(Credit::new(MessageClass::Response, vc));
        }
        assert_masks_consistent(&out);
        assert!(out.can_accept_head(MessageClass::Response));
    }

    #[test]
    fn has_credit_is_false_for_out_of_range_vcs() {
        let out = output(Port::East);
        assert!(!out.has_credit(MessageClass::Request, 31));
        assert!(
            !out.has_credit(MessageClass::Request, 32),
            "no shift overflow"
        );
        assert!(!out.has_credit(MessageClass::Response, 255));
    }

    #[test]
    fn reset_restores_the_fresh_state() {
        let mut out = output(Port::North);
        let fresh = out.clone();
        out.allocate_vc(MessageClass::Request, 2);
        out.send_flit(MessageClass::Request, 2, true);
        out.allocate_vc(MessageClass::Response, 0);
        out.reset();
        assert_eq!(out, fresh, "reset must reproduce the constructed state");
        assert_masks_consistent(&out);
    }

    #[test]
    #[should_panic(expected = "without a credit")]
    fn sending_without_credit_panics() {
        let mut out = output(Port::South);
        out.allocate_vc(MessageClass::Request, 0);
        out.send_flit(MessageClass::Request, 0, false);
        out.send_flit(MessageClass::Request, 0, false);
    }

    #[test]
    #[should_panic(expected = "double allocation")]
    fn double_allocation_panics() {
        let mut out = output(Port::West);
        out.allocate_vc(MessageClass::Request, 1);
        out.allocate_vc(MessageClass::Request, 1);
    }
}
