//! Input-side buffer state of a router, laid out struct-of-arrays.
//!
//! One [`InputBank`] holds the virtual-channel buffers of *all five* input
//! ports in parallel flat arrays indexed `port * vc_count + vc`: the flits
//! themselves in inline [`ArrayFifo`] rings (no per-VC heap indirection), the
//! head-readiness cycles and route state in sibling arrays, and one
//! occupancy bitmask per port. The switch allocator's mSA-I scan therefore
//! walks contiguous words — occupancy mask, head-ready cycle, head flit —
//! instead of pointer-chasing per-port buffer objects.
//!
//! External readers (the network's debug dump, benches, tests) borrow
//! [`InputPortRef`] / [`VcRef`] views instead of owning port objects.

use noc_types::{ArrayFifo, Cycle, Flit, MessageClass, Port, VcId, PORT_COUNT};
use serde::{Deserialize, Serialize};

use crate::config::{RouterConfig, VcLayout, MAX_VC_DEPTH};

/// Route state of the packet currently occupying a virtual channel.
///
/// Set when the packet's head flit traverses the router (whether buffered or
/// bypassed) and cleared when the tail flit leaves, so that body and tail
/// flits inherit the output port and downstream VC chosen for the head.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VcRoute {
    /// Output port granted to the packet's head flit.
    pub out_port: Port,
    /// Downstream virtual channel allocated to the packet.
    pub out_vc: VcId,
}

/// The head-ready sentinel for an empty VC: no head can ever be eligible.
const NEVER: Cycle = Cycle::MAX;

/// The input-buffer state of every port of one router, struct-of-arrays.
///
/// All per-VC arrays are indexed `port * vc_count + flat_vc`, where
/// `flat_vc` counts request VCs first and response VCs after (the same
/// flattening the occupancy masks and mSA-I request vectors use).
#[derive(Debug, Clone, PartialEq)]
pub struct InputBank {
    layout: VcLayout,
    /// Buffered flits of each VC (with the earliest cycle each may compete
    /// for the switch), stored inline.
    flits: Vec<ArrayFifo<(Flit, Cycle), MAX_VC_DEPTH>>,
    /// Ready cycle of each VC's *head* flit ([`NEVER`] when empty) — the
    /// word the eligibility scan reads without touching the flit itself.
    head_ready: Vec<Cycle>,
    /// Route state of the in-flight packet using each VC (if any).
    routes: Vec<Option<VcRoute>>,
    /// Bit `v` of `occupied[p]` set ⇔ VC `v` of port `p` is non-empty.
    occupied: [u32; PORT_COUNT],
    /// Total buffered flits across the bank (kept incrementally so the
    /// network's active-set scheduler can poll it for free).
    buffered: usize,
}

impl InputBank {
    /// Creates the input bank for a router provisioned per `config`.
    #[must_use]
    pub fn new(config: &RouterConfig) -> Self {
        let layout = VcLayout::new(config);
        let slots = PORT_COUNT * layout.vc_count();
        Self {
            layout,
            flits: (0..slots).map(|_| ArrayFifo::new()).collect(),
            head_ready: vec![NEVER; slots],
            routes: vec![None; slots],
            occupied: [0; PORT_COUNT],
            buffered: 0,
        }
    }

    /// Restores the bank to its post-construction state — every VC empty and
    /// route-free — keeping the (inline) storage.
    pub fn reset(&mut self) {
        for fifo in &mut self.flits {
            fifo.clear();
        }
        self.head_ready.fill(NEVER);
        self.routes.fill(None);
        self.occupied = [0; PORT_COUNT];
        self.buffered = 0;
    }

    /// Number of VCs per port across both message classes.
    #[must_use]
    pub fn vc_count(&self) -> usize {
        self.layout.vc_count()
    }

    /// Flattened per-port VC index for `(class, vc)` — request VCs first,
    /// then response VCs (see [`VcLayout::flat_vc`]).
    #[must_use]
    pub fn flat_vc(&self, class: MessageClass, vc: VcId) -> usize {
        self.layout.flat_vc(class, vc)
    }

    /// Message class of flat VC `flat`.
    #[must_use]
    pub fn class_of(&self, flat: usize) -> MessageClass {
        self.layout.class_of(flat)
    }

    /// VC identifier (within its message class) of flat VC `flat`.
    #[must_use]
    pub fn vc_id_of(&self, flat: usize) -> VcId {
        self.layout.vc_id_of(flat)
    }

    /// Buffer depth of flat VC `flat`.
    #[must_use]
    pub fn depth_of(&self, flat: usize) -> u8 {
        self.layout.depth_of(flat)
    }

    #[inline]
    fn slot(&self, port: usize, flat: usize) -> usize {
        debug_assert!(port < PORT_COUNT);
        self.layout.slot(port, flat)
    }

    /// Bitmask of flat VC indices of `port` currently holding flits.
    #[inline]
    #[must_use]
    pub fn occupied_mask(&self, port: usize) -> u32 {
        self.occupied[port]
    }

    /// Pushes an arriving flit into VC `(class, vc)` of `port`, keeping the
    /// occupancy mask, head-ready cache and buffered count in sync.
    ///
    /// # Panics
    ///
    /// Panics if the VC buffer overflows (a flow-control protocol bug).
    pub fn push_flit(
        &mut self,
        port: usize,
        class: MessageClass,
        vc: VcId,
        flit: Flit,
        ready_at: Cycle,
    ) {
        let flat = self.flat_vc(class, vc);
        let slot = self.slot(port, flat);
        assert!(
            self.flits[slot].len() < usize::from(self.depth_of(flat)),
            "VC buffer overflow: class {:?} vc {} depth {}",
            class,
            vc,
            self.depth_of(flat)
        );
        if self.flits[slot].is_empty() {
            self.head_ready[slot] = ready_at;
        }
        self.flits[slot].push_back((flit, ready_at));
        self.occupied[port] |= 1 << flat;
        self.buffered += 1;
    }

    /// Pops the head flit of flat VC `flat` of `port`, keeping the occupancy
    /// mask, head-ready cache and buffered count in sync.
    pub fn pop_flit(&mut self, port: usize, flat: usize) -> Option<Flit> {
        let slot = self.slot(port, flat);
        let (flit, _) = self.flits[slot].pop_front()?;
        self.head_ready[slot] = self.flits[slot].front().map_or(NEVER, |(_, r)| *r);
        if self.flits[slot].is_empty() {
            self.occupied[port] &= !(1 << flat);
        }
        self.buffered -= 1;
        Some(flit)
    }

    /// Earliest cycle the head of flat VC `flat` of `port` may compete for
    /// the switch ([`Cycle::MAX`] when the VC is empty). Comparing this word
    /// against `now` is the whole eligibility probe — no flit is touched.
    #[inline]
    #[must_use]
    pub fn head_ready(&self, port: usize, flat: usize) -> Cycle {
        self.head_ready[self.slot(port, flat)]
    }

    /// The head flit of flat VC `flat` of `port`, if any.
    #[must_use]
    pub fn head(&self, port: usize, flat: usize) -> Option<&Flit> {
        self.flits[self.slot(port, flat)].front().map(|(f, _)| f)
    }

    /// Mutable access to the head flit (used to shrink a multicast flit's
    /// remaining destination set after partial service).
    pub fn head_mut(&mut self, port: usize, flat: usize) -> Option<&mut Flit> {
        let slot = self.slot(port, flat);
        self.flits[slot].front_mut().map(|(f, _)| f)
    }

    /// Returns `true` when flat VC `flat` of `port` buffers no flit.
    #[must_use]
    pub fn is_empty(&self, port: usize, flat: usize) -> bool {
        self.occupied[port] & (1 << flat) == 0
    }

    /// Flits buffered in flat VC `flat` of `port`.
    #[must_use]
    pub fn occupancy_at(&self, port: usize, flat: usize) -> usize {
        self.flits[self.slot(port, flat)].len()
    }

    /// Total flits buffered across all VCs of `port`.
    #[must_use]
    pub fn occupancy(&self, port: usize) -> usize {
        (0..self.vc_count())
            .map(|flat| self.occupancy_at(port, flat))
            .sum()
    }

    /// Total flits buffered across the whole bank (O(1); maintained
    /// incrementally by push/pop).
    #[inline]
    #[must_use]
    pub fn buffered_flits(&self) -> usize {
        self.buffered
    }

    /// Route state of the packet currently using flat VC `flat` of `port`.
    #[inline]
    #[must_use]
    pub fn route(&self, port: usize, flat: usize) -> Option<VcRoute> {
        self.routes[self.slot(port, flat)]
    }

    /// Sets the route state (called when a head flit traverses).
    pub fn set_route(&mut self, port: usize, flat: usize, route: VcRoute) {
        let slot = self.slot(port, flat);
        self.routes[slot] = Some(route);
    }

    /// Clears the route state (called when a tail flit traverses).
    pub fn clear_route(&mut self, port: usize, flat: usize) {
        let slot = self.slot(port, flat);
        self.routes[slot] = None;
    }

    /// Read-only view of one input port (for diagnostics and tests).
    #[must_use]
    pub fn port(&self, port: Port) -> InputPortRef<'_> {
        InputPortRef { bank: self, port }
    }
}

/// Read-only view of one input port of an [`InputBank`].
#[derive(Debug, Clone, Copy)]
pub struct InputPortRef<'a> {
    bank: &'a InputBank,
    port: Port,
}

impl<'a> InputPortRef<'a> {
    /// Which router port this view covers.
    #[must_use]
    pub fn port(&self) -> Port {
        self.port
    }

    /// Number of VCs across both message classes.
    #[must_use]
    pub fn vc_count(&self) -> usize {
        self.bank.vc_count()
    }

    /// Flattened VC index for `(class, vc)` — request VCs first, then
    /// response VCs.
    #[must_use]
    pub fn flat_index(&self, class: MessageClass, vc: VcId) -> usize {
        self.bank.flat_vc(class, vc)
    }

    /// Bitmask of flat VC indices currently holding at least one flit.
    #[must_use]
    pub fn occupied_mask(&self) -> u32 {
        self.bank.occupied_mask(self.port.index())
    }

    /// Total flits buffered across all VCs of this port.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.bank.occupancy(self.port.index())
    }

    /// View of the VC buffer for `(class, vc)`.
    #[must_use]
    pub fn vc(&self, class: MessageClass, vc: VcId) -> VcRef<'a> {
        self.vc_at(self.bank.flat_vc(class, vc))
    }

    /// View of the VC buffer at flattened index `flat`.
    ///
    /// # Panics
    ///
    /// Panics if the VC does not exist in this configuration.
    #[must_use]
    pub fn vc_at(&self, flat: usize) -> VcRef<'a> {
        assert!(flat < self.bank.vc_count(), "VC index out of range");
        VcRef {
            bank: self.bank,
            port: self.port.index(),
            flat,
        }
    }
}

/// Read-only view of one virtual-channel buffer of an [`InputBank`].
#[derive(Debug, Clone, Copy)]
pub struct VcRef<'a> {
    bank: &'a InputBank,
    port: usize,
    flat: usize,
}

impl VcRef<'_> {
    /// Message class of this VC.
    #[must_use]
    pub fn class(&self) -> MessageClass {
        self.bank.class_of(self.flat)
    }

    /// VC identifier within its message class.
    #[must_use]
    pub fn id(&self) -> VcId {
        self.bank.vc_id_of(self.flat)
    }

    /// Buffer depth in flits.
    #[must_use]
    pub fn depth(&self) -> usize {
        usize::from(self.bank.depth_of(self.flat))
    }

    /// Number of flits currently buffered.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.bank.occupancy_at(self.port, self.flat)
    }

    /// Returns `true` when no flit is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bank.is_empty(self.port, self.flat)
    }

    /// The flit at the head of the FIFO regardless of readiness.
    #[must_use]
    pub fn head(&self) -> Option<&Flit> {
        self.bank.head(self.port, self.flat)
    }

    /// The head flit, if it is allowed to compete for the switch at `now`.
    #[must_use]
    pub fn eligible_head(&self, now: Cycle) -> Option<&Flit> {
        if self.bank.head_ready(self.port, self.flat) <= now {
            self.head()
        } else {
            None
        }
    }

    /// Route state of the packet currently using this VC.
    #[must_use]
    pub fn route(&self) -> Option<VcRoute> {
        self.bank.route(self.port, self.flat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RouterConfig;
    use noc_types::{DestinationSet, Packet, PacketKind};

    fn request_flit(id: u64) -> Flit {
        Packet::new(id, 0, DestinationSet::unicast(5), PacketKind::Request, 0)
            .to_flits()
            .remove(0)
    }

    fn bank() -> InputBank {
        InputBank::new(&RouterConfig::proposed(true))
    }

    const EAST: usize = 1;

    #[test]
    fn bank_has_the_chip_vc_layout() {
        let bank = bank();
        assert_eq!(bank.vc_count(), 6);
        let north = bank.port(Port::North);
        assert_eq!(north.vc_count(), 6);
        assert_eq!(north.vc(MessageClass::Request, 0).depth(), 1);
        assert_eq!(north.vc(MessageClass::Response, 1).depth(), 3);
        assert_eq!(north.flat_index(MessageClass::Response, 0), 4);
        assert_eq!(bank.class_of(3), MessageClass::Request);
        assert_eq!(bank.class_of(4), MessageClass::Response);
        assert_eq!(bank.vc_id_of(5), 1);
    }

    #[test]
    fn fifo_order_and_readiness_per_vc() {
        let mut bank = bank();
        bank.push_flit(EAST, MessageClass::Response, 0, request_flit(1), 5);
        bank.push_flit(EAST, MessageClass::Response, 0, request_flit(2), 6);
        let flat = bank.flat_vc(MessageClass::Response, 0);
        assert_eq!(bank.occupancy_at(EAST, flat), 2);
        assert_eq!(bank.head_ready(EAST, flat), 5, "head sets the ready word");
        let view = bank.port(Port::East).vc(MessageClass::Response, 0);
        assert!(view.eligible_head(4).is_none());
        assert_eq!(view.eligible_head(5).unwrap().packet_id(), 1);
        assert_eq!(bank.pop_flit(EAST, flat).unwrap().packet_id(), 1);
        assert_eq!(bank.head_ready(EAST, flat), 6, "next flit's readiness");
        assert_eq!(bank.head(EAST, flat).unwrap().packet_id(), 2);
        assert_eq!(bank.pop_flit(EAST, flat).unwrap().packet_id(), 2);
        assert_eq!(bank.head_ready(EAST, flat), Cycle::MAX);
        assert!(bank.pop_flit(EAST, flat).is_none());
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn vc_buffer_overflow_panics() {
        let mut bank = bank();
        bank.push_flit(0, MessageClass::Request, 0, request_flit(1), 0);
        bank.push_flit(0, MessageClass::Request, 0, request_flit(2), 0);
    }

    #[test]
    fn route_state_lifecycle() {
        let mut bank = bank();
        let flat = bank.flat_vc(MessageClass::Response, 1);
        assert!(bank.route(EAST, flat).is_none());
        bank.set_route(
            EAST,
            flat,
            VcRoute {
                out_port: Port::East,
                out_vc: 1,
            },
        );
        assert_eq!(bank.route(EAST, flat).unwrap().out_port, Port::East);
        assert_eq!(
            bank.port(Port::East)
                .vc(MessageClass::Response, 1)
                .route()
                .unwrap()
                .out_vc,
            1
        );
        bank.clear_route(EAST, flat);
        assert!(bank.route(EAST, flat).is_none());
    }

    #[test]
    fn occupancy_mask_tracks_pushes_and_pops() {
        let mut bank = bank();
        assert_eq!(bank.occupied_mask(EAST), 0);
        bank.push_flit(EAST, MessageClass::Request, 2, request_flit(1), 0);
        bank.push_flit(EAST, MessageClass::Response, 0, request_flit(2), 0);
        bank.push_flit(EAST, MessageClass::Response, 0, request_flit(3), 0);
        // Request VC 2 is flat index 2; response VC 0 is flat index 4.
        assert_eq!(bank.occupied_mask(EAST), 0b1_0100);
        assert_eq!(bank.buffered_flits(), 3);
        assert!(bank.pop_flit(EAST, 4).is_some());
        assert_eq!(
            bank.occupied_mask(EAST),
            0b1_0100,
            "one flit still buffered"
        );
        assert!(bank.pop_flit(EAST, 4).is_some());
        assert_eq!(bank.occupied_mask(EAST), 0b0_0100);
        assert_eq!(bank.buffered_flits(), 1);
        bank.reset();
        assert_eq!(bank.occupied_mask(EAST), 0);
        assert_eq!(bank.occupancy(EAST), 0);
        assert_eq!(bank.buffered_flits(), 0);
        assert_eq!(bank, InputBank::new(&RouterConfig::proposed(true)));
    }

    #[test]
    fn ports_are_independent_slices_of_the_bank() {
        let mut bank = bank();
        bank.push_flit(0, MessageClass::Request, 0, request_flit(1), 0);
        bank.push_flit(3, MessageClass::Request, 2, request_flit(2), 0);
        assert_eq!(bank.occupancy(0), 1);
        assert_eq!(bank.occupancy(3), 1);
        assert_eq!(bank.occupancy(EAST), 0);
        assert_eq!(bank.port(Port::West).occupancy(), 1);
        assert_eq!(bank.buffered_flits(), 2);
    }
}
