//! Input ports and their virtual-channel buffers.
//!
//! Each input port holds the chip's VC provisioning (4×1-flit request VCs,
//! 2×3-flit response VCs), the per-VC route state body flits follow, and an
//! incrementally maintained occupancy bitmask the switch allocator scans
//! instead of probing every buffer each cycle.

use std::collections::VecDeque;

use noc_types::{Cycle, Flit, MessageClass, Port, VcId};
use serde::{Deserialize, Serialize};

use crate::config::RouterConfig;

/// Route state of the packet currently occupying a virtual channel.
///
/// Set when the packet's head flit traverses the router (whether buffered or
/// bypassed) and cleared when the tail flit leaves, so that body and tail
/// flits inherit the output port and downstream VC chosen for the head.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VcRoute {
    /// Output port granted to the packet's head flit.
    pub out_port: Port,
    /// Downstream virtual channel allocated to the packet.
    pub out_vc: VcId,
}

/// One virtual-channel buffer of an input port.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VcBuffer {
    class: MessageClass,
    id: VcId,
    depth: usize,
    /// Buffered flits with the earliest cycle each may compete for the switch.
    flits: VecDeque<(Flit, Cycle)>,
    /// Route state of the in-flight packet using this VC (if any).
    route: Option<VcRoute>,
}

impl VcBuffer {
    fn new(class: MessageClass, id: VcId, depth: usize) -> Self {
        Self {
            class,
            id,
            depth,
            flits: VecDeque::with_capacity(depth),
            route: None,
        }
    }

    /// Message class of this VC.
    #[must_use]
    pub fn class(&self) -> MessageClass {
        self.class
    }

    /// VC identifier within its message class.
    #[must_use]
    pub fn id(&self) -> VcId {
        self.id
    }

    /// Buffer depth in flits.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of flits currently buffered.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.flits.len()
    }

    /// Returns `true` when no flit is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.flits.is_empty()
    }

    /// Route state of the packet currently using this VC.
    #[must_use]
    pub fn route(&self) -> Option<VcRoute> {
        self.route
    }

    /// Sets the route state (called when a head flit traverses).
    pub fn set_route(&mut self, route: VcRoute) {
        self.route = Some(route);
    }

    /// Clears the route state (called when a tail flit traverses).
    pub fn clear_route(&mut self) {
        self.route = None;
    }

    /// Pushes a flit into the buffer.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is already full — credit-based flow control must
    /// prevent this; overflowing indicates a protocol bug.
    pub fn push(&mut self, flit: Flit, ready_at: Cycle) {
        assert!(
            self.flits.len() < self.depth,
            "VC buffer overflow: class {:?} vc {} depth {}",
            self.class,
            self.id,
            self.depth
        );
        self.flits.push_back((flit, ready_at));
    }

    /// The flit at the head of the FIFO, if it is allowed to compete for the
    /// switch at cycle `now`.
    #[must_use]
    pub fn eligible_head(&self, now: Cycle) -> Option<&Flit> {
        self.flits
            .front()
            .filter(|(_, ready)| *ready <= now)
            .map(|(f, _)| f)
    }

    /// The flit at the head of the FIFO regardless of readiness.
    #[must_use]
    pub fn head(&self) -> Option<&Flit> {
        self.flits.front().map(|(f, _)| f)
    }

    /// Mutable access to the head flit (used to shrink a multicast flit's
    /// remaining destination set after partial service).
    pub fn head_mut(&mut self) -> Option<&mut Flit> {
        self.flits.front_mut().map(|(f, _)| f)
    }

    /// Removes and returns the head flit.
    pub fn pop(&mut self) -> Option<Flit> {
        self.flits.pop_front().map(|(f, _)| f)
    }

    /// Drops every buffered flit and the route state, keeping the buffer's
    /// capacity (used by warm network resets).
    pub fn reset(&mut self) {
        self.flits.clear();
        self.route = None;
    }
}

/// One of the five input ports of a router.
///
/// Besides the VC buffers themselves, the port maintains an *occupancy
/// bitmask* (bit `v` set ⇔ flat VC `v` holds at least one flit), updated
/// incrementally by [`push_flit`](InputPort::push_flit) /
/// [`pop_flit`](InputPort::pop_flit). The router's mSA-I stage iterates only
/// the set bits of this word instead of probing every VC buffer each cycle.
/// Callers that mutate buffers directly through
/// [`vc_mut`](InputPort::vc_mut) / [`vc_at_mut`](InputPort::vc_at_mut)
/// (tests, diagnostics) bypass the mask and must not rely on it afterwards.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InputPort {
    port: Port,
    vcs: Vec<VcBuffer>,
    request_count: usize,
    /// Bit `v` set ⇔ `vcs[v]` is non-empty (maintained by `push_flit` /
    /// `pop_flit`).
    occupied: u32,
}

impl InputPort {
    /// Creates an input port with the VC provisioning of `config`.
    #[must_use]
    pub fn new(port: Port, config: &RouterConfig) -> Self {
        let mut vcs = Vec::with_capacity(config.total_vcs());
        for id in 0..config.request_vcs.count {
            vcs.push(VcBuffer::new(
                MessageClass::Request,
                id,
                usize::from(config.request_vcs.depth),
            ));
        }
        for id in 0..config.response_vcs.count {
            vcs.push(VcBuffer::new(
                MessageClass::Response,
                id,
                usize::from(config.response_vcs.depth),
            ));
        }
        Self {
            port,
            vcs,
            request_count: usize::from(config.request_vcs.count),
            occupied: 0,
        }
    }

    /// Restores the port to its post-construction state — every VC empty and
    /// route-free — keeping all buffer capacity (used by warm network
    /// resets).
    pub fn reset(&mut self) {
        for vc in &mut self.vcs {
            vc.reset();
        }
        self.occupied = 0;
    }

    /// Bitmask of flat VC indices currently holding at least one flit.
    ///
    /// Only pushes/pops through [`push_flit`](InputPort::push_flit) /
    /// [`pop_flit`](InputPort::pop_flit) maintain this word.
    #[must_use]
    pub fn occupied_mask(&self) -> u32 {
        self.occupied
    }

    /// Pushes an arriving flit into VC `(class, vc)`, keeping the occupancy
    /// mask in sync.
    ///
    /// # Panics
    ///
    /// Panics if the VC buffer overflows (a flow-control protocol bug).
    pub fn push_flit(&mut self, class: MessageClass, vc: VcId, flit: Flit, ready_at: Cycle) {
        let idx = self.flat_index(class, vc);
        self.vcs[idx].push(flit, ready_at);
        self.occupied |= 1 << idx;
    }

    /// Pops the head flit of the VC at flat index `idx`, keeping the
    /// occupancy mask in sync.
    pub fn pop_flit(&mut self, idx: usize) -> Option<Flit> {
        let flit = self.vcs[idx].pop();
        if self.vcs[idx].is_empty() {
            self.occupied &= !(1 << idx);
        }
        flit
    }

    /// Which router port this input belongs to.
    #[must_use]
    pub fn port(&self) -> Port {
        self.port
    }

    /// Number of VCs across both message classes.
    #[must_use]
    pub fn vc_count(&self) -> usize {
        self.vcs.len()
    }

    /// Flattened VC index for `(class, vc)` — request VCs first, then
    /// response VCs.
    #[must_use]
    pub fn flat_index(&self, class: MessageClass, vc: VcId) -> usize {
        match class {
            MessageClass::Request => usize::from(vc),
            MessageClass::Response => self.request_count + usize::from(vc),
        }
    }

    /// The VC buffer for `(class, vc)`.
    ///
    /// # Panics
    ///
    /// Panics if the VC does not exist in this configuration.
    #[must_use]
    pub fn vc(&self, class: MessageClass, vc: VcId) -> &VcBuffer {
        &self.vcs[self.flat_index(class, vc)]
    }

    /// Mutable access to the VC buffer for `(class, vc)`.
    ///
    /// # Panics
    ///
    /// Panics if the VC does not exist in this configuration.
    pub fn vc_mut(&mut self, class: MessageClass, vc: VcId) -> &mut VcBuffer {
        let idx = self.flat_index(class, vc);
        &mut self.vcs[idx]
    }

    /// The VC buffer at flattened index `idx`.
    #[must_use]
    pub fn vc_at(&self, idx: usize) -> &VcBuffer {
        &self.vcs[idx]
    }

    /// Mutable access to the VC buffer at flattened index `idx`.
    pub fn vc_at_mut(&mut self, idx: usize) -> &mut VcBuffer {
        &mut self.vcs[idx]
    }

    /// Iterates over all VC buffers.
    pub fn vcs(&self) -> impl Iterator<Item = &VcBuffer> {
        self.vcs.iter()
    }

    /// Total flits buffered across all VCs of this port.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.vcs.iter().map(VcBuffer::occupancy).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RouterConfig;
    use noc_types::{DestinationSet, Packet, PacketKind};

    fn request_flit(id: u64) -> Flit {
        Packet::new(id, 0, DestinationSet::unicast(5), PacketKind::Request, 0)
            .to_flits()
            .remove(0)
    }

    #[test]
    fn input_port_has_chip_vc_layout() {
        let port = InputPort::new(Port::North, &RouterConfig::proposed(true));
        assert_eq!(port.vc_count(), 6);
        assert_eq!(port.vc(MessageClass::Request, 0).depth(), 1);
        assert_eq!(port.vc(MessageClass::Response, 1).depth(), 3);
        assert_eq!(port.flat_index(MessageClass::Response, 0), 4);
    }

    #[test]
    fn vc_buffer_fifo_order_and_readiness() {
        let mut vc = VcBuffer::new(MessageClass::Response, 0, 3);
        vc.push(request_flit(1), 5);
        vc.push(request_flit(2), 6);
        assert_eq!(vc.occupancy(), 2);
        assert!(vc.eligible_head(4).is_none());
        assert_eq!(vc.eligible_head(5).unwrap().packet_id(), 1);
        assert_eq!(vc.pop().unwrap().packet_id(), 1);
        assert_eq!(vc.head().unwrap().packet_id(), 2);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn vc_buffer_overflow_panics() {
        let mut vc = VcBuffer::new(MessageClass::Request, 0, 1);
        vc.push(request_flit(1), 0);
        vc.push(request_flit(2), 0);
    }

    #[test]
    fn route_state_lifecycle() {
        let mut vc = VcBuffer::new(MessageClass::Response, 1, 3);
        assert!(vc.route().is_none());
        vc.set_route(VcRoute {
            out_port: Port::East,
            out_vc: 1,
        });
        assert_eq!(vc.route().unwrap().out_port, Port::East);
        vc.clear_route();
        assert!(vc.route().is_none());
    }

    #[test]
    fn occupancy_mask_tracks_pushes_and_pops() {
        let mut port = InputPort::new(Port::East, &RouterConfig::proposed(true));
        assert_eq!(port.occupied_mask(), 0);
        port.push_flit(MessageClass::Request, 2, request_flit(1), 0);
        port.push_flit(MessageClass::Response, 0, request_flit(2), 0);
        port.push_flit(MessageClass::Response, 0, request_flit(3), 0);
        // Request VC 2 is flat index 2; response VC 0 is flat index 4.
        assert_eq!(port.occupied_mask(), 0b1_0100);
        assert!(port.pop_flit(4).is_some());
        assert_eq!(port.occupied_mask(), 0b1_0100, "one flit still buffered");
        assert!(port.pop_flit(4).is_some());
        assert_eq!(port.occupied_mask(), 0b0_0100);
        port.reset();
        assert_eq!(port.occupied_mask(), 0);
        assert_eq!(port.occupancy(), 0);
    }

    #[test]
    fn occupancy_sums_across_vcs() {
        let mut port = InputPort::new(Port::West, &RouterConfig::proposed(true));
        port.vc_mut(MessageClass::Request, 0)
            .push(request_flit(1), 0);
        port.vc_mut(MessageClass::Request, 2)
            .push(request_flit(2), 0);
        assert_eq!(port.occupancy(), 2);
    }
}
