//! The router model itself: the per-cycle allocation/traversal pipeline
//! (lookahead bypass → mSA-I → mSA-II → crossbar traversal) over bitset
//! request vectors, plus the XY-tree fork cache and the reusable
//! [`RouterOutput`] that keep the steady-state step allocation-free.

use noc_sim::{ActivityCounters, FlitHandle, FlitSlab};
use noc_topology::routing::{BranchList, RouteBranch, XyPortMasks};
use noc_topology::Mesh;
use noc_types::{
    Coord, Credit, Cycle, DestinationSet, Flit, FlitId, MessageClass, NodeId, Port, PortSet, VcId,
    PORT_COUNT,
};
use serde::{Deserialize, Serialize};

use crate::arbiter::{MatrixArbiter, RoundRobinArbiter};
use crate::config::RouterConfig;
use crate::input::{InputBank, InputPortRef, VcRoute};
use crate::lookahead::Lookahead;
use crate::output::{OutputBank, OutputPortRef};

/// A flit leaving the router on one of its output ports during this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Departure {
    /// Output port the flit leaves on ([`Port::Local`] means ejection to the
    /// NIC).
    pub port: Port,
    /// Handle of the departing flit in the [`FlitSlab`] the router stepped
    /// against. When materialised ([`FlitSlab::take`]) its destination set is
    /// already narrowed to the destinations served through `port`, its `vc`
    /// field names the virtual channel allocated at the downstream input
    /// port, and any link hop has been recorded.
    pub flit: FlitHandle,
    /// Lookahead to forward to the downstream router alongside the flit
    /// (only present when virtual bypassing is enabled).
    pub lookahead: Option<Lookahead>,
}

/// Everything a router produces in one cycle.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RouterOutput {
    /// Flits leaving on output ports.
    pub departures: Vec<Departure>,
    /// Credits to return upstream, tagged with the *input* port whose buffer
    /// slot was freed.
    pub credits: Vec<(Port, Credit)>,
}

impl RouterOutput {
    /// Empties the output while keeping the buffers' capacity, so one
    /// `RouterOutput` can be reused across routers and cycles
    /// (see [`Router::step_into`]).
    pub fn clear(&mut self) {
        self.departures.clear();
        self.credits.clear();
    }
}

/// Internal plan for one crossbar traversal branch.
#[derive(Debug, Clone, Copy)]
struct BranchPlan {
    port: Port,
    destinations: DestinationSet,
    out_vc: VcId,
    newly_allocated: bool,
}

/// The committed traversal plan of one flit, stored inline (at most one
/// branch per output port).
#[derive(Debug, Clone, Copy)]
struct PlanList {
    plans: [BranchPlan; PORT_COUNT],
    len: usize,
}

impl PlanList {
    fn new() -> Self {
        Self {
            plans: [BranchPlan {
                port: Port::Local,
                destinations: DestinationSet::empty(),
                out_vc: 0,
                newly_allocated: false,
            }; PORT_COUNT],
            len: 0,
        }
    }

    fn push(&mut self, plan: BranchPlan) {
        debug_assert!(self.len < PORT_COUNT);
        self.plans[self.len] = plan;
        self.len += 1;
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn iter(&self) -> std::slice::Iter<'_, BranchPlan> {
        self.plans[..self.len].iter()
    }
}

/// ORs input port `i`'s requested `PortSet` (raw bits) into the per-output
/// mSA-II request words (`out_requests[p]` bit `i` = input `i` wants output
/// `p`) — the transpose both allocation phases feed the matrix arbiters.
fn transpose_requests(out_requests: &mut [u32; PORT_COUNT], bits: u8, i: usize) {
    for (p, req) in out_requests.iter_mut().enumerate() {
        *req |= u32::from(bits >> p & 1) << i;
    }
}

/// Cached XY-tree fork of the head flit of one input VC.
///
/// Buffered head flits sit in their VC for many cycles under load, and the
/// router needs their fork (branches / requested ports) in switch-allocation
/// eligibility, in the mSA-II request vector and again at traversal — all
/// per cycle. The entry is keyed by flit id *and* remaining destination set,
/// so it self-invalidates when the VC head changes or a partially served
/// multicast shrinks its destinations; no explicit invalidation hooks exist.
#[derive(Debug, Clone, Copy)]
struct ForkCacheEntry {
    flit_id: FlitId,
    destinations: DestinationSet,
    branches: BranchList,
}

impl ForkCacheEntry {
    fn invalid() -> Self {
        Self {
            flit_id: FlitId::MAX,
            destinations: DestinationSet::empty(),
            branches: BranchList::new(),
        }
    }
}

/// A cycle-accurate model of one mesh router.
///
/// The router is driven by an external orchestrator in two phases per cycle:
///
/// 1. *Arrival phase*: the orchestrator delivers flits, lookaheads and
///    credits produced by neighbours in the previous cycle via
///    [`accept_flit`](Router::accept_flit),
///    [`accept_lookahead`](Router::accept_lookahead) and
///    [`accept_credit`](Router::accept_credit).
/// 2. *Allocation/traversal phase*: [`step`](Router::step) performs switch
///    allocation (with lookahead bypassing when enabled), moves flits through
///    the crossbar, and returns the cycle's [`RouterOutput`].
#[derive(Debug, Clone)]
pub struct Router {
    config: RouterConfig,
    coord: Coord,
    node_id: NodeId,
    inputs: InputBank,
    outputs: OutputBank,
    msa1: Vec<RoundRobinArbiter>,
    msa2: Vec<MatrixArbiter>,
    counters: ActivityCounters,
    arrived: Vec<Option<Flit>>,
    arrived_lookaheads: Vec<Option<Lookahead>>,
    /// Per-(input port, flat VC) cached fork of the buffered head flit.
    fork_cache: Vec<ForkCacheEntry>,
    /// Precomputed XY port partition at this router's coordinate: turns the
    /// per-destination fork scan into five word-wide mask intersections.
    port_masks: XyPortMasks,
    /// The same partition at each neighbouring coordinate (indexed by
    /// `Direction::index()`), used to build the lookahead a departing flit
    /// carries. Edge directions keep this router's own masks as a never-read
    /// placeholder — routing never departs off the mesh edge.
    neighbor_masks: [XyPortMasks; 4],
    /// Node id of the neighbour in each direction (indexed by
    /// `Direction::index()`; `None` off the mesh edge), cached so the
    /// network's hot departure loop resolves link endpoints without touching
    /// the mesh.
    neighbor_ids: [Option<NodeId>; 4],
}

impl Router {
    /// Creates a router at `coord` of `mesh` with the given configuration.
    #[must_use]
    pub fn new(config: &RouterConfig, mesh: Mesh, coord: Coord) -> Self {
        let inputs = InputBank::new(config);
        let outputs = OutputBank::new(config);
        let msa1 = (0..PORT_COUNT)
            .map(|_| RoundRobinArbiter::new(config.total_vcs()))
            .collect();
        let msa2 = (0..PORT_COUNT)
            .map(|_| MatrixArbiter::new(PORT_COUNT))
            .collect();
        let mut counters = ActivityCounters::new();
        counters.routers = 1;
        let port_masks = XyPortMasks::new(&mesh, coord);
        let neighbor_masks = std::array::from_fn(|d| {
            mesh.neighbor(coord, noc_types::Direction::ALL[d])
                .map_or(port_masks, |next| XyPortMasks::new(&mesh, next))
        });
        let neighbor_ids = std::array::from_fn(|d| {
            mesh.neighbor(coord, noc_types::Direction::ALL[d])
                .map(|next| mesh.id_of(next))
        });
        Self {
            config: *config,
            node_id: mesh.id_of(coord),
            coord,
            inputs,
            outputs,
            msa1,
            msa2,
            counters,
            arrived: vec![None; PORT_COUNT],
            arrived_lookaheads: vec![None; PORT_COUNT],
            fork_cache: vec![ForkCacheEntry::invalid(); PORT_COUNT * config.total_vcs()],
            port_masks,
            neighbor_masks,
            neighbor_ids,
        }
    }

    /// Restores the router to its post-construction state — buffers empty,
    /// credits full, arbiters at initial priority, counters zeroed — keeping
    /// every buffer's capacity. Part of the warm network reset
    /// (`mesh_noc::Network::reset`) that lets sweep runners reuse one
    /// network across points.
    pub fn reset(&mut self) {
        self.inputs.reset();
        self.outputs.reset();
        for arbiter in &mut self.msa1 {
            arbiter.reset();
        }
        for arbiter in &mut self.msa2 {
            arbiter.reset();
        }
        self.counters = ActivityCounters::new();
        self.counters.routers = 1;
        self.arrived.fill(None);
        self.arrived_lookaheads.fill(None);
        self.fork_cache.fill(ForkCacheEntry::invalid());
    }

    /// The cached (or freshly computed) XY-tree fork of `flit`, assumed to be
    /// the head of flat VC `vc_idx` of input port `in_port`.
    ///
    /// A free function over disjoint router fields so callers holding other
    /// borrows of `self` can use it.
    fn fork_of(
        fork_cache: &mut [ForkCacheEntry],
        port_masks: &XyPortMasks,
        vc_count: usize,
        in_port: usize,
        vc_idx: usize,
        flit: &Flit,
    ) -> BranchList {
        let entry = &mut fork_cache[in_port * vc_count + vc_idx];
        if entry.flit_id == flit.id() && entry.destinations == *flit.destinations() {
            return entry.branches;
        }
        let branches = port_masks.branches(flit.destinations());
        *entry = ForkCacheEntry {
            flit_id: flit.id(),
            destinations: *flit.destinations(),
            branches,
        };
        branches
    }

    /// Position of the router in the mesh.
    #[must_use]
    pub fn coord(&self) -> Coord {
        self.coord
    }

    /// Node id of the router.
    #[must_use]
    pub fn node_id(&self) -> NodeId {
        self.node_id
    }

    /// Node id of the neighbouring router in `dir`, or `None` at the mesh
    /// edge. Cached at construction so per-cycle departure handling never
    /// consults the mesh.
    #[must_use]
    pub fn neighbor_id(&self, dir: noc_types::Direction) -> Option<NodeId> {
        self.neighbor_ids[dir.port().index()]
    }

    /// Router configuration.
    #[must_use]
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// Activity counters accumulated so far.
    #[must_use]
    pub fn counters(&self) -> &ActivityCounters {
        &self.counters
    }

    /// Total flits buffered in the router's input ports (O(1); the input
    /// bank maintains the count incrementally, which is what lets the
    /// network's active-set scheduler poll every router cheaply).
    #[must_use]
    pub fn buffered_flits(&self) -> usize {
        self.inputs.buffered_flits()
    }

    /// Read-only view of one output port (used by NIC models and tests).
    #[must_use]
    pub fn output(&self, port: Port) -> OutputPortRef<'_> {
        self.outputs.port(port)
    }

    /// Read-only view of one input port (used by diagnostics and tests).
    #[must_use]
    pub fn input(&self, port: Port) -> InputPortRef<'_> {
        self.inputs.port(port)
    }

    /// Delivers a flit arriving on `port` this cycle.
    ///
    /// # Panics
    ///
    /// Panics if a flit has already arrived on `port` this cycle (links are
    /// one flit wide) or if the flit does not carry its input VC assignment.
    pub fn accept_flit(&mut self, port: Port, flit: Flit) {
        assert!(
            self.arrived[port.index()].is_none(),
            "two flits delivered on the same link in one cycle"
        );
        assert!(
            flit.vc().is_some(),
            "arriving flit must carry its VC assignment"
        );
        self.arrived[port.index()] = Some(flit);
    }

    /// Delivers a lookahead arriving on `port` this cycle.
    pub fn accept_lookahead(&mut self, port: Port, lookahead: Lookahead) {
        self.arrived_lookaheads[port.index()] = Some(lookahead);
    }

    /// Delivers a credit returned by the downstream router attached to output
    /// `port`.
    pub fn accept_credit(&mut self, port: Port, credit: Credit) {
        self.outputs.on_credit(port.index(), credit);
    }

    /// Runs one allocation/traversal cycle and returns the flits, lookaheads
    /// and credits produced. Departing flit payloads are parked in `slab`;
    /// the returned [`Departure`]s carry their handles.
    ///
    /// Allocates a fresh [`RouterOutput`] per call; the orchestrator's hot
    /// loop uses [`step_into`](Router::step_into) with a reused buffer
    /// instead.
    pub fn step(&mut self, now: Cycle, slab: &mut FlitSlab) -> RouterOutput {
        let mut out = RouterOutput::default();
        self.step_into(now, slab, &mut out);
        out
    }

    /// Runs one allocation/traversal cycle, parking departing flit payloads
    /// in `slab` and writing the produced departures, lookaheads and credits
    /// into `out` (cleared first). Reusing one `RouterOutput` across calls
    /// keeps the steady-state step free of heap allocation.
    pub fn step_into(&mut self, now: Cycle, slab: &mut FlitSlab, out: &mut RouterOutput) {
        out.clear();
        self.counters.cycles += 1;
        let mut output_used = [false; PORT_COUNT];
        if self.config.kind.lookahead_enabled() {
            self.bypass_phase(slab, out, &mut output_used);
        }
        self.buffered_phase(now, slab, out, &mut output_used);
        self.write_arrivals(now);
    }

    // ----------------------------------------------------------------- bypass

    fn bypass_phase(
        &mut self,
        slab: &mut FlitSlab,
        out: &mut RouterOutput,
        output_used: &mut [bool; PORT_COUNT],
    ) {
        // Collect candidates: arriving flits accompanied by a matching
        // lookahead whose input VC is empty (so bypassing cannot reorder a
        // packet) and, for body/tail flits, whose VC has route state. The
        // fork is computed once per candidate and reused for the request
        // vector and the traversal plan.
        let mut candidates: [Option<(PortSet, BranchList)>; PORT_COUNT] = [None; PORT_COUNT];
        for (i, candidate) in candidates.iter_mut().enumerate() {
            let (Some(flit), Some(la)) = (&self.arrived[i], &self.arrived_lookaheads[i]) else {
                continue;
            };
            if la.flit_id != flit.id() {
                continue;
            }
            let class = flit.message_class();
            let vc = flit.vc().expect("arriving flit carries its VC");
            let flat = self.inputs.flat_vc(class, vc);
            if !self.inputs.is_empty(i, flat) {
                continue;
            }
            if !flit.kind().is_head() && self.inputs.route(i, flat).is_none() {
                continue;
            }
            let branches = self.port_masks.branches(flit.destinations());
            *candidate = Some((branches.ports(), branches));
        }

        // mSA-II among lookahead requests (they take priority over buffered
        // flits, which are arbitrated afterwards on the remaining ports).
        // The candidates' port sets are transposed into one request word per
        // output port (bit i = input port i), fed straight to the matrix
        // arbiters' mask path.
        let mut out_requests = [0u32; PORT_COUNT];
        for (i, candidate) in candidates.iter().enumerate() {
            if let Some((ps, _)) = candidate {
                transpose_requests(&mut out_requests, ps.bits(), i);
            }
        }
        // granted[i] is the PortSet (as raw bits) input port i won.
        let mut granted = [0u8; PORT_COUNT];
        for (p, &requests) in out_requests.iter().enumerate() {
            if requests != 0 {
                self.counters.sa_global_arbitrations += 1;
                if let Some(w) = self.msa2[p].arbitrate_mask(requests) {
                    granted[w] |= 1 << p;
                }
            }
        }

        for i in 0..PORT_COUNT {
            let Some((ports, branches)) = candidates[i] else {
                continue;
            };
            // Bypassing is all-or-nothing: every requested port must have
            // been granted.
            if ports.bits() & !granted[i] != 0 {
                continue;
            }
            let flit = self.arrived[i].take().expect("candidate has a flit");
            let class = flit.message_class();
            let in_vc = flit.vc().expect("arriving flit carries its VC");
            let is_head = flit.kind().is_head();
            let Some(plan) = self.plan_branches(class, i, in_vc, is_head, &branches, true) else {
                // No resources: put the flit back so it is buffered normally
                // by `write_arrivals`.
                self.arrived[i] = Some(flit);
                continue;
            };
            // Commit the bypass: the flit crosses the switch and the link in
            // this very cycle and its (never used) buffer slot is credited
            // back immediately.
            self.arrived_lookaheads[i] = None;
            if is_head {
                self.counters.route_computations += 1;
            }
            self.execute_traversal(flit, class, i, in_vc, &plan, true, slab, out, output_used);
            out.credits.push((Port::ALL[i], Credit::new(class, in_vc)));
        }
    }

    // --------------------------------------------------------------- buffered

    fn buffered_phase(
        &mut self,
        now: Cycle,
        slab: &mut FlitSlab,
        out: &mut RouterOutput,
        output_used: &mut [bool; PORT_COUNT],
    ) {
        // mSA-I: each input port picks one of its VCs with an eligible head.
        // A head is only allowed to request the switch when it could actually
        // move: head flits need a free downstream VC with a credit on at
        // least one of their requested ports, body flits need a credit on
        // their packet's allocated VC. This mirrors the chip, where the VA
        // stage (free-VC queues) and credit counters gate the switch
        // requests, and it prevents a resource-starved VC from phase-locking
        // the round-robin and matrix arbiters against its neighbours.
        //
        // Everything here is word-wide: the head check intersects the flit's
        // cached fork ports with a per-class "which outputs can take a head"
        // summary, the body check is one bit of the output's credit mask, and
        // only VCs set in the port's occupancy mask are visited at all.
        let vc_count = self.inputs.vc_count();
        let mut head_ok = [0u8; 2];
        for class in MessageClass::ALL {
            let mut mask = 0u8;
            for p in 0..PORT_COUNT {
                mask |= u8::from(self.outputs.can_accept_head(p, class)) << p;
            }
            head_ok[class.index()] = mask;
        }
        let mut winners: [Option<usize>; PORT_COUNT] = [None; PORT_COUNT];
        for (i, winner) in winners.iter_mut().enumerate() {
            let mut requests = 0u32;
            let mut occupied = self.inputs.occupied_mask(i);
            while occupied != 0 {
                let v = occupied.trailing_zeros() as usize;
                occupied &= occupied - 1;
                // The readiness probe touches only the bank's flat
                // head-ready word, not the flit.
                if self.inputs.head_ready(i, v) > now {
                    continue;
                }
                let flit = self.inputs.head(i, v).expect("occupied VC has a head");
                let class = flit.message_class();
                let eligible = if flit.kind().is_head() {
                    let fork =
                        Self::fork_of(&mut self.fork_cache, &self.port_masks, vc_count, i, v, flit);
                    fork.ports().bits() & head_ok[class.index()] != 0
                } else {
                    let route = self
                        .inputs
                        .route(i, v)
                        .expect("body flit must follow an allocated route");
                    self.outputs.credit_mask(route.out_port.index(), class) & (1u32 << route.out_vc)
                        != 0
                };
                requests |= u32::from(eligible) << v;
            }
            if requests != 0 {
                self.counters.sa_local_arbitrations += 1;
                *winner = self.msa1[i].arbitrate_mask(requests);
            }
        }

        // Output-port requests of each mSA-I winner, transposed on the fly
        // into one request word per output port (bit i = input port i).
        let mut requested: [Option<PortSet>; PORT_COUNT] = [None; PORT_COUNT];
        let mut out_requests = [0u32; PORT_COUNT];
        for i in 0..PORT_COUNT {
            let Some(v) = winners[i] else { continue };
            let flit = self.inputs.head(i, v).expect("winner has a head flit");
            let ports = if flit.kind().is_head() {
                Self::fork_of(&mut self.fork_cache, &self.port_masks, vc_count, i, v, flit).ports()
            } else {
                PortSet::single(
                    self.inputs
                        .route(i, v)
                        .expect("body flit must follow an allocated route")
                        .out_port,
                )
            };
            requested[i] = Some(ports);
            transpose_requests(&mut out_requests, ports.bits(), i);
        }

        // mSA-II on the output ports not already taken by bypassing flits.
        // granted[i] is the PortSet (as raw bits) input port i won.
        let mut granted = [0u8; PORT_COUNT];
        for (p, &requests) in out_requests.iter().enumerate() {
            if output_used[p] || requests == 0 {
                continue;
            }
            self.counters.sa_global_arbitrations += 1;
            if let Some(w) = self.msa2[p].arbitrate_mask(requests) {
                granted[w] |= 1 << p;
            }
        }

        // Traverse granted branches (possibly a subset of a multicast's
        // branches — the rest of the destinations stay buffered and retry).
        for i in 0..PORT_COUNT {
            let Some(v) = winners[i] else { continue };
            let Some(req_ports) = requested[i] else {
                continue;
            };
            let granted_ports = req_ports.intersection(PortSet::from_bits(granted[i]));
            if granted_ports.is_empty() {
                continue;
            }
            let head = self.inputs.head(i, v).expect("winner has a head flit");
            let class = head.message_class();
            let in_vc = head.vc().expect("buffered flit carries its VC");
            let is_head = head.kind().is_head();
            let all_destinations = *head.destinations();
            let mut branches = BranchList::new();
            if is_head {
                let fork = Self::fork_of(
                    &mut self.fork_cache,
                    &self.port_masks,
                    vc_count,
                    i,
                    v,
                    self.inputs.head(i, v).expect("winner has a head"),
                );
                for b in fork.iter().filter(|b| granted_ports.contains(b.port)) {
                    branches.push(*b);
                }
            } else {
                branches.push(RouteBranch {
                    port: self
                        .inputs
                        .route(i, v)
                        .expect("body flit must follow an allocated route")
                        .out_port,
                    destinations: all_destinations,
                });
            }
            let Some(plan) = self.plan_branches(class, i, in_vc, is_head, &branches, false) else {
                continue;
            };
            self.counters.buffer_reads += 1;

            // Take the flit out of the buffer: by value (crediting the freed
            // slot upstream) when every destination is served this cycle,
            // as a clone (the rare partially-served-multicast path) when
            // some destinations must stay behind and retry.
            let served: DestinationSet = plan
                .iter()
                .fold(DestinationSet::empty(), |acc, b| acc.union(&b.destinations));
            let remaining = all_destinations.difference(&served);
            let flit = if remaining.is_empty() {
                let popped = self.inputs.pop_flit(i, v).expect("winner has a head flit");
                out.credits.push((Port::ALL[i], Credit::new(class, in_vc)));
                popped
            } else {
                let head = self.inputs.head_mut(i, v).expect("flit still buffered");
                let copy = head.clone();
                head.set_destinations(remaining);
                copy
            };
            self.execute_traversal(flit, class, i, in_vc, &plan, false, slab, out, output_used);
        }
    }

    // ------------------------------------------------------------ primitives

    /// Checks resources (downstream VC and credit) for every branch and
    /// returns the committed plan.
    ///
    /// With `all_or_nothing` (the bypass path, matching the chip: a flit that
    /// cannot be fully served is buffered instead), any branch lacking
    /// resources aborts the whole plan. Without it (the buffered path),
    /// branches lacking resources are simply skipped so a multicast can be
    /// served partially and retry the rest on later cycles.
    fn plan_branches(
        &self,
        class: MessageClass,
        in_port: usize,
        in_vc: VcId,
        is_head: bool,
        branches: &[RouteBranch],
        all_or_nothing: bool,
    ) -> Option<PlanList> {
        if branches.is_empty() {
            return None;
        }
        let mut plan = PlanList::new();
        for b in branches {
            let out_port = b.port.index();
            if b.port.is_local() {
                plan.push(BranchPlan {
                    port: b.port,
                    destinations: b.destinations,
                    out_vc: 0,
                    newly_allocated: false,
                });
                continue;
            }
            if is_head {
                match self.outputs.peek_free_vc(out_port, class) {
                    Some(vc) if self.outputs.has_credit(out_port, class, vc) => {
                        plan.push(BranchPlan {
                            port: b.port,
                            destinations: b.destinations,
                            out_vc: vc,
                            newly_allocated: true,
                        });
                    }
                    _ if all_or_nothing => return None,
                    _ => {}
                }
            } else {
                let route = self
                    .inputs
                    .route(in_port, self.inputs.flat_vc(class, in_vc))
                    .expect("body flit must follow an allocated route");
                if route.out_port == b.port
                    && self.outputs.has_credit(out_port, class, route.out_vc)
                {
                    plan.push(BranchPlan {
                        port: b.port,
                        destinations: b.destinations,
                        out_vc: route.out_vc,
                        newly_allocated: false,
                    });
                } else if all_or_nothing {
                    return None;
                }
            }
        }
        if plan.is_empty() {
            None
        } else {
            Some(plan)
        }
    }

    /// Moves a flit through the crossbar onto every branch of `plan`.
    ///
    /// The flit is consumed into `slab`: the unicast fast path applies its
    /// per-branch overrides in place and parks the flit once, while a
    /// multicast fork (more than one granted branch) parks the payload once
    /// and issues a refcounted replica handle per branch — no branch clones
    /// the flit here; replicas materialise lazily at delivery (ejection
    /// branches never do).
    #[allow(clippy::too_many_arguments)]
    fn execute_traversal(
        &mut self,
        flit: Flit,
        class: MessageClass,
        in_port: usize,
        in_vc: VcId,
        plan: &PlanList,
        bypassed: bool,
        slab: &mut FlitSlab,
        out: &mut RouterOutput,
        output_used: &mut [bool; PORT_COUNT],
    ) {
        let fork = plan.len > 1;
        if fork {
            self.counters.multicast_forks += 1;
        }
        let kind = flit.kind();
        let flit_id = flit.id();
        let mut solo = Some(flit);
        let base = if fork {
            Some(slab.insert(solo.take().expect("fork parks the payload once")))
        } else {
            None
        };
        for b in plan.iter() {
            output_used[b.port.index()] = true;
            if b.newly_allocated {
                self.outputs.allocate_vc(b.port.index(), class, b.out_vc);
                self.counters.vc_allocations += 1;
            }
            self.outputs
                .send_flit(b.port.index(), class, b.out_vc, kind.is_tail());
            self.counters.crossbar_traversals += 1;

            let lookahead = if self.config.kind.lookahead_enabled() && !b.port.is_local() {
                let next_ports = self.neighbor_masks[b.port.index()].ports(&b.destinations);
                self.counters.lookaheads_sent += 1;
                Some(Lookahead::new(flit_id, class, b.out_vc, next_ports))
            } else {
                None
            };

            let hop = if b.port.is_local() {
                self.counters.local_link_traversals += 1;
                if kind.is_tail() {
                    self.counters.ejections += 1;
                }
                None
            } else {
                self.counters.link_traversals += 1;
                // Counted per link traversal (not per bypassing flit) so
                // `bypasses / link_traversals` is a true fraction: a bypass
                // that forks to n links counts n times, and one that only
                // ejects locally counts zero — it crossed no link.
                if bypassed {
                    self.counters.bypasses += 1;
                }
                Some(bypassed)
            };

            let handle = if let Some(base) = base {
                slab.replicate(base, b.destinations, b.out_vc, hop)
            } else {
                let mut departing = solo.take().expect("single-branch plan departs once");
                departing.set_destinations(b.destinations);
                departing.set_vc(b.out_vc);
                if let Some(bypassed) = hop {
                    departing.record_hop(bypassed);
                }
                slab.insert(departing)
            };

            out.departures.push(Departure {
                port: b.port,
                flit: handle,
                lookahead,
            });
        }
        if let Some(base) = base {
            slab.release(base);
        }

        // Maintain per-VC route state so body/tail flits of multi-flit
        // (unicast) packets follow their head.
        let flat = self.inputs.flat_vc(class, in_vc);
        if kind.is_head() && !kind.is_tail() {
            let first = plan.plans[0];
            self.inputs.set_route(
                in_port,
                flat,
                VcRoute {
                    out_port: first.port,
                    out_vc: first.out_vc,
                },
            );
        }
        if kind.is_tail() && !kind.is_head() {
            self.inputs.clear_route(in_port, flat);
        }
    }

    /// Buffers every arrived flit that did not bypass.
    fn write_arrivals(&mut self, now: Cycle) {
        for i in 0..PORT_COUNT {
            if let Some(flit) = self.arrived[i].take() {
                let class = flit.message_class();
                let vc = flit.vc().expect("arriving flit carries its VC");
                if flit.kind().is_head() {
                    self.counters.route_computations += 1;
                }
                self.counters.buffer_writes += 1;
                let ready = now + self.config.kind.buffered_pipeline_delay();
                self.inputs.push_flit(i, class, vc, flit, ready);
            }
            self.arrived_lookaheads[i] = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RouterConfig;
    use noc_types::{Packet, PacketKind};

    fn mesh4() -> Mesh {
        Mesh::new(4).unwrap()
    }

    /// A unicast request flit from `src` to `dst`, pre-assigned to VC 0.
    fn unicast_flit(id: u64, src: NodeId, dst: NodeId) -> Flit {
        let p = Packet::new(
            id,
            src,
            DestinationSet::unicast(dst),
            PacketKind::Request,
            0,
        );
        let mut f = p.to_flits().remove(0);
        f.set_vc(0);
        f
    }

    fn broadcast_flit(id: u64, src: NodeId) -> Flit {
        let p = Packet::new(
            id,
            src,
            DestinationSet::broadcast(4, src),
            PacketKind::Request,
            0,
        );
        let mut f = p.to_flits().remove(0);
        f.set_vc(0);
        f
    }

    fn lookahead_for(router: &Router, flit: &Flit) -> Lookahead {
        let ports = noc_topology::routing::requested_ports(
            &Mesh::new(4).unwrap(),
            router.coord(),
            flit.destinations(),
        );
        Lookahead::new(flit.id(), flit.message_class(), flit.vc().unwrap(), ports)
    }

    #[test]
    fn buffered_unicast_departs_after_pipeline_delay() {
        // Aggressive baseline: arrive at t, depart at t+2 (3 cycles per hop
        // counting the link the orchestrator adds).
        let mut slab = FlitSlab::new();
        let mut r = Router::new(
            &RouterConfig::aggressive_baseline(),
            mesh4(),
            Coord::new(1, 1),
        );
        let flit = unicast_flit(1, 0, 15); // needs to keep going East/North
        r.accept_flit(Port::West, flit);
        let out0 = r.step(10, &mut slab);
        assert!(
            out0.departures.is_empty(),
            "flit is only being buffered at t"
        );
        let out1 = r.step(11, &mut slab);
        assert!(out1.departures.is_empty(), "pipeline delay not yet elapsed");
        let out2 = r.step(12, &mut slab);
        assert_eq!(out2.departures.len(), 1);
        assert_eq!(out2.departures[0].port, Port::East);
        assert!(out2.departures[0].lookahead.is_none());
        // The freed buffer slot is credited upstream.
        assert_eq!(out2.credits.len(), 1);
        assert_eq!(out2.credits[0].0, Port::West);
    }

    #[test]
    fn bypassed_unicast_departs_in_its_arrival_cycle() {
        let mut slab = FlitSlab::new();
        let mut r = Router::new(&RouterConfig::proposed(true), mesh4(), Coord::new(1, 1));
        let flit = unicast_flit(1, 0, 7); // destination (3,1): continue East
        let la = lookahead_for(&r, &flit);
        r.accept_flit(Port::West, flit);
        r.accept_lookahead(Port::West, la);
        let out = r.step(10, &mut slab);
        assert_eq!(out.departures.len(), 1);
        assert_eq!(out.departures[0].port, Port::East);
        assert_eq!(slab.take(out.departures[0].flit).bypassed_hops(), 1);
        assert!(
            out.departures[0].lookahead.is_some(),
            "bypass keeps pre-allocating downstream"
        );
        // Credit returned immediately because the buffer was never used.
        assert_eq!(out.credits.len(), 1);
        assert_eq!(r.counters().bypasses, 1);
        assert_eq!(r.counters().buffer_writes, 0);
    }

    #[test]
    fn without_lookahead_the_proposed_router_buffers() {
        let mut slab = FlitSlab::new();
        let mut r = Router::new(&RouterConfig::proposed(true), mesh4(), Coord::new(1, 1));
        let flit = unicast_flit(1, 0, 7);
        r.accept_flit(Port::West, flit);
        let out = r.step(10, &mut slab);
        assert!(out.departures.is_empty());
        assert_eq!(r.counters().buffer_writes, 1);
        assert_eq!(r.buffered_flits(), 1);
    }

    #[test]
    fn broadcast_flit_forks_in_the_crossbar() {
        // Broadcast from node 5 = (1,1) observed at its source router: the
        // XY-tree forks East, West, North and South.
        let mut slab = FlitSlab::new();
        let mut r = Router::new(&RouterConfig::proposed(true), mesh4(), Coord::new(1, 1));
        let flit = broadcast_flit(1, 5);
        let la = lookahead_for(&r, &flit);
        r.accept_flit(Port::Local, flit);
        r.accept_lookahead(Port::Local, la);
        let out = r.step(0, &mut slab);
        assert_eq!(out.departures.len(), 4);
        let ports: Vec<Port> = out.departures.iter().map(|d| d.port).collect();
        assert!(ports.contains(&Port::East) && ports.contains(&Port::West));
        assert!(ports.contains(&Port::North) && ports.contains(&Port::South));
        assert_eq!(r.counters().multicast_forks, 1);
        assert_eq!(r.counters().crossbar_traversals, 4);
        // Destination subsets are disjoint and cover all 15 destinations.
        let total: usize = out
            .departures
            .iter()
            .map(|d| slab.take(d.flit).destinations().len())
            .sum();
        assert_eq!(total, 15);
    }

    #[test]
    fn ejection_goes_to_the_local_port() {
        let mut slab = FlitSlab::new();
        let mut r = Router::new(&RouterConfig::proposed(true), mesh4(), Coord::new(2, 2));
        let flit = unicast_flit(1, 0, 10); // node 10 == (2,2)
        let la = lookahead_for(&r, &flit);
        r.accept_flit(Port::West, flit);
        r.accept_lookahead(Port::West, la);
        let out = r.step(0, &mut slab);
        assert_eq!(out.departures.len(), 1);
        assert_eq!(out.departures[0].port, Port::Local);
        assert!(
            out.departures[0].lookahead.is_none(),
            "no lookahead to a NIC"
        );
        assert_eq!(r.counters().ejections, 1);
    }

    #[test]
    fn contending_lookaheads_buffer_the_loser() {
        // Two flits arrive in the same cycle, both needing the East port.
        let mut slab = FlitSlab::new();
        let mut r = Router::new(&RouterConfig::proposed(true), mesh4(), Coord::new(1, 1));
        let f_a = unicast_flit(1, 0, 7);
        let f_b = unicast_flit(2, 4, 7);
        let la_a = lookahead_for(&r, &f_a);
        let la_b = lookahead_for(&r, &f_b);
        r.accept_flit(Port::West, f_a);
        r.accept_lookahead(Port::West, la_a);
        r.accept_flit(Port::South, f_b);
        r.accept_lookahead(Port::South, la_b);
        let out = r.step(0, &mut slab);
        assert_eq!(
            out.departures.len(),
            1,
            "only one flit can win the East port"
        );
        assert_eq!(r.counters().bypasses, 1);
        assert_eq!(r.counters().buffer_writes, 1, "the loser is buffered");
        assert_eq!(r.buffered_flits(), 1);
    }

    #[test]
    fn credits_are_required_to_depart() {
        // Exhaust the East output's request VCs, then check a flit stays put.
        let mut slab = FlitSlab::new();
        let mut r = Router::new(&RouterConfig::proposed(false), mesh4(), Coord::new(1, 1));
        for vc in 0..4 {
            r.outputs
                .allocate_vc(Port::East.index(), MessageClass::Request, vc);
            r.outputs
                .send_flit(Port::East.index(), MessageClass::Request, vc, true);
        }
        let flit = unicast_flit(9, 0, 7);
        r.accept_flit(Port::West, flit);
        r.step(0, &mut slab);
        r.step(1, &mut slab);
        let out = r.step(2, &mut slab);
        assert!(
            out.departures.is_empty(),
            "no downstream VC/credit available"
        );
        assert_eq!(r.buffered_flits(), 1);
        // Return one credit; the flit can now leave.
        r.accept_credit(Port::East, Credit::new(MessageClass::Request, 0));
        let out = r.step(3, &mut slab);
        assert_eq!(out.departures.len(), 1);
    }

    #[test]
    fn partial_multicast_service_keeps_remaining_destinations() {
        // A broadcast needs East and North, but North has no free VCs: only
        // the East branch is served and the rest stays buffered.
        let mut slab = FlitSlab::new();
        let mut r = Router::new(&RouterConfig::proposed(false), mesh4(), Coord::new(0, 0));
        for vc in 0..4 {
            r.outputs
                .allocate_vc(Port::North.index(), MessageClass::Request, vc);
            r.outputs
                .send_flit(Port::North.index(), MessageClass::Request, vc, true);
        }
        let flit = broadcast_flit(1, 0);
        r.accept_flit(Port::Local, flit);
        r.step(0, &mut slab);
        r.step(1, &mut slab);
        let out = r.step(2, &mut slab);
        assert_eq!(out.departures.len(), 1);
        assert_eq!(out.departures[0].port, Port::East);
        assert!(out.credits.is_empty(), "flit still owns its buffer slot");
        assert_eq!(r.buffered_flits(), 1);
        let remaining = r
            .input(Port::Local)
            .vc(MessageClass::Request, 0)
            .head()
            .unwrap()
            .destinations()
            .len();
        assert_eq!(remaining, 3, "only the own-column destinations remain");
        // Free the North VCs: the remainder drains and the credit follows.
        for vc in 0..4 {
            r.accept_credit(Port::North, Credit::new(MessageClass::Request, vc));
        }
        let out = r.step(3, &mut slab);
        assert_eq!(out.departures.len(), 1);
        assert_eq!(out.departures[0].port, Port::North);
        assert_eq!(out.credits.len(), 1);
        assert_eq!(r.buffered_flits(), 0);
    }

    #[test]
    fn five_flit_response_streams_in_order_on_one_vc() {
        let mut slab = FlitSlab::new();
        let mut r = Router::new(
            &RouterConfig::aggressive_baseline(),
            mesh4(),
            Coord::new(1, 1),
        );
        let packet = Packet::new(7, 0, DestinationSet::unicast(7), PacketKind::Response, 0);
        let flits: Vec<Flit> = packet
            .to_flits()
            .into_iter()
            .map(|mut f| {
                f.set_vc(0);
                f
            })
            .collect();
        // Feed the first three flits (the downstream VC is 3 deep).
        let mut received = Vec::new();
        let mut next_to_send = 0usize;
        for cycle in 0..30 {
            if next_to_send < flits.len()
                && r.input(Port::West)
                    .vc(MessageClass::Response, 0)
                    .occupancy()
                    < 3
            {
                r.accept_flit(Port::West, flits[next_to_send].clone());
                next_to_send += 1;
            }
            let out = r.step(cycle, &mut slab);
            for d in out.departures {
                assert_eq!(d.port, Port::East);
                received.push(slab.take(d.flit).sequence());
            }
            // Model the downstream router always making room promptly.
            for (_, credit) in out.credits {
                let _ = credit;
            }
            // Return credits to the East output so the stream keeps moving.
            let dvc = r
                .output(Port::East)
                .downstream_vc(MessageClass::Response, 0)
                .unwrap();
            if dvc.credits < 3 && dvc.allocated {
                r.accept_credit(Port::East, Credit::new(MessageClass::Response, 0));
            }
        }
        assert_eq!(received, vec![0, 1, 2, 3, 4], "flits must stay in order");
    }
}
