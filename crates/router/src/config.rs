//! Router configuration: virtual channels, buffer depths and pipeline kind.

use noc_types::{ConfigError, MessageClass, VcId};
use serde::{Deserialize, Serialize};

/// Largest supported VC buffer depth, in flits.
///
/// VC buffers live *inline* in the router's input bank
/// (`ArrayFifo<Flit, MAX_VC_DEPTH>`), so the depth ceiling is a compile-time
/// constant; [`RouterConfig::validate`] rejects deeper configurations. The
/// chip needs 1 (request class) and 3 (response class).
pub const MAX_VC_DEPTH: usize = 4;

/// Virtual-channel configuration of one message class at every input port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VcConfig {
    /// Number of virtual channels.
    pub count: u8,
    /// Buffer depth (flit slots) of each virtual channel.
    pub depth: u8,
}

impl VcConfig {
    /// Creates a VC configuration.
    #[must_use]
    pub fn new(count: u8, depth: u8) -> Self {
        Self { count, depth }
    }

    /// Total buffer slots of this message class per input port.
    #[must_use]
    pub fn total_buffers(&self) -> usize {
        usize::from(self.count) * usize::from(self.depth)
    }
}

/// Which router generation to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouterKind {
    /// The textbook / aggressive baseline of Fig. 1: no multicast support,
    /// no lookaheads.
    Baseline {
        /// `true` folds ST and LT into one cycle (the "fairer" baseline used
        /// in the paper's measured comparison); `false` keeps them as two
        /// separate pipeline stages (the original textbook router).
        combined_st_lt: bool,
    },
    /// The proposed multicast router of Fig. 3.
    Proposed {
        /// Enables lookahead-based virtual bypassing (configs C vs D of the
        /// power study differ exactly in this switch).
        bypass: bool,
    },
}

impl RouterKind {
    /// Returns `true` when routers can replicate multicast flits.
    #[must_use]
    pub fn multicast_support(self) -> bool {
        matches!(self, RouterKind::Proposed { .. })
    }

    /// Returns `true` when routers send and honour lookahead signals.
    #[must_use]
    pub fn lookahead_enabled(self) -> bool {
        matches!(self, RouterKind::Proposed { bypass: true })
    }

    /// Extra link cycle paid after switch traversal (only the textbook
    /// baseline keeps LT as a separate pipeline stage).
    #[must_use]
    pub fn separate_lt_cycles(self) -> u64 {
        match self {
            RouterKind::Baseline {
                combined_st_lt: false,
            } => 1,
            _ => 0,
        }
    }

    /// Pipeline delay, in cycles, between a flit being written into an input
    /// buffer and the earliest cycle it can win switch traversal.
    ///
    /// Two cycles in every configuration: one for the stage-1 actions
    /// (BW, mSA-I, VA) and one for stage 2 (NRC, mSA-II). Bypassed flits skip
    /// both.
    #[must_use]
    pub fn buffered_pipeline_delay(self) -> u64 {
        2
    }
}

/// Complete configuration of a router (and, by construction, of every router
/// in a network — the chip is homogeneous).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouterConfig {
    /// Router generation.
    pub kind: RouterKind,
    /// Request-class VCs (the chip: 4 VCs, 1 flit deep).
    pub request_vcs: VcConfig,
    /// Response-class VCs (the chip: 2 VCs, 3 flits deep).
    pub response_vcs: VcConfig,
}

impl RouterConfig {
    /// The chip's VC provisioning: 4×1-flit request VCs and 2×3-flit
    /// response VCs (6 VCs, 10 buffers per port).
    #[must_use]
    pub fn chip_vcs() -> (VcConfig, VcConfig) {
        (VcConfig::new(4, 1), VcConfig::new(2, 3))
    }

    /// The textbook baseline router (separate ST and LT stages).
    #[must_use]
    pub fn textbook_baseline() -> Self {
        let (req, resp) = Self::chip_vcs();
        Self {
            kind: RouterKind::Baseline {
                combined_st_lt: false,
            },
            request_vcs: req,
            response_vcs: resp,
        }
    }

    /// The aggressive baseline used in Fig. 5 (single-cycle ST+LT, otherwise
    /// identical to the textbook router).
    #[must_use]
    pub fn aggressive_baseline() -> Self {
        let (req, resp) = Self::chip_vcs();
        Self {
            kind: RouterKind::Baseline {
                combined_st_lt: true,
            },
            request_vcs: req,
            response_vcs: resp,
        }
    }

    /// The proposed router; `bypass` selects whether virtual bypassing is
    /// enabled (the fabricated chip has it enabled).
    #[must_use]
    pub fn proposed(bypass: bool) -> Self {
        let (req, resp) = Self::chip_vcs();
        Self {
            kind: RouterKind::Proposed { bypass },
            request_vcs: req,
            response_vcs: resp,
        }
    }

    /// VC configuration of `class`.
    #[must_use]
    pub fn vcs(&self, class: MessageClass) -> VcConfig {
        match class {
            MessageClass::Request => self.request_vcs,
            MessageClass::Response => self.response_vcs,
        }
    }

    /// Total VCs per input port across both message classes.
    #[must_use]
    pub fn total_vcs(&self) -> usize {
        usize::from(self.request_vcs.count) + usize::from(self.response_vcs.count)
    }

    /// Total buffer slots per input port across both message classes.
    #[must_use]
    pub fn total_buffers(&self) -> usize {
        self.request_vcs.total_buffers() + self.response_vcs.total_buffers()
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidVcConfig`] when either message class has
    /// zero VCs, zero-depth buffers, or buffers deeper than the inline
    /// storage ceiling [`MAX_VC_DEPTH`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (name, vc) in [
            ("request", self.request_vcs),
            ("response", self.response_vcs),
        ] {
            if vc.count == 0 || vc.depth == 0 {
                return Err(ConfigError::InvalidVcConfig {
                    reason: format!("{name} class must have at least one VC of depth >= 1"),
                });
            }
            if usize::from(vc.depth) > MAX_VC_DEPTH {
                return Err(ConfigError::InvalidVcConfig {
                    reason: format!(
                        "{name} class depth {} exceeds the inline buffer ceiling {MAX_VC_DEPTH}",
                        vc.depth
                    ),
                });
            }
        }
        Ok(())
    }
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self::proposed(true)
    }
}

/// The flattened virtual-channel layout shared by the router's input and
/// output banks.
///
/// Both banks index their per-VC flat arrays `port * vc_count + flat_vc`,
/// with request VCs flattened first and response VCs after. Keeping the
/// flattening (and the per-class depth/count selection) in one value type
/// means the two banks cannot drift apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VcLayout {
    request_count: u8,
    response_count: u8,
    request_depth: u8,
    response_depth: u8,
}

impl VcLayout {
    /// The layout of `config`'s VC provisioning.
    #[must_use]
    pub fn new(config: &RouterConfig) -> Self {
        Self {
            request_count: config.request_vcs.count,
            response_count: config.response_vcs.count,
            request_depth: config.request_vcs.depth,
            response_depth: config.response_vcs.depth,
        }
    }

    /// Total VCs per port across both message classes.
    #[inline]
    #[must_use]
    pub fn vc_count(&self) -> usize {
        usize::from(self.request_count) + usize::from(self.response_count)
    }

    /// Number of VCs in `class`.
    #[inline]
    #[must_use]
    pub fn class_count(&self, class: MessageClass) -> usize {
        match class {
            MessageClass::Request => usize::from(self.request_count),
            MessageClass::Response => usize::from(self.response_count),
        }
    }

    /// Buffer depth of every VC in `class`.
    #[inline]
    #[must_use]
    pub fn class_depth(&self, class: MessageClass) -> u8 {
        match class {
            MessageClass::Request => self.request_depth,
            MessageClass::Response => self.response_depth,
        }
    }

    /// Flattened per-port VC index for `(class, vc)` — request VCs first,
    /// then response VCs.
    #[inline]
    #[must_use]
    pub fn flat_vc(&self, class: MessageClass, vc: VcId) -> usize {
        match class {
            MessageClass::Request => usize::from(vc),
            MessageClass::Response => usize::from(self.request_count) + usize::from(vc),
        }
    }

    /// Message class of flat VC `flat`.
    #[inline]
    #[must_use]
    pub fn class_of(&self, flat: usize) -> MessageClass {
        if flat < usize::from(self.request_count) {
            MessageClass::Request
        } else {
            MessageClass::Response
        }
    }

    /// VC identifier (within its message class) of flat VC `flat`.
    #[inline]
    #[must_use]
    pub fn vc_id_of(&self, flat: usize) -> VcId {
        if flat < usize::from(self.request_count) {
            flat as VcId
        } else {
            (flat - usize::from(self.request_count)) as VcId
        }
    }

    /// Buffer depth of flat VC `flat`.
    #[inline]
    #[must_use]
    pub fn depth_of(&self, flat: usize) -> u8 {
        self.class_depth(self.class_of(flat))
    }

    /// Index of `(port, flat_vc)` in a bank's flat per-VC arrays.
    ///
    /// # Panics
    ///
    /// Panics if `flat` is not a valid flat VC index — an out-of-range
    /// index would otherwise silently alias a neighbouring port's VC (the
    /// per-port `Vec` layout this replaced panicked immediately instead).
    #[inline]
    #[must_use]
    pub fn slot(&self, port: usize, flat: usize) -> usize {
        assert!(flat < self.vc_count(), "flat VC index out of range");
        port * self.vc_count() + flat
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chip_configuration_has_six_vcs_and_ten_buffers() {
        let cfg = RouterConfig::proposed(true);
        assert_eq!(cfg.total_vcs(), 6);
        assert_eq!(cfg.total_buffers(), 10);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn kinds_expose_their_capabilities() {
        assert!(RouterKind::Proposed { bypass: true }.multicast_support());
        assert!(RouterKind::Proposed { bypass: false }.multicast_support());
        assert!(!RouterKind::Baseline {
            combined_st_lt: true
        }
        .multicast_support());
        assert!(RouterKind::Proposed { bypass: true }.lookahead_enabled());
        assert!(!RouterKind::Proposed { bypass: false }.lookahead_enabled());
        assert_eq!(
            RouterKind::Baseline {
                combined_st_lt: false
            }
            .separate_lt_cycles(),
            1
        );
        assert_eq!(
            RouterKind::Baseline {
                combined_st_lt: true
            }
            .separate_lt_cycles(),
            0
        );
    }

    #[test]
    fn validation_rejects_empty_vc_configs() {
        let mut cfg = RouterConfig::proposed(true);
        cfg.request_vcs = VcConfig::new(0, 1);
        assert!(cfg.validate().is_err());
        let mut cfg = RouterConfig::proposed(true);
        cfg.response_vcs = VcConfig::new(2, 0);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_rejects_depths_beyond_the_inline_ceiling() {
        let mut cfg = RouterConfig::proposed(true);
        cfg.response_vcs = VcConfig::new(2, MAX_VC_DEPTH as u8);
        assert!(cfg.validate().is_ok());
        cfg.response_vcs = VcConfig::new(2, MAX_VC_DEPTH as u8 + 1);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn vcs_accessor_selects_class() {
        let cfg = RouterConfig::proposed(true);
        assert_eq!(cfg.vcs(MessageClass::Request).count, 4);
        assert_eq!(cfg.vcs(MessageClass::Request).depth, 1);
        assert_eq!(cfg.vcs(MessageClass::Response).count, 2);
        assert_eq!(cfg.vcs(MessageClass::Response).depth, 3);
    }
}
