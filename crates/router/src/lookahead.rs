//! Lookahead signals for virtual bypassing.
//!
//! When a flit wins switch traversal at router A towards router B, router A
//! also computes the output ports the flit will need *at B* (next-route
//! computation) and sends that request ahead of the flit as a small sideband
//! signal (15 bits on the chip: 5 output-port bits per message class plus VC
//! identification). The lookahead enters B's mSA-II with priority over
//! buffered flits; if it wins all the ports the flit needs, the flit skips
//! B's first two pipeline stages entirely and traverses B in a single cycle.

use noc_types::{FlitId, MessageClass, PortSet, VcId};
use serde::{Deserialize, Serialize};

/// A lookahead (crossbar pre-allocation request) travelling one hop ahead of
/// its flit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Lookahead {
    /// Identifier of the flit the lookahead pre-allocates for (used to match
    /// the lookahead with the flit arriving on the same input port).
    pub flit_id: FlitId,
    /// Message class of the flit.
    pub class: MessageClass,
    /// Virtual channel (at the receiving router's input port) the flit was
    /// assigned by the upstream VA stage.
    pub vc: VcId,
    /// Output ports the flit will request at the receiving router.
    pub requested_ports: PortSet,
}

impl Lookahead {
    /// Creates a lookahead.
    #[must_use]
    pub fn new(flit_id: FlitId, class: MessageClass, vc: VcId, requested_ports: PortSet) -> Self {
        Self {
            flit_id,
            class,
            vc,
            requested_ports,
        }
    }

    /// Approximate width of the sideband signal in bits, as reported by the
    /// paper (5 bits of output-port request per message class plus VC id —
    /// 15 bits total per link).
    #[must_use]
    pub fn signal_bits() -> u32 {
        15
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_types::Port;

    #[test]
    fn lookahead_carries_request_vector() {
        let ports: PortSet = [Port::East, Port::Local].into_iter().collect();
        let la = Lookahead::new(42, MessageClass::Request, 3, ports);
        assert_eq!(la.flit_id, 42);
        assert_eq!(la.requested_ports.len(), 2);
        assert!(la.requested_ports.contains(Port::East));
        assert_eq!(Lookahead::signal_bits(), 15);
    }
}
