//! # noc-router
//!
//! Cycle-accurate router microarchitectures for the DAC 2012 mesh NoC
//! reproduction.
//!
//! The crate models three router generations from the paper:
//!
//! * the **textbook baseline** (Fig. 1): an input-buffered virtual-channel
//!   router with a 4-stage pipeline (BW → SA/VA → ST → LT) and no multicast
//!   support,
//! * the **aggressive baseline** used in the paper's measured comparisons
//!   (Fig. 5): identical, but with ST and LT folded into a single cycle,
//! * the **proposed router** (Fig. 3): a multicast-capable router with
//!   separable switch allocation (per-input round-robin mSA-I, per-output
//!   matrix mSA-II), XY-tree forking in the crossbar, and — optionally —
//!   **virtual bypassing**: 15-bit lookaheads pre-allocate the crossbar of
//!   the next router so that flits achieve a single-cycle router-and-link
//!   latency per hop at all loads.
//!
//! Routers communicate exclusively through value types ([`Departure`],
//! [`Lookahead`], [`noc_types::Credit`]) so that a network orchestrator (the
//! `mesh-noc` crate) can wire any number of them together and advance them
//! cycle by cycle.
//!
//! The separable switch allocator operates on **bitmask request vectors**
//! throughout, mirroring the hardware bit-vectors of the chip's mSA-I/mSA-II
//! circuits: [`RoundRobinArbiter::arbitrate_mask`] and
//! [`MatrixArbiter::arbitrate_mask`] take `u32` request words, and the
//! port state is laid out **struct-of-arrays** in two banks per router:
//! [`InputBank`] (inline `ArrayFifo` VC buffers, flat head-ready words,
//! per-port occupancy masks) and [`OutputBank`] (flat downstream credits
//! plus per-`(port, class)` free/credit/allocated/tail masks) — see
//! `ARCHITECTURE.md` at the repository root for the full pipeline
//! walk-through. Every router also supports [`Router::reset`], the warm
//! rewind the sweep machinery uses to reuse a network across experiment
//! points.
//!
//! Paper mapping: the router microarchitecture is §3 and Fig. 3 of the DAC
//! 2012 paper; virtual bypassing and its single-cycle-per-hop claim are
//! §3.2; the separable allocator and its 5-/6-bit request vectors are §3.1.
//!
//! # Examples
//!
//! ```
//! use noc_router::{Router, RouterConfig, RouterKind};
//! use noc_topology::Mesh;
//! use noc_types::Coord;
//!
//! let mesh = Mesh::new(4)?;
//! let config = RouterConfig::proposed(true);
//! let router = Router::new(&config, mesh, Coord::new(1, 1));
//! assert_eq!(router.coord(), Coord::new(1, 1));
//! assert!(matches!(config.kind, RouterKind::Proposed { bypass: true }));
//! # Ok::<(), noc_types::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arbiter;
mod config;
mod input;
mod lookahead;
mod output;
mod router;

pub use arbiter::{MatrixArbiter, RoundRobinArbiter};
pub use config::{RouterConfig, RouterKind, VcConfig, VcLayout, MAX_VC_DEPTH};
pub use input::{InputBank, InputPortRef, VcRef, VcRoute};
pub use lookahead::Lookahead;
pub use output::{DownstreamVc, OutputBank, OutputPortRef};
pub use router::{Departure, Router, RouterOutput};
