//! # noc-router
//!
//! Cycle-accurate router microarchitectures for the DAC 2012 mesh NoC
//! reproduction.
//!
//! The crate models three router generations from the paper:
//!
//! * the **textbook baseline** (Fig. 1): an input-buffered virtual-channel
//!   router with a 4-stage pipeline (BW → SA/VA → ST → LT) and no multicast
//!   support,
//! * the **aggressive baseline** used in the paper's measured comparisons
//!   (Fig. 5): identical, but with ST and LT folded into a single cycle,
//! * the **proposed router** (Fig. 3): a multicast-capable router with
//!   separable switch allocation (per-input round-robin mSA-I, per-output
//!   matrix mSA-II), XY-tree forking in the crossbar, and — optionally —
//!   **virtual bypassing**: 15-bit lookaheads pre-allocate the crossbar of
//!   the next router so that flits achieve a single-cycle router-and-link
//!   latency per hop at all loads.
//!
//! Routers communicate exclusively through value types ([`Departure`],
//! [`Lookahead`], [`noc_types::Credit`]) so that a network orchestrator (the
//! `mesh-noc` crate) can wire any number of them together and advance them
//! cycle by cycle.
//!
//! # Examples
//!
//! ```
//! use noc_router::{Router, RouterConfig, RouterKind};
//! use noc_topology::Mesh;
//! use noc_types::Coord;
//!
//! let mesh = Mesh::new(4)?;
//! let config = RouterConfig::proposed(true);
//! let router = Router::new(&config, mesh, Coord::new(1, 1));
//! assert_eq!(router.coord(), Coord::new(1, 1));
//! assert!(matches!(config.kind, RouterKind::Proposed { bypass: true }));
//! # Ok::<(), noc_types::ConfigError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arbiter;
mod config;
mod input;
mod lookahead;
mod output;
mod router;

pub use arbiter::{MatrixArbiter, RoundRobinArbiter};
pub use config::{RouterConfig, RouterKind, VcConfig};
pub use input::{InputPort, VcBuffer};
pub use lookahead::Lookahead;
pub use output::{DownstreamVc, OutputPort};
pub use router::{Departure, Router, RouterOutput};
