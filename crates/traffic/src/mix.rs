//! Traffic mixes: the distribution of packet kinds a NIC injects.

use noc_types::{ConfigError, PacketKind, TrafficKind};
use serde::{Deserialize, Serialize};

/// A distribution over the three packet kinds the chip's evaluation uses.
///
/// Fractions must sum to 1.0 (validated by [`TrafficMix::new`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficMix {
    broadcast_request: f64,
    unicast_request: f64,
    unicast_response: f64,
}

impl TrafficMix {
    /// Creates a traffic mix from the three packet-kind fractions.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidTrafficMix`] when the fractions do not
    /// sum to 1.0 (within 1e-9) or any fraction is negative.
    pub fn new(
        broadcast_request: f64,
        unicast_request: f64,
        unicast_response: f64,
    ) -> Result<Self, ConfigError> {
        let sum = broadcast_request + unicast_request + unicast_response;
        let valid = (sum - 1.0).abs() < 1e-9
            && broadcast_request >= 0.0
            && unicast_request >= 0.0
            && unicast_response >= 0.0;
        if !valid {
            return Err(ConfigError::InvalidTrafficMix { sum });
        }
        Ok(Self {
            broadcast_request,
            unicast_request,
            unicast_response,
        })
    }

    /// The paper's mixed traffic: 50% broadcast requests, 25% unicast
    /// requests, 25% unicast responses (Fig. 5).
    #[must_use]
    pub fn mixed() -> Self {
        Self {
            broadcast_request: 0.5,
            unicast_request: 0.25,
            unicast_response: 0.25,
        }
    }

    /// Broadcast-only traffic: 100% broadcast requests (Fig. 13).
    #[must_use]
    pub fn broadcast_only() -> Self {
        Self {
            broadcast_request: 1.0,
            unicast_request: 0.0,
            unicast_response: 0.0,
        }
    }

    /// Uniform-random unicast traffic (50% requests, 50% responses), used by
    /// unicast-only comparisons and the Table 2 zero-load analysis.
    #[must_use]
    pub fn unicast_only() -> Self {
        Self {
            broadcast_request: 0.0,
            unicast_request: 0.5,
            unicast_response: 0.5,
        }
    }

    /// Single-flit unicast requests only (the simplest pattern; useful for
    /// calibration tests).
    #[must_use]
    pub fn unicast_requests_only() -> Self {
        Self {
            broadcast_request: 0.0,
            unicast_request: 1.0,
            unicast_response: 0.0,
        }
    }

    /// Fraction of broadcast requests.
    #[must_use]
    pub fn broadcast_request(&self) -> f64 {
        self.broadcast_request
    }

    /// Fraction of unicast requests.
    #[must_use]
    pub fn unicast_request(&self) -> f64 {
        self.unicast_request
    }

    /// Fraction of unicast responses.
    #[must_use]
    pub fn unicast_response(&self) -> f64 {
        self.unicast_response
    }

    /// Expected number of flits per injected packet under this mix
    /// (requests are 1 flit, responses are 5).
    #[must_use]
    pub fn expected_flits_per_packet(&self) -> f64 {
        (self.broadcast_request + self.unicast_request) * PacketKind::Request.flit_count() as f64
            + self.unicast_response * PacketKind::Response.flit_count() as f64
    }

    /// Picks the traffic kind corresponding to a uniform sample `u` in
    /// `[0, 1)`.
    #[must_use]
    pub fn pick(&self, u: f64) -> TrafficKind {
        if u < self.broadcast_request {
            TrafficKind::BroadcastRequest
        } else if u < self.broadcast_request + self.unicast_request {
            TrafficKind::UnicastRequest
        } else {
            TrafficKind::UnicastResponse
        }
    }
}

impl Default for TrafficMix {
    fn default() -> Self {
        Self::mixed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_sum_to_one() {
        for mix in [
            TrafficMix::mixed(),
            TrafficMix::broadcast_only(),
            TrafficMix::unicast_only(),
            TrafficMix::unicast_requests_only(),
        ] {
            let sum = mix.broadcast_request() + mix.unicast_request() + mix.unicast_response();
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn new_validates_fractions() {
        assert!(TrafficMix::new(0.5, 0.25, 0.25).is_ok());
        assert!(TrafficMix::new(0.5, 0.5, 0.5).is_err());
        assert!(TrafficMix::new(-0.1, 0.6, 0.5).is_err());
    }

    #[test]
    fn mixed_expected_flits_is_two() {
        // 0.75 packets of 1 flit + 0.25 packets of 5 flits = 2 flits/packet.
        assert!((TrafficMix::mixed().expected_flits_per_packet() - 2.0).abs() < 1e-12);
        assert!((TrafficMix::broadcast_only().expected_flits_per_packet() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pick_maps_the_unit_interval() {
        let mix = TrafficMix::mixed();
        assert_eq!(mix.pick(0.0), TrafficKind::BroadcastRequest);
        assert_eq!(mix.pick(0.49), TrafficKind::BroadcastRequest);
        assert_eq!(mix.pick(0.6), TrafficKind::UnicastRequest);
        assert_eq!(mix.pick(0.9), TrafficKind::UnicastResponse);
    }
}
