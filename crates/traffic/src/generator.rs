//! Per-node traffic generators: the Bernoulli PRBS packet sources the
//! chip's NICs implement in RTL (§4.1), including the identical-seed
//! artifact the paper measures and the per-node-seed "fixed RTL" variant.

use noc_sim::{bernoulli_threshold, PrbsGenerator};
use noc_types::{Cycle, DestinationSet, NodeId, Packet, PacketId, PacketKind, TrafficKind};
use serde::{Deserialize, Serialize};

use crate::mix::TrafficMix;
use crate::pattern::SpatialPattern;

/// How the per-node PRBS generators are seeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SeedMode {
    /// Every NIC uses the same seed — the fabricated chip's artifact. All
    /// nodes make correlated injection decisions and destination choices,
    /// which causes avoidable contention and limits bypassing even at low
    /// injection rates (§4.1 attributes ~1 cycle/hop of measured contention
    /// latency to this).
    Identical,
    /// Each NIC derives its seed from its node id — the "fixed RTL"
    /// behaviour whose simulated contention is only ~0.04 cycles/hop.
    PerNode,
}

/// A Bernoulli packet source attached to one node.
///
/// Each cycle the generator flips a PRBS coin with probability
/// `rate / expected_flits_per_packet` (so that `rate` is the *flit* injection
/// rate the paper's throughput axes use), picks a packet kind from the
/// configured [`TrafficMix`], and draws a unicast destination through the
/// configured [`SpatialPattern`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficGenerator {
    node: NodeId,
    k: u16,
    mix: TrafficMix,
    pattern: SpatialPattern,
    rate: f64,
    /// Fixed-point Bernoulli threshold for `rate / expected_flits_per_packet`,
    /// cached so the per-cycle coin flip is one table-leap compare instead of
    /// a divide (recomputed only when the rate changes).
    coin_threshold: u32,
    prbs: PrbsGenerator,
    next_packet_seq: u64,
}

impl TrafficGenerator {
    /// The base seed the chip's PRBS generators boot from.
    pub const DEFAULT_BASE_SEED: u16 = 0xACE1;

    /// Creates a generator for `node` of a k×k mesh injecting `rate`
    /// flits/cycle on average, seeded from
    /// [`DEFAULT_BASE_SEED`](Self::DEFAULT_BASE_SEED).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative or `k == 0`.
    #[must_use]
    pub fn new(node: NodeId, k: u16, mix: TrafficMix, seed_mode: SeedMode, rate: f64) -> Self {
        Self::with_base_seed(node, k, mix, seed_mode, rate, Self::DEFAULT_BASE_SEED)
    }

    /// Creates a generator whose PRBS state boots from `base_seed` instead of
    /// the chip's default.
    ///
    /// Sweep runners derive one base seed per sweep point so that every point
    /// is statistically independent yet fully determined by `(configuration,
    /// point index)` — the property that makes parallel and sequential sweeps
    /// bit-identical.
    ///
    /// Destinations follow [`SpatialPattern::uniform_legacy`]; use
    /// [`with_pattern`](Self::with_pattern) to choose any other pattern.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative or `k == 0`.
    #[must_use]
    pub fn with_base_seed(
        node: NodeId,
        k: u16,
        mix: TrafficMix,
        seed_mode: SeedMode,
        rate: f64,
        base_seed: u16,
    ) -> Self {
        Self::with_pattern(
            node,
            k,
            mix,
            SpatialPattern::uniform_legacy(),
            seed_mode,
            rate,
            base_seed,
        )
    }

    /// Creates a generator drawing unicast destinations through `pattern`.
    ///
    /// This is the fully general constructor the NICs use; the narrower
    /// [`new`](Self::new) / [`with_base_seed`](Self::with_base_seed) default
    /// to the chip's uniform-random pattern.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative or `k == 0`.
    #[must_use]
    pub fn with_pattern(
        node: NodeId,
        k: u16,
        mix: TrafficMix,
        pattern: SpatialPattern,
        seed_mode: SeedMode,
        rate: f64,
        base_seed: u16,
    ) -> Self {
        assert!(rate >= 0.0, "injection rate must be non-negative");
        assert!(k > 0, "mesh side length must be positive");
        let seed = match seed_mode {
            SeedMode::Identical => base_seed,
            SeedMode::PerNode => base_seed ^ (node.wrapping_mul(0x9E37) | 1),
        };
        let coin_threshold = bernoulli_threshold(rate / mix.expected_flits_per_packet());
        Self {
            node,
            k,
            mix,
            pattern,
            rate,
            coin_threshold,
            prbs: PrbsGenerator::new(seed),
            next_packet_seq: 0,
        }
    }

    /// Node this generator injects from.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Configured flit injection rate.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Changes the injection rate (used by sweeps reusing one generator).
    pub fn set_rate(&mut self, rate: f64) {
        assert!(rate >= 0.0, "injection rate must be non-negative");
        self.rate = rate;
        self.coin_threshold = bernoulli_threshold(rate / self.mix.expected_flits_per_packet());
    }

    /// Traffic mix.
    #[must_use]
    pub fn mix(&self) -> &TrafficMix {
        &self.mix
    }

    /// Spatial pattern unicast destinations are drawn through.
    #[must_use]
    pub fn pattern(&self) -> &SpatialPattern {
        &self.pattern
    }

    /// Number of packets generated so far.
    #[must_use]
    pub fn generated_packets(&self) -> u64 {
        self.next_packet_seq
    }

    /// Produces the packet this node creates at `cycle`, if any (the chip's
    /// NICs inject at most one packet per cycle, so no container — and no
    /// allocation — is needed).
    pub fn generate(&mut self, cycle: Cycle) -> Option<Packet> {
        if !self.prbs.coin(self.coin_threshold) {
            return None;
        }
        let kind_sample = f64::from(self.prbs.next_word()) / f64::from(u16::MAX);
        let kind = self.mix.pick(kind_sample.min(0.999_999));
        Some(self.build_packet(kind, cycle))
    }

    /// Scouts how many upcoming [`generate`](Self::generate) calls are
    /// guaranteed to produce no packet, without mutating any PRBS state.
    ///
    /// Returns `u64::MAX` when the generator can never inject (zero rate),
    /// otherwise the exact number of losing coin flips ahead, capped at
    /// `cap`. A scheduler may skip that many cycles and replay them later
    /// through [`skip_idle_cycles`](Self::skip_idle_cycles) with a bit-exact
    /// resulting stream.
    #[must_use]
    pub fn idle_cycles_hint(&self, cap: u64) -> u64 {
        self.prbs.scout_coin_run(self.coin_threshold, cap)
    }

    /// Replays `cycles` injection coin flips at once (each one a losing flip
    /// previously promised by [`idle_cycles_hint`](Self::idle_cycles_hint)),
    /// leaving the PRBS state exactly as `cycles` calls to
    /// [`generate`](Self::generate) returning `None` would.
    pub fn skip_idle_cycles(&mut self, cycles: u64) {
        self.prbs.skip_coin_flips(cycles);
    }

    /// Builds one packet of the given kind at `cycle` (also used by tests and
    /// deterministic workloads that bypass the Bernoulli process).
    pub fn build_packet(&mut self, kind: TrafficKind, cycle: Cycle) -> Packet {
        let id = self.packet_id();
        let (dests, packet_kind) = match kind {
            TrafficKind::BroadcastRequest => (
                DestinationSet::broadcast(self.k, self.node),
                PacketKind::Request,
            ),
            TrafficKind::UnicastRequest | TrafficKind::UnicastResponse => {
                let dest = self.pattern.draw(&mut self.prbs, self.node, self.k);
                let packet_kind = if kind == TrafficKind::UnicastRequest {
                    PacketKind::Request
                } else {
                    PacketKind::Response
                };
                (DestinationSet::unicast(dest), packet_kind)
            }
        };
        Packet::new(id, self.node, dests, packet_kind, cycle)
    }

    /// Globally unique packet id: the node id in the high bits, a per-node
    /// sequence number in the low bits.
    fn packet_id(&mut self) -> PacketId {
        let id = (u64::from(self.node) << 40) | self.next_packet_seq;
        self.next_packet_seq += 1;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total_packets(mut gen: TrafficGenerator, cycles: Cycle) -> u64 {
        let mut n = 0;
        for c in 0..cycles {
            n += u64::from(gen.generate(c).is_some());
        }
        n
    }

    #[test]
    fn injection_rate_controls_packet_count() {
        let low = TrafficGenerator::new(0, 4, TrafficMix::mixed(), SeedMode::PerNode, 0.05);
        let high = TrafficGenerator::new(0, 4, TrafficMix::mixed(), SeedMode::PerNode, 0.5);
        let n_low = total_packets(low, 10_000);
        let n_high = total_packets(high, 10_000);
        // Expected: 0.05/2 * 10k = 250 and 0.5/2 * 10k = 2500 packets.
        assert!(n_low > 150 && n_low < 350, "low-rate packets: {n_low}");
        assert!(
            n_high > 2200 && n_high < 2800,
            "high-rate packets: {n_high}"
        );
    }

    #[test]
    fn zero_rate_generates_nothing() {
        let gen = TrafficGenerator::new(3, 4, TrafficMix::mixed(), SeedMode::PerNode, 0.0);
        assert_eq!(total_packets(gen, 1000), 0);
    }

    #[test]
    fn mixed_traffic_produces_all_three_kinds() {
        let mut gen = TrafficGenerator::new(1, 4, TrafficMix::mixed(), SeedMode::PerNode, 1.0);
        let mut bcast = 0;
        let mut uni_req = 0;
        let mut uni_resp = 0;
        for c in 0..20_000 {
            if let Some(p) = gen.generate(c) {
                if p.is_multicast() {
                    bcast += 1;
                } else if p.kind() == PacketKind::Request {
                    uni_req += 1;
                } else {
                    uni_resp += 1;
                }
            }
        }
        let total = (bcast + uni_req + uni_resp) as f64;
        assert!(total > 0.0);
        assert!((f64::from(bcast) / total - 0.5).abs() < 0.05);
        assert!((f64::from(uni_req) / total - 0.25).abs() < 0.05);
        assert!((f64::from(uni_resp) / total - 0.25).abs() < 0.05);
    }

    #[test]
    fn unicasts_never_target_their_own_node() {
        let mut gen =
            TrafficGenerator::new(5, 4, TrafficMix::unicast_only(), SeedMode::PerNode, 1.0);
        for c in 0..5000 {
            if let Some(p) = gen.generate(c) {
                assert!(!p.destinations().contains(5));
                assert_eq!(p.destinations().len(), 1);
            }
        }
    }

    #[test]
    fn broadcast_only_targets_everyone_else() {
        let mut gen =
            TrafficGenerator::new(2, 4, TrafficMix::broadcast_only(), SeedMode::PerNode, 0.5);
        for c in 0..1000 {
            if let Some(p) = gen.generate(c) {
                assert_eq!(p.destinations().len(), 15);
                assert!(!p.destinations().contains(2));
            }
        }
    }

    #[test]
    fn identical_seeds_correlate_injection_decisions() {
        let mut a = TrafficGenerator::new(0, 4, TrafficMix::mixed(), SeedMode::Identical, 0.2);
        let mut b = TrafficGenerator::new(9, 4, TrafficMix::mixed(), SeedMode::Identical, 0.2);
        for c in 0..2000 {
            // Both nodes decide to inject (or not) on exactly the same cycles.
            assert_eq!(a.generate(c).is_some(), b.generate(c).is_some());
        }
        let mut a = TrafficGenerator::new(0, 4, TrafficMix::mixed(), SeedMode::PerNode, 0.2);
        let mut b = TrafficGenerator::new(9, 4, TrafficMix::mixed(), SeedMode::PerNode, 0.2);
        let mut differs = false;
        for c in 0..2000 {
            if a.generate(c).is_some() != b.generate(c).is_some() {
                differs = true;
            }
        }
        assert!(differs, "per-node seeds must decorrelate the processes");
    }

    #[test]
    fn pattern_threads_through_to_unicast_destinations() {
        use crate::pattern::SpatialPattern;
        // Node 6 = (2, 1) on 4×4; transpose target = (1, 2) = node 9.
        let mut gen = TrafficGenerator::with_pattern(
            6,
            4,
            TrafficMix::unicast_requests_only(),
            SpatialPattern::Transpose,
            SeedMode::PerNode,
            1.0,
            TrafficGenerator::DEFAULT_BASE_SEED,
        );
        for c in 0..200 {
            if let Some(p) = gen.generate(c) {
                assert!(p.destinations().contains(9));
                assert_eq!(p.destinations().len(), 1);
            }
        }
        assert_eq!(gen.pattern(), &SpatialPattern::Transpose);
    }

    #[test]
    fn default_constructors_use_the_legacy_uniform_pattern() {
        use crate::pattern::SpatialPattern;
        let gen = TrafficGenerator::new(0, 4, TrafficMix::mixed(), SeedMode::PerNode, 0.1);
        assert_eq!(gen.pattern(), &SpatialPattern::uniform_legacy());
    }

    #[test]
    fn idle_hint_and_skip_replay_the_serial_coin_stream() {
        let mut serial = TrafficGenerator::new(3, 4, TrafficMix::mixed(), SeedMode::PerNode, 0.01);
        let mut skipping = serial.clone();
        let mut cycle = 0;
        while cycle < 50_000 {
            let idle = skipping.idle_cycles_hint(1_000);
            if idle > 0 {
                let run = idle.min(1_000);
                for c in cycle..cycle + run {
                    assert!(serial.generate(c).is_none(), "promised-idle cycle {c}");
                }
                skipping.skip_idle_cycles(run);
                cycle += run;
            } else {
                assert_eq!(serial.generate(cycle), skipping.generate(cycle));
                cycle += 1;
            }
        }
        assert_eq!(serial, skipping, "PRBS states must converge identically");
    }

    #[test]
    fn zero_rate_scouts_as_forever_idle() {
        let gen = TrafficGenerator::new(3, 4, TrafficMix::mixed(), SeedMode::PerNode, 0.0);
        assert_eq!(gen.idle_cycles_hint(u64::MAX), u64::MAX);
    }

    #[test]
    fn set_rate_recomputes_the_cached_threshold() {
        let fresh = TrafficGenerator::new(0, 4, TrafficMix::mixed(), SeedMode::PerNode, 0.5);
        let mut updated = TrafficGenerator::new(0, 4, TrafficMix::mixed(), SeedMode::PerNode, 0.05);
        updated.set_rate(0.5);
        assert_eq!(fresh, updated, "set_rate must match construction exactly");
    }

    #[test]
    fn packet_ids_are_unique_per_node() {
        let mut gen = TrafficGenerator::new(7, 4, TrafficMix::mixed(), SeedMode::PerNode, 1.0);
        let mut ids = std::collections::HashSet::new();
        for c in 0..2000 {
            if let Some(p) = gen.generate(c) {
                assert!(ids.insert(p.id()), "duplicate packet id {}", p.id());
            }
        }
    }
}
