//! Pluggable packet sources: live Bernoulli generation or trace replay,
//! with optional recording of every emitted packet into a
//! [`noc_types::Trace`].

use std::collections::VecDeque;

use noc_types::{Cycle, NodeId, Packet, TraceEvent};
use serde::{Deserialize, Serialize};

use crate::generator::TrafficGenerator;

/// The per-node packet source a NIC polls every injection cycle.
///
/// A source is either the paper's live Bernoulli [`TrafficGenerator`] or a
/// deterministic replayer of recorded [`TraceEvent`]s; both speak the same
/// generate / rate / nap protocol, so the NIC does not care which one it is
/// driving. In either mode the source can additionally *record* everything
/// it emits, which is how traces are captured from live scenarios in the
/// first place.
///
/// Replay regenerates packet ids from the per-node emission order using the
/// same `(node << 40) | seq` scheme the live generator uses, so a replayed
/// run is bit-identical to the recorded one without ids ever being stored
/// in the trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficSource {
    mode: SourceMode,
    recorded: Option<Vec<TraceEvent>>,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum SourceMode {
    Bernoulli(TrafficGenerator),
    Replay(TraceReplayer),
}

/// Replays one node's slice of a recorded trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct TraceReplayer {
    node: NodeId,
    /// This node's events in cycle order.
    events: VecDeque<TraceEvent>,
    /// Per-node packet sequence counter (regenerates the live id scheme).
    next_packet_seq: u64,
}

impl TrafficSource {
    /// Wraps a live Bernoulli generator.
    #[must_use]
    pub fn bernoulli(generator: TrafficGenerator) -> Self {
        Self {
            mode: SourceMode::Bernoulli(generator),
            recorded: None,
        }
    }

    /// Builds a replay source emitting `events` (this node's slice of a
    /// trace, in cycle order) from `node`.
    #[must_use]
    pub fn replay(node: NodeId, events: Vec<TraceEvent>) -> Self {
        debug_assert!(events.iter().all(|e| e.source == node));
        debug_assert!(events.windows(2).all(|w| w[0].cycle <= w[1].cycle));
        Self {
            mode: SourceMode::Replay(TraceReplayer {
                node,
                events: events.into(),
                next_packet_seq: 0,
            }),
            recorded: None,
        }
    }

    /// Node this source injects from.
    #[must_use]
    pub fn node(&self) -> NodeId {
        match &self.mode {
            SourceMode::Bernoulli(generator) => generator.node(),
            SourceMode::Replay(replayer) => replayer.node,
        }
    }

    /// Returns `true` when this source replays a trace instead of running
    /// the live Bernoulli process.
    #[must_use]
    pub fn is_replay(&self) -> bool {
        matches!(self.mode, SourceMode::Replay(_))
    }

    /// The wrapped Bernoulli generator, when in live mode.
    #[must_use]
    pub fn generator(&self) -> Option<&TrafficGenerator> {
        match &self.mode {
            SourceMode::Bernoulli(generator) => Some(generator),
            SourceMode::Replay(_) => None,
        }
    }

    /// Starts recording every packet this source emits from now on.
    ///
    /// Restarting recording discards anything recorded so far.
    pub fn start_recording(&mut self) {
        self.recorded = Some(Vec::new());
    }

    /// Returns `true` while recording is active.
    #[must_use]
    pub fn is_recording(&self) -> bool {
        self.recorded.is_some()
    }

    /// Stops recording and returns this node's recorded events in emission
    /// (= cycle) order. Returns an empty list when recording was never
    /// started.
    pub fn take_recorded_events(&mut self) -> Vec<TraceEvent> {
        self.recorded.take().unwrap_or_default()
    }

    /// Produces the packet this node creates at `cycle`, if any.
    ///
    /// Bernoulli mode flips the live coin; replay mode emits the next
    /// recorded event once its cycle is due. Either way at most one packet
    /// per call, like the chip's NICs.
    pub fn generate(&mut self, cycle: Cycle) -> Option<Packet> {
        let packet = match &mut self.mode {
            SourceMode::Bernoulli(generator) => generator.generate(cycle),
            SourceMode::Replay(replayer) => {
                if replayer.events.front().is_some_and(|e| e.cycle <= cycle) {
                    let event = replayer.events.pop_front().expect("front checked");
                    let id = (u64::from(replayer.node) << 40) | replayer.next_packet_seq;
                    replayer.next_packet_seq += 1;
                    Some(Packet::new(
                        id,
                        replayer.node,
                        event.destinations,
                        event.kind,
                        cycle,
                    ))
                } else {
                    None
                }
            }
        };
        if let (Some(recorded), Some(packet)) = (self.recorded.as_mut(), packet.as_ref()) {
            recorded.push(TraceEvent {
                cycle,
                source: packet.source(),
                kind: packet.kind(),
                destinations: *packet.destinations(),
            });
        }
        packet
    }

    /// Configured flit injection rate (zero for replay sources, whose
    /// schedule is fixed by the trace).
    #[must_use]
    pub fn rate(&self) -> f64 {
        match &self.mode {
            SourceMode::Bernoulli(generator) => generator.rate(),
            SourceMode::Replay(_) => 0.0,
        }
    }

    /// Changes the injection rate. A no-op for replay sources.
    pub fn set_rate(&mut self, rate: f64) {
        if let SourceMode::Bernoulli(generator) = &mut self.mode {
            generator.set_rate(rate);
        }
    }

    /// Number of packets emitted so far.
    #[must_use]
    pub fn generated_packets(&self) -> u64 {
        match &self.mode {
            SourceMode::Bernoulli(generator) => generator.generated_packets(),
            SourceMode::Replay(replayer) => replayer.next_packet_seq,
        }
    }

    /// Scouts how many upcoming [`generate`](Self::generate) calls are
    /// guaranteed idle (see [`TrafficGenerator::idle_cycles_hint`]).
    ///
    /// A replay source with events left never promises idle cycles (the nap
    /// protocol is keyed on injection ordinals, not trace cycles, so it
    /// simply opts out); once its trace is exhausted it is idle forever.
    /// Napping is a pure scheduling shortcut — opting out cannot change any
    /// measured number.
    #[must_use]
    pub fn idle_cycles_hint(&self, cap: u64) -> u64 {
        match &self.mode {
            SourceMode::Bernoulli(generator) => generator.idle_cycles_hint(cap),
            SourceMode::Replay(replayer) => {
                if replayer.events.is_empty() {
                    u64::MAX
                } else {
                    0
                }
            }
        }
    }

    /// Replays `cycles` promised-idle injection cycles at once. A no-op for
    /// replay sources (they hold no PRBS state to advance).
    pub fn skip_idle_cycles(&mut self, cycles: u64) {
        if let SourceMode::Bernoulli(generator) = &mut self.mode {
            generator.skip_idle_cycles(cycles);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::SeedMode;
    use crate::mix::TrafficMix;
    use noc_types::{DestinationSet, PacketKind};

    fn live_source(rate: f64) -> TrafficSource {
        TrafficSource::bernoulli(TrafficGenerator::new(
            5,
            4,
            TrafficMix::mixed(),
            SeedMode::PerNode,
            rate,
        ))
    }

    #[test]
    fn recorded_replay_reproduces_the_live_stream_bit_for_bit() {
        let mut live = live_source(0.3);
        live.start_recording();
        let reference: Vec<Option<Packet>> = (0..500).map(|c| live.generate(c)).collect();
        let events = live.take_recorded_events();
        assert!(!events.is_empty(), "rate 0.3 must emit something");

        let mut replay = TrafficSource::replay(5, events);
        assert!(replay.is_replay());
        for (cycle, expected) in reference.iter().enumerate() {
            let got = replay.generate(cycle as Cycle);
            assert_eq!(&got, expected, "cycle {cycle} diverged");
        }
        assert!(replay.generate(1_000).is_none(), "trace must be exhausted");
    }

    #[test]
    fn replay_regenerates_the_live_packet_id_scheme() {
        let events = vec![
            TraceEvent {
                cycle: 2,
                source: 3,
                kind: PacketKind::Request,
                destinations: DestinationSet::unicast(1),
            },
            TraceEvent {
                cycle: 7,
                source: 3,
                kind: PacketKind::Response,
                destinations: DestinationSet::unicast(9),
            },
        ];
        let mut replay = TrafficSource::replay(3, events);
        assert!(replay.generate(0).is_none());
        let first = replay.generate(2).unwrap();
        assert_eq!(first.id(), 3u64 << 40);
        assert_eq!(first.created_at(), 2);
        let second = replay.generate(7).unwrap();
        assert_eq!(second.id(), (3u64 << 40) | 1);
        assert_eq!(second.kind(), PacketKind::Response);
        assert_eq!(replay.generated_packets(), 2);
    }

    #[test]
    fn replay_opts_out_of_the_nap_protocol_until_exhausted() {
        let events = vec![TraceEvent {
            cycle: 50,
            source: 0,
            kind: PacketKind::Request,
            destinations: DestinationSet::unicast(1),
        }];
        let mut replay = TrafficSource::replay(0, events);
        assert_eq!(replay.idle_cycles_hint(u64::MAX), 0);
        replay.skip_idle_cycles(10); // must be a harmless no-op
        assert!(replay.generate(50).is_some());
        assert_eq!(replay.idle_cycles_hint(u64::MAX), u64::MAX);
    }

    #[test]
    fn recording_does_not_perturb_the_bernoulli_stream() {
        let mut plain = live_source(0.2);
        let mut taped = live_source(0.2);
        taped.start_recording();
        for cycle in 0..300 {
            assert_eq!(plain.generate(cycle), taped.generate(cycle));
        }
        assert_eq!(
            u64::try_from(taped.take_recorded_events().len()).unwrap(),
            plain.generated_packets()
        );
    }

    #[test]
    fn rate_controls_only_the_live_mode() {
        let mut live = live_source(0.25);
        assert_eq!(live.rate(), 0.25);
        live.set_rate(0.5);
        assert_eq!(live.rate(), 0.5);

        let mut replay = TrafficSource::replay(0, Vec::new());
        assert_eq!(replay.rate(), 0.0);
        replay.set_rate(0.9); // no-op by contract
        assert_eq!(replay.rate(), 0.0);
        assert!(replay.generator().is_none());
        assert!(live.generator().is_some());
    }
}
