//! Spatial traffic patterns: how a node picks the destination of a unicast.
//!
//! The chip's RTL draws destinations uniformly from its PRBS generators, but
//! NoC evaluation practice treats the spatial pattern as a first-class,
//! swappable object: the same network is stressed with transpose, bit
//! permutations, tornado or hotspot traffic to expose pathologies that
//! uniform-random traffic averages away. [`SpatialPattern`] captures that
//! abstraction for this simulator.
//!
//! Every pattern is deterministic given the node's PRBS stream: patterns
//! either consume words from the *destination* LFSR (uniform and hotspot) or
//! consume nothing at all (the fixed permutations), so simulations remain
//! pure functions of `(configuration, seed)` and the parallel sweep runner's
//! bit-identical-for-any-thread-count contract is preserved.
//!
//! A pattern whose permutation maps a node onto itself (the transpose
//! diagonal, bit-reverse palindromes, the shuffle fixed points) falls back to
//! the node's successor `(source + 1) % nodes`, so no pattern ever produces a
//! self-addressed unicast on meshes with at least two nodes.

use noc_sim::PrbsGenerator;
use noc_types::{ConfigError, Coord, DestinationSet, NodeId};
use serde::{Deserialize, Serialize};

/// What [`SpatialPattern::UniformRandom`] does when the PRBS draw lands on
/// the sending node itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CollisionPolicy {
    /// Redraw from the PRBS stream until the destination differs from the
    /// source. This is the statistically correct behaviour: every other node
    /// is hit with probability `1 / (nodes - 1)`.
    Resample,
    /// Replace a self-destination with `(source + 1) % nodes` — the chip
    /// RTL's (and this simulator's historical) behaviour. It over-weights
    /// each node's successor by a factor of two, but reproduces every curve
    /// measured before the pattern abstraction existed bit-for-bit.
    LegacySkip,
}

/// A spatial traffic pattern: the map from a sending node to the destination
/// of each unicast packet it creates.
///
/// Patterns are `Copy`, serde-able and cheap to embed in a configuration.
/// Hotspot target sets ride a [`DestinationSet`] bit vector so the whole enum
/// stays `Copy` (and so configurations containing it remain `Copy`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SpatialPattern {
    /// Uniformly random destinations drawn from the PRBS stream, excluding
    /// the source according to the [`CollisionPolicy`].
    UniformRandom {
        /// How self-destinations are avoided.
        collision: CollisionPolicy,
    },
    /// `(x, y) → (y, x)`: the matrix-transpose permutation. Diagonal nodes
    /// fall back to their successor.
    Transpose,
    /// `(x, y) → (k-1-x, k-1-y)`: every node targets its point reflection
    /// through the mesh centre (for power-of-two `k` this is the classical
    /// bit-complement of the node id). Maximises bisection load.
    BitComplement,
    /// The node id with its bits reversed (within `log2(nodes)` bits).
    /// Requires a power-of-two node count. Palindromic ids fall back to
    /// their successor.
    BitReverse,
    /// Each coordinate shifted `max(1, ⌈k/2⌉ - 1)` hops along its dimension
    /// (wrapping): the classical adversarial pattern for minimal routing on
    /// tori, kept as a long-haul stressor on the mesh.
    Tornado,
    /// `(x, y) → ((x+1) mod k, y)`: each node targets its +X neighbour (the
    /// mesh edge wraps). The friendliest possible pattern — every flit
    /// travels one or `k-1` hops.
    NearestNeighbor,
    /// The node id rotated left by one bit (within `log2(nodes)` bits): the
    /// perfect-shuffle permutation. Requires a power-of-two node count;
    /// fixed points (all-zeros, all-ones) fall back to their successor.
    Shuffle,
    /// With probability `weight`, target a uniformly chosen member of
    /// `targets`; otherwise fall back to a uniform-random draw over the whole
    /// mesh (resampling self-destinations away in both arms).
    Hotspot {
        /// The hotspot nodes. Must be non-empty and within the mesh.
        targets: DestinationSet,
        /// Probability of targeting the hotspot set, in `[0, 1]`.
        weight: f64,
    },
}

impl SpatialPattern {
    /// Unbiased uniform-random traffic ([`CollisionPolicy::Resample`]) — the
    /// recommended uniform pattern for new experiments.
    #[must_use]
    pub fn uniform() -> Self {
        SpatialPattern::UniformRandom {
            collision: CollisionPolicy::Resample,
        }
    }

    /// Uniform-random traffic with the chip RTL's successor-skip collision
    /// handling ([`CollisionPolicy::LegacySkip`]) — bit-identical to the
    /// generator this simulator shipped with, and therefore the default of
    /// every built-in configuration preset (the golden tests pin this).
    #[must_use]
    pub fn uniform_legacy() -> Self {
        SpatialPattern::UniformRandom {
            collision: CollisionPolicy::LegacySkip,
        }
    }

    /// A hotspot pattern over `targets` with the given weight.
    #[must_use]
    pub fn hotspot(targets: DestinationSet, weight: f64) -> Self {
        SpatialPattern::Hotspot { targets, weight }
    }

    /// The four-corner hotspot used by the `patterns` experiment: the mesh
    /// corners absorb `weight` of the unicast traffic.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn corner_hotspot(k: u16, weight: f64) -> Self {
        assert!(k > 0, "mesh side length must be positive");
        let nodes = k * k;
        let mut targets = DestinationSet::empty();
        targets.insert(0);
        targets.insert(k - 1);
        targets.insert(nodes - k);
        targets.insert(nodes - 1);
        Self::hotspot(targets, weight)
    }

    /// The full pattern gallery for a k×k mesh: one instance of each of the
    /// eight pattern families (uniform appears in its unbiased
    /// [`Resample`](CollisionPolicy::Resample) form; the hotspot weighs the
    /// four mesh corners at 0.5).
    #[must_use]
    pub fn gallery(k: u16) -> Vec<SpatialPattern> {
        vec![
            SpatialPattern::uniform(),
            SpatialPattern::Transpose,
            SpatialPattern::BitComplement,
            SpatialPattern::BitReverse,
            SpatialPattern::Tornado,
            SpatialPattern::NearestNeighbor,
            SpatialPattern::Shuffle,
            SpatialPattern::corner_hotspot(k, 0.5),
        ]
    }

    /// Short stable name used by experiment reports and sweep records.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            SpatialPattern::UniformRandom {
                collision: CollisionPolicy::Resample,
            } => "uniform",
            SpatialPattern::UniformRandom {
                collision: CollisionPolicy::LegacySkip,
            } => "uniform-legacy",
            SpatialPattern::Transpose => "transpose",
            SpatialPattern::BitComplement => "bit-complement",
            SpatialPattern::BitReverse => "bit-reverse",
            SpatialPattern::Tornado => "tornado",
            SpatialPattern::NearestNeighbor => "nearest-neighbor",
            SpatialPattern::Shuffle => "shuffle",
            SpatialPattern::Hotspot { .. } => "hotspot",
        }
    }

    /// Validates the pattern against a k×k mesh.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidPattern`] when the pattern cannot run on
    /// the mesh: deterministic permutations need at least two nodes,
    /// bit-based permutations need a power-of-two node count, and hotspot
    /// parameters must be well-formed.
    pub fn validate(&self, k: u16) -> Result<(), ConfigError> {
        let nodes = k * k;
        let invalid = |reason: String| ConfigError::InvalidPattern { reason };
        match self {
            SpatialPattern::UniformRandom { .. } => Ok(()),
            SpatialPattern::Transpose
            | SpatialPattern::BitComplement
            | SpatialPattern::Tornado
            | SpatialPattern::NearestNeighbor => {
                if nodes < 2 {
                    return Err(invalid(format!(
                        "{} traffic needs at least a 2-node mesh, got k={k}",
                        self.name()
                    )));
                }
                Ok(())
            }
            SpatialPattern::BitReverse | SpatialPattern::Shuffle => {
                if nodes < 2 || !nodes.is_power_of_two() {
                    return Err(invalid(format!(
                        "{} traffic needs a power-of-two node count, got {nodes} (k={k})",
                        self.name()
                    )));
                }
                Ok(())
            }
            SpatialPattern::Hotspot { targets, weight } => {
                if targets.is_empty() {
                    return Err(invalid("hotspot target set is empty".to_owned()));
                }
                if let Some(bad) = targets.iter().find(|&t| t >= nodes) {
                    return Err(invalid(format!(
                        "hotspot target {bad} is outside the {nodes}-node mesh"
                    )));
                }
                if !(0.0..=1.0).contains(weight) {
                    return Err(invalid(format!(
                        "hotspot weight {weight} is outside [0, 1]"
                    )));
                }
                Ok(())
            }
        }
    }

    /// Draws the destination of one unicast created by `source` on a k×k
    /// mesh, consuming PRBS words as needed.
    ///
    /// Guaranteed in-range and never equal to `source` for any validated
    /// pattern on a mesh of at least two nodes. (On a degenerate one-node
    /// mesh the only possible value, `source`, is returned rather than
    /// spinning.)
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn draw(&self, prbs: &mut PrbsGenerator, source: NodeId, k: u16) -> NodeId {
        assert!(k > 0, "mesh side length must be positive");
        let nodes = k * k;
        match self {
            SpatialPattern::UniformRandom { collision } => match collision {
                CollisionPolicy::Resample => uniform_excluding(prbs, nodes, source),
                CollisionPolicy::LegacySkip => {
                    let mut dest = prbs.next_below(nodes);
                    if dest == source {
                        dest = (dest + 1) % nodes;
                    }
                    dest
                }
            },
            SpatialPattern::Transpose => {
                let c = Coord::from_node_id(source, k);
                avoid_self(Coord::new(c.y, c.x).node_id(k), source, nodes)
            }
            SpatialPattern::BitComplement => {
                let c = Coord::from_node_id(source, k);
                avoid_self(
                    Coord::new(k - 1 - c.x, k - 1 - c.y).node_id(k),
                    source,
                    nodes,
                )
            }
            SpatialPattern::BitReverse => {
                let bits = nodes.trailing_zeros();
                avoid_self(source.reverse_bits() >> (16 - bits), source, nodes)
            }
            SpatialPattern::Tornado => {
                let shift = (k.div_ceil(2) - 1).max(1);
                let c = Coord::from_node_id(source, k);
                // shift is in 1..k, so the destination can never be source.
                Coord::new((c.x + shift) % k, (c.y + shift) % k).node_id(k)
            }
            SpatialPattern::NearestNeighbor => {
                let c = Coord::from_node_id(source, k);
                avoid_self(Coord::new((c.x + 1) % k, c.y).node_id(k), source, nodes)
            }
            SpatialPattern::Shuffle => {
                let bits = nodes.trailing_zeros();
                let rotated = ((source << 1) | (source >> (bits - 1))) & (nodes - 1);
                avoid_self(rotated, source, nodes)
            }
            SpatialPattern::Hotspot { targets, weight } => {
                // One destination-LFSR word decides hotspot vs background, so
                // the injection (rate-LFSR) stream stays untouched.
                let threshold = (weight.clamp(0.0, 1.0) * 65_536.0) as u32;
                if u32::from(prbs.next_word()) < threshold {
                    let idx = usize::from(prbs.next_below(targets.len() as u16));
                    let target = targets.iter().nth(idx).expect("index is within the set");
                    if target != source {
                        return target;
                    }
                }
                uniform_excluding(prbs, nodes, source)
            }
        }
    }
}

impl Default for SpatialPattern {
    /// The compatibility default: [`SpatialPattern::uniform_legacy`], which
    /// keeps every pre-pattern-abstraction curve bit-identical.
    fn default() -> Self {
        Self::uniform_legacy()
    }
}

/// Uniform draw over `0..nodes` excluding `source`, by rejection sampling
/// from the PRBS destination stream. The destination LFSR visits every
/// 16-bit state, so the loop always terminates; a one-node mesh short-cuts
/// to `source` because no other destination exists.
fn uniform_excluding(prbs: &mut PrbsGenerator, nodes: u16, source: NodeId) -> NodeId {
    if nodes <= 1 {
        return source;
    }
    loop {
        let dest = prbs.next_below(nodes);
        if dest != source {
            return dest;
        }
    }
}

/// Maps a permutation fixed point onto the node's successor so deterministic
/// patterns never address the sender itself.
fn avoid_self(dest: NodeId, source: NodeId, nodes: u16) -> NodeId {
    if dest == source {
        (source + 1) % nodes
    } else {
        dest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn draw_many(pattern: SpatialPattern, source: NodeId, k: u16, n: usize) -> Vec<NodeId> {
        let mut prbs = PrbsGenerator::new(0xACE1);
        (0..n).map(|_| pattern.draw(&mut prbs, source, k)).collect()
    }

    #[test]
    fn legacy_uniform_matches_the_historical_inline_draw() {
        // The exact expression build_packet used before the abstraction.
        let mut reference = PrbsGenerator::new(0xACE1);
        let mut prbs = PrbsGenerator::new(0xACE1);
        let pattern = SpatialPattern::uniform_legacy();
        for _ in 0..500 {
            let mut expected = reference.next_below(16);
            if expected == 5 {
                expected = (expected + 1) % 16;
            }
            assert_eq!(pattern.draw(&mut prbs, 5, 4), expected);
        }
    }

    #[test]
    fn resample_never_skews_onto_the_successor() {
        // With LegacySkip, node 5 receives the probability mass of node 4's
        // self-draws on top of its own; with Resample all 15 other nodes are
        // equally likely. Check the successor bias directly.
        let legacy = draw_many(SpatialPattern::uniform_legacy(), 4, 4, 60_000);
        let fair = draw_many(SpatialPattern::uniform(), 4, 4, 60_000);
        let count = |v: &[NodeId], d: NodeId| v.iter().filter(|&&x| x == d).count() as f64;
        let legacy_bias = count(&legacy, 5) / legacy.len() as f64;
        let fair_share = count(&fair, 5) / fair.len() as f64;
        assert!(
            legacy_bias > 1.6 / 16.0,
            "legacy successor weight should be ~2/16, got {legacy_bias:.4}"
        );
        assert!(
            (fair_share - 1.0 / 15.0).abs() < 0.01,
            "resampled successor weight should be ~1/15, got {fair_share:.4}"
        );
    }

    #[test]
    fn deterministic_patterns_consume_no_prbs_words() {
        for pattern in [
            SpatialPattern::Transpose,
            SpatialPattern::BitComplement,
            SpatialPattern::BitReverse,
            SpatialPattern::Tornado,
            SpatialPattern::NearestNeighbor,
            SpatialPattern::Shuffle,
        ] {
            let mut prbs = PrbsGenerator::new(0x1234);
            let before = prbs;
            let _ = pattern.draw(&mut prbs, 3, 4);
            assert_eq!(prbs, before, "{} consumed PRBS state", pattern.name());
        }
    }

    #[test]
    fn transpose_maps_coordinates() {
        // Node 6 = (2, 1) on a 4×4 mesh; transpose = (1, 2) = node 9.
        let mut prbs = PrbsGenerator::new(1);
        assert_eq!(SpatialPattern::Transpose.draw(&mut prbs, 6, 4), 9);
        // Diagonal node 5 = (1, 1) falls back to its successor.
        assert_eq!(SpatialPattern::Transpose.draw(&mut prbs, 5, 4), 6);
    }

    #[test]
    fn bit_patterns_match_their_classical_definitions() {
        let mut prbs = PrbsGenerator::new(1);
        // 4×4: node 1 = 0b0001 -> reverse = 0b1000 = 8, complement = 0b1110 = 14,
        // shuffle = 0b0010 = 2.
        assert_eq!(SpatialPattern::BitReverse.draw(&mut prbs, 1, 4), 8);
        assert_eq!(SpatialPattern::BitComplement.draw(&mut prbs, 1, 4), 14);
        assert_eq!(SpatialPattern::Shuffle.draw(&mut prbs, 1, 4), 2);
        // Shuffle wraps the top bit: 8 = 0b1000 -> 0b0001.
        assert_eq!(SpatialPattern::Shuffle.draw(&mut prbs, 8, 4), 1);
        // Fixed points fall back to the successor.
        assert_eq!(SpatialPattern::Shuffle.draw(&mut prbs, 0, 4), 1);
        assert_eq!(SpatialPattern::BitReverse.draw(&mut prbs, 6, 4), 7);
    }

    #[test]
    fn tornado_shifts_both_dimensions() {
        let mut prbs = PrbsGenerator::new(1);
        // k=4: shift = max(1, ceil(4/2) - 1) = 1; node 0 = (0,0) -> (1,1) = 5.
        assert_eq!(SpatialPattern::Tornado.draw(&mut prbs, 0, 4), 5);
        // k=8: shift = 3; node 0 -> (3,3) = 27.
        assert_eq!(SpatialPattern::Tornado.draw(&mut prbs, 0, 8), 27);
    }

    #[test]
    fn hotspot_concentrates_traffic_on_the_targets() {
        let pattern = SpatialPattern::corner_hotspot(4, 0.75);
        let draws = draw_many(pattern, 5, 4, 20_000);
        let corners = [0u16, 3, 12, 15];
        let hot = draws.iter().filter(|d| corners.contains(d)).count() as f64;
        let fraction = hot / draws.len() as f64;
        // 75% direct hits plus the corners' share of the uniform background.
        assert!(
            fraction > 0.70 && fraction < 0.90,
            "hotspot fraction {fraction:.3}"
        );
    }

    #[test]
    fn hotspot_weight_extremes() {
        let targets = DestinationSet::unicast(0);
        let always = SpatialPattern::hotspot(targets, 1.0);
        for d in draw_many(always, 5, 4, 200) {
            assert_eq!(d, 0);
        }
        let never = SpatialPattern::hotspot(targets, 0.0);
        let draws = draw_many(never, 5, 4, 2000);
        assert!(draws.iter().any(|&d| d != 0), "weight 0 must be background");
    }

    #[test]
    fn hotspot_on_its_own_node_resamples_to_background() {
        // The only target is the source itself: every draw must fall back to
        // the uniform background and never self-address.
        let pattern = SpatialPattern::hotspot(DestinationSet::unicast(5), 1.0);
        for d in draw_many(pattern, 5, 4, 2000) {
            assert_ne!(d, 5);
        }
    }

    #[test]
    fn validation_rejects_impossible_patterns() {
        // Bit permutations need power-of-two node counts.
        assert!(SpatialPattern::BitReverse.validate(4).is_ok());
        assert!(SpatialPattern::BitReverse.validate(5).is_err());
        assert!(SpatialPattern::Shuffle.validate(6).is_err());
        // Deterministic patterns need at least two nodes.
        assert!(SpatialPattern::Transpose.validate(1).is_err());
        assert!(SpatialPattern::Transpose.validate(5).is_ok());
        // Uniform runs anywhere.
        assert!(SpatialPattern::uniform().validate(1).is_ok());
        // Hotspot parameter validation.
        assert!(SpatialPattern::hotspot(DestinationSet::empty(), 0.5)
            .validate(4)
            .is_err());
        assert!(SpatialPattern::hotspot(DestinationSet::unicast(99), 0.5)
            .validate(4)
            .is_err());
        assert!(SpatialPattern::hotspot(DestinationSet::unicast(3), 1.5)
            .validate(4)
            .is_err());
        assert!(SpatialPattern::corner_hotspot(4, 0.5).validate(4).is_ok());
    }

    #[test]
    fn gallery_contains_all_eight_families_and_validates_on_the_chip_mesh() {
        let gallery = SpatialPattern::gallery(4);
        assert_eq!(gallery.len(), 8);
        let names: std::collections::HashSet<&str> =
            gallery.iter().map(SpatialPattern::name).collect();
        assert_eq!(names.len(), 8, "gallery names must be distinct");
        for pattern in &gallery {
            pattern.validate(4).unwrap();
            pattern.validate(8).unwrap();
        }
    }

    #[test]
    fn every_gallery_pattern_is_in_range_and_never_self() {
        for pattern in SpatialPattern::gallery(4) {
            let mut prbs = PrbsGenerator::new(0xBEEF);
            for source in 0..16u16 {
                for _ in 0..50 {
                    let dest = pattern.draw(&mut prbs, source, 4);
                    assert!(dest < 16, "{}: {dest} out of range", pattern.name());
                    assert_ne!(dest, source, "{}: self-addressed", pattern.name());
                }
            }
        }
    }
}
