//! # noc-traffic
//!
//! Traffic generation for the DAC 2012 mesh NoC reproduction.
//!
//! The paper drives its chip with on-chip PRBS traffic generators and
//! evaluates two patterns at 1 GHz:
//!
//! * **mixed traffic** — 50% broadcast requests, 25% unicast requests and
//!   25% unicast responses (Fig. 5),
//! * **broadcast-only traffic** — 100% broadcast requests (Fig. 13).
//!
//! This crate provides [`TrafficMix`] (the packet-kind distribution),
//! [`SpatialPattern`] (the map from a sender to its unicast destinations:
//! uniform-random, transpose, bit permutations, tornado, nearest-neighbour,
//! shuffle and weighted hotspots), [`SeedMode`] (identical seeds on every
//! NIC — the chip artifact — or distinct per-node seeds) and
//! [`TrafficGenerator`] (one per node, producing [`noc_types::Packet`]s as a
//! Bernoulli process of a given flit injection rate).
//!
//! # Examples
//!
//! ```
//! use noc_traffic::{SeedMode, TrafficGenerator, TrafficMix};
//!
//! let mut gen = TrafficGenerator::new(5, 4, TrafficMix::mixed(), SeedMode::PerNode, 0.1);
//! let mut packets = 0;
//! for cycle in 0..1000 {
//!     // At most one packet per cycle, like the chip's NICs.
//!     packets += usize::from(gen.generate(cycle).is_some());
//! }
//! assert!(packets > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod generator;
mod mix;
mod pattern;
mod source;

pub use generator::{SeedMode, TrafficGenerator};
pub use mix::TrafficMix;
pub use pattern::{CollisionPolicy, SpatialPattern};
pub use source::TrafficSource;
