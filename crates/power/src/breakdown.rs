//! Power breakdowns computed from activity counters.

use noc_sim::ActivityCounters;
use serde::{Deserialize, Serialize};

use crate::energy::EnergyParams;

/// Power of one network (or one router) split into the components the paper
/// reports.
///
/// Fig. 6 groups these into three stacked segments — clocking, "router logic
/// and buffer", and datapath — which [`PowerBreakdown::clocking_group_mw`],
/// [`PowerBreakdown::router_logic_and_buffer_mw`] and
/// [`PowerBreakdown::datapath_mw`] reproduce.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Clock tree and pipeline registers (mW).
    pub clocking_mw: f64,
    /// Input buffer reads and writes (mW).
    pub buffers_mw: f64,
    /// VC bookkeeping state (mW) — non-data-dependent.
    pub vc_state_mw: f64,
    /// Switch and VC allocators (mW).
    pub allocators_mw: f64,
    /// Next-route computation (mW).
    pub routing_mw: f64,
    /// Lookahead generation and transmission (mW).
    pub lookahead_mw: f64,
    /// Crossbar and inter-router link traversal (mW).
    pub datapath_mw: f64,
    /// NIC injection/ejection links (mW).
    pub local_links_mw: f64,
    /// Silicon leakage (mW).
    pub leakage_mw: f64,
}

impl PowerBreakdown {
    /// Computes the breakdown for a simulation that ran `cycles` cycles at
    /// `frequency_ghz`, with the given per-event energies.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero or `frequency_ghz` is not positive.
    #[must_use]
    pub fn from_activity(
        counters: &ActivityCounters,
        cycles: u64,
        frequency_ghz: f64,
        energy: &EnergyParams,
    ) -> Self {
        assert!(cycles > 0, "cannot compute power over zero cycles");
        assert!(frequency_ghz > 0.0, "frequency must be positive");
        // pJ per window / (cycles / f) ns  -> mW : pJ/ns = mW.
        let window_ns = cycles as f64 / frequency_ghz;
        let to_mw = |pj: f64| pj / window_ns;
        let routers = counters.routers.max(1) as f64;

        Self {
            clocking_mw: energy.clock_mw_per_router * routers,
            buffers_mw: to_mw(
                counters.buffer_writes as f64 * energy.buffer_write_pj
                    + counters.buffer_reads as f64 * energy.buffer_read_pj,
            ),
            vc_state_mw: energy.vc_state_mw_per_router * routers,
            allocators_mw: to_mw(
                counters.sa_local_arbitrations as f64 * energy.sa_local_pj
                    + counters.sa_global_arbitrations as f64 * energy.sa_global_pj
                    + counters.vc_allocations as f64 * energy.vc_alloc_pj,
            ),
            routing_mw: to_mw(counters.route_computations as f64 * energy.route_pj),
            lookahead_mw: to_mw(counters.lookaheads_sent as f64 * energy.lookahead_pj),
            datapath_mw: to_mw(
                counters.crossbar_traversals as f64 * energy.crossbar_pj
                    + counters.link_traversals as f64 * energy.link_pj,
            ),
            local_links_mw: to_mw(counters.local_link_traversals as f64 * energy.local_link_pj),
            leakage_mw: energy.leakage_mw_per_router * routers,
        }
    }

    /// Total power in mW.
    #[must_use]
    pub fn total_mw(&self) -> f64 {
        self.clocking_mw
            + self.buffers_mw
            + self.vc_state_mw
            + self.allocators_mw
            + self.routing_mw
            + self.lookahead_mw
            + self.datapath_mw
            + self.local_links_mw
            + self.leakage_mw
    }

    /// Fig. 6's "Clocking Circuit" segment.
    #[must_use]
    pub fn clocking_group_mw(&self) -> f64 {
        self.clocking_mw
    }

    /// Fig. 6's "Router logic and buffer" segment: buffers, VC state,
    /// allocators, route computation and lookaheads.
    #[must_use]
    pub fn router_logic_and_buffer_mw(&self) -> f64 {
        self.buffers_mw
            + self.vc_state_mw
            + self.allocators_mw
            + self.routing_mw
            + self.lookahead_mw
    }

    /// Fig. 6's "Data path (crossbar + link)" segment, including the NIC
    /// links.
    #[must_use]
    pub fn datapath_group_mw(&self) -> f64 {
        self.datapath_mw + self.local_links_mw
    }

    /// Dynamic (data-dependent) power: everything except clocking, VC state
    /// and leakage.
    #[must_use]
    pub fn dynamic_mw(&self) -> f64 {
        self.total_mw() - self.clocking_mw - self.vc_state_mw - self.leakage_mw
    }

    /// Per-router power assuming `routers` identical routers.
    #[must_use]
    pub fn per_router_mw(&self, routers: u64) -> f64 {
        self.total_mw() / routers.max(1) as f64
    }

    /// Element-wise sum of two breakdowns.
    #[must_use]
    pub fn combined(&self, other: &PowerBreakdown) -> PowerBreakdown {
        PowerBreakdown {
            clocking_mw: self.clocking_mw + other.clocking_mw,
            buffers_mw: self.buffers_mw + other.buffers_mw,
            vc_state_mw: self.vc_state_mw + other.vc_state_mw,
            allocators_mw: self.allocators_mw + other.allocators_mw,
            routing_mw: self.routing_mw + other.routing_mw,
            lookahead_mw: self.lookahead_mw + other.lookahead_mw,
            datapath_mw: self.datapath_mw + other.datapath_mw,
            local_links_mw: self.local_links_mw + other.local_links_mw,
            leakage_mw: self.leakage_mw + other.leakage_mw,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_counters() -> ActivityCounters {
        ActivityCounters {
            buffer_writes: 1000,
            buffer_reads: 1000,
            crossbar_traversals: 3000,
            link_traversals: 2000,
            local_link_traversals: 1000,
            sa_local_arbitrations: 1500,
            sa_global_arbitrations: 1500,
            vc_allocations: 800,
            route_computations: 900,
            lookaheads_sent: 2000,
            bypasses: 1200,
            credits_sent: 2000,
            multicast_forks: 100,
            ejections: 900,
            cycles: 16_000,
            routers: 16,
        }
    }

    #[test]
    fn total_is_the_sum_of_components() {
        let b = PowerBreakdown::from_activity(
            &sample_counters(),
            1000,
            1.0,
            &EnergyParams::chip_low_swing(),
        );
        let sum = b.clocking_mw
            + b.buffers_mw
            + b.vc_state_mw
            + b.allocators_mw
            + b.routing_mw
            + b.lookahead_mw
            + b.datapath_mw
            + b.local_links_mw
            + b.leakage_mw;
        assert!((b.total_mw() - sum).abs() < 1e-9);
        assert!(b.total_mw() > 0.0);
    }

    #[test]
    fn figure6_groups_partition_the_total() {
        let b = PowerBreakdown::from_activity(
            &sample_counters(),
            1000,
            1.0,
            &EnergyParams::chip_low_swing(),
        );
        let grouped = b.clocking_group_mw()
            + b.router_logic_and_buffer_mw()
            + b.datapath_group_mw()
            + b.leakage_mw;
        assert!((grouped - b.total_mw()).abs() < 1e-9);
    }

    #[test]
    fn static_components_do_not_depend_on_activity() {
        let idle = ActivityCounters {
            routers: 16,
            cycles: 16_000,
            ..ActivityCounters::new()
        };
        let b = PowerBreakdown::from_activity(&idle, 1000, 1.0, &EnergyParams::chip_low_swing());
        assert_eq!(b.buffers_mw, 0.0);
        assert_eq!(b.datapath_mw, 0.0);
        assert!(b.clocking_mw > 0.0);
        assert!(b.vc_state_mw > 0.0);
        assert!(b.leakage_mw > 0.0);
        assert!(b.dynamic_mw().abs() < 1e-9);
    }

    #[test]
    fn full_swing_datapath_costs_more_than_low_swing() {
        let counters = sample_counters();
        let fs =
            PowerBreakdown::from_activity(&counters, 1000, 1.0, &EnergyParams::chip_full_swing());
        let ls =
            PowerBreakdown::from_activity(&counters, 1000, 1.0, &EnergyParams::chip_low_swing());
        assert!(fs.datapath_group_mw() > ls.datapath_group_mw());
        assert!((fs.buffers_mw - ls.buffers_mw).abs() < 1e-12);
        let reduction = 1.0 - ls.datapath_group_mw() / fs.datapath_group_mw();
        assert!((reduction - 0.483).abs() < 1e-6);
    }

    #[test]
    fn doubling_the_window_halves_dynamic_power() {
        let counters = sample_counters();
        let short = PowerBreakdown::from_activity(&counters, 1000, 1.0, &EnergyParams::default());
        let long = PowerBreakdown::from_activity(&counters, 2000, 1.0, &EnergyParams::default());
        assert!((short.buffers_mw - 2.0 * long.buffers_mw).abs() < 1e-9);
        assert_eq!(short.clocking_mw, long.clocking_mw);
    }

    #[test]
    #[should_panic(expected = "zero cycles")]
    fn zero_cycles_panics() {
        let _ = PowerBreakdown::from_activity(
            &ActivityCounters::new(),
            0,
            1.0,
            &EnergyParams::default(),
        );
    }
}
