//! Power-estimation methodologies (Fig. 8 of the paper).
//!
//! The paper compares three ways of pricing the same network activity:
//!
//! * **measured** silicon power (the ground truth),
//! * **ORION 2.0**, an architectural model that assumes much larger
//!   transistors than the chip actually uses and therefore over-estimates
//!   absolute power by 4.8–5.3×, while still ranking design options correctly
//!   (its estimate of the baseline→proposed reduction is 32% vs the measured
//!   38%),
//! * **post-layout simulation**, which lands within 6–13% of the measurement
//!   (slightly under-estimating buffers and allocation logic,
//!   over-estimating clocking and datapath) at the cost of days of
//!   simulation time.
//!
//! All three are expressed as [`PowerEstimator`] implementations that price a
//! [`noc_sim::ActivityCounters`] ledger, so the Fig. 8 bench can run one
//! simulation per network and three pricings of it.

use noc_sim::ActivityCounters;
use serde::{Deserialize, Serialize};

use crate::breakdown::PowerBreakdown;
use crate::energy::EnergyParams;

/// Which estimation methodology a model implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelKind {
    /// Calibrated against the measured silicon.
    Measured,
    /// ORION-2.0-style architectural model.
    Orion,
    /// Post-layout-netlist-style model.
    PostLayout,
}

/// A methodology that converts activity counts into a power breakdown.
pub trait PowerEstimator {
    /// Which methodology this is.
    fn kind(&self) -> ModelKind;

    /// Prices `counters` over a measurement window of `cycles` cycles at
    /// `frequency_ghz`.
    fn estimate(
        &self,
        counters: &ActivityCounters,
        cycles: u64,
        frequency_ghz: f64,
    ) -> PowerBreakdown;
}

/// The measured-silicon calibration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasuredPowerModel {
    energy: EnergyParams,
}

impl MeasuredPowerModel {
    /// Creates the model around a set of per-event energies (normally one of
    /// the [`EnergyParams`] presets).
    #[must_use]
    pub fn new(energy: EnergyParams) -> Self {
        Self { energy }
    }

    /// The per-event energies in use.
    #[must_use]
    pub fn energy(&self) -> &EnergyParams {
        &self.energy
    }
}

impl PowerEstimator for MeasuredPowerModel {
    fn kind(&self) -> ModelKind {
        ModelKind::Measured
    }

    fn estimate(
        &self,
        counters: &ActivityCounters,
        cycles: u64,
        frequency_ghz: f64,
    ) -> PowerBreakdown {
        PowerBreakdown::from_activity(counters, cycles, frequency_ghz, &self.energy)
    }
}

/// ORION-2.0-style architectural model: same structure, oversized devices.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OrionPowerModel {
    energy: EnergyParams,
}

impl OrionPowerModel {
    /// Absolute over-estimation applied to dynamic components (the middle of
    /// the paper's 4.8–5.3× range).
    pub const DYNAMIC_OVERESTIMATE: f64 = 5.3;
    /// Over-estimation applied to clocking and VC state.
    pub const CLOCK_OVERESTIMATE: f64 = 4.8;
    /// Over-estimation applied to leakage.
    pub const LEAKAGE_OVERESTIMATE: f64 = 5.0;

    /// Builds the ORION-style model from the measured calibration it
    /// over-estimates.
    #[must_use]
    pub fn new(measured: EnergyParams) -> Self {
        Self {
            energy: measured.scaled(
                Self::DYNAMIC_OVERESTIMATE,
                Self::CLOCK_OVERESTIMATE,
                Self::LEAKAGE_OVERESTIMATE,
            ),
        }
    }
}

impl PowerEstimator for OrionPowerModel {
    fn kind(&self) -> ModelKind {
        ModelKind::Orion
    }

    fn estimate(
        &self,
        counters: &ActivityCounters,
        cycles: u64,
        frequency_ghz: f64,
    ) -> PowerBreakdown {
        PowerBreakdown::from_activity(counters, cycles, frequency_ghz, &self.energy)
    }
}

/// Post-layout-style model: close to silicon, with the sign of its component
/// errors matching the paper (buffers and allocators slightly
/// under-estimated, clocking and datapath slightly over-estimated).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PostLayoutPowerModel {
    energy: EnergyParams,
}

impl PostLayoutPowerModel {
    /// Under-estimation factor for buffers and allocation logic.
    pub const LOGIC_FACTOR: f64 = 0.92;
    /// Over-estimation factor for clocking and the datapath.
    pub const CLOCK_DATAPATH_FACTOR: f64 = 1.12;

    /// Builds the post-layout-style model from the measured calibration.
    #[must_use]
    pub fn new(measured: EnergyParams) -> Self {
        let mut energy = measured;
        energy.buffer_write_pj *= Self::LOGIC_FACTOR;
        energy.buffer_read_pj *= Self::LOGIC_FACTOR;
        energy.sa_local_pj *= Self::LOGIC_FACTOR;
        energy.sa_global_pj *= Self::LOGIC_FACTOR;
        energy.vc_alloc_pj *= Self::LOGIC_FACTOR;
        energy.route_pj *= Self::LOGIC_FACTOR;
        energy.lookahead_pj *= Self::LOGIC_FACTOR;
        energy.vc_state_mw_per_router *= Self::LOGIC_FACTOR;
        energy.crossbar_pj *= Self::CLOCK_DATAPATH_FACTOR;
        energy.link_pj *= Self::CLOCK_DATAPATH_FACTOR;
        energy.local_link_pj *= Self::CLOCK_DATAPATH_FACTOR;
        energy.clock_mw_per_router *= Self::CLOCK_DATAPATH_FACTOR;
        Self { energy }
    }
}

impl PowerEstimator for PostLayoutPowerModel {
    fn kind(&self) -> ModelKind {
        ModelKind::PostLayout
    }

    fn estimate(
        &self,
        counters: &ActivityCounters,
        cycles: u64,
        frequency_ghz: f64,
    ) -> PowerBreakdown {
        PowerBreakdown::from_activity(counters, cycles, frequency_ghz, &self.energy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_counters() -> ActivityCounters {
        ActivityCounters {
            buffer_writes: 5_000,
            buffer_reads: 5_000,
            crossbar_traversals: 20_000,
            link_traversals: 15_000,
            local_link_traversals: 6_000,
            sa_local_arbitrations: 8_000,
            sa_global_arbitrations: 9_000,
            vc_allocations: 4_000,
            route_computations: 4_000,
            lookaheads_sent: 15_000,
            bypasses: 10_000,
            credits_sent: 15_000,
            multicast_forks: 1_000,
            ejections: 5_000,
            cycles: 16_000,
            routers: 16,
        }
    }

    #[test]
    fn orion_overestimates_by_roughly_5x_but_preserves_ranking() {
        let counters = busy_counters();
        let measured = MeasuredPowerModel::new(EnergyParams::chip_low_swing());
        let orion = OrionPowerModel::new(EnergyParams::chip_low_swing());
        let m = measured.estimate(&counters, 1000, 1.0).total_mw();
        let o = orion.estimate(&counters, 1000, 1.0).total_mw();
        let ratio = o / m;
        assert!(
            (4.5..=5.5).contains(&ratio),
            "ORION should be ~5x the measured power, got {ratio:.2}x"
        );
    }

    #[test]
    fn post_layout_is_within_13_percent() {
        let counters = busy_counters();
        let measured = MeasuredPowerModel::new(EnergyParams::chip_low_swing());
        let post = PostLayoutPowerModel::new(EnergyParams::chip_low_swing());
        let m = measured.estimate(&counters, 1000, 1.0).total_mw();
        let p = post.estimate(&counters, 1000, 1.0).total_mw();
        let error = (p - m).abs() / m;
        assert!(
            error <= 0.13,
            "post-layout error should be <= 13%, got {error:.3}"
        );
    }

    #[test]
    fn post_layout_error_signs_match_the_paper() {
        let counters = busy_counters();
        let measured =
            MeasuredPowerModel::new(EnergyParams::chip_low_swing()).estimate(&counters, 1000, 1.0);
        let post = PostLayoutPowerModel::new(EnergyParams::chip_low_swing())
            .estimate(&counters, 1000, 1.0);
        assert!(post.buffers_mw < measured.buffers_mw);
        assert!(post.allocators_mw < measured.allocators_mw);
        assert!(post.clocking_mw > measured.clocking_mw);
        assert!(post.datapath_mw > measured.datapath_mw);
    }

    #[test]
    fn all_models_report_their_kind() {
        assert_eq!(
            MeasuredPowerModel::new(EnergyParams::default()).kind(),
            ModelKind::Measured
        );
        assert_eq!(
            OrionPowerModel::new(EnergyParams::default()).kind(),
            ModelKind::Orion
        );
        assert_eq!(
            PostLayoutPowerModel::new(EnergyParams::default()).kind(),
            ModelKind::PostLayout
        );
    }

    #[test]
    fn relative_reduction_is_preserved_across_models() {
        // Build two activity ledgers where the second does 40% less buffering
        // and datapath work; every model should see a reduction of similar
        // relative size even though absolute numbers differ wildly.
        let base = busy_counters();
        let mut improved = base;
        improved.buffer_writes = (base.buffer_writes as f64 * 0.6) as u64;
        improved.buffer_reads = (base.buffer_reads as f64 * 0.6) as u64;
        improved.crossbar_traversals = (base.crossbar_traversals as f64 * 0.6) as u64;
        improved.link_traversals = (base.link_traversals as f64 * 0.6) as u64;

        let rel = |model: &dyn PowerEstimator| {
            let b = model.estimate(&base, 1000, 1.0).total_mw();
            let i = model.estimate(&improved, 1000, 1.0).total_mw();
            1.0 - i / b
        };
        let measured = MeasuredPowerModel::new(EnergyParams::chip_low_swing());
        let orion = OrionPowerModel::new(EnergyParams::chip_low_swing());
        let post = PostLayoutPowerModel::new(EnergyParams::chip_low_swing());
        let r_m = rel(&measured);
        let r_o = rel(&orion);
        let r_p = rel(&post);
        assert!(
            (r_m - r_o).abs() < 0.05,
            "measured {r_m:.3} vs orion {r_o:.3}"
        );
        assert!(
            (r_m - r_p).abs() < 0.03,
            "measured {r_m:.3} vs post-layout {r_p:.3}"
        );
    }
}
