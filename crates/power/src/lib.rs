//! # noc-power
//!
//! Energy and power accounting for the DAC 2012 mesh NoC reproduction.
//!
//! The paper's power story has three layers, and this crate models all of
//! them:
//!
//! * **Per-event energies** ([`EnergyParams`]): how much a buffer write, a
//!   crossbar traversal, a link traversal, an arbitration, a lookahead or a
//!   cycle of clocking/VC-state/leakage costs, for a full-swing and for a
//!   low-swing datapath. The constants are calibrated against the chip's
//!   measured component breakdown.
//! * **Breakdowns** ([`PowerBreakdown`]): multiply the per-event energies by
//!   the [`noc_sim::ActivityCounters`] a simulation produced and divide by
//!   time. Groupings match Fig. 6 (clocking / router logic & buffers /
//!   datapath) and the §4.1 zero-load analysis.
//! * **Estimation methodologies** ([`PowerEstimator`]): the same activity can
//!   be priced with the measured-silicon calibration
//!   ([`MeasuredPowerModel`]), an ORION-2.0-style architectural model
//!   ([`OrionPowerModel`], ~5× absolute overestimate but relatively
//!   accurate) or a post-layout-style model ([`PostLayoutPowerModel`],
//!   within ±6–13%), reproducing the Fig. 8 comparison.
//!
//! # Examples
//!
//! ```
//! use noc_power::{EnergyParams, MeasuredPowerModel, PowerEstimator};
//! use noc_sim::ActivityCounters;
//!
//! let mut counters = ActivityCounters::new();
//! counters.routers = 16;
//! counters.cycles = 16_000; // 1000 cycles on each of 16 routers
//! counters.crossbar_traversals = 5_000;
//! counters.link_traversals = 4_000;
//! let model = MeasuredPowerModel::new(EnergyParams::chip_low_swing());
//! let power = model.estimate(&counters, 1_000, 1.0);
//! assert!(power.total_mw() > 0.0);
//! assert!(power.datapath_mw > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod breakdown;
mod energy;
mod model;

pub use breakdown::PowerBreakdown;
pub use energy::EnergyParams;
pub use model::{
    MeasuredPowerModel, ModelKind, OrionPowerModel, PostLayoutPowerModel, PowerEstimator,
};

/// Reference numbers quoted in the paper's text, used by benches and tests to
/// compare reproduction output against the publication.
pub mod reference {
    /// Measured chip power at 653 Gb/s broadcast delivery (mW), Table 2.
    pub const CHIP_POWER_AT_653_GBPS_MW: f64 = 427.3;
    /// Measured chip power at 892 Gb/s mixed traffic (mW), abstract.
    pub const CHIP_POWER_AT_892_GBPS_MW: f64 = 531.4;
    /// Measured chip leakage power (mW), §4.1.
    pub const CHIP_LEAKAGE_MW: f64 = 76.7;
    /// Theoretical per-router power limit at near-zero load (mW), §4.1.
    pub const ZERO_LOAD_ROUTER_LIMIT_MW: f64 = 5.6;
    /// Measured per-router power at near-zero load (mW), §4.1.
    pub const ZERO_LOAD_ROUTER_MEASURED_MW: f64 = 13.2;
    /// Zero-load VC bookkeeping power per router (mW), §4.1.
    pub const ZERO_LOAD_VC_STATE_MW: f64 = 1.9;
    /// Zero-load buffer power per router (mW), §4.1.
    pub const ZERO_LOAD_BUFFERS_MW: f64 = 2.0;
    /// Zero-load allocator power per router (mW), §4.1.
    pub const ZERO_LOAD_ALLOCATORS_MW: f64 = 0.7;
    /// Zero-load lookahead power per router (mW), §4.1.
    pub const ZERO_LOAD_LOOKAHEAD_MW: f64 = 0.2;
    /// Datapath power reduction from low-swing signaling (Fig. 6).
    pub const DATAPATH_REDUCTION: f64 = 0.483;
    /// Router-logic power reduction from router-level broadcast support (Fig. 6).
    pub const ROUTER_LOGIC_REDUCTION: f64 = 0.139;
    /// Buffer power reduction from multicast buffer bypass (Fig. 6).
    pub const BUFFER_REDUCTION: f64 = 0.322;
    /// Total power reduction of the proposed NoC over the baseline (Fig. 6).
    pub const TOTAL_REDUCTION: f64 = 0.382;
    /// ORION 2.0 absolute overestimation range (Fig. 8).
    pub const ORION_OVERESTIMATE: (f64, f64) = (4.8, 5.3);
    /// Post-layout estimation error range (Fig. 8).
    pub const POST_LAYOUT_ERROR: (f64, f64) = (0.06, 0.13);
}
