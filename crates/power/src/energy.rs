//! Per-event and per-cycle energy parameters.

use serde::{Deserialize, Serialize};

/// Per-event energies (picojoules) and per-router static powers (milliwatts)
/// used to convert activity counts into power.
///
/// Two presets exist: [`EnergyParams::chip_full_swing`] prices the datapath
/// at conventional full-swing repeated-wire cost (configs A/C of Fig. 6
/// before the low-swing optimisation is applied to them, and the baseline of
/// Fig. 8), and [`EnergyParams::chip_low_swing`] prices it with the tri-state
/// RSD crossbar and differential links (the fabricated chip). Every other
/// component is identical between the two, which is exactly what makes the
/// Fig. 6 waterfall attributable: the datapath step comes from swapping these
/// presets, the router-logic and buffer steps come from the activity changes
/// that multicast support and bypassing cause.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyParams {
    /// Energy of writing one 64-bit flit into an input buffer (pJ).
    pub buffer_write_pj: f64,
    /// Energy of reading one 64-bit flit out of an input buffer (pJ).
    pub buffer_read_pj: f64,
    /// Energy of one crossbar traversal of a 64-bit flit (pJ).
    pub crossbar_pj: f64,
    /// Energy of one router-to-router link traversal of a 64-bit flit (pJ).
    pub link_pj: f64,
    /// Energy of one NIC injection/ejection link traversal (pJ); these links
    /// are much shorter than inter-router links.
    pub local_link_pj: f64,
    /// Energy of one mSA-I (per-input round-robin) arbitration (pJ).
    pub sa_local_pj: f64,
    /// Energy of one mSA-II (per-output matrix) arbitration (pJ).
    pub sa_global_pj: f64,
    /// Energy of one VC allocation (free-VC queue pop) (pJ).
    pub vc_alloc_pj: f64,
    /// Energy of one next-route computation (pJ).
    pub route_pj: f64,
    /// Energy of generating and transmitting one 15-bit lookahead (pJ).
    pub lookahead_pj: f64,
    /// Clock-tree and pipeline-register power per router (mW), independent of
    /// traffic.
    pub clock_mw_per_router: f64,
    /// VC bookkeeping state power per router (mW), independent of traffic —
    /// the non-data-dependent component the paper highlights as untouched by
    /// virtual bypassing.
    pub vc_state_mw_per_router: f64,
    /// Leakage power per router (mW).
    pub leakage_mw_per_router: f64,
}

impl EnergyParams {
    /// Calibrated parameters with the **full-swing** datapath.
    #[must_use]
    pub fn chip_full_swing() -> Self {
        Self {
            buffer_write_pj: 1.0,
            buffer_read_pj: 0.8,
            crossbar_pj: 5.0,
            link_pj: 13.0,
            local_link_pj: 2.2,
            sa_local_pj: 0.15,
            sa_global_pj: 0.25,
            vc_alloc_pj: 0.1,
            route_pj: 0.08,
            lookahead_pj: 0.3,
            clock_mw_per_router: 5.0,
            vc_state_mw_per_router: 1.9,
            leakage_mw_per_router: 76.7 / 16.0,
        }
    }

    /// Calibrated parameters with the **low-swing** (tri-state RSD) datapath.
    ///
    /// Only the crossbar and link energies change; the 48.3% measured
    /// datapath power reduction of Fig. 6 is the ratio between these and the
    /// full-swing values at equal activity.
    #[must_use]
    pub fn chip_low_swing() -> Self {
        Self {
            crossbar_pj: 5.0 * (1.0 - 0.483),
            link_pj: 13.0 * (1.0 - 0.483),
            local_link_pj: 2.2 * (1.0 - 0.483),
            ..Self::chip_full_swing()
        }
    }

    /// Scales every component by per-group factors; used to derive the
    /// ORION-style and post-layout-style models from the measured
    /// calibration.
    #[must_use]
    pub fn scaled(&self, dynamic_factor: f64, clock_factor: f64, leakage_factor: f64) -> Self {
        Self {
            buffer_write_pj: self.buffer_write_pj * dynamic_factor,
            buffer_read_pj: self.buffer_read_pj * dynamic_factor,
            crossbar_pj: self.crossbar_pj * dynamic_factor,
            link_pj: self.link_pj * dynamic_factor,
            local_link_pj: self.local_link_pj * dynamic_factor,
            sa_local_pj: self.sa_local_pj * dynamic_factor,
            sa_global_pj: self.sa_global_pj * dynamic_factor,
            vc_alloc_pj: self.vc_alloc_pj * dynamic_factor,
            route_pj: self.route_pj * dynamic_factor,
            lookahead_pj: self.lookahead_pj * dynamic_factor,
            clock_mw_per_router: self.clock_mw_per_router * clock_factor,
            vc_state_mw_per_router: self.vc_state_mw_per_router * clock_factor,
            leakage_mw_per_router: self.leakage_mw_per_router * leakage_factor,
        }
    }

    /// Combined datapath energy of one hop (crossbar + link) in pJ.
    #[must_use]
    pub fn datapath_hop_pj(&self) -> f64 {
        self.crossbar_pj + self.link_pj
    }
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self::chip_low_swing()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_swing_only_changes_the_datapath() {
        let fs = EnergyParams::chip_full_swing();
        let ls = EnergyParams::chip_low_swing();
        assert!(ls.crossbar_pj < fs.crossbar_pj);
        assert!(ls.link_pj < fs.link_pj);
        assert_eq!(ls.buffer_write_pj, fs.buffer_write_pj);
        assert_eq!(ls.clock_mw_per_router, fs.clock_mw_per_router);
        assert_eq!(ls.leakage_mw_per_router, fs.leakage_mw_per_router);
    }

    #[test]
    fn low_swing_datapath_saves_48_percent() {
        let fs = EnergyParams::chip_full_swing();
        let ls = EnergyParams::chip_low_swing();
        let reduction = 1.0 - ls.datapath_hop_pj() / fs.datapath_hop_pj();
        assert!((reduction - 0.483).abs() < 1e-9);
    }

    #[test]
    fn scaling_applies_per_group() {
        let base = EnergyParams::chip_low_swing();
        let scaled = base.scaled(5.0, 4.0, 1.0);
        assert!((scaled.crossbar_pj - 5.0 * base.crossbar_pj).abs() < 1e-12);
        assert!((scaled.clock_mw_per_router - 4.0 * base.clock_mw_per_router).abs() < 1e-12);
        assert!((scaled.leakage_mw_per_router - base.leakage_mw_per_router).abs() < 1e-12);
    }

    #[test]
    fn chip_leakage_matches_the_measured_total() {
        let p = EnergyParams::chip_low_swing();
        assert!((p.leakage_mw_per_router * 16.0 - 76.7).abs() < 1e-9);
    }
}
