//! # noc-types
//!
//! Shared vocabulary for the DAC 2012 mesh NoC reproduction
//! ("Approaching the Theoretical Limits of a Mesh NoC with a 16-Node Chip
//! Prototype in 45nm SOI", Park et al.).
//!
//! Every other crate in the workspace speaks in terms of these types:
//!
//! * [`Coord`] / [`NodeId`] — positions in a k×k mesh,
//! * [`Direction`], [`Port`] and [`PortSet`] — the five router ports
//!   (North, East, South, West, Local/NIC) and multicast port vectors,
//! * [`MessageClass`] — the two virtual networks (request / response) used to
//!   avoid message-level deadlock in cache-coherent multicores,
//! * [`DestinationSet`] — the set of destination nodes of a unicast,
//!   multicast or broadcast packet,
//! * [`Packet`] and [`Flit`] — the units of transfer: packets are segmented
//!   into 64-bit flits, only the head flit carries routing information,
//! * [`VcId`], [`Credit`] — virtual-channel bookkeeping for credit-based
//!   flow control,
//! * [`ArrayFifo`] — the inline, fixed-capacity ring FIFO behind every
//!   virtual-channel buffer.
//!
//! # Examples
//!
//! ```
//! use noc_types::{Coord, DestinationSet, MessageClass, Packet, PacketKind};
//!
//! // A broadcast request injected by node (1, 2) of a 4x4 mesh.
//! let src = Coord::new(1, 2);
//! let dests = DestinationSet::broadcast(4, src.node_id(4));
//! let packet = Packet::new(0, src.node_id(4), dests, PacketKind::Request, 0);
//! assert_eq!(packet.flit_count(), 1);
//! assert_eq!(packet.message_class(), MessageClass::Request);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod coord;
mod destset;
mod direction;
mod error;
mod fifo;
mod flit;
mod message;
mod packet;
mod trace;

pub use coord::{Coord, NodeId};
pub use destset::DestinationSet;
pub use direction::{Direction, Port, PortSet, PORT_COUNT};
pub use error::{ConfigError, NocError};
pub use fifo::ArrayFifo;
pub use flit::{Flit, FlitId, FlitKind, FLIT_BITS};
pub use message::{MessageClass, TrafficKind, MESSAGE_CLASS_COUNT};
pub use packet::{Packet, PacketId, PacketKind};
pub use trace::{Trace, TraceError, TraceEvent};

/// Identifier of a virtual channel within one input port and message class.
///
/// The fabricated chip uses 6 VCs per port: 4 one-flit-deep VCs in the
/// request class and 2 three-flit-deep VCs in the response class.
pub type VcId = u8;

/// A single flow-control credit returned from a downstream router when a
/// buffer slot is freed.
///
/// Credits are tagged with the virtual channel they replenish so that the
/// upstream router can update the correct VC's credit counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Credit {
    /// Message class of the freed buffer slot.
    pub class: MessageClass,
    /// Virtual channel (within `class`) whose slot was freed.
    pub vc: VcId,
}

impl Credit {
    /// Creates a credit for virtual channel `vc` of message class `class`.
    ///
    /// ```
    /// use noc_types::{Credit, MessageClass};
    /// let c = Credit::new(MessageClass::Request, 2);
    /// assert_eq!(c.vc, 2);
    /// ```
    #[must_use]
    pub fn new(class: MessageClass, vc: VcId) -> Self {
        Self { class, vc }
    }
}

/// Simulation time measured in router clock cycles.
pub type Cycle = u64;

/// Identifier of a spatial mesh partition in the partitioned stepper.
///
/// The partitioned `Network::step` shards a k×k mesh into contiguous row
/// strips, one per worker thread; partitions are numbered bottom-up in
/// ascending node-id order, so iterating partitions in `PartitionId` order
/// visits nodes in exactly the order a serial scan would — the property the
/// deterministic counter/statistics merge relies on.
pub type PartitionId = u16;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn credit_round_trip() {
        let c = Credit::new(MessageClass::Response, 1);
        assert_eq!(c.class, MessageClass::Response);
        assert_eq!(c.vc, 1);
    }

    #[test]
    fn types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Coord>();
        assert_send_sync::<Flit>();
        assert_send_sync::<Packet>();
        assert_send_sync::<DestinationSet>();
        assert_send_sync::<Credit>();
        assert_send_sync::<NocError>();
    }
}
