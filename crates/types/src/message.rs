//! Message classes and traffic kinds.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Number of message classes (virtual networks) per input port.
pub const MESSAGE_CLASS_COUNT: usize = 2;

/// Message class (virtual network) of a packet.
///
/// The chip provides two message classes per input port, *request* and
/// *response*, to avoid message-level (protocol) deadlock in cache-coherent
/// multicores: a response must never be blocked behind a request that is
/// itself waiting for that response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MessageClass {
    /// Coherence requests and acknowledgements; 1-flit packets on the chip.
    Request,
    /// Cache-data responses; 5-flit packets on the chip.
    Response,
}

impl MessageClass {
    /// Both message classes in index order.
    pub const ALL: [MessageClass; MESSAGE_CLASS_COUNT] =
        [MessageClass::Request, MessageClass::Response];

    /// Stable index of the class (`Request` = 0, `Response` = 1).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            MessageClass::Request => 0,
            MessageClass::Response => 1,
        }
    }

    /// Builds a message class from its [`index`](MessageClass::index).
    ///
    /// Returns `None` when `index >= MESSAGE_CLASS_COUNT`.
    #[must_use]
    pub fn from_index(index: usize) -> Option<MessageClass> {
        MessageClass::ALL.get(index).copied()
    }
}

impl fmt::Display for MessageClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MessageClass::Request => f.write_str("request"),
            MessageClass::Response => f.write_str("response"),
        }
    }
}

/// The kind of traffic a packet belongs to, as used by the paper's
/// measured traffic mixes.
///
/// The evaluation uses two patterns at 1 GHz:
/// * *mixed*: 50% broadcast requests, 25% unicast requests, 25% unicast
///   responses,
/// * *broadcast-only*: 100% broadcast requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficKind {
    /// Single-destination coherence request (1 flit).
    UnicastRequest,
    /// Single-destination cache-data response (5 flits).
    UnicastResponse,
    /// One-to-all coherence request (1 flit delivered to every other node).
    BroadcastRequest,
}

impl TrafficKind {
    /// The message class this traffic kind travels in.
    #[must_use]
    pub fn message_class(self) -> MessageClass {
        match self {
            TrafficKind::UnicastRequest | TrafficKind::BroadcastRequest => MessageClass::Request,
            TrafficKind::UnicastResponse => MessageClass::Response,
        }
    }

    /// Returns `true` for one-to-all traffic.
    #[must_use]
    pub fn is_broadcast(self) -> bool {
        matches!(self, TrafficKind::BroadcastRequest)
    }
}

impl fmt::Display for TrafficKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficKind::UnicastRequest => f.write_str("unicast-request"),
            TrafficKind::UnicastResponse => f.write_str("unicast-response"),
            TrafficKind::BroadcastRequest => f.write_str("broadcast-request"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_index_round_trip() {
        for c in MessageClass::ALL {
            assert_eq!(MessageClass::from_index(c.index()), Some(c));
        }
        assert_eq!(MessageClass::from_index(2), None);
    }

    #[test]
    fn traffic_kind_classes() {
        assert_eq!(
            TrafficKind::UnicastRequest.message_class(),
            MessageClass::Request
        );
        assert_eq!(
            TrafficKind::BroadcastRequest.message_class(),
            MessageClass::Request
        );
        assert_eq!(
            TrafficKind::UnicastResponse.message_class(),
            MessageClass::Response
        );
        assert!(TrafficKind::BroadcastRequest.is_broadcast());
        assert!(!TrafficKind::UnicastRequest.is_broadcast());
    }

    #[test]
    fn display_strings() {
        assert_eq!(MessageClass::Request.to_string(), "request");
        assert_eq!(
            TrafficKind::BroadcastRequest.to_string(),
            "broadcast-request"
        );
    }
}
