//! Flits: the flow-control unit that actually moves through routers.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::coord::NodeId;
use crate::destset::DestinationSet;
use crate::message::MessageClass;
use crate::packet::{Packet, PacketId, PacketKind};
use crate::{Cycle, VcId};

/// Width of a flit in bits (the chip's channel width).
pub const FLIT_BITS: usize = 64;

/// Globally unique flit identifier.
pub type FlitId = u64;

/// Position of a flit within its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlitKind {
    /// First flit of a multi-flit packet; carries routing information.
    Head,
    /// Middle flit of a multi-flit packet.
    Body,
    /// Last flit of a multi-flit packet; frees the VC on departure.
    Tail,
    /// Single-flit packet: simultaneously head and tail.
    HeadTail,
}

impl FlitKind {
    /// Returns `true` for flits that carry routing information (head flits).
    #[must_use]
    pub fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::HeadTail)
    }

    /// Returns `true` for flits that terminate a packet (tail flits).
    #[must_use]
    pub fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::HeadTail)
    }
}

impl fmt::Display for FlitKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FlitKind::Head => "head",
            FlitKind::Body => "body",
            FlitKind::Tail => "tail",
            FlitKind::HeadTail => "head-tail",
        };
        f.write_str(s)
    }
}

/// A 64-bit flow-control unit travelling through the network.
///
/// A flit remembers the identity and destination set of its parent packet so
/// that every router on the path can route it (the real chip stores this in
/// per-VC state after the head flit passes; carrying it on each flit is a
/// simulator convenience that does not change timing). It also carries
/// timestamps used for latency accounting and the virtual channel it
/// currently occupies.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flit {
    id: FlitId,
    packet_id: PacketId,
    source: NodeId,
    destinations: DestinationSet,
    class: MessageClass,
    kind: FlitKind,
    sequence: u8,
    packet_len: u8,
    payload: u64,
    created_at: Cycle,
    injected_at: Option<Cycle>,
    vc: Option<VcId>,
    hops: u32,
    bypassed_hops: u32,
}

impl Flit {
    /// Creates the `sequence`-th flit of `packet`.
    #[must_use]
    pub fn new(packet: &Packet, sequence: u8, kind: FlitKind, payload: u64) -> Self {
        Self {
            id: packet.id() * 16 + u64::from(sequence),
            packet_id: packet.id(),
            source: packet.source(),
            destinations: *packet.destinations(),
            class: packet.message_class(),
            kind,
            sequence,
            packet_len: packet.flit_count() as u8,
            payload,
            created_at: packet.created_at(),
            injected_at: None,
            vc: None,
            hops: 0,
            bypassed_hops: 0,
        }
    }

    /// Unique flit identifier.
    #[must_use]
    pub fn id(&self) -> FlitId {
        self.id
    }

    /// Identifier of the parent packet.
    #[must_use]
    pub fn packet_id(&self) -> PacketId {
        self.packet_id
    }

    /// Node that injected the parent packet.
    #[must_use]
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Destination set of the parent packet.
    #[must_use]
    pub fn destinations(&self) -> &DestinationSet {
        &self.destinations
    }

    /// Replaces the destination set.
    ///
    /// Used by multicast forking: when a flit is replicated towards several
    /// output ports, each replica keeps only the destinations reachable
    /// through its own port.
    pub fn set_destinations(&mut self, destinations: DestinationSet) {
        self.destinations = destinations;
    }

    /// Message class of the flit.
    #[must_use]
    pub fn message_class(&self) -> MessageClass {
        self.class
    }

    /// Head/body/tail position within the packet.
    #[must_use]
    pub fn kind(&self) -> FlitKind {
        self.kind
    }

    /// Zero-based position of this flit in its packet.
    #[must_use]
    pub fn sequence(&self) -> u8 {
        self.sequence
    }

    /// Number of flits in the parent packet.
    #[must_use]
    pub fn packet_len(&self) -> u8 {
        self.packet_len
    }

    /// 64-bit payload word.
    #[must_use]
    pub fn payload(&self) -> u64 {
        self.payload
    }

    /// Cycle at which the parent packet was created at the source NIC.
    #[must_use]
    pub fn created_at(&self) -> Cycle {
        self.created_at
    }

    /// Cycle at which the flit left the source NIC, if it has been injected.
    #[must_use]
    pub fn injected_at(&self) -> Option<Cycle> {
        self.injected_at
    }

    /// Records the injection cycle.
    pub fn mark_injected(&mut self, cycle: Cycle) {
        self.injected_at = Some(cycle);
    }

    /// Virtual channel the flit currently occupies, if any.
    #[must_use]
    pub fn vc(&self) -> Option<VcId> {
        self.vc
    }

    /// Assigns the flit to virtual channel `vc`.
    pub fn set_vc(&mut self, vc: VcId) {
        self.vc = Some(vc);
    }

    /// Number of router-to-router hops the flit has taken so far.
    #[must_use]
    pub fn hops(&self) -> u32 {
        self.hops
    }

    /// Number of hops at which the flit bypassed the router pipeline thanks
    /// to a successful lookahead pre-allocation.
    #[must_use]
    pub fn bypassed_hops(&self) -> u32 {
        self.bypassed_hops
    }

    /// Records one hop; `bypassed` indicates whether the hop used the
    /// single-cycle bypass path.
    pub fn record_hop(&mut self, bypassed: bool) {
        self.hops += 1;
        if bypassed {
            self.bypassed_hops += 1;
        }
    }

    /// Returns `true` when the flit should be ejected at node `node`
    /// (i.e. `node` is one of its destinations).
    #[must_use]
    pub fn targets(&self, node: NodeId) -> bool {
        self.destinations.contains(node)
    }

    /// Packet kind inferred from the message class and length.
    #[must_use]
    pub fn packet_kind(&self) -> PacketKind {
        match self.class {
            MessageClass::Request => PacketKind::Request,
            MessageClass::Response => PacketKind::Response,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;

    fn sample_flit() -> Flit {
        let p = Packet::new(9, 2, DestinationSet::unicast(14), PacketKind::Request, 50);
        p.to_flits().remove(0)
    }

    #[test]
    fn flit_carries_packet_identity() {
        let f = sample_flit();
        assert_eq!(f.packet_id(), 9);
        assert_eq!(f.source(), 2);
        assert_eq!(f.created_at(), 50);
        assert_eq!(f.packet_len(), 1);
        assert!(f.kind().is_head());
        assert!(f.kind().is_tail());
        assert!(f.targets(14));
        assert!(!f.targets(2));
    }

    #[test]
    fn hop_accounting() {
        let mut f = sample_flit();
        f.record_hop(true);
        f.record_hop(false);
        f.record_hop(true);
        assert_eq!(f.hops(), 3);
        assert_eq!(f.bypassed_hops(), 2);
    }

    #[test]
    fn vc_and_injection_bookkeeping() {
        let mut f = sample_flit();
        assert_eq!(f.vc(), None);
        assert_eq!(f.injected_at(), None);
        f.set_vc(3);
        f.mark_injected(55);
        assert_eq!(f.vc(), Some(3));
        assert_eq!(f.injected_at(), Some(55));
    }

    #[test]
    fn multicast_fork_narrows_destinations() {
        let p = Packet::new(
            1,
            0,
            DestinationSet::broadcast(4, 0),
            PacketKind::Request,
            0,
        );
        let mut f = p.to_flits().remove(0);
        let east_side: DestinationSet = (0u16..16).filter(|id| id % 4 >= 2).collect();
        f.set_destinations(f.destinations().intersection(&east_side));
        assert!(f.destinations().len() < 15);
        assert!(f.destinations().iter().all(|d| d % 4 >= 2));
    }

    #[test]
    fn flit_kind_predicates() {
        assert!(FlitKind::Head.is_head());
        assert!(!FlitKind::Head.is_tail());
        assert!(FlitKind::Tail.is_tail());
        assert!(!FlitKind::Body.is_head());
        assert!(FlitKind::HeadTail.is_head() && FlitKind::HeadTail.is_tail());
    }
}
