//! Mesh coordinates and node identifiers.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Flat identifier of a node (tile) in a k×k mesh.
///
/// Nodes are numbered in row-major order: `id = y * k + x`.
pub type NodeId = u16;

/// Position of a node in a k×k mesh.
///
/// `x` grows eastwards, `y` grows northwards. The fabricated prototype is a
/// 4×4 mesh, but every model in this workspace is parameterised over `k`.
///
/// # Examples
///
/// ```
/// use noc_types::Coord;
///
/// let c = Coord::new(3, 1);
/// assert_eq!(c.node_id(4), 7);
/// assert_eq!(Coord::from_node_id(7, 4), c);
/// assert_eq!(c.manhattan_distance(Coord::new(0, 0)), 4);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Coord {
    /// Column index, `0..k`, grows eastwards.
    pub x: u16,
    /// Row index, `0..k`, grows northwards.
    pub y: u16,
}

impl Coord {
    /// Creates a coordinate at column `x`, row `y`.
    #[must_use]
    pub fn new(x: u16, y: u16) -> Self {
        Self { x, y }
    }

    /// Converts a flat node id back into a coordinate for a mesh of side `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn from_node_id(id: NodeId, k: u16) -> Self {
        assert!(k > 0, "mesh side length must be positive");
        Self {
            x: id % k,
            y: id / k,
        }
    }

    /// Flat row-major node id of this coordinate in a mesh of side `k`.
    #[must_use]
    pub fn node_id(self, k: u16) -> NodeId {
        self.y * k + self.x
    }

    /// Returns `true` if the coordinate lies inside a k×k mesh.
    #[must_use]
    pub fn is_within(self, k: u16) -> bool {
        self.x < k && self.y < k
    }

    /// Manhattan (hop-count) distance to `other`.
    #[must_use]
    pub fn manhattan_distance(self, other: Coord) -> u32 {
        let dx = i32::from(self.x) - i32::from(other.x);
        let dy = i32::from(self.y) - i32::from(other.y);
        dx.unsigned_abs() + dy.unsigned_abs()
    }

    /// Hop count from this node to the node of the mesh that is furthest away
    /// from it (the metric used by the paper's broadcast latency limit,
    /// Appendix A, Fig. 9).
    #[must_use]
    pub fn furthest_distance(self, k: u16) -> u32 {
        let far_x = if self.x >= k / 2 { 0 } else { k - 1 };
        let far_y = if self.y >= k / 2 { 0 } else { k - 1 };
        self.manhattan_distance(Coord::new(far_x, far_y))
    }

    /// Iterator over all coordinates of a k×k mesh in row-major order.
    pub fn all(k: u16) -> impl Iterator<Item = Coord> {
        (0..k).flat_map(move |y| (0..k).map(move |x| Coord::new(x, y)))
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(u16, u16)> for Coord {
    fn from((x, y): (u16, u16)) -> Self {
        Coord::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trip() {
        for k in 1..=8u16 {
            for id in 0..k * k {
                let c = Coord::from_node_id(id, k);
                assert!(c.is_within(k));
                assert_eq!(c.node_id(k), id);
            }
        }
    }

    #[test]
    fn manhattan_distance_is_symmetric() {
        let a = Coord::new(1, 3);
        let b = Coord::new(2, 0);
        assert_eq!(a.manhattan_distance(b), b.manhattan_distance(a));
        assert_eq!(a.manhattan_distance(b), 4);
        assert_eq!(a.manhattan_distance(a), 0);
    }

    #[test]
    fn furthest_distance_corner_cases() {
        // A corner node of a 4x4 mesh is 6 hops from the opposite corner.
        assert_eq!(Coord::new(0, 0).furthest_distance(4), 6);
        assert_eq!(Coord::new(3, 3).furthest_distance(4), 6);
        // A central node is 4 hops from its furthest corner.
        assert_eq!(Coord::new(1, 1).furthest_distance(4), 4);
        assert_eq!(Coord::new(2, 2).furthest_distance(4), 4);
    }

    #[test]
    fn all_enumerates_every_node_once() {
        let coords: Vec<_> = Coord::all(4).collect();
        assert_eq!(coords.len(), 16);
        for (i, c) in coords.iter().enumerate() {
            assert_eq!(c.node_id(4) as usize, i);
        }
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Coord::new(2, 3).to_string(), "(2, 3)");
    }

    #[test]
    #[should_panic(expected = "mesh side length")]
    fn zero_side_length_panics() {
        let _ = Coord::from_node_id(0, 0);
    }
}
