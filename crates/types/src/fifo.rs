//! An inline, array-backed ring FIFO for small fixed-capacity buffers.
//!
//! Virtual-channel buffers hold at most a handful of flits (the chip: 1 for
//! request VCs, 3 for response VCs), yet a `VecDeque` stores them behind a
//! pointer — every head probe in the router's switch-allocation scan is a
//! cache miss waiting to happen. [`ArrayFifo`] keeps the slots *inline* in
//! the owning struct, so a bank of VC buffers is one contiguous allocation
//! and walking their heads walks consecutive cache lines.

/// A fixed-capacity FIFO ring whose `N` slots live inline (no heap
/// indirection).
///
/// Push beyond capacity panics: the simulator's VC buffers are guarded by
/// credit-based flow control, so an overflow is a protocol bug, not a
/// resizing event. For a growable recycled ring see `noc_sim::RingQueue`.
///
/// # Examples
///
/// ```
/// use noc_types::ArrayFifo;
///
/// let mut fifo: ArrayFifo<u32, 4> = ArrayFifo::new();
/// fifo.push_back(7);
/// fifo.push_back(9);
/// assert_eq!(fifo.len(), 2);
/// assert_eq!(fifo.front(), Some(&7));
/// assert_eq!(fifo.pop_front(), Some(7));
/// assert_eq!(fifo.pop_front(), Some(9));
/// assert!(fifo.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayFifo<T, const N: usize> {
    /// Inline storage; occupied positions hold `Some`.
    slots: [Option<T>; N],
    head: u8,
    len: u8,
}

impl<T, const N: usize> Default for ArrayFifo<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, const N: usize> ArrayFifo<T, N> {
    /// An empty FIFO. `N` must fit the `u8` cursor arithmetic.
    #[must_use]
    pub fn new() -> Self {
        assert!(N > 0 && N <= 128, "ArrayFifo capacity must be in 1..=128");
        Self {
            slots: std::array::from_fn(|_| None),
            head: 0,
            len: 0,
        }
    }

    /// Capacity in items (the const parameter `N`).
    #[must_use]
    pub fn capacity(&self) -> usize {
        N
    }

    /// Number of queued items.
    #[must_use]
    pub fn len(&self) -> usize {
        usize::from(self.len)
    }

    /// Returns `true` when no item is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns `true` when every slot is occupied.
    #[must_use]
    pub fn is_full(&self) -> bool {
        usize::from(self.len) == N
    }

    /// Appends an item at the back.
    ///
    /// # Panics
    ///
    /// Panics if the FIFO is full.
    pub fn push_back(&mut self, item: T) {
        assert!(!self.is_full(), "ArrayFifo overflow (capacity {N})");
        let idx = (usize::from(self.head) + usize::from(self.len)) % N;
        debug_assert!(self.slots[idx].is_none());
        self.slots[idx] = Some(item);
        self.len += 1;
    }

    /// Removes and returns the item at the front.
    pub fn pop_front(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        let item = self.slots[usize::from(self.head)].take();
        debug_assert!(item.is_some());
        self.head = ((usize::from(self.head) + 1) % N) as u8;
        self.len -= 1;
        item
    }

    /// The item at the front, if any.
    #[must_use]
    pub fn front(&self) -> Option<&T> {
        if self.len == 0 {
            None
        } else {
            self.slots[usize::from(self.head)].as_ref()
        }
    }

    /// Mutable access to the item at the front, if any.
    pub fn front_mut(&mut self) -> Option<&mut T> {
        if self.len == 0 {
            None
        } else {
            self.slots[usize::from(self.head)].as_mut()
        }
    }

    /// The `i`-th queued item in FIFO order (`0` is the front).
    #[must_use]
    pub fn get(&self, i: usize) -> Option<&T> {
        if i >= self.len() {
            None
        } else {
            self.slots[(usize::from(self.head) + i) % N].as_ref()
        }
    }

    /// Drops every queued item and rewinds the cursor, leaving the FIFO
    /// structurally identical to a freshly constructed one (so warm resets
    /// reproduce cold state exactly).
    pub fn clear(&mut self) {
        while self.pop_front().is_some() {}
        self.head = 0;
    }

    /// Iterates over the queued items in FIFO order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        (0..self.len()).map(move |i| {
            self.slots[(usize::from(self.head) + i) % N]
                .as_ref()
                .expect("occupied ring slot")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_is_preserved_across_wraparound() {
        let mut fifo: ArrayFifo<u32, 3> = ArrayFifo::new();
        for round in 0..20u32 {
            fifo.push_back(round);
            fifo.push_back(round + 100);
            assert_eq!(fifo.pop_front(), Some(round));
            assert_eq!(fifo.pop_front(), Some(round + 100));
        }
        assert!(fifo.is_empty());
        assert_eq!(fifo.pop_front(), None);
    }

    #[test]
    fn get_and_iter_follow_fifo_order() {
        let mut fifo: ArrayFifo<u32, 4> = ArrayFifo::new();
        fifo.push_back(1);
        fifo.push_back(2);
        fifo.pop_front();
        fifo.push_back(3);
        fifo.push_back(4);
        assert_eq!(fifo.get(0), Some(&2));
        assert_eq!(fifo.get(2), Some(&4));
        assert_eq!(fifo.get(3), None);
        let seen: Vec<u32> = fifo.iter().copied().collect();
        assert_eq!(seen, vec![2, 3, 4]);
    }

    #[test]
    fn front_mut_edits_the_head_in_place() {
        let mut fifo: ArrayFifo<u32, 2> = ArrayFifo::new();
        fifo.push_back(5);
        *fifo.front_mut().unwrap() = 9;
        assert_eq!(fifo.front(), Some(&9));
        fifo.clear();
        assert!(fifo.front_mut().is_none());
    }

    #[test]
    fn clear_empties_and_the_storage_stays_usable() {
        let mut fifo: ArrayFifo<u32, 2> = ArrayFifo::new();
        fifo.push_back(1);
        fifo.push_back(2);
        assert!(fifo.is_full());
        fifo.clear();
        assert!(fifo.is_empty());
        fifo.push_back(3);
        assert_eq!(fifo.front(), Some(&3));
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn pushing_into_a_full_fifo_panics() {
        let mut fifo: ArrayFifo<u32, 1> = ArrayFifo::new();
        fifo.push_back(1);
        fifo.push_back(2);
    }
}
