//! Router ports and port sets.
//!
//! Each router of the mesh has five input/output ports: the four mesh
//! directions plus the local port that connects to the network interface
//! controller (NIC). Multicast flits request *sets* of output ports, which we
//! represent compactly as a [`PortSet`] bit vector (this mirrors the 5-bit
//! output-port request vector of the chip's mSA-I stage).

use std::fmt;

use serde::{Deserialize, Serialize};

/// Number of ports on every router (N, E, S, W, Local).
pub const PORT_COUNT: usize = 5;

/// One of the four mesh directions.
///
/// `Direction` is the *link* direction; [`Port`] additionally includes the
/// local NIC port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Towards increasing `y`.
    North,
    /// Towards increasing `x`.
    East,
    /// Towards decreasing `y`.
    South,
    /// Towards decreasing `x`.
    West,
}

impl Direction {
    /// All four directions, in port-index order.
    pub const ALL: [Direction; 4] = [
        Direction::North,
        Direction::East,
        Direction::South,
        Direction::West,
    ];

    /// The direction a flit arrives *from* when it was sent in `self`'s
    /// direction (i.e. the opposite direction).
    #[must_use]
    pub fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::East => Direction::West,
            Direction::South => Direction::North,
            Direction::West => Direction::East,
        }
    }

    /// The router port corresponding to this direction.
    #[must_use]
    pub fn port(self) -> Port {
        match self {
            Direction::North => Port::North,
            Direction::East => Port::East,
            Direction::South => Port::South,
            Direction::West => Port::West,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::North => "N",
            Direction::East => "E",
            Direction::South => "S",
            Direction::West => "W",
        };
        f.write_str(s)
    }
}

/// One of the five router ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Port {
    /// Link towards the node above (`y + 1`).
    North,
    /// Link towards the node to the right (`x + 1`).
    East,
    /// Link towards the node below (`y - 1`).
    South,
    /// Link towards the node to the left (`x - 1`).
    West,
    /// Local port: connection to the node's NIC (injection / ejection).
    Local,
}

impl Port {
    /// All five ports in index order (N, E, S, W, Local).
    pub const ALL: [Port; PORT_COUNT] = [
        Port::North,
        Port::East,
        Port::South,
        Port::West,
        Port::Local,
    ];

    /// Stable index of the port, `0..PORT_COUNT`.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Port::North => 0,
            Port::East => 1,
            Port::South => 2,
            Port::West => 3,
            Port::Local => 4,
        }
    }

    /// Builds a port back from its [`index`](Port::index).
    ///
    /// Returns `None` when `index >= PORT_COUNT`.
    #[must_use]
    pub fn from_index(index: usize) -> Option<Port> {
        Port::ALL.get(index).copied()
    }

    /// The mesh direction of this port, or `None` for the local port.
    #[must_use]
    pub fn direction(self) -> Option<Direction> {
        match self {
            Port::North => Some(Direction::North),
            Port::East => Some(Direction::East),
            Port::South => Some(Direction::South),
            Port::West => Some(Direction::West),
            Port::Local => None,
        }
    }

    /// Returns `true` for the local (NIC) port.
    #[must_use]
    pub fn is_local(self) -> bool {
        self == Port::Local
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Port::North => "N",
            Port::East => "E",
            Port::South => "S",
            Port::West => "W",
            Port::Local => "NIC",
        };
        f.write_str(s)
    }
}

impl From<Direction> for Port {
    fn from(d: Direction) -> Self {
        d.port()
    }
}

/// A set of router ports, stored as a 5-bit vector.
///
/// This is the in-model equivalent of the chip's 5-bit output-port request
/// produced by the mSA-I stage: unicast flits request exactly one port,
/// multicast and broadcast flits may request several.
///
/// # Examples
///
/// ```
/// use noc_types::{Port, PortSet};
///
/// let mut set = PortSet::empty();
/// set.insert(Port::North);
/// set.insert(Port::Local);
/// assert_eq!(set.len(), 2);
/// assert!(set.contains(Port::North));
/// assert!(!set.contains(Port::East));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct PortSet(u8);

impl PortSet {
    /// The empty port set.
    #[must_use]
    pub fn empty() -> Self {
        PortSet(0)
    }

    /// Creates a new, empty port set (alias of [`PortSet::empty`]).
    #[must_use]
    pub fn new() -> Self {
        Self::empty()
    }

    /// A set containing a single port.
    #[must_use]
    pub fn single(port: Port) -> Self {
        let mut s = Self::empty();
        s.insert(port);
        s
    }

    /// A set containing all five ports.
    #[must_use]
    pub fn all() -> Self {
        PortSet(0b1_1111)
    }

    /// Adds `port` to the set. Returns `true` if it was newly inserted.
    pub fn insert(&mut self, port: Port) -> bool {
        let bit = 1u8 << port.index();
        let was_absent = self.0 & bit == 0;
        self.0 |= bit;
        was_absent
    }

    /// Removes `port` from the set. Returns `true` if it was present.
    pub fn remove(&mut self, port: Port) -> bool {
        let bit = 1u8 << port.index();
        let was_present = self.0 & bit != 0;
        self.0 &= !bit;
        was_present
    }

    /// Returns `true` if the set contains `port`.
    #[must_use]
    pub fn contains(self, port: Port) -> bool {
        self.0 & (1 << port.index()) != 0
    }

    /// Number of ports in the set.
    #[must_use]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Returns `true` when no port is in the set.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates over the ports in the set in index order.
    pub fn iter(self) -> impl Iterator<Item = Port> {
        Port::ALL.into_iter().filter(move |p| self.contains(*p))
    }

    /// Union of two port sets.
    #[must_use]
    pub fn union(self, other: PortSet) -> PortSet {
        PortSet(self.0 | other.0)
    }

    /// Intersection of two port sets.
    #[must_use]
    pub fn intersection(self, other: PortSet) -> PortSet {
        PortSet(self.0 & other.0)
    }

    /// Raw 5-bit representation (bit `i` = `Port::from_index(i)`).
    #[must_use]
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Builds a port set back from its raw [`bits`](PortSet::bits)
    /// representation; bits above the five port positions are ignored.
    ///
    /// # Examples
    ///
    /// ```
    /// use noc_types::{Port, PortSet};
    ///
    /// let set = PortSet::from_bits(0b00011);
    /// assert_eq!(set, [Port::North, Port::East].into_iter().collect());
    /// assert_eq!(PortSet::from_bits(set.bits()), set);
    /// ```
    #[must_use]
    pub fn from_bits(bits: u8) -> PortSet {
        PortSet(bits & 0b1_1111)
    }
}

impl fmt::Debug for PortSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("PortSet{")?;
        let mut first = true;
        for p in self.iter() {
            if !first {
                f.write_str(",")?;
            }
            write!(f, "{p}")?;
            first = false;
        }
        f.write_str("}")
    }
}

impl FromIterator<Port> for PortSet {
    fn from_iter<I: IntoIterator<Item = Port>>(iter: I) -> Self {
        let mut s = PortSet::empty();
        for p in iter {
            s.insert(p);
        }
        s
    }
}

impl Extend<Port> for PortSet {
    fn extend<I: IntoIterator<Item = Port>>(&mut self, iter: I) {
        for p in iter {
            self.insert(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opposite_is_involutive() {
        for d in Direction::ALL {
            assert_eq!(d.opposite().opposite(), d);
        }
    }

    #[test]
    fn port_index_round_trip() {
        for p in Port::ALL {
            assert_eq!(Port::from_index(p.index()), Some(p));
        }
        assert_eq!(Port::from_index(PORT_COUNT), None);
    }

    #[test]
    fn portset_insert_remove() {
        let mut s = PortSet::empty();
        assert!(s.is_empty());
        assert!(s.insert(Port::East));
        assert!(!s.insert(Port::East));
        assert_eq!(s.len(), 1);
        assert!(s.remove(Port::East));
        assert!(!s.remove(Port::East));
        assert!(s.is_empty());
    }

    #[test]
    fn portset_all_and_iter() {
        let s = PortSet::all();
        assert_eq!(s.len(), PORT_COUNT);
        let ports: Vec<_> = s.iter().collect();
        assert_eq!(ports, Port::ALL.to_vec());
    }

    #[test]
    fn portset_set_operations() {
        let a: PortSet = [Port::North, Port::East].into_iter().collect();
        let b: PortSet = [Port::East, Port::Local].into_iter().collect();
        assert_eq!(a.union(b).len(), 3);
        assert_eq!(a.intersection(b), PortSet::single(Port::East));
    }

    #[test]
    fn portset_bits_round_trip_and_truncate() {
        for bits in 0u8..=0b1_1111 {
            assert_eq!(PortSet::from_bits(bits).bits(), bits);
        }
        assert_eq!(PortSet::from_bits(0xFF), PortSet::all());
    }

    #[test]
    fn portset_debug_lists_members() {
        let s: PortSet = [Port::North, Port::Local].into_iter().collect();
        assert_eq!(format!("{s:?}"), "PortSet{N,NIC}");
    }
}
