//! Error types shared across the workspace.

use std::error::Error;
use std::fmt;

/// Errors produced when validating a network or experiment configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The mesh side length is outside the supported range (1..=16).
    InvalidMeshSide {
        /// The offending side length.
        k: u16,
    },
    /// A virtual-channel configuration is impossible (zero VCs or zero-depth
    /// buffers).
    InvalidVcConfig {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// An injection rate is outside `[0, 1]` flits/node/cycle.
    InvalidInjectionRate {
        /// The offending rate.
        rate: f64,
    },
    /// A traffic mix does not sum to 1.0.
    InvalidTrafficMix {
        /// The sum of the provided fractions.
        sum: f64,
    },
    /// A spatial traffic pattern cannot run on the configured mesh (wrong
    /// node count, malformed hotspot parameters, ...).
    InvalidPattern {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A sweep measurement window is empty: zero measured cycles would turn
    /// every throughput (and most latencies) into NaN downstream.
    InvalidSweepWindow {
        /// The offending measurement window, in cycles.
        measure_cycles: u64,
    },
    /// A parallelism request names zero worker threads: `jobs` (sweep-point
    /// workers) and `step_threads` (intra-simulation partition workers) must
    /// both be at least 1.
    InvalidParallelism {
        /// Requested sweep-point worker threads.
        jobs: usize,
        /// Requested intra-simulation step threads.
        step_threads: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::InvalidMeshSide { k } => {
                write!(
                    f,
                    "mesh side length {k} is outside the supported range 1..=16"
                )
            }
            ConfigError::InvalidVcConfig { reason } => {
                write!(f, "invalid virtual channel configuration: {reason}")
            }
            ConfigError::InvalidInjectionRate { rate } => {
                write!(
                    f,
                    "injection rate {rate} is outside [0, 1] flits/node/cycle"
                )
            }
            ConfigError::InvalidTrafficMix { sum } => {
                write!(f, "traffic mix fractions sum to {sum}, expected 1.0")
            }
            ConfigError::InvalidPattern { reason } => {
                write!(f, "invalid spatial traffic pattern: {reason}")
            }
            ConfigError::InvalidSweepWindow { measure_cycles } => {
                write!(
                    f,
                    "sweep measurement window must be at least one cycle, got {measure_cycles}"
                )
            }
            ConfigError::InvalidParallelism { jobs, step_threads } => {
                write!(
                    f,
                    "invalid parallelism: jobs={jobs} step_threads={step_threads} \
                     (both must be at least 1)"
                )
            }
        }
    }
}

impl Error for ConfigError {}

/// Top-level error type for NoC construction and simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum NocError {
    /// Configuration validation failed.
    Config(ConfigError),
    /// A simulation invariant was violated (indicates a model bug; carried as
    /// an error so harnesses can report it instead of panicking).
    InvariantViolated {
        /// Description of the violated invariant.
        description: String,
    },
    /// The simulation did not reach a steady state within the allotted cycles.
    NotConverged {
        /// Number of cycles simulated before giving up.
        cycles: u64,
    },
}

impl fmt::Display for NocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NocError::Config(e) => write!(f, "configuration error: {e}"),
            NocError::InvariantViolated { description } => {
                write!(f, "simulation invariant violated: {description}")
            }
            NocError::NotConverged { cycles } => {
                write!(f, "simulation did not converge within {cycles} cycles")
            }
        }
    }
}

impl Error for NocError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NocError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for NocError {
    fn from(e: ConfigError) -> Self {
        NocError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = ConfigError::InvalidMeshSide { k: 40 };
        assert!(e.to_string().contains("40"));
        let e = NocError::from(ConfigError::InvalidInjectionRate { rate: 1.5 });
        assert!(e.to_string().contains("1.5"));
    }

    #[test]
    fn noc_error_exposes_source() {
        let e = NocError::from(ConfigError::InvalidTrafficMix { sum: 0.9 });
        assert!(e.source().is_some());
        let e = NocError::NotConverged { cycles: 100 };
        assert!(e.source().is_none());
    }
}
