//! Deterministic record/replay traces of packet injections.
//!
//! A [`Trace`] is the workload as data: the ordered list of packet
//! injections (cycle, source, kind, destination set) a scenario performed.
//! Recording one from a live network and replaying it through a
//! trace-driven traffic source reproduces the original run bit for bit —
//! packet ids and flit layouts are regenerated deterministically from the
//! event order, so they never need to be stored.
//!
//! The serialized form is a compact little-endian binary format (cycle
//! deltas as LEB128 varints, unicasts and full broadcasts as one-byte
//! destination tags) built for checked round-tripping: every decode error
//! is a typed [`TraceError`], and decoding validates the header, the
//! event encoding and the exact byte length.

use std::fmt;

use crate::coord::NodeId;
use crate::destset::DestinationSet;
use crate::packet::PacketKind;
use crate::Cycle;

/// Magic bytes opening every serialized trace.
const MAGIC: [u8; 4] = *b"NOCT";
/// Serialization format version written by [`Trace::to_bytes`].
const VERSION: u8 = 1;

/// Destination-set encodings used in the serialized form.
const TAG_UNICAST: u8 = 0;
const TAG_BROADCAST: u8 = 1;
const TAG_GENERAL: u8 = 2;

/// One recorded packet injection.
///
/// The packet kind fixes both the message class and the flit count
/// ([`PacketKind::flit_count`]), so the event does not store a separate
/// length field. Packet ids are likewise omitted: replay regenerates them
/// from the per-node event order, exactly as the live NICs assign them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TraceEvent {
    /// Cycle at which the source NIC created the packet.
    pub cycle: Cycle,
    /// Injecting node.
    pub source: NodeId,
    /// Packet kind (fixes message class and flit count).
    pub kind: PacketKind,
    /// Destination set of the packet.
    pub destinations: DestinationSet,
}

impl TraceEvent {
    /// Number of flits the recorded packet segments into.
    #[must_use]
    pub fn flit_count(&self) -> usize {
        self.kind.flit_count()
    }
}

/// A recorded injection workload for a k×k mesh.
///
/// Events are kept sorted by `(cycle, source)`; within one `(cycle,
/// source)` pair they keep their recording order (the per-node injection
/// order replay must reproduce).
///
/// # Examples
///
/// ```
/// use noc_types::{DestinationSet, PacketKind, Trace, TraceEvent};
///
/// let mut trace = Trace::new(4);
/// trace.record(TraceEvent {
///     cycle: 3,
///     source: 5,
///     kind: PacketKind::Request,
///     destinations: DestinationSet::broadcast(4, 5),
/// });
/// let bytes = trace.to_bytes();
/// assert_eq!(Trace::from_bytes(&bytes).unwrap(), trace);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Trace {
    k: u16,
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace for a k×k mesh.
    #[must_use]
    pub fn new(k: u16) -> Self {
        Self {
            k,
            events: Vec::new(),
        }
    }

    /// Builds a trace from an arbitrary event list, stably sorting it into
    /// the canonical `(cycle, source)` order.
    #[must_use]
    pub fn from_events(k: u16, mut events: Vec<TraceEvent>) -> Self {
        events.sort_by_key(|e| (e.cycle, e.source));
        Self { k, events }
    }

    /// Appends an event.
    ///
    /// Recording sites call this in simulation order, which already is the
    /// canonical order; arbitrary callers should prefer
    /// [`Trace::from_events`], which sorts.
    pub fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// Mesh side length the trace was recorded on.
    #[must_use]
    pub fn k(&self) -> u16 {
        self.k
    }

    /// Number of recorded injections.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` when no injections were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The recorded events in `(cycle, source)` order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Serializes the trace into the compact binary format.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.events.len() * 8);
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.extend_from_slice(&self.k.to_le_bytes());
        out.extend_from_slice(&(self.events.len() as u32).to_le_bytes());
        let mut previous_cycle: Cycle = 0;
        for event in &self.events {
            write_varint(&mut out, event.cycle - previous_cycle);
            previous_cycle = event.cycle;
            out.extend_from_slice(&event.source.to_le_bytes());
            out.push(match event.kind {
                PacketKind::Request => 0,
                PacketKind::Response => 1,
            });
            if let Some(dest) = event.destinations.sole_destination() {
                out.push(TAG_UNICAST);
                out.extend_from_slice(&dest.to_le_bytes());
            } else if event.destinations == DestinationSet::broadcast(self.k, event.source) {
                out.push(TAG_BROADCAST);
            } else {
                out.push(TAG_GENERAL);
                out.extend_from_slice(&(event.destinations.len() as u16).to_le_bytes());
                for dest in event.destinations.iter() {
                    out.extend_from_slice(&dest.to_le_bytes());
                }
            }
        }
        out
    }

    /// Decodes a trace previously produced by [`Trace::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] describing the first malformed element:
    /// wrong magic, unsupported version, a truncated buffer, an unknown
    /// packet-kind or destination tag, or trailing bytes after the last
    /// event.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, TraceError> {
        let mut reader = Reader { bytes, at: 0 };
        if reader.take(4)? != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let version = reader.u8()?;
        if version != VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let k = reader.u16()?;
        let count = reader.u32()? as usize;
        let mut events = Vec::with_capacity(count.min(1 << 20));
        let mut cycle: Cycle = 0;
        for _ in 0..count {
            cycle += reader.varint()?;
            let source = reader.u16()?;
            let kind = match reader.u8()? {
                0 => PacketKind::Request,
                1 => PacketKind::Response,
                other => return Err(TraceError::InvalidKind(other)),
            };
            let destinations = match reader.u8()? {
                TAG_UNICAST => DestinationSet::unicast(reader.u16()?),
                TAG_BROADCAST => DestinationSet::broadcast(k, source),
                TAG_GENERAL => {
                    let n = reader.u16()?;
                    let mut set = DestinationSet::empty();
                    for _ in 0..n {
                        set.insert(reader.u16()?);
                    }
                    set
                }
                other => return Err(TraceError::InvalidTag(other)),
            };
            events.push(TraceEvent {
                cycle,
                source,
                kind,
                destinations,
            });
        }
        if reader.at != bytes.len() {
            return Err(TraceError::TrailingBytes);
        }
        Ok(Self { k, events })
    }
}

/// Appends `value` as an LEB128 varint.
fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Cursor over a serialized trace.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], TraceError> {
        let end = self.at.checked_add(n).ok_or(TraceError::UnexpectedEnd)?;
        if end > self.bytes.len() {
            return Err(TraceError::UnexpectedEnd);
        }
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, TraceError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, TraceError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, TraceError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn varint(&mut self) -> Result<u64, TraceError> {
        let mut value = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(TraceError::InvalidVarint)
    }
}

/// Errors decoding a serialized [`Trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceError {
    /// The buffer does not start with the trace magic bytes.
    BadMagic,
    /// The format version is newer than this decoder understands.
    UnsupportedVersion(u8),
    /// The buffer ended in the middle of a field.
    UnexpectedEnd,
    /// A cycle-delta varint ran past 64 bits.
    InvalidVarint,
    /// An unknown packet-kind byte.
    InvalidKind(u8),
    /// An unknown destination-set tag byte.
    InvalidTag(u8),
    /// Well-formed events were followed by extra bytes.
    TrailingBytes,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadMagic => f.write_str("not a serialized trace (bad magic)"),
            TraceError::UnsupportedVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceError::UnexpectedEnd => f.write_str("trace truncated mid-field"),
            TraceError::InvalidVarint => f.write_str("cycle delta varint overflows 64 bits"),
            TraceError::InvalidKind(b) => write!(f, "unknown packet kind byte {b:#04x}"),
            TraceError::InvalidTag(b) => write!(f, "unknown destination tag byte {b:#04x}"),
            TraceError::TrailingBytes => f.write_str("trailing bytes after the last event"),
        }
    }
}

impl std::error::Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut trace = Trace::new(4);
        trace.record(TraceEvent {
            cycle: 0,
            source: 0,
            kind: PacketKind::Request,
            destinations: DestinationSet::unicast(7),
        });
        trace.record(TraceEvent {
            cycle: 0,
            source: 9,
            kind: PacketKind::Response,
            destinations: DestinationSet::unicast(2),
        });
        trace.record(TraceEvent {
            cycle: 130,
            source: 5,
            kind: PacketKind::Request,
            destinations: DestinationSet::broadcast(4, 5),
        });
        trace.record(TraceEvent {
            cycle: 131,
            source: 5,
            kind: PacketKind::Request,
            destinations: [1u16, 2, 3].into_iter().collect(),
        });
        trace
    }

    #[test]
    fn round_trips_through_bytes() {
        let trace = sample();
        let bytes = trace.to_bytes();
        assert_eq!(Trace::from_bytes(&bytes).unwrap(), trace);
    }

    #[test]
    fn empty_trace_round_trips() {
        let trace = Trace::new(8);
        let decoded = Trace::from_bytes(&trace.to_bytes()).unwrap();
        assert_eq!(decoded, trace);
        assert!(decoded.is_empty());
        assert_eq!(decoded.k(), 8);
    }

    #[test]
    fn from_events_sorts_into_canonical_order() {
        let shuffled = vec![
            TraceEvent {
                cycle: 9,
                source: 1,
                kind: PacketKind::Request,
                destinations: DestinationSet::unicast(0),
            },
            TraceEvent {
                cycle: 2,
                source: 3,
                kind: PacketKind::Request,
                destinations: DestinationSet::unicast(0),
            },
            TraceEvent {
                cycle: 2,
                source: 1,
                kind: PacketKind::Request,
                destinations: DestinationSet::unicast(0),
            },
        ];
        let trace = Trace::from_events(4, shuffled);
        let order: Vec<(Cycle, NodeId)> =
            trace.events().iter().map(|e| (e.cycle, e.source)).collect();
        assert_eq!(order, vec![(2, 1), (2, 3), (9, 1)]);
    }

    #[test]
    fn decode_rejects_malformed_buffers() {
        let good = sample().to_bytes();

        assert_eq!(Trace::from_bytes(b"XX"), Err(TraceError::UnexpectedEnd));
        assert_eq!(Trace::from_bytes(b"XXXX"), Err(TraceError::BadMagic));
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert_eq!(Trace::from_bytes(&bad_magic), Err(TraceError::BadMagic));

        let mut bad_version = good.clone();
        bad_version[4] = 99;
        assert_eq!(
            Trace::from_bytes(&bad_version),
            Err(TraceError::UnsupportedVersion(99))
        );

        let truncated = &good[..good.len() - 1];
        assert_eq!(Trace::from_bytes(truncated), Err(TraceError::UnexpectedEnd));

        let mut trailing = good.clone();
        trailing.push(0);
        assert_eq!(Trace::from_bytes(&trailing), Err(TraceError::TrailingBytes));
    }

    #[test]
    fn broadcasts_use_the_one_byte_encoding() {
        let mut bcast = Trace::new(4);
        bcast.record(TraceEvent {
            cycle: 1,
            source: 3,
            kind: PacketKind::Request,
            destinations: DestinationSet::broadcast(4, 3),
        });
        let mut listed = Trace::new(4);
        listed.record(TraceEvent {
            cycle: 1,
            source: 3,
            kind: PacketKind::Request,
            destinations: (0u16..16).filter(|&d| d != 3).collect::<DestinationSet>(),
        });
        // Identical sets: the broadcast-tagged encoding must be much smaller
        // than fifteen listed destinations, yet decode to the same trace.
        assert_eq!(bcast, listed);
        assert_eq!(bcast.to_bytes(), listed.to_bytes());
        assert!(bcast.to_bytes().len() < 16 + 15 * 2);
        assert_eq!(Trace::from_bytes(&bcast.to_bytes()).unwrap(), listed);
    }
}
