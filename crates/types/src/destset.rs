//! Destination sets for unicast, multicast and broadcast packets.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::coord::NodeId;

/// Maximum number of nodes a [`DestinationSet`] can represent (a 16×16 mesh).
pub(crate) const MAX_NODES: usize = 256;
const WORDS: usize = MAX_NODES / 64;

/// The set of destination nodes of a packet.
///
/// A unicast packet has exactly one destination; a broadcast packet targets
/// every node except (by the paper's convention) the source itself; general
/// multicasts can target any subset. The set is a fixed-size bit vector
/// sized for meshes up to 16×16, which comfortably covers the paper's 4×4
/// prototype and the 8×8 networks used in its Table 2 comparisons.
///
/// # Examples
///
/// ```
/// use noc_types::DestinationSet;
///
/// let unicast = DestinationSet::unicast(9);
/// assert_eq!(unicast.len(), 1);
/// assert!(unicast.is_unicast());
///
/// let bcast = DestinationSet::broadcast(4, 0);
/// assert_eq!(bcast.len(), 15);
/// assert!(!bcast.contains(0));
/// assert!(bcast.contains(15));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct DestinationSet {
    words: [u64; WORDS],
}

impl DestinationSet {
    /// The empty destination set.
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// A set containing the single destination `dest`.
    ///
    /// # Panics
    ///
    /// Panics if `dest >= 256`.
    #[must_use]
    pub fn unicast(dest: NodeId) -> Self {
        let mut s = Self::empty();
        s.insert(dest);
        s
    }

    /// The broadcast set for a k×k mesh: every node except `source`.
    ///
    /// # Panics
    ///
    /// Panics if `k * k > 256`.
    #[must_use]
    pub fn broadcast(k: u16, source: NodeId) -> Self {
        let nodes = usize::from(k) * usize::from(k);
        assert!(nodes <= MAX_NODES, "mesh too large for DestinationSet");
        let mut s = Self::empty();
        for id in 0..nodes as u16 {
            if id != source {
                s.insert(id);
            }
        }
        s
    }

    /// Adds `dest` to the set. Returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `dest >= 256`.
    pub fn insert(&mut self, dest: NodeId) -> bool {
        let idx = usize::from(dest);
        assert!(idx < MAX_NODES, "destination id out of range");
        let (w, b) = (idx / 64, idx % 64);
        let was_absent = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        was_absent
    }

    /// Removes `dest` from the set. Returns `true` if it was present.
    pub fn remove(&mut self, dest: NodeId) -> bool {
        let idx = usize::from(dest);
        if idx >= MAX_NODES {
            return false;
        }
        let (w, b) = (idx / 64, idx % 64);
        let was_present = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        was_present
    }

    /// Returns `true` if the set contains `dest`.
    #[must_use]
    pub fn contains(&self, dest: NodeId) -> bool {
        let idx = usize::from(dest);
        if idx >= MAX_NODES {
            return false;
        }
        self.words[idx / 64] & (1 << (idx % 64)) != 0
    }

    /// Number of destinations in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` when the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Returns `true` when the set contains exactly one destination.
    #[must_use]
    pub fn is_unicast(&self) -> bool {
        self.len() == 1
    }

    /// Returns `true` when the set contains more than one destination.
    #[must_use]
    pub fn is_multicast(&self) -> bool {
        self.len() > 1
    }

    /// The single destination, if this set is a unicast.
    #[must_use]
    pub fn sole_destination(&self) -> Option<NodeId> {
        if self.is_unicast() {
            self.iter().next()
        } else {
            None
        }
    }

    /// Iterates over the destinations in ascending node-id order.
    pub fn iter(&self) -> Iter {
        Iter {
            set: *self,
            next: 0,
        }
    }

    /// Union of two destination sets.
    #[must_use]
    pub fn union(&self, other: &DestinationSet) -> DestinationSet {
        let mut out = *self;
        for (a, b) in out.words.iter_mut().zip(other.words.iter()) {
            *a |= *b;
        }
        out
    }

    /// Intersection of two destination sets.
    #[must_use]
    pub fn intersection(&self, other: &DestinationSet) -> DestinationSet {
        let mut out = *self;
        for (a, b) in out.words.iter_mut().zip(other.words.iter()) {
            *a &= *b;
        }
        out
    }

    /// Set difference `self \ other`.
    #[must_use]
    pub fn difference(&self, other: &DestinationSet) -> DestinationSet {
        let mut out = *self;
        for (a, b) in out.words.iter_mut().zip(other.words.iter()) {
            *a &= !*b;
        }
        out
    }
}

impl fmt::Debug for DestinationSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<NodeId> for DestinationSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let mut s = DestinationSet::empty();
        for d in iter {
            s.insert(d);
        }
        s
    }
}

impl Extend<NodeId> for DestinationSet {
    fn extend<I: IntoIterator<Item = NodeId>>(&mut self, iter: I) {
        for d in iter {
            self.insert(d);
        }
    }
}

/// Iterator over the destinations of a [`DestinationSet`].
#[derive(Debug, Clone)]
pub struct Iter {
    set: DestinationSet,
    next: usize,
}

impl Iterator for Iter {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        while self.next < MAX_NODES {
            let id = self.next as NodeId;
            self.next += 1;
            if self.set.contains(id) {
                return Some(id);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unicast_has_one_destination() {
        let s = DestinationSet::unicast(42);
        assert!(s.is_unicast());
        assert!(!s.is_multicast());
        assert_eq!(s.sole_destination(), Some(42));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![42]);
    }

    #[test]
    fn broadcast_excludes_source() {
        let s = DestinationSet::broadcast(4, 5);
        assert_eq!(s.len(), 15);
        assert!(!s.contains(5));
        assert!(s.is_multicast());
        assert_eq!(s.sole_destination(), None);
    }

    #[test]
    fn insert_and_remove() {
        let mut s = DestinationSet::empty();
        assert!(s.insert(200));
        assert!(!s.insert(200));
        assert!(s.contains(200));
        assert!(s.remove(200));
        assert!(!s.remove(200));
        assert!(s.is_empty());
    }

    #[test]
    fn set_algebra() {
        let a: DestinationSet = [1u16, 2, 3].into_iter().collect();
        let b: DestinationSet = [3u16, 4].into_iter().collect();
        assert_eq!(a.union(&b).len(), 4);
        assert_eq!(a.intersection(&b).iter().collect::<Vec<_>>(), vec![3]);
        assert_eq!(a.difference(&b).iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn out_of_range_contains_is_false() {
        let s = DestinationSet::unicast(0);
        assert!(!s.contains(300));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_insert_panics() {
        let mut s = DestinationSet::empty();
        s.insert(256);
    }

    #[test]
    fn debug_lists_members() {
        let s: DestinationSet = [7u16, 3].into_iter().collect();
        assert_eq!(format!("{s:?}"), "{3, 7}");
    }
}
