//! Packets: the unit of injection at the network interface.

use std::fmt;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::coord::NodeId;
use crate::destset::DestinationSet;
use crate::flit::{Flit, FlitKind, FLIT_BITS};
use crate::message::MessageClass;
use crate::Cycle;

/// Globally unique packet identifier (assigned by the injecting NIC).
pub type PacketId = u64;

/// The two packet formats used by the fabricated chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PacketKind {
    /// Coherence request or acknowledgement: a single flit that is both head
    /// and tail.
    Request,
    /// Cache-line data response: five flits (head + 3 body + tail).
    Response,
}

impl PacketKind {
    /// Number of flits a packet of this kind is segmented into.
    #[must_use]
    pub fn flit_count(self) -> usize {
        match self {
            PacketKind::Request => 1,
            PacketKind::Response => 5,
        }
    }

    /// Message class this packet kind travels in.
    #[must_use]
    pub fn message_class(self) -> MessageClass {
        match self {
            PacketKind::Request => MessageClass::Request,
            PacketKind::Response => MessageClass::Response,
        }
    }
}

impl fmt::Display for PacketKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacketKind::Request => f.write_str("request"),
            PacketKind::Response => f.write_str("response"),
        }
    }
}

/// A packet before segmentation into flits.
///
/// A packet carries its source, its destination set (one node for unicasts,
/// all-but-source for broadcasts), its kind (which fixes the flit count and
/// message class), an optional payload, and the cycle at which the NIC
/// created it (used for end-to-end latency accounting).
///
/// # Examples
///
/// ```
/// use noc_types::{DestinationSet, Packet, PacketKind};
///
/// let p = Packet::new(7, 0, DestinationSet::unicast(12), PacketKind::Response, 100);
/// let flits = p.to_flits();
/// assert_eq!(flits.len(), 5);
/// assert!(flits[0].kind().is_head());
/// assert!(flits[4].kind().is_tail());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    id: PacketId,
    source: NodeId,
    destinations: DestinationSet,
    kind: PacketKind,
    created_at: Cycle,
    #[serde(skip)]
    payload: Bytes,
}

impl Packet {
    /// Creates a packet.
    ///
    /// `created_at` is the cycle at which the source NIC generated the packet;
    /// end-to-end latency is measured from this cycle until the last
    /// destination NIC receives the tail flit.
    #[must_use]
    pub fn new(
        id: PacketId,
        source: NodeId,
        destinations: DestinationSet,
        kind: PacketKind,
        created_at: Cycle,
    ) -> Self {
        Self {
            id,
            source,
            destinations,
            kind,
            created_at,
            payload: Bytes::new(),
        }
    }

    /// Attaches an application payload to the packet.
    ///
    /// The payload is carried for end-to-end integrity checks in tests and
    /// examples; it does not change the flit count (the chip's flit size is
    /// fixed at 64 bits regardless of how much payload the protocol layer
    /// actually uses).
    #[must_use]
    pub fn with_payload(mut self, payload: Bytes) -> Self {
        self.payload = payload;
        self
    }

    /// Packet identifier.
    #[must_use]
    pub fn id(&self) -> PacketId {
        self.id
    }

    /// Injecting node.
    #[must_use]
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Destination set.
    #[must_use]
    pub fn destinations(&self) -> &DestinationSet {
        &self.destinations
    }

    /// Packet kind (request / response).
    #[must_use]
    pub fn kind(&self) -> PacketKind {
        self.kind
    }

    /// Cycle at which the source NIC created the packet.
    #[must_use]
    pub fn created_at(&self) -> Cycle {
        self.created_at
    }

    /// Application payload (possibly empty).
    #[must_use]
    pub fn payload(&self) -> &Bytes {
        &self.payload
    }

    /// Message class the packet travels in.
    #[must_use]
    pub fn message_class(&self) -> MessageClass {
        self.kind.message_class()
    }

    /// Number of flits the packet is segmented into.
    #[must_use]
    pub fn flit_count(&self) -> usize {
        self.kind.flit_count()
    }

    /// Returns `true` if the packet targets more than one node.
    #[must_use]
    pub fn is_multicast(&self) -> bool {
        self.destinations.is_multicast()
    }

    /// Total number of payload bits moved over a single link when the whole
    /// packet crosses it.
    #[must_use]
    pub fn bits(&self) -> u64 {
        self.flit_count() as u64 * FLIT_BITS as u64
    }

    /// Segments the packet into its flits.
    ///
    /// The head flit carries the destination set; body and tail flits carry a
    /// 64-bit slice of the payload. For single-flit packets the lone flit is
    /// [`FlitKind::HeadTail`].
    #[must_use]
    pub fn to_flits(&self) -> Vec<Flit> {
        let mut flits = Vec::with_capacity(self.flit_count());
        self.write_flits_into(&mut flits);
        flits
    }

    /// Segments the packet into its flits, appending them to `out`.
    ///
    /// This is the allocation-free sibling of [`Packet::to_flits`]: callers
    /// on the injection fast path (the NICs) keep one scratch buffer alive
    /// and reuse its capacity across every packet they segment.
    pub fn write_flits_into(&self, out: &mut Vec<Flit>) {
        let n = self.flit_count();
        for i in 0..n {
            let kind = if n == 1 {
                FlitKind::HeadTail
            } else if i == 0 {
                FlitKind::Head
            } else if i == n - 1 {
                FlitKind::Tail
            } else {
                FlitKind::Body
            };
            let word = payload_word(&self.payload, i);
            out.push(Flit::new(self, i as u8, kind, word));
        }
    }
}

/// Extracts the `i`-th 64-bit little-endian word of `payload`, zero-padded.
fn payload_word(payload: &Bytes, i: usize) -> u64 {
    let mut buf = [0u8; 8];
    let start = i * 8;
    if start < payload.len() {
        let end = (start + 8).min(payload.len());
        buf[..end - start].copy_from_slice(&payload[start..end]);
    }
    u64::from_le_bytes(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_is_single_flit() {
        let p = Packet::new(1, 0, DestinationSet::unicast(3), PacketKind::Request, 10);
        assert_eq!(p.flit_count(), 1);
        assert_eq!(p.bits(), 64);
        let flits = p.to_flits();
        assert_eq!(flits.len(), 1);
        assert_eq!(flits[0].kind(), FlitKind::HeadTail);
        assert_eq!(flits[0].packet_id(), 1);
        assert_eq!(flits[0].created_at(), 10);
    }

    #[test]
    fn response_is_five_flits() {
        let p = Packet::new(2, 5, DestinationSet::unicast(9), PacketKind::Response, 0);
        let flits = p.to_flits();
        assert_eq!(flits.len(), 5);
        assert_eq!(flits[0].kind(), FlitKind::Head);
        assert_eq!(flits[1].kind(), FlitKind::Body);
        assert_eq!(flits[3].kind(), FlitKind::Body);
        assert_eq!(flits[4].kind(), FlitKind::Tail);
        assert!(flits.iter().all(|f| f.packet_id() == 2));
        assert!(flits.iter().all(|f| f.source() == 5));
    }

    #[test]
    fn payload_words_round_trip() {
        let payload = Bytes::from_static(b"0123456789abcdef_tail");
        let p = Packet::new(3, 0, DestinationSet::unicast(1), PacketKind::Response, 0)
            .with_payload(payload.clone());
        let flits = p.to_flits();
        assert_eq!(flits[0].payload(), u64::from_le_bytes(*b"01234567"));
        assert_eq!(flits[1].payload(), u64::from_le_bytes(*b"89abcdef"));
        // Partial final word is zero padded.
        let mut tail = [0u8; 8];
        tail[..5].copy_from_slice(b"_tail");
        assert_eq!(flits[2].payload(), u64::from_le_bytes(tail));
        assert_eq!(flits[4].payload(), 0);
    }

    #[test]
    fn broadcast_packet_is_multicast() {
        let p = Packet::new(
            4,
            0,
            DestinationSet::broadcast(4, 0),
            PacketKind::Request,
            0,
        );
        assert!(p.is_multicast());
        assert_eq!(p.destinations().len(), 15);
    }
}
