//! # noc-circuit
//!
//! Circuit-level substrate for the DAC 2012 mesh NoC reproduction: the
//! low-swing datapath (tri-state reduced-swing drivers, differential shielded
//! links, sense amplifiers), its reliability under process variation, and the
//! timing and area models behind Tables 3 and 4.
//!
//! The paper characterises these circuits with SPICE, Monte-Carlo simulation
//! and silicon measurement. None of those are available here, so this crate
//! implements first-order, physically-motivated models (Elmore wire delay,
//! `C·V_swing·V_drive` switching energy, Gaussian sense-amplifier offsets)
//! whose free parameters are calibrated once — in [`params`] — so that the
//! headline numbers of the paper hold: ~3.2× lower link energy at 300 mV
//! swing, single-cycle ST+LT at 5.4 GHz over 1 mm links and 2.6 GHz over
//! 2 mm links, 3-σ reliability at 300 mV, a 3.1× crossbar area overhead, and
//! the 1.08× / 1.21× critical-path stretch of virtual bypassing.
//!
//! # Examples
//!
//! ```
//! use noc_circuit::{LinkTechnology, LowSwingLink, Wire};
//!
//! let wire = Wire::link_45nm(1.0);
//! let low_swing = LowSwingLink::new(wire, 0.3);
//! let full_swing = LowSwingLink::full_swing_equivalent(wire);
//! let gain = full_swing.energy_per_bit_fj() / low_swing.energy_per_bit_fj();
//! assert!(gain > 2.5, "low-swing should be much cheaper, got {gain}x");
//! assert!(low_swing.max_frequency_ghz() > 5.0);
//! assert_eq!(low_swing.technology(), LinkTechnology::LowSwing);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod area;
mod eye;
mod lowswing;
mod montecarlo;
pub mod params;
mod timing;
mod wire;

pub use area::{AreaModel, AreaReport};
pub use eye::{EyeAnalysis, LinkTopology};
pub use lowswing::{LinkTechnology, LowSwingLink, MulticastPowerPoint};
pub use montecarlo::{MonteCarloResult, SenseAmpVariation};
pub use timing::{CriticalPathModel, CriticalPathReport, TimingStage};
pub use wire::Wire;
