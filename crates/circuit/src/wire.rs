//! First-order RC wire model.

use serde::{Deserialize, Serialize};

use crate::params;

/// A distributed RC wire of a given length.
///
/// The chip's link wires are 0.15 µm wide with 0.30 µm spacing, fully
/// shielded and routed differentially; [`Wire::link_45nm`] builds a wire with
/// the calibrated per-millimetre resistance and capacitance of that geometry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Wire {
    length_mm: f64,
    r_per_mm: f64,
    c_per_mm_ff: f64,
}

impl Wire {
    /// Creates a wire with explicit per-millimetre parasitics.
    ///
    /// # Panics
    ///
    /// Panics if any argument is negative.
    #[must_use]
    pub fn new(length_mm: f64, r_per_mm: f64, c_per_mm_ff: f64) -> Self {
        assert!(
            length_mm >= 0.0 && r_per_mm >= 0.0 && c_per_mm_ff >= 0.0,
            "wire parameters must be non-negative"
        );
        Self {
            length_mm,
            r_per_mm,
            c_per_mm_ff,
        }
    }

    /// A link wire of the chip's 45nm process with the calibrated geometry
    /// (0.15 µm width / 0.30 µm space, shielded).
    #[must_use]
    pub fn link_45nm(length_mm: f64) -> Self {
        Self::new(length_mm, params::WIRE_R_PER_MM, params::WIRE_C_PER_MM)
    }

    /// Wire length in millimetres.
    #[must_use]
    pub fn length_mm(&self) -> f64 {
        self.length_mm
    }

    /// Total wire resistance in ohms.
    #[must_use]
    pub fn resistance_ohm(&self) -> f64 {
        self.r_per_mm * self.length_mm
    }

    /// Total wire capacitance in femtofarads.
    #[must_use]
    pub fn capacitance_ff(&self) -> f64 {
        self.c_per_mm_ff * self.length_mm
    }

    /// Returns a copy of this wire with its resistance scaled by `factor`
    /// (used by the wire-resistance-variation study of Fig. 12).
    #[must_use]
    pub fn with_resistance_variation(&self, factor: f64) -> Self {
        Self {
            r_per_mm: self.r_per_mm * factor,
            ..*self
        }
    }

    /// Elmore delay in picoseconds when driven by a source of
    /// `drive_resistance` ohms with `fixed_cap_ff` femtofarads of lumped load
    /// at the driver.
    #[must_use]
    pub fn elmore_delay_ps(&self, drive_resistance: f64, fixed_cap_ff: f64) -> f64 {
        let c_total = self.capacitance_ff() + fixed_cap_ff;
        // fF * Ohm = 1e-15 F * Ohm = 1e-15 s = 1e-3 ps.
        let driver_term = params::ELMORE_DRIVER * drive_resistance * c_total * 1e-3;
        let wire_term = params::ELMORE_WIRE * self.resistance_ohm() * self.capacitance_ff() * 1e-3;
        driver_term + wire_term
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parasitics_scale_with_length() {
        let w1 = Wire::link_45nm(1.0);
        let w2 = Wire::link_45nm(2.0);
        assert!((w2.resistance_ohm() - 2.0 * w1.resistance_ohm()).abs() < 1e-9);
        assert!((w2.capacitance_ff() - 2.0 * w1.capacitance_ff()).abs() < 1e-9);
    }

    #[test]
    fn elmore_delay_grows_superlinearly_with_length() {
        let d1 = Wire::link_45nm(1.0).elmore_delay_ps(params::RSD_DRIVE_RES, 30.0);
        let d2 = Wire::link_45nm(2.0).elmore_delay_ps(params::RSD_DRIVE_RES, 30.0);
        assert!(
            d2 > 2.0 * d1 * 0.9,
            "wire RC term must make delay superlinear-ish"
        );
        assert!(
            d2 < 4.0 * d1,
            "but far from pure quadratic at these lengths"
        );
    }

    #[test]
    fn resistance_variation_only_scales_r() {
        let w = Wire::link_45nm(2.0);
        let v = w.with_resistance_variation(1.3);
        assert!((v.resistance_ohm() - 1.3 * w.resistance_ohm()).abs() < 1e-9);
        assert!((v.capacitance_ff() - w.capacitance_ff()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_length_panics() {
        let _ = Wire::new(-1.0, 1.0, 1.0);
    }
}
