//! Repeated versus repeaterless low-swing links (Fig. 12 of the paper).
//!
//! For a 2 mm span the designer can either insert a tri-state RSD repeater at
//! 1 mm (regenerating the signal at the cost of an extra cycle and extra
//! energy) or drive the full 2 mm directly. The paper's SPICE study finds the
//! repeated option has a larger vertical eye (more noise margin) under wire
//! resistance variation, but costs one additional cycle and ~28% more energy.

use serde::{Deserialize, Serialize};

use crate::lowswing::LowSwingLink;
use crate::params;
use crate::wire::Wire;

/// Physical arrangement of a low-swing span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkTopology {
    /// The span is broken into equal segments with an RSD repeater between
    /// them; each segment takes one clock cycle.
    Repeated {
        /// Number of segments (2 for the paper's 1 mm + 1 mm case).
        segments: u32,
    },
    /// The whole span is driven by a single RSD.
    Repeaterless,
}

/// Eye/noise-margin analysis of one low-swing span.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EyeAnalysis {
    span_mm: f64,
    swing_v: f64,
    topology: LinkTopology,
}

impl EyeAnalysis {
    /// Creates an analysis of a `span_mm`-long link at `swing_v` volts.
    ///
    /// # Panics
    ///
    /// Panics if the span is not positive or a repeated topology has fewer
    /// than two segments.
    #[must_use]
    pub fn new(span_mm: f64, swing_v: f64, topology: LinkTopology) -> Self {
        assert!(span_mm > 0.0, "span must be positive");
        if let LinkTopology::Repeated { segments } = topology {
            assert!(segments >= 2, "a repeated span needs at least two segments");
        }
        Self {
            span_mm,
            swing_v,
            topology,
        }
    }

    /// The paper's repeated configuration: 2 mm covered as 1 mm + 1 mm.
    #[must_use]
    pub fn repeated_2mm() -> Self {
        Self::new(
            2.0,
            params::DEFAULT_SWING,
            LinkTopology::Repeated { segments: 2 },
        )
    }

    /// The paper's repeaterless configuration: a single 2 mm drive.
    #[must_use]
    pub fn repeaterless_2mm() -> Self {
        Self::new(2.0, params::DEFAULT_SWING, LinkTopology::Repeaterless)
    }

    /// Link topology.
    #[must_use]
    pub fn topology(&self) -> LinkTopology {
        self.topology
    }

    /// Length driven by a single RSD stage.
    #[must_use]
    pub fn segment_length_mm(&self) -> f64 {
        match self.topology {
            LinkTopology::Repeated { segments } => self.span_mm / f64::from(segments),
            LinkTopology::Repeaterless => self.span_mm,
        }
    }

    /// Cycles of latency the span costs at the network clock (one per
    /// segment).
    #[must_use]
    pub fn latency_cycles(&self) -> u32 {
        match self.topology {
            LinkTopology::Repeated { segments } => segments,
            LinkTopology::Repeaterless => 1,
        }
    }

    /// Energy per transmitted bit over the whole span, in femtojoules.
    ///
    /// Every repeated segment pays the full receiver/driver overhead again,
    /// which is why repeating costs more energy even though each segment is
    /// shorter.
    #[must_use]
    pub fn energy_per_bit_fj(&self) -> f64 {
        let per_segment =
            LowSwingLink::new(Wire::link_45nm(self.segment_length_mm()), self.swing_v)
                .energy_per_bit_fj();
        per_segment * f64::from(self.latency_cycles())
    }

    /// Vertical eye opening in volts at a given data rate and wire-resistance
    /// variation factor.
    ///
    /// The received swing is degraded by the RC settling of the segment: the
    /// longer the unrepeated wire (and the higher its resistance variation),
    /// the less of the swing has developed when the sense amplifier strobes.
    #[must_use]
    pub fn eye_height_v(&self, data_rate_gbps: f64, resistance_variation: f64) -> f64 {
        let wire = Wire::link_45nm(self.segment_length_mm())
            .with_resistance_variation(resistance_variation);
        let tau_ps = wire.elmore_delay_ps(params::RSD_DRIVE_RES, params::RSD_FIXED_CAP_FF);
        let bit_time_ps = 1000.0 / data_rate_gbps;
        // Fraction of the swing developed within one bit time (first-order
        // settling), assuming the strobe fires at the end of the bit.
        let settled = 1.0 - (-bit_time_ps / tau_ps).exp();
        self.swing_v * settled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RATE_GBPS: f64 = 2.5;

    #[test]
    fn repeated_span_has_larger_eye_under_variation() {
        let repeated = EyeAnalysis::repeated_2mm();
        let direct = EyeAnalysis::repeaterless_2mm();
        for variation in [1.0, 1.2, 1.5] {
            assert!(
                repeated.eye_height_v(RATE_GBPS, variation)
                    > direct.eye_height_v(RATE_GBPS, variation),
                "repeated segments must settle closer to the full swing"
            );
        }
    }

    #[test]
    fn repeaterless_span_saves_one_cycle_and_about_28_percent_energy() {
        let repeated = EyeAnalysis::repeated_2mm();
        let direct = EyeAnalysis::repeaterless_2mm();
        assert_eq!(repeated.latency_cycles(), 2);
        assert_eq!(direct.latency_cycles(), 1);
        let overhead = repeated.energy_per_bit_fj() / direct.energy_per_bit_fj() - 1.0;
        assert!(
            (0.18..=0.40).contains(&overhead),
            "expected ~28% energy overhead for the repeated span, got {:.0}%",
            overhead * 100.0
        );
    }

    #[test]
    fn eye_shrinks_with_resistance_variation_and_data_rate() {
        let direct = EyeAnalysis::repeaterless_2mm();
        assert!(direct.eye_height_v(RATE_GBPS, 1.0) > direct.eye_height_v(RATE_GBPS, 1.5));
        assert!(direct.eye_height_v(2.0, 1.0) > direct.eye_height_v(6.0, 1.0));
    }

    #[test]
    fn eye_never_exceeds_the_swing() {
        for analysis in [EyeAnalysis::repeated_2mm(), EyeAnalysis::repeaterless_2mm()] {
            let eye = analysis.eye_height_v(1.0, 1.0);
            assert!(eye > 0.0 && eye <= params::DEFAULT_SWING + 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "at least two segments")]
    fn single_segment_repeated_is_rejected() {
        let _ = EyeAnalysis::new(2.0, 0.3, LinkTopology::Repeated { segments: 1 });
    }
}
