//! Critical-path timing model (Table 3 of the paper).
//!
//! The critical path of both the baseline and the proposed router runs
//! through the second pipeline stage, where mSA-II (the per-output matrix
//! arbitration) is performed. Virtual bypassing lengthens that path because
//! arriving lookaheads must be muxed into the arbiter with priority over
//! buffered requests. The paper reports:
//!
//! | | pre-layout | post-layout | measured |
//! |---|---|---|---|
//! | baseline | 549 ps | 658 ps | — |
//! | proposed (bypassed) | 593 ps (1.08×) | 793 ps (1.21×) | 961 ps (1/1.04 GHz) |
//!
//! (The paper prints "ns", but the values are clearly the picosecond periods
//! of a ~1–2 GHz clock; we model them as picoseconds.)

use serde::{Deserialize, Serialize};

/// One contributor to the stage-2 critical path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingStage {
    /// Human-readable name of the path segment.
    pub name: String,
    /// Gate-level delay of the segment in picoseconds (pre-layout).
    pub delay_ps: f64,
}

/// Critical-path model of the router's allocation stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CriticalPathModel {
    stages: Vec<TimingStage>,
    /// Extra delay added by the lookahead priority mux and the wider
    /// multicast grant logic (only present in the proposed router).
    lookahead_overhead_ps: f64,
    /// Multiplicative factor covering post-layout wire parasitics and cell
    /// sizing for the baseline router.
    post_layout_factor_baseline: f64,
    /// The same factor for the proposed router, slightly larger because the
    /// lookahead wiring is global (it crosses the router to reach mSA-II).
    post_layout_factor_proposed: f64,
    /// Silicon margin between the post-layout estimate and the measured chip
    /// (clock distribution skew, supply droop, temperature — §4.2).
    silicon_margin_factor: f64,
}

impl CriticalPathModel {
    /// The calibrated 45nm SOI model used throughout the workspace.
    #[must_use]
    pub fn chip_45nm() -> Self {
        Self {
            stages: vec![
                TimingStage {
                    name: "input request registering".to_owned(),
                    delay_ps: 78.0,
                },
                TimingStage {
                    name: "next-route computation overlap".to_owned(),
                    delay_ps: 96.0,
                },
                TimingStage {
                    name: "mSA-II matrix arbitration (5 requestors)".to_owned(),
                    delay_ps: 230.0,
                },
                TimingStage {
                    name: "grant encode and crossbar select drive".to_owned(),
                    delay_ps: 105.0,
                },
                TimingStage {
                    name: "pipeline register setup".to_owned(),
                    delay_ps: 40.0,
                },
            ],
            lookahead_overhead_ps: 44.0,
            post_layout_factor_baseline: 658.0 / 549.0,
            post_layout_factor_proposed: 793.0 / 593.0,
            silicon_margin_factor: 961.0 / 793.0,
        }
    }

    /// Path segments of the baseline stage-2 critical path.
    #[must_use]
    pub fn stages(&self) -> &[TimingStage] {
        &self.stages
    }

    /// Pre-layout critical path of the baseline router in picoseconds.
    #[must_use]
    pub fn baseline_pre_layout_ps(&self) -> f64 {
        self.stages.iter().map(|s| s.delay_ps).sum()
    }

    /// Pre-layout critical path of the proposed (virtual-bypassed) router.
    #[must_use]
    pub fn proposed_pre_layout_ps(&self) -> f64 {
        self.baseline_pre_layout_ps() + self.lookahead_overhead_ps
    }

    /// Post-layout critical path of the baseline router.
    #[must_use]
    pub fn baseline_post_layout_ps(&self) -> f64 {
        self.baseline_pre_layout_ps() * self.post_layout_factor_baseline
    }

    /// Post-layout critical path of the proposed router.
    #[must_use]
    pub fn proposed_post_layout_ps(&self) -> f64 {
        self.proposed_pre_layout_ps() * self.post_layout_factor_proposed
    }

    /// Measured critical path of the fabricated (proposed) router.
    #[must_use]
    pub fn proposed_measured_ps(&self) -> f64 {
        self.proposed_post_layout_ps() * self.silicon_margin_factor
    }

    /// Maximum clock frequency implied by the measured critical path (GHz).
    #[must_use]
    pub fn measured_max_frequency_ghz(&self) -> f64 {
        1000.0 / self.proposed_measured_ps()
    }

    /// Pre-layout critical-path stretch of virtual bypassing
    /// (1.08× in the paper).
    #[must_use]
    pub fn pre_layout_overhead(&self) -> f64 {
        self.proposed_pre_layout_ps() / self.baseline_pre_layout_ps()
    }

    /// Post-layout critical-path stretch of virtual bypassing
    /// (1.21× in the paper).
    #[must_use]
    pub fn post_layout_overhead(&self) -> f64 {
        self.proposed_post_layout_ps() / self.baseline_post_layout_ps()
    }

    /// The whole of Table 3 as a report struct.
    #[must_use]
    pub fn table3(&self) -> CriticalPathReport {
        CriticalPathReport {
            baseline_pre_layout_ps: self.baseline_pre_layout_ps(),
            proposed_pre_layout_ps: self.proposed_pre_layout_ps(),
            pre_layout_overhead: self.pre_layout_overhead(),
            baseline_post_layout_ps: self.baseline_post_layout_ps(),
            proposed_post_layout_ps: self.proposed_post_layout_ps(),
            post_layout_overhead: self.post_layout_overhead(),
            measured_ps: self.proposed_measured_ps(),
            measured_frequency_ghz: self.measured_max_frequency_ghz(),
        }
    }
}

impl Default for CriticalPathModel {
    fn default() -> Self {
        Self::chip_45nm()
    }
}

/// The rows of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CriticalPathReport {
    /// Baseline router, pre-layout synthesis estimate (ps).
    pub baseline_pre_layout_ps: f64,
    /// Proposed router, pre-layout synthesis estimate (ps).
    pub proposed_pre_layout_ps: f64,
    /// Pre-layout overhead of the proposed router over the baseline.
    pub pre_layout_overhead: f64,
    /// Baseline router, post-layout estimate (ps).
    pub baseline_post_layout_ps: f64,
    /// Proposed router, post-layout estimate (ps).
    pub proposed_post_layout_ps: f64,
    /// Post-layout overhead of the proposed router over the baseline.
    pub post_layout_overhead: f64,
    /// Measured critical path of the fabricated chip (ps).
    pub measured_ps: f64,
    /// Maximum measured clock frequency (GHz).
    pub measured_frequency_ghz: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn table3_pre_layout_values() {
        let m = CriticalPathModel::chip_45nm();
        assert!(close(m.baseline_pre_layout_ps(), 549.0, 0.5));
        assert!(close(m.proposed_pre_layout_ps(), 593.0, 0.5));
        assert!(close(m.pre_layout_overhead(), 1.08, 0.01));
    }

    #[test]
    fn table3_post_layout_values() {
        let m = CriticalPathModel::chip_45nm();
        assert!(close(m.baseline_post_layout_ps(), 658.0, 1.0));
        assert!(close(m.proposed_post_layout_ps(), 793.0, 1.0));
        assert!(close(m.post_layout_overhead(), 1.21, 0.01));
    }

    #[test]
    fn table3_measured_values() {
        let m = CriticalPathModel::chip_45nm();
        assert!(close(m.proposed_measured_ps(), 961.0, 1.5));
        assert!(close(m.measured_max_frequency_ghz(), 1.04, 0.01));
    }

    #[test]
    fn arbitration_dominates_the_stage() {
        let m = CriticalPathModel::chip_45nm();
        let max = m
            .stages()
            .iter()
            .max_by(|a, b| a.delay_ps.total_cmp(&b.delay_ps))
            .unwrap();
        assert!(max.name.contains("mSA-II"));
    }

    #[test]
    fn report_is_internally_consistent() {
        let r = CriticalPathModel::chip_45nm().table3();
        assert!(r.proposed_pre_layout_ps > r.baseline_pre_layout_ps);
        assert!(r.proposed_post_layout_ps > r.baseline_post_layout_ps);
        assert!(r.measured_ps > r.proposed_post_layout_ps);
        assert!(close(
            r.measured_frequency_ghz,
            1000.0 / r.measured_ps,
            1e-9
        ));
    }
}
