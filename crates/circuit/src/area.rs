//! Area model (Table 4 of the paper).
//!
//! The low-swing crossbar pays a large area premium over a synthesized
//! full-swing crossbar: differential signaling doubles the wire count, the
//! wires are fully shielded, and the tri-state RSDs must be placed and routed
//! by hand to control noise coupling, which prevents dense packing. At the
//! router level the premium is diluted by the buffers, allocators and VC
//! state that are common to both designs, and it shrinks further once a tile
//! (core + cache + router) is considered.

use serde::{Deserialize, Serialize};

/// Area accounting for one router in square micrometres.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// Area of one bit-slice of the synthesized full-swing 5×5 crossbar (µm²).
    pub full_swing_xbar_per_bit_um2: f64,
    /// Differential wiring factor of the low-swing crossbar (two wires per
    /// signal).
    pub differential_factor: f64,
    /// Shielding factor (grounded shield wires between signal pairs).
    pub shielding_factor: f64,
    /// Placement inefficiency of the hand-crafted RSD macro relative to
    /// synthesized standard cells.
    pub placement_factor: f64,
    /// Flit width in bits.
    pub flit_bits: u32,
    /// Area of everything in the router that is not the crossbar: input
    /// buffers, allocators, VC state, lookahead logic (µm²).
    pub non_crossbar_um2: f64,
    /// Extra router-level area needed only by the low-swing design: LVDD
    /// supply routing, level shifters at the crossbar boundary and the
    /// keep-out margin around the hand-placed macro (µm²).
    pub low_swing_integration_um2: f64,
}

impl AreaModel {
    /// The calibrated model of the fabricated 64-bit 5×5 router.
    #[must_use]
    pub fn chip_45nm() -> Self {
        Self {
            // 26,840 µm² / 64 bits ≈ 419 µm² per bit-slice.
            full_swing_xbar_per_bit_um2: 26_840.0 / 64.0,
            differential_factor: 2.0,
            shielding_factor: 1.25,
            placement_factor: 1.24,
            flit_bits: 64,
            // 227,230 µm² router minus its 26,840 µm² crossbar.
            non_crossbar_um2: 227_230.0 - 26_840.0,
            // 318,600 µm² measured low-swing router minus the shared logic
            // and the low-swing crossbar itself.
            low_swing_integration_um2: 318_600.0 - (227_230.0 - 26_840.0) - 83_200.0,
        }
    }

    /// Area of the synthesized full-swing crossbar (µm²).
    #[must_use]
    pub fn full_swing_crossbar_um2(&self) -> f64 {
        self.full_swing_xbar_per_bit_um2 * f64::from(self.flit_bits)
    }

    /// Area of the proposed low-swing crossbar (µm²).
    #[must_use]
    pub fn low_swing_crossbar_um2(&self) -> f64 {
        self.full_swing_crossbar_um2()
            * self.differential_factor
            * self.shielding_factor
            * self.placement_factor
    }

    /// Crossbar area overhead of low-swing signaling (3.1× in Table 4).
    #[must_use]
    pub fn crossbar_overhead(&self) -> f64 {
        self.low_swing_crossbar_um2() / self.full_swing_crossbar_um2()
    }

    /// Area of the router built around the full-swing crossbar (µm²).
    #[must_use]
    pub fn full_swing_router_um2(&self) -> f64 {
        self.non_crossbar_um2 + self.full_swing_crossbar_um2()
    }

    /// Area of the router built around the low-swing crossbar (µm²).
    #[must_use]
    pub fn low_swing_router_um2(&self) -> f64 {
        self.non_crossbar_um2 + self.low_swing_crossbar_um2() + self.low_swing_integration_um2
    }

    /// Router-level area overhead of low-swing signaling (1.4× in Table 4).
    #[must_use]
    pub fn router_overhead(&self) -> f64 {
        self.low_swing_router_um2() / self.full_swing_router_um2()
    }

    /// Overhead once the router sits in a tile of `tile_um2` square
    /// micrometres (core + cache + router); the premium keeps shrinking as
    /// the tile grows, which is the paper's argument for its acceptability.
    #[must_use]
    pub fn tile_overhead(&self, tile_um2: f64) -> f64 {
        let extra = self.low_swing_router_um2() - self.full_swing_router_um2();
        (tile_um2 + extra) / tile_um2
    }

    /// The four rows of Table 4.
    #[must_use]
    pub fn table4(&self) -> AreaReport {
        AreaReport {
            full_swing_crossbar_um2: self.full_swing_crossbar_um2(),
            low_swing_crossbar_um2: self.low_swing_crossbar_um2(),
            crossbar_overhead: self.crossbar_overhead(),
            full_swing_router_um2: self.full_swing_router_um2(),
            low_swing_router_um2: self.low_swing_router_um2(),
            router_overhead: self.router_overhead(),
        }
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        Self::chip_45nm()
    }
}

/// The contents of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaReport {
    /// Synthesized full-swing crossbar area (µm²).
    pub full_swing_crossbar_um2: f64,
    /// Proposed low-swing crossbar area (µm²).
    pub low_swing_crossbar_um2: f64,
    /// Crossbar-level overhead factor.
    pub crossbar_overhead: f64,
    /// Router area with the full-swing crossbar (µm²).
    pub full_swing_router_um2: f64,
    /// Router area with the low-swing crossbar (µm²).
    pub low_swing_router_um2: f64,
    /// Router-level overhead factor.
    pub router_overhead: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close_pct(a: f64, b: f64, pct: f64) -> bool {
        (a - b).abs() <= b * pct / 100.0
    }

    #[test]
    fn table4_crossbar_areas() {
        let m = AreaModel::chip_45nm();
        assert!(close_pct(m.full_swing_crossbar_um2(), 26_840.0, 0.1));
        assert!(close_pct(m.low_swing_crossbar_um2(), 83_200.0, 1.5));
        assert!((m.crossbar_overhead() - 3.1).abs() < 0.05);
    }

    #[test]
    fn table4_router_areas() {
        let m = AreaModel::chip_45nm();
        assert!(close_pct(m.full_swing_router_um2(), 227_230.0, 0.1));
        assert!(close_pct(m.low_swing_router_um2(), 318_600.0, 2.5));
        assert!((m.router_overhead() - 1.4).abs() < 0.03);
    }

    #[test]
    fn overhead_shrinks_with_scope() {
        let m = AreaModel::chip_45nm();
        // Crossbar > router > tile overhead ordering.
        let tile = m.tile_overhead(2_000_000.0);
        assert!(m.crossbar_overhead() > m.router_overhead());
        assert!(m.router_overhead() > tile);
        assert!(tile < 1.05, "a 2 mm² tile hides the crossbar premium");
    }

    #[test]
    fn report_matches_model() {
        let m = AreaModel::chip_45nm();
        let r = m.table4();
        assert_eq!(r.crossbar_overhead, m.crossbar_overhead());
        assert_eq!(r.router_overhead, m.router_overhead());
    }
}
