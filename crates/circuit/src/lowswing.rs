//! Low-swing versus full-swing link energetics and speed (Figs. 7 and 11).

use serde::{Deserialize, Serialize};

use crate::params;
use crate::wire::Wire;

/// Which signaling technology drives a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkTechnology {
    /// Differential reduced-swing signaling from a tri-state RSD into a sense
    /// amplifier (the proposed datapath).
    LowSwing,
    /// Conventional full-swing repeated wire (the baseline datapath).
    FullSwing,
}

/// An analytical model of one 1-bit crossbar-plus-link datapath segment.
///
/// # Examples
///
/// ```
/// use noc_circuit::{LowSwingLink, Wire};
///
/// let link = LowSwingLink::new(Wire::link_45nm(1.0), 0.3);
/// // The 300 mV tri-state RSD supports single-cycle ST+LT beyond 5 GHz.
/// assert!(link.max_frequency_ghz() > 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LowSwingLink {
    wire: Wire,
    swing_v: f64,
    technology: LinkTechnology,
}

impl LowSwingLink {
    /// Creates a low-swing link over `wire` with the given voltage swing.
    ///
    /// # Panics
    ///
    /// Panics if `swing_v` is not in `(0, VDD]`.
    #[must_use]
    pub fn new(wire: Wire, swing_v: f64) -> Self {
        assert!(
            swing_v > 0.0 && swing_v <= params::VDD,
            "voltage swing must be in (0, VDD]"
        );
        Self {
            wire,
            swing_v,
            technology: LinkTechnology::LowSwing,
        }
    }

    /// Creates the equivalent full-swing repeated link over the same wire.
    #[must_use]
    pub fn full_swing_equivalent(wire: Wire) -> Self {
        Self {
            wire,
            swing_v: params::VDD,
            technology: LinkTechnology::FullSwing,
        }
    }

    /// The underlying wire.
    #[must_use]
    pub fn wire(&self) -> Wire {
        self.wire
    }

    /// Voltage swing on the wire.
    #[must_use]
    pub fn swing_v(&self) -> f64 {
        self.swing_v
    }

    /// Signaling technology of this link.
    #[must_use]
    pub fn technology(&self) -> LinkTechnology {
        self.technology
    }

    /// Energy per transmitted bit in femtojoules.
    ///
    /// Low-swing: two differential wires swing by `V_swing`, charged from the
    /// `LVDD` rail, plus a swing-independent receiver overhead (sense
    /// amplifier strobe, delay cell, enable distribution).
    /// Full-swing: the single-ended wire (plus repeater loading) swings by
    /// `VDD` from the `VDD` rail. Both are scaled by the PRBS switching
    /// activity.
    #[must_use]
    pub fn energy_per_bit_fj(&self) -> f64 {
        let c_wire = self.wire.capacitance_ff() + params::RSD_FIXED_CAP_FF;
        match self.technology {
            LinkTechnology::LowSwing => {
                let dynamic = 2.0 * c_wire * self.swing_v * params::LVDD;
                params::PRBS_ACTIVITY * dynamic + params::RECEIVER_OVERHEAD_FJ
            }
            LinkTechnology::FullSwing => {
                let c_repeated = c_wire * (1.0 + params::REPEATER_CAP_OVERHEAD);
                params::PRBS_ACTIVITY * c_repeated * params::VDD * params::VDD
            }
        }
    }

    /// Propagation delay of one switch-plus-link traversal in picoseconds.
    #[must_use]
    pub fn delay_ps(&self) -> f64 {
        match self.technology {
            LinkTechnology::LowSwing => self
                .wire
                .elmore_delay_ps(params::RSD_DRIVE_RES, params::RSD_FIXED_CAP_FF),
            LinkTechnology::FullSwing => {
                // An optimally repeated full-swing wire is delay-linear in
                // length but each repeater stage costs gate delay.
                params::REPEATER_DELAY_PS_PER_MM * self.wire.length_mm()
                    + self
                        .wire
                        .elmore_delay_ps(params::RSD_DRIVE_RES, params::RSD_FIXED_CAP_FF)
                        * 0.55
            }
        }
    }

    /// Maximum clock frequency (GHz) at which a single cycle covers the
    /// ST+LT traversal of this link.
    #[must_use]
    pub fn max_frequency_ghz(&self) -> f64 {
        1000.0 / self.delay_ps()
    }

    /// Dynamic power in milliwatts when carrying `data_rate_gbps` gigabits
    /// per second.
    #[must_use]
    pub fn dynamic_power_mw(&self, data_rate_gbps: f64) -> f64 {
        // fJ/bit * Gbit/s = microwatts; convert to milliwatts.
        self.energy_per_bit_fj() * data_rate_gbps * 1e-3
    }
}

/// One point of the Fig. 11 study: dynamic power of the 1-bit 5×5 tri-state
/// RSD crossbar with 1 mm links as a function of multicast fan-out.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MulticastPowerPoint {
    /// Number of output ports driven simultaneously (1 = unicast,
    /// 4 = broadcast from one input of a 5×5 crossbar).
    pub fanout: u32,
    /// Dynamic power in milliwatts.
    pub power_mw: f64,
}

impl MulticastPowerPoint {
    /// Computes the Fig. 11 curve: the tri-state RSD drives only the vertical
    /// wires and links of the selected outputs, so power grows linearly with
    /// the multicast count.
    #[must_use]
    pub fn sweep(link_length_mm: f64, swing_v: f64, data_rate_gbps: f64) -> Vec<Self> {
        let per_branch = LowSwingLink::new(Wire::link_45nm(link_length_mm), swing_v)
            .dynamic_power_mw(data_rate_gbps);
        (1..=4)
            .map(|fanout| MulticastPowerPoint {
                fanout,
                power_mw: f64::from(fanout) * per_branch,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_swing_saves_roughly_3x_at_300mv_over_1mm() {
        let wire = Wire::link_45nm(1.0);
        let ls = LowSwingLink::new(wire, params::DEFAULT_SWING);
        let fs = LowSwingLink::full_swing_equivalent(wire);
        let gain = fs.energy_per_bit_fj() / ls.energy_per_bit_fj();
        assert!(
            (2.8..=3.6).contains(&gain),
            "expected ~3.2x energy gain, got {gain:.2}x"
        );
    }

    #[test]
    fn max_frequency_matches_measured_rates() {
        // The paper measures single-cycle ST+LT at up to 5.4 GHz with 1 mm
        // links and 2.6 GHz with 2 mm links.
        let f1 = LowSwingLink::new(Wire::link_45nm(1.0), 0.3).max_frequency_ghz();
        let f2 = LowSwingLink::new(Wire::link_45nm(2.0), 0.3).max_frequency_ghz();
        assert!((5.0..=5.8).contains(&f1), "1 mm: got {f1:.2} GHz");
        assert!((2.3..=2.9).contains(&f2), "2 mm: got {f2:.2} GHz");
    }

    #[test]
    fn energy_decreases_with_swing() {
        let wire = Wire::link_45nm(1.0);
        let e300 = LowSwingLink::new(wire, 0.3).energy_per_bit_fj();
        let e200 = LowSwingLink::new(wire, 0.2).energy_per_bit_fj();
        let e500 = LowSwingLink::new(wire, 0.5).energy_per_bit_fj();
        assert!(e200 < e300 && e300 < e500);
    }

    #[test]
    fn full_swing_is_faster_to_repeat_but_always_costlier() {
        for len in [0.5, 1.0, 2.0] {
            let wire = Wire::link_45nm(len);
            let ls = LowSwingLink::new(wire, 0.3);
            let fs = LowSwingLink::full_swing_equivalent(wire);
            assert!(fs.energy_per_bit_fj() > ls.energy_per_bit_fj());
        }
    }

    #[test]
    fn multicast_power_is_linear_in_fanout() {
        let points = MulticastPowerPoint::sweep(1.0, 0.3, 5.0);
        assert_eq!(points.len(), 4);
        let unit = points[0].power_mw;
        for p in &points {
            assert!((p.power_mw - unit * f64::from(p.fanout)).abs() < 1e-9);
        }
        assert!(points[3].power_mw > points[0].power_mw * 3.9);
    }

    #[test]
    fn dynamic_power_scales_with_data_rate() {
        let link = LowSwingLink::new(Wire::link_45nm(1.0), 0.3);
        assert!((link.dynamic_power_mw(10.0) - 2.0 * link.dynamic_power_mw(5.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "voltage swing")]
    fn zero_swing_panics() {
        let _ = LowSwingLink::new(Wire::link_45nm(1.0), 0.0);
    }
}
