//! Monte-Carlo analysis of sense-amplifier offset under process variation
//! (Fig. 10 of the paper).
//!
//! The dominant noise source of the low-swing receiver is the input-referred
//! offset of its sense amplifier, which process variation spreads roughly
//! Gaussian. A link bit fails when the offset exceeds half the differential
//! swing. The paper runs 1000 SPICE Monte-Carlo samples and picks a 300 mV
//! swing for better-than-3σ reliability; this module reproduces that analysis
//! with a Gaussian offset model.

use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::params;

/// Gaussian model of the sense-amplifier input offset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SenseAmpVariation {
    sigma_v: f64,
}

impl SenseAmpVariation {
    /// Creates a variation model with an explicit offset standard deviation
    /// (volts).
    ///
    /// # Panics
    ///
    /// Panics if `sigma_v` is not positive.
    #[must_use]
    pub fn new(sigma_v: f64) -> Self {
        assert!(sigma_v > 0.0, "offset sigma must be positive");
        Self { sigma_v }
    }

    /// The calibrated 45nm model (σ = 50 mV, which makes a 300 mV swing a 3-σ
    /// design point).
    #[must_use]
    pub fn chip_45nm() -> Self {
        Self::new(params::SENSE_AMP_OFFSET_SIGMA)
    }

    /// Offset standard deviation in volts.
    #[must_use]
    pub fn sigma_v(&self) -> f64 {
        self.sigma_v
    }

    /// How many σ of offset margin a differential swing of `swing_v` leaves
    /// (the sense amplifier sees ±swing/2).
    #[must_use]
    pub fn sigma_margin(&self, swing_v: f64) -> f64 {
        swing_v / 2.0 / self.sigma_v
    }

    /// Analytical link failure probability at `swing_v`:
    /// `P(|offset| > swing/2) = erfc(margin / sqrt(2))`.
    #[must_use]
    pub fn failure_probability(&self, swing_v: f64) -> f64 {
        erfc(self.sigma_margin(swing_v) / std::f64::consts::SQRT_2)
    }

    /// Runs a Monte-Carlo experiment of `runs` sampled sense amplifiers and
    /// counts how many fail at `swing_v` (the Fig. 10 methodology; the paper
    /// uses 1000 SPICE runs).
    #[must_use]
    pub fn monte_carlo(&self, swing_v: f64, runs: u32, seed: u64) -> MonteCarloResult {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut failures = 0u32;
        for _ in 0..runs {
            let offset = self.sigma_v * standard_normal(&mut rng);
            if offset.abs() > swing_v / 2.0 {
                failures += 1;
            }
        }
        MonteCarloResult {
            swing_v,
            runs,
            failures,
        }
    }

    /// Sweeps swing levels and returns (swing, failure probability,
    /// normalised energy) triples — the two curves of Fig. 10. Energy is
    /// normalised to the 300 mV design point.
    #[must_use]
    pub fn fig10_sweep(&self, swings_v: &[f64]) -> Vec<(f64, f64, f64)> {
        let reference = energy_proxy(params::DEFAULT_SWING);
        swings_v
            .iter()
            .map(|&s| (s, self.failure_probability(s), energy_proxy(s) / reference))
            .collect()
    }
}

/// Relative link energy at a given swing (the `C·V_swing·V_LVDD` term that
/// scales with swing; receiver overhead excluded to isolate the trade-off).
fn energy_proxy(swing_v: f64) -> f64 {
    swing_v * params::LVDD
}

/// Result of a Monte-Carlo reliability run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloResult {
    /// Differential swing tested (V).
    pub swing_v: f64,
    /// Number of sampled instances.
    pub runs: u32,
    /// Instances whose offset exceeded the available margin.
    pub failures: u32,
}

impl MonteCarloResult {
    /// Observed failure rate.
    #[must_use]
    pub fn failure_rate(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            f64::from(self.failures) / f64::from(self.runs)
        }
    }
}

/// Samples a standard normal variate with the Box-Muller transform (keeps the
/// workspace free of extra dependencies).
fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Complementary error function (Abramowitz & Stegun 7.1.26 approximation,
/// accurate to ~1.5e-7 which is ample for reliability curves).
fn erfc(x: f64) -> f64 {
    let sign_negative = x < 0.0;
    let x_abs = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x_abs);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let erf = 1.0 - poly * (-x_abs * x_abs).exp();
    let erf = if sign_negative { -erf } else { erf };
    1.0 - erf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chip_design_point_is_three_sigma() {
        let model = SenseAmpVariation::chip_45nm();
        assert!((model.sigma_margin(0.3) - 3.0).abs() < 1e-9);
        // 3-sigma two-sided failure probability is about 0.27%.
        let p = model.failure_probability(0.3);
        assert!((0.002..0.004).contains(&p), "got {p}");
    }

    #[test]
    fn failure_probability_decreases_with_swing() {
        let model = SenseAmpVariation::chip_45nm();
        let p_low = model.failure_probability(0.15);
        let p_mid = model.failure_probability(0.3);
        let p_high = model.failure_probability(0.5);
        assert!(p_low > p_mid && p_mid > p_high);
        assert!(
            p_low > 0.1,
            "half the margin should fail often, got {p_low}"
        );
    }

    #[test]
    fn monte_carlo_agrees_with_the_analytic_rate() {
        let model = SenseAmpVariation::chip_45nm();
        let mc = model.monte_carlo(0.2, 20_000, 42);
        let analytic = model.failure_probability(0.2);
        assert!(
            (mc.failure_rate() - analytic).abs() < 0.01,
            "mc {} vs analytic {}",
            mc.failure_rate(),
            analytic
        );
    }

    #[test]
    fn monte_carlo_is_deterministic_per_seed() {
        let model = SenseAmpVariation::chip_45nm();
        let a = model.monte_carlo(0.25, 1000, 7);
        let b = model.monte_carlo(0.25, 1000, 7);
        assert_eq!(a.failures, b.failures);
    }

    #[test]
    fn fig10_sweep_trades_energy_for_reliability() {
        let model = SenseAmpVariation::chip_45nm();
        let sweep = model.fig10_sweep(&[0.15, 0.2, 0.25, 0.3, 0.4, 0.5]);
        assert_eq!(sweep.len(), 6);
        for pair in sweep.windows(2) {
            let (_, p_a, e_a) = pair[0];
            let (_, p_b, e_b) = pair[1];
            assert!(p_a > p_b, "failure probability must fall as swing grows");
            assert!(e_a < e_b, "energy must rise as swing grows");
        }
        // The 300 mV entry is the energy reference point.
        let (_, _, e_300) = sweep[3];
        assert!((e_300 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn erfc_reference_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-6);
        assert!((erfc(1.0) - 0.157_299).abs() < 1e-4);
        assert!((erfc(2.0) - 0.004_678).abs() < 1e-4);
        assert!((erfc(-1.0) - 1.842_701).abs() < 1e-4);
    }
}
