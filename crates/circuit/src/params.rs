//! Calibrated technology parameters.
//!
//! All circuit models in this crate are first-order analytical models whose
//! free parameters are fixed here. They are chosen once so that the model
//! reproduces the paper's measured circuit numbers (see the crate-level
//! documentation); nothing else in the workspace tunes them.

/// Nominal supply voltage of the 45nm SOI process (V).
pub const VDD: f64 = 1.1;

/// Secondary supply used by the reduced-swing drivers (V). The chip uses
/// 0.8 V for the low-swing datapath supply.
pub const LVDD: f64 = 0.8;

/// Default differential voltage swing chosen by the paper for 3-σ
/// reliability (V).
pub const DEFAULT_SWING: f64 = 0.3;

/// Wire resistance of the 0.15 µm-wide, 0.30 µm-spaced link wires (Ω/mm).
pub const WIRE_R_PER_MM: f64 = 600.0;

/// Wire capacitance of the shielded differential link wires (fF/mm).
pub const WIRE_C_PER_MM: f64 = 150.0;

/// Effective drive resistance of the 4-PMOS-stacked tri-state RSD (Ω).
pub const RSD_DRIVE_RES: f64 = 950.0;

/// Fixed capacitance seen by the driver before the wire: crossbar vertical
/// wire stub, tri-state output junctions of the other drivers sharing the
/// vertical wire, and the sense-amplifier input (fF).
pub const RSD_FIXED_CAP_FF: f64 = 80.0;

/// Energy overhead per received bit that does not scale with swing: sense
/// amplifier strobe, delay-cell alignment and enable distribution (fJ).
pub const RECEIVER_OVERHEAD_FJ: f64 = 8.0;

/// Extra capacitance factor of a repeated full-swing wire (repeater input
/// and output loading relative to the bare wire).
pub const REPEATER_CAP_OVERHEAD: f64 = 0.5;

/// Switching activity assumed for pseudo-random data (transitions per bit).
pub const PRBS_ACTIVITY: f64 = 0.5;

/// Standard deviation of the sense-amplifier input offset caused by process
/// variation (V). 50 mV puts the 300 mV differential swing (±150 mV at the
/// amplifier) exactly at 3 σ, matching the paper's design point.
pub const SENSE_AMP_OFFSET_SIGMA: f64 = 0.05;

/// Elmore-delay coefficient for the lumped driver-on-wire term.
pub const ELMORE_DRIVER: f64 = 0.69;

/// Elmore-delay coefficient for the distributed wire term.
pub const ELMORE_WIRE: f64 = 0.38;

/// Full-swing repeater insertion delay per millimetre of wire (ps/mm),
/// covering repeater gate delays for an optimally repeated line.
pub const REPEATER_DELAY_PS_PER_MM: f64 = 66.0;

/// Energy per flit consumed by one 64-bit low-swing crossbar input-to-output
/// traversal at the default swing (fJ); used by the router-level power model.
pub const XBAR_TRAVERSAL_FJ_LOW_SWING: f64 = 2_600.0;

/// Energy per flit for an equivalent synthesized full-swing crossbar
/// traversal (fJ).
pub const XBAR_TRAVERSAL_FJ_FULL_SWING: f64 = 5_000.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swing_is_three_sigma() {
        assert!((DEFAULT_SWING / 2.0 / SENSE_AMP_OFFSET_SIGMA - 3.0).abs() < 1e-9);
    }

    #[test]
    fn supplies_are_ordered() {
        const { assert!(DEFAULT_SWING < LVDD) };
        const { assert!(LVDD < VDD) };
    }
}
