//! Pooled, refcounted flit storage addressed by small handles.
//!
//! The network core schedules flits through its event wheel by value today's
//! `Delivery` enum would copy a ~100-byte `Flit` per hop. A [`FlitSlab`]
//! decouples payload from schedule: payloads are parked once in a pooled slot
//! and the wheel moves 8-byte [`FlitHandle`]s instead. Multicast forks become
//! a handle copy with a refcounted payload — each fork branch gets a *replica*
//! handle recording only its per-branch overrides (narrowed destination set,
//! downstream VC, hop accounting), and the full flit is materialised lazily at
//! delivery. Branches that eject to a NIC never materialise at all: NIC
//! reception reads only override-independent fields, so the shared payload is
//! peeked in place and released.
//!
//! Slot storage (payload slots, replica slots and both free lists) is
//! recycled, so steady-state insert/take cycles perform no heap allocation;
//! [`FlitSlab::reset`] drains every slot while keeping the pooled capacity —
//! the slab half of the warm network reset.
//!
//! Handles are opaque: nothing observable depends on slot indices, which is
//! what keeps a warm (index-recycling) network bit-identical to a cold one.

use noc_types::{DestinationSet, Flit, VcId};
use serde::{Deserialize, Serialize};

/// Discriminator bit of a [`FlitHandle`]: set for replica handles.
const REPLICA_BIT: u32 = 1 << 31;

/// An 8-byte-event-sized ticket for one flit parked in a [`FlitSlab`].
///
/// A *direct* handle owns (a reference to) a payload slot; a *replica* handle
/// points at a replica slot holding per-branch overrides plus a reference to
/// the shared payload of a multicast fork. Every handle must be consumed
/// exactly once, by [`FlitSlab::take`] or [`FlitSlab::release`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlitHandle(u32);

impl FlitHandle {
    fn direct(index: usize) -> Self {
        debug_assert!((index as u32) & REPLICA_BIT == 0, "slab index overflow");
        Self(index as u32)
    }

    fn replica(index: usize) -> Self {
        debug_assert!((index as u32) & REPLICA_BIT == 0, "slab index overflow");
        Self(index as u32 | REPLICA_BIT)
    }

    fn is_replica(self) -> bool {
        self.0 & REPLICA_BIT != 0
    }

    fn index(self) -> usize {
        (self.0 & !REPLICA_BIT) as usize
    }
}

/// One pooled payload slot: the flit plus the number of live handles
/// (direct or replica) that still reference it.
#[derive(Debug, Clone)]
struct PayloadSlot {
    refs: u32,
    flit: Option<Flit>,
}

/// Per-branch overrides of one multicast fork replica: everything a branch
/// changes about the shared payload, recorded instead of cloning it.
#[derive(Debug, Clone, Copy)]
struct ReplicaSlot {
    base: u32,
    destinations: DestinationSet,
    vc: VcId,
    /// `Some(bypassed)` when the branch crossed a router-to-router link and
    /// owes the flit a hop record; `None` for ejection branches.
    hop: Option<bool>,
}

/// Pooled, refcounted storage for in-flight flits (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct FlitSlab {
    payloads: Vec<PayloadSlot>,
    payload_free: Vec<u32>,
    replicas: Vec<ReplicaSlot>,
    replica_free: Vec<u32>,
    live: usize,
}

impl FlitSlab {
    /// Creates an empty slab.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live (issued but not yet consumed) handles.
    #[must_use]
    pub fn live(&self) -> usize {
        self.live
    }

    /// `true` when no handle is outstanding.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Payload slots ever allocated (live or pooled for reuse) — the
    /// capacity a warm reset retains.
    #[must_use]
    pub fn pooled_payload_slots(&self) -> usize {
        self.payloads.len()
    }

    /// Replica slots ever allocated (live or pooled for reuse).
    #[must_use]
    pub fn pooled_replica_slots(&self) -> usize {
        self.replicas.len()
    }

    /// Parks `flit` in a pooled slot and returns its direct handle.
    pub fn insert(&mut self, flit: Flit) -> FlitHandle {
        self.live += 1;
        if let Some(index) = self.payload_free.pop() {
            let slot = &mut self.payloads[index as usize];
            debug_assert!(slot.flit.is_none(), "free-listed slot must be empty");
            slot.refs = 1;
            slot.flit = Some(flit);
            FlitHandle::direct(index as usize)
        } else {
            self.payloads.push(PayloadSlot {
                refs: 1,
                flit: Some(flit),
            });
            FlitHandle::direct(self.payloads.len() - 1)
        }
    }

    /// Issues a replica handle sharing `base`'s payload, carrying the
    /// per-branch overrides a multicast fork would otherwise clone the whole
    /// flit to apply. The payload's refcount grows by one; the fork caller
    /// releases its own `base` handle once every branch is replicated.
    ///
    /// # Panics
    ///
    /// Panics if `base` is itself a replica handle.
    pub fn replicate(
        &mut self,
        base: FlitHandle,
        destinations: DestinationSet,
        vc: VcId,
        hop: Option<bool>,
    ) -> FlitHandle {
        assert!(!base.is_replica(), "replicas must share a direct handle");
        self.payloads[base.index()].refs += 1;
        self.live += 1;
        let slot = ReplicaSlot {
            base: base.index() as u32,
            destinations,
            vc,
            hop,
        };
        if let Some(index) = self.replica_free.pop() {
            self.replicas[index as usize] = slot;
            FlitHandle::replica(index as usize)
        } else {
            self.replicas.push(slot);
            FlitHandle::replica(self.replicas.len() - 1)
        }
    }

    /// Consumes `handle` and materialises its flit: a direct handle moves
    /// (or, while shared, clones) its payload out; a replica handle applies
    /// its overrides on top. The last handle of a payload frees its slot.
    pub fn take(&mut self, handle: FlitHandle) -> Flit {
        self.live -= 1;
        if handle.is_replica() {
            let replica = self.replicas[handle.index()];
            self.replica_free.push(handle.index() as u32);
            let mut flit = self.take_payload(replica.base as usize);
            flit.set_destinations(replica.destinations);
            flit.set_vc(replica.vc);
            if let Some(bypassed) = replica.hop {
                flit.record_hop(bypassed);
            }
            flit
        } else {
            self.take_payload(handle.index())
        }
    }

    /// The shared payload behind `handle`, *without* applying replica
    /// overrides. Only valid for readers that ignore the overridden fields
    /// (destination set, VC assignment, hop counts) — NIC reception, which
    /// reads just the flit kind, packet id and packet length, is the one
    /// production caller.
    #[must_use]
    pub fn peek_payload(&self, handle: FlitHandle) -> &Flit {
        let index = if handle.is_replica() {
            self.replicas[handle.index()].base as usize
        } else {
            handle.index()
        };
        self.payloads[index]
            .flit
            .as_ref()
            .expect("live handle has a payload")
    }

    /// Consumes `handle` without materialising a flit (used after a peeked
    /// NIC delivery). The last handle of a payload frees its slot.
    pub fn release(&mut self, handle: FlitHandle) {
        self.live -= 1;
        if handle.is_replica() {
            let base = self.replicas[handle.index()].base as usize;
            self.replica_free.push(handle.index() as u32);
            self.drop_payload_ref(base);
        } else {
            self.drop_payload_ref(handle.index());
        }
    }

    /// Drains every outstanding handle and payload while keeping all pooled
    /// slot storage, restoring the observable state of a cold slab.
    pub fn reset(&mut self) {
        self.live = 0;
        for slot in &mut self.payloads {
            slot.refs = 0;
            slot.flit = None;
        }
        self.payload_free.clear();
        for index in (0..self.payloads.len()).rev() {
            self.payload_free.push(index as u32);
        }
        self.replica_free.clear();
        for index in (0..self.replicas.len()).rev() {
            self.replica_free.push(index as u32);
        }
    }

    fn take_payload(&mut self, index: usize) -> Flit {
        let slot = &mut self.payloads[index];
        slot.refs -= 1;
        if slot.refs == 0 {
            let flit = slot.flit.take().expect("live handle has a payload");
            self.payload_free.push(index as u32);
            flit
        } else {
            slot.flit.clone().expect("live handle has a payload")
        }
    }

    fn drop_payload_ref(&mut self, index: usize) {
        let slot = &mut self.payloads[index];
        slot.refs -= 1;
        if slot.refs == 0 {
            slot.flit = None;
            self.payload_free.push(index as u32);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_types::{Packet, PacketKind};

    fn flit(id: u64, dest: u16) -> Flit {
        let packet = Packet::new(id, 0, DestinationSet::unicast(dest), PacketKind::Request, 0);
        let mut f = packet.to_flits().remove(0);
        f.set_vc(0);
        f
    }

    #[test]
    fn insert_take_roundtrips_a_flit() {
        let mut slab = FlitSlab::new();
        let original = flit(1, 7);
        let handle = slab.insert(original.clone());
        assert_eq!(slab.live(), 1);
        assert_eq!(slab.take(handle), original);
        assert!(slab.is_empty());
    }

    #[test]
    fn fork_replicas_share_one_payload_and_apply_overrides() {
        let mut slab = FlitSlab::new();
        let base_flit = flit(1, 7);
        let base = slab.insert(base_flit.clone());
        let east = slab.replicate(base, DestinationSet::unicast(7), 2, Some(true));
        let local = slab.replicate(base, DestinationSet::unicast(5), 0, None);
        slab.release(base);
        assert_eq!(slab.live(), 2);
        assert_eq!(slab.pooled_payload_slots(), 1, "one shared payload");

        // The ejection branch is peekable without materialisation...
        assert_eq!(slab.peek_payload(local).packet_id(), 1);
        slab.release(local);
        // ...and the link branch materialises with its overrides applied.
        let taken = slab.take(east);
        assert_eq!(taken.vc(), Some(2));
        assert_eq!(taken.bypassed_hops(), base_flit.bypassed_hops() + 1);
        assert!(taken.destinations().contains(7));
        assert!(slab.is_empty());
    }

    #[test]
    fn recycled_slots_never_alias_live_payloads() {
        let mut slab = FlitSlab::new();
        let a = slab.insert(flit(1, 3));
        let b = slab.insert(flit(2, 4));
        assert_eq!(slab.take(a).packet_id(), 1);
        // The freed slot is reused by the next insert...
        let c = slab.insert(flit(3, 5));
        // ...without disturbing the still-live payload.
        assert_eq!(slab.peek_payload(b).packet_id(), 2);
        assert_eq!(slab.take(c).packet_id(), 3);
        assert_eq!(slab.take(b).packet_id(), 2);
        assert_eq!(slab.pooled_payload_slots(), 2);
    }

    #[test]
    fn reset_drains_to_cold_state_keeping_capacity() {
        let mut slab = FlitSlab::new();
        let base = slab.insert(flit(1, 3));
        let _r = slab.replicate(base, DestinationSet::unicast(3), 1, Some(false));
        let _d = slab.insert(flit(2, 4));
        slab.reset();
        assert!(slab.is_empty());
        assert_eq!(slab.pooled_payload_slots(), 2, "slots survive the reset");
        assert_eq!(slab.pooled_replica_slots(), 1);
        // The pool is fully reusable afterwards.
        let h = slab.insert(flit(9, 8));
        assert_eq!(slab.take(h).packet_id(), 9);
        assert_eq!(slab.pooled_payload_slots(), 2, "no growth after reset");
    }
}
