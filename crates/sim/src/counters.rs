//! Per-component activity counters.
//!
//! Every microarchitectural event that costs energy on the real chip is
//! counted here during simulation; the `noc-power` crate multiplies these
//! counts by per-event energies to produce the power breakdowns of Fig. 6
//! and Fig. 8. Keeping the counters in the simulation kernel (rather than in
//! the router crate) lets the NICs, links and routers all contribute to one
//! ledger per network.

use serde::{Deserialize, Serialize};

/// Counts of energy-relevant events accumulated during a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ActivityCounters {
    /// Flit writes into input buffers (BW stage).
    pub buffer_writes: u64,
    /// Flit reads out of input buffers (BR, folded into ST on the chip).
    pub buffer_reads: u64,
    /// Crossbar traversals (ST stage); a multicast replicated to `n` output
    /// ports counts `n` traversals, matching the tri-state RSD crossbar that
    /// drives one vertical wire per selected output.
    pub crossbar_traversals: u64,
    /// Router-to-router link traversals (LT stage).
    pub link_traversals: u64,
    /// NIC injection / ejection link traversals.
    pub local_link_traversals: u64,
    /// First-stage (per-input-port, round-robin) switch-allocation decisions
    /// (mSA-I).
    pub sa_local_arbitrations: u64,
    /// Second-stage (per-output-port, matrix) switch-allocation decisions
    /// (mSA-II), including those triggered by lookaheads.
    pub sa_global_arbitrations: u64,
    /// Virtual-channel allocations (free-VC queue pops).
    pub vc_allocations: u64,
    /// Next-route computations performed for head flits (NRC).
    pub route_computations: u64,
    /// Lookahead signals sent to downstream routers.
    pub lookaheads_sent: u64,
    /// Link traversals on which the flit bypassed buffering thanks to a
    /// winning lookahead (a strict subset of `link_traversals`; local-port
    /// ejections of a bypassing flit are not counted).
    pub bypasses: u64,
    /// Flow-control credits sent upstream.
    pub credits_sent: u64,
    /// Multicast fork events (a flit replicated to more than one output).
    pub multicast_forks: u64,
    /// Packets ejected to a NIC.
    pub ejections: u64,
    /// Cycles simulated (for clock-tree and leakage energy, which accrue
    /// whether or not data moves).
    pub cycles: u64,
    /// Number of routers contributing to `cycles` (so per-router clock energy
    /// can be charged to each of them).
    pub routers: u64,
}

impl ActivityCounters {
    /// Creates a zeroed counter set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &ActivityCounters) {
        self.buffer_writes += other.buffer_writes;
        self.buffer_reads += other.buffer_reads;
        self.crossbar_traversals += other.crossbar_traversals;
        self.link_traversals += other.link_traversals;
        self.local_link_traversals += other.local_link_traversals;
        self.sa_local_arbitrations += other.sa_local_arbitrations;
        self.sa_global_arbitrations += other.sa_global_arbitrations;
        self.vc_allocations += other.vc_allocations;
        self.route_computations += other.route_computations;
        self.lookaheads_sent += other.lookaheads_sent;
        self.bypasses += other.bypasses;
        self.credits_sent += other.credits_sent;
        self.multicast_forks += other.multicast_forks;
        self.ejections += other.ejections;
        self.cycles += other.cycles;
        self.routers += other.routers;
    }

    /// Fraction of router-to-router link traversals that used the bypass
    /// path (0.0 when no link hop occurred). Always in `[0, 1]`: `bypasses`
    /// is counted per link traversal, so a bypassing flit forked to `n`
    /// links counts `n` of each, and one that only ejected locally counts
    /// neither.
    ///
    /// The paper reports that with identical PRBS seeds the bypass rate at
    /// low load is noticeably below 1.0, which is why measured low-load
    /// contention latency is ~1 cycle/hop instead of the ~0.04 cycles/hop of
    /// the fixed-RTL simulation.
    #[must_use]
    pub fn bypass_fraction(&self) -> f64 {
        let hops = self.link_traversals;
        if hops == 0 {
            0.0
        } else {
            debug_assert!(self.bypasses <= hops, "bypasses are a subset of hops");
            self.bypasses as f64 / hops as f64
        }
    }

    /// Average crossbar fan-out per traversal-triggering flit movement
    /// (1.0 for pure unicast traffic, higher when multicasts fork).
    #[must_use]
    pub fn average_fanout(&self) -> f64 {
        let moves = self.buffer_reads + self.bypasses;
        if moves == 0 {
            0.0
        } else {
            self.crossbar_traversals as f64 / moves as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = ActivityCounters {
            buffer_writes: 2,
            link_traversals: 4,
            bypasses: 1,
            cycles: 100,
            ..ActivityCounters::new()
        };
        let b = ActivityCounters {
            buffer_writes: 3,
            link_traversals: 6,
            bypasses: 5,
            cycles: 100,
            ..ActivityCounters::new()
        };
        a.merge(&b);
        assert_eq!(a.buffer_writes, 5);
        assert_eq!(a.link_traversals, 10);
        assert_eq!(a.bypasses, 6);
        assert_eq!(a.cycles, 200);
    }

    #[test]
    fn bypass_fraction_handles_zero() {
        let c = ActivityCounters::new();
        assert_eq!(c.bypass_fraction(), 0.0);
        let c = ActivityCounters {
            link_traversals: 10,
            bypasses: 4,
            ..ActivityCounters::new()
        };
        assert_eq!(c.bypass_fraction(), 0.4);
    }

    #[test]
    fn average_fanout_counts_multicast_replication() {
        let c = ActivityCounters {
            buffer_reads: 2,
            bypasses: 2,
            crossbar_traversals: 10,
            ..ActivityCounters::new()
        };
        assert_eq!(c.average_fanout(), 2.5);
    }
}
