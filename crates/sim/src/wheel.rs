//! A fixed-horizon calendar queue (event wheel) and its reusable slot buffer.
//!
//! The cycle-accurate network schedules every in-flight message — flits on
//! links, lookaheads, returning credits — at most a few cycles into the
//! future (the largest link or credit delay). A general priority queue such
//! as `BTreeMap<Cycle, Vec<_>>` pays an allocation and a tree rebalance per
//! scheduled cycle; with a bounded horizon the textbook answer is a *calendar
//! queue*: a ring of `horizon + 1` slot buffers indexed by `cycle % len`.
//! Scheduling is an array index plus a push, draining is a swap of the
//! current slot with a recycled spare, and in steady state the wheel performs
//! **zero heap allocation** — every slot buffer retains its high-water-mark
//! capacity forever.
//!
//! The slot buffer itself, [`RingQueue`], is a growable power-of-two ring.
//! It doubles on overflow (amortised, and only until the steady-state
//! capacity is reached) and is also used directly as a bounded FIFO by the
//! NIC injection queues, replacing `VecDeque`'s reallocation-on-growth with
//! a buffer the simulation reuses across packets.
//!
//! # Examples
//!
//! ```
//! use noc_sim::EventWheel;
//!
//! let mut wheel: EventWheel<&str> = EventWheel::new(3);
//! wheel.schedule(1, "flit");
//! wheel.schedule(3, "credit");
//! // Nothing is due at cycle 0.
//! let slot = wheel.take_due(0);
//! assert!(slot.is_empty());
//! wheel.restore(slot);
//! let mut slot = wheel.take_due(1);
//! assert_eq!(slot.pop_front(), Some("flit"));
//! wheel.restore(slot);
//! assert_eq!(wheel.pending(), 1);
//! ```

use noc_types::Cycle;

/// A growable FIFO ring buffer with power-of-two capacity.
///
/// Unlike `VecDeque`, the queue is built to be *recycled*: [`EventWheel`]
/// hands slot buffers out and takes them back without ever dropping their
/// storage, and the NIC injection queues keep one for the lifetime of the
/// simulation. Pushing into a full ring doubles the capacity (amortised
/// O(1)); in steady state no allocation happens at all.
#[derive(Debug, Clone)]
pub struct RingQueue<T> {
    /// Storage; `buf.len()` is the capacity and is always zero or a power of
    /// two. Occupied positions hold `Some`.
    buf: Vec<Option<T>>,
    head: usize,
    len: usize,
}

impl<T> Default for RingQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> RingQueue<T> {
    /// An empty queue with no storage (allocates on first push).
    #[must_use]
    pub fn new() -> Self {
        Self {
            buf: Vec::new(),
            head: 0,
            len: 0,
        }
    }

    /// An empty queue pre-sized to hold at least `capacity` items without
    /// growing.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let mut q = Self::new();
        if capacity > 0 {
            q.grow_to(capacity.next_power_of_two());
        }
        q
    }

    /// Number of queued items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no item is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current capacity in items.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Appends an item at the back of the queue, doubling the capacity if it
    /// is full.
    pub fn push_back(&mut self, item: T) {
        if self.len == self.buf.len() {
            let target = (self.buf.len() * 2).max(4);
            self.grow_to(target);
        }
        let idx = (self.head + self.len) & (self.buf.len() - 1);
        debug_assert!(self.buf[idx].is_none());
        self.buf[idx] = Some(item);
        self.len += 1;
    }

    /// Removes and returns the item at the front of the queue.
    pub fn pop_front(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        let item = self.buf[self.head].take();
        debug_assert!(item.is_some());
        self.head = (self.head + 1) & (self.buf.len() - 1);
        self.len -= 1;
        item
    }

    /// The item at the front of the queue, if any.
    #[must_use]
    pub fn front(&self) -> Option<&T> {
        if self.len == 0 {
            None
        } else {
            self.buf[self.head].as_ref()
        }
    }

    /// Iterates over the queued items in FIFO order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        let mask = self.buf.len().wrapping_sub(1);
        (0..self.len).map(move |i| {
            self.buf[(self.head + i) & mask]
                .as_ref()
                .expect("occupied ring slot")
        })
    }

    /// Drops every queued item, keeping the storage.
    pub fn clear(&mut self) {
        while self.pop_front().is_some() {}
    }

    /// Replaces the storage with one of `new_cap` slots (a power of two),
    /// unwinding the ring so the queue starts at index 0.
    fn grow_to(&mut self, new_cap: usize) {
        debug_assert!(new_cap.is_power_of_two() && new_cap > self.buf.len());
        let mut new_buf: Vec<Option<T>> = Vec::with_capacity(new_cap);
        let old_mask = self.buf.len().wrapping_sub(1);
        for i in 0..self.len {
            new_buf.push(self.buf[(self.head + i) & old_mask].take());
        }
        new_buf.resize_with(new_cap, || None);
        self.buf = new_buf;
        self.head = 0;
    }
}

/// A fixed-horizon event wheel: a calendar queue over `horizon + 1` reusable
/// [`RingQueue`] slots.
///
/// The wheel owns a monotonically advancing cursor (`now`). Events may be
/// scheduled at any cycle in `now .. now + horizon` (inclusive); the caller
/// drains one cycle at a time with [`take_due`](EventWheel::take_due) /
/// [`restore`](EventWheel::restore), which detach the due slot so its items
/// can be delivered while new events are scheduled into later slots, then
/// return the (emptied) buffer to the ring with its capacity intact.
#[derive(Debug, Clone)]
pub struct EventWheel<T> {
    slots: Vec<RingQueue<T>>,
    now: Cycle,
    pending: usize,
}

impl<T> EventWheel<T> {
    /// A wheel able to schedule up to `horizon` cycles into the future.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero.
    #[must_use]
    pub fn new(horizon: u64) -> Self {
        assert!(horizon > 0, "an event wheel needs a positive horizon");
        let len = usize::try_from(horizon).expect("horizon fits a usize") + 1;
        Self {
            slots: (0..len).map(|_| RingQueue::new()).collect(),
            now: 0,
            pending: 0,
        }
    }

    /// Largest scheduling distance the wheel supports.
    #[must_use]
    pub fn horizon(&self) -> u64 {
        self.slots.len() as u64 - 1
    }

    /// Total number of scheduled, not-yet-drained events.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Schedules `item` for cycle `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` lies in the past (before the wheel's cursor) or more
    /// than [`horizon`](EventWheel::horizon) cycles ahead of it.
    pub fn schedule(&mut self, at: Cycle, item: T) {
        assert!(
            at >= self.now && at - self.now <= self.horizon(),
            "cycle {at} outside the wheel's window [{}, {}]",
            self.now,
            self.now + self.horizon()
        );
        let idx = (at % self.slots.len() as u64) as usize;
        self.slots[idx].push_back(item);
        self.pending += 1;
    }

    /// Detaches and returns the slot of events due at `now`, advancing the
    /// wheel's cursor to `now + 1`. The caller must hand the drained buffer
    /// back via [`restore`](EventWheel::restore) so its capacity is reused.
    ///
    /// # Panics
    ///
    /// Panics if `now` is not the wheel's current cursor (cycles must be
    /// drained in order, exactly once).
    pub fn take_due(&mut self, now: Cycle) -> RingQueue<T> {
        assert_eq!(now, self.now, "event wheel drained out of order");
        let idx = (now % self.slots.len() as u64) as usize;
        let slot = std::mem::take(&mut self.slots[idx]);
        self.pending -= slot.len();
        self.now = now + 1;
        slot
    }

    /// Returns a drained slot buffer to the wheel (as the storage of the
    /// just-vacated slot), preserving its capacity for future cycles.
    ///
    /// Events scheduled *while the slot was detached* for the cycle that
    /// maps back onto the vacated index (exactly `now - 1 + len`, the far
    /// edge of the window) land in the placeholder `take_due` left behind;
    /// they are carried over into the restored buffer, not lost.
    ///
    /// # Panics
    ///
    /// Panics if the buffer still holds items or if no slot was taken yet.
    pub fn restore(&mut self, slot: RingQueue<T>) {
        assert!(slot.is_empty(), "restored slot buffers must be drained");
        assert!(self.now > 0, "restore without a prior take_due");
        let idx = ((self.now - 1) % self.slots.len() as u64) as usize;
        let mut placeholder = std::mem::replace(&mut self.slots[idx], slot);
        while let Some(item) = placeholder.pop_front() {
            self.slots[idx].push_back(item);
        }
    }

    /// Iterates over every pending event (in no particular cycle order).
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.slots.iter().flat_map(RingQueue::iter)
    }

    /// Drops every pending event and rewinds the cursor to cycle 0, keeping
    /// each slot buffer's capacity — the wheel half of a warm network reset
    /// (`mesh_noc::Network::reset`).
    ///
    /// # Examples
    ///
    /// ```
    /// use noc_sim::EventWheel;
    ///
    /// let mut wheel: EventWheel<u32> = EventWheel::new(2);
    /// wheel.schedule(1, 7);
    /// wheel.reset();
    /// assert_eq!(wheel.pending(), 0);
    /// // The cursor is back at cycle 0, so cycle 1 can be scheduled again.
    /// wheel.schedule(1, 8);
    /// let mut due = wheel.take_due(0);
    /// assert!(due.is_empty());
    /// wheel.restore(due);
    /// ```
    pub fn reset(&mut self) {
        for slot in &mut self.slots {
            slot.clear();
        }
        self.now = 0;
        self.pending = 0;
    }

    /// Moves the cursor of an *empty* wheel to cycle `at`, so a freshly
    /// built (or fully drained) wheel can join a simulation mid-run — the
    /// partition-migration half of deterministic repartitioning.
    ///
    /// # Panics
    ///
    /// Panics if any event is still pending (moving the cursor would
    /// silently re-map their due cycles).
    pub fn align_to(&mut self, at: Cycle) {
        assert_eq!(self.pending, 0, "align_to requires an empty wheel");
        self.now = at;
    }

    /// Drains every pending event into `out` as `(due_cycle, item)` pairs in
    /// ascending cycle order (FIFO within a cycle), leaving the wheel empty
    /// with its cursor and slot capacities intact. Used to dismantle a
    /// partition's wheels when the mesh is repartitioned mid-run: replaying
    /// the drained pairs through [`schedule`](EventWheel::schedule) on a
    /// cursor-aligned wheel reproduces the exact same delivery order.
    pub fn drain_window_into(&mut self, out: &mut Vec<(Cycle, T)>) {
        for offset in 0..self.slots.len() as u64 {
            let at = self.now + offset;
            let idx = (at % self.slots.len() as u64) as usize;
            while let Some(item) = self.slots[idx].pop_front() {
                self.pending -= 1;
                out.push((at, item));
            }
        }
        debug_assert_eq!(self.pending, 0, "window drain missed an event");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_queue_is_fifo_across_growth() {
        let mut q = RingQueue::new();
        for i in 0..100 {
            q.push_back(i);
        }
        assert_eq!(q.len(), 100);
        for i in 0..100 {
            assert_eq!(q.front(), Some(&i));
            assert_eq!(q.pop_front(), Some(i));
        }
        assert!(q.is_empty());
        assert_eq!(q.pop_front(), None);
    }

    #[test]
    fn ring_queue_wraps_without_growing() {
        let mut q = RingQueue::with_capacity(4);
        let cap = q.capacity();
        for round in 0..50 {
            q.push_back(round);
            q.push_back(round + 1000);
            assert_eq!(q.pop_front(), Some(round));
            assert_eq!(q.pop_front(), Some(round + 1000));
        }
        assert_eq!(q.capacity(), cap, "wrapping must not grow the ring");
    }

    #[test]
    fn ring_queue_iterates_in_order_after_wrap() {
        let mut q = RingQueue::with_capacity(4);
        for i in 0..3 {
            q.push_back(i);
        }
        q.pop_front();
        q.push_back(3);
        q.push_back(4);
        let seen: Vec<i32> = q.iter().copied().collect();
        assert_eq!(seen, vec![1, 2, 3, 4]);
    }

    #[test]
    fn ring_queue_clear_retains_capacity() {
        let mut q = RingQueue::new();
        for i in 0..20 {
            q.push_back(i);
        }
        let cap = q.capacity();
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.capacity(), cap);
    }

    #[test]
    fn wheel_delivers_in_cycle_order() {
        let mut wheel = EventWheel::new(4);
        wheel.schedule(2, "b");
        wheel.schedule(1, "a");
        wheel.schedule(1, "a2");
        wheel.schedule(4, "c");
        let mut seen = Vec::new();
        for now in 0..=4 {
            let mut slot = wheel.take_due(now);
            while let Some(item) = slot.pop_front() {
                seen.push((now, item));
            }
            wheel.restore(slot);
        }
        assert_eq!(seen, vec![(1, "a"), (1, "a2"), (2, "b"), (4, "c")]);
        assert_eq!(wheel.pending(), 0);
    }

    #[test]
    fn wheel_reuses_slot_capacity() {
        let mut wheel = EventWheel::new(2);
        // Warm the slots up to their steady-state capacity.
        for now in 0..100u64 {
            wheel.schedule(now + 1, now);
            wheel.schedule(now + 2, now);
            let mut slot = wheel.take_due(now);
            while slot.pop_front().is_some() {}
            wheel.restore(slot);
        }
        // From now on every slot already has capacity: pushes must not grow.
        for now in 100..200u64 {
            wheel.schedule(now + 1, now);
            wheel.schedule(now + 2, now);
            let mut slot = wheel.take_due(now);
            let cap = slot.capacity();
            while slot.pop_front().is_some() {}
            assert_eq!(slot.capacity(), cap);
            wheel.restore(slot);
        }
        assert!(wheel.pending() > 0);
    }

    #[test]
    fn wheel_counts_pending_events() {
        let mut wheel = EventWheel::new(3);
        wheel.schedule(1, 1);
        wheel.schedule(2, 2);
        wheel.schedule(3, 3);
        assert_eq!(wheel.pending(), 3);
        assert_eq!(wheel.iter().count(), 3);
        let mut slot = wheel.take_due(0);
        assert!(slot.is_empty());
        wheel.restore(slot);
        slot = wheel.take_due(1);
        assert_eq!(slot.len(), 1);
        assert_eq!(wheel.pending(), 2);
        slot.clear();
        wheel.restore(slot);
    }

    #[test]
    fn full_horizon_schedule_while_slot_is_detached_is_not_lost() {
        // horizon 2 -> 3 slots; cycle 3 maps onto the slot index detached at
        // cycle 0, so the event lands in the placeholder and must survive
        // the restore.
        let mut wheel = EventWheel::new(2);
        let slot = wheel.take_due(0);
        wheel.schedule(3, "edge");
        wheel.restore(slot);
        assert_eq!(wheel.pending(), 1);
        for now in 1..=2 {
            let slot = wheel.take_due(now);
            assert!(slot.is_empty());
            wheel.restore(slot);
        }
        let mut slot = wheel.take_due(3);
        assert_eq!(slot.pop_front(), Some("edge"));
        wheel.restore(slot);
        assert_eq!(wheel.pending(), 0);
    }

    #[test]
    fn aligned_wheel_replays_a_drained_window_identically() {
        let mut wheel = EventWheel::new(3);
        for now in 0..10u64 {
            let mut slot = wheel.take_due(now);
            slot.clear();
            wheel.restore(slot);
        }
        wheel.schedule(10, "now");
        wheel.schedule(12, "later");
        wheel.schedule(10, "now2");
        wheel.schedule(13, "edge");
        // Dismantle: ascending-cycle (cycle, item) pairs, FIFO within cycle.
        let mut drained = Vec::new();
        wheel.drain_window_into(&mut drained);
        assert_eq!(
            drained,
            vec![(10, "now"), (10, "now2"), (12, "later"), (13, "edge")]
        );
        assert_eq!(wheel.pending(), 0);
        // Reassemble on a fresh wheel aligned to the same cursor.
        let mut rebuilt: EventWheel<&str> = EventWheel::new(3);
        rebuilt.align_to(10);
        for (at, item) in drained {
            rebuilt.schedule(at, item);
        }
        let mut seen = Vec::new();
        for now in 10..=13u64 {
            let mut slot = rebuilt.take_due(now);
            while let Some(item) = slot.pop_front() {
                seen.push((now, item));
            }
            rebuilt.restore(slot);
        }
        assert_eq!(
            seen,
            vec![(10, "now"), (10, "now2"), (12, "later"), (13, "edge")]
        );
    }

    #[test]
    #[should_panic(expected = "align_to requires an empty wheel")]
    fn align_to_rejects_wheels_with_pending_events() {
        let mut wheel = EventWheel::new(2);
        wheel.schedule(1, ());
        wheel.align_to(5);
    }

    #[test]
    #[should_panic(expected = "outside the wheel's window")]
    fn wheel_rejects_cycles_beyond_the_horizon() {
        let mut wheel = EventWheel::new(2);
        wheel.schedule(3, ());
    }

    #[test]
    #[should_panic(expected = "drained out of order")]
    fn wheel_rejects_out_of_order_draining() {
        let mut wheel: EventWheel<()> = EventWheel::new(2);
        let slot = wheel.take_due(0);
        wheel.restore(slot);
        let _ = wheel.take_due(2);
    }
}
