//! Per-edge boundary mailboxes for the partitioned stepper.
//!
//! When a mesh is sharded into spatial partitions, events crossing a
//! partition boundary (flits, lookaheads, credits on the cut links) cannot be
//! scheduled directly into the destination partition's event wheels — the
//! owning worker thread is mutating them. Instead each *directed* partition
//! edge gets a [`BoundaryMailbox`]: the producing worker appends its batch of
//! boundary events once per cycle, and the destination drains the mailbox at
//! the cycle barrier's deterministic merge point.
//!
//! The mailbox is an SPSC queue by protocol rather than by type: within one
//! step phase exactly one worker pushes to a given directed edge and nobody
//! drains it; draining happens strictly after the barrier, in fixed edge
//! order. The `Mutex` inside therefore never contends — it exists to make
//! the type `Sync` so workers can share a plain slice of mailboxes — and
//! FIFO order is preserved end to end: events drain in exactly the order
//! they were pushed (`tests/properties.rs` pins this no-reorder guarantee).

use std::sync::Mutex;

/// An order-preserving single-producer single-consumer mailbox used to hand
/// boundary events between mesh partitions at cycle barriers.
///
/// # Examples
///
/// ```
/// use noc_sim::BoundaryMailbox;
///
/// let mailbox = BoundaryMailbox::new();
/// let mut batch = vec![1, 2, 3];
/// mailbox.push_batch(&mut batch);
/// assert!(batch.is_empty(), "the batch buffer is recycled");
///
/// let mut out = Vec::new();
/// mailbox.drain_into(&mut out);
/// assert_eq!(out, [1, 2, 3]);
/// assert!(mailbox.is_empty());
/// ```
#[derive(Debug)]
pub struct BoundaryMailbox<T> {
    queue: Mutex<Vec<T>>,
}

impl<T> Default for BoundaryMailbox<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> BoundaryMailbox<T> {
    /// An empty mailbox.
    #[must_use]
    pub fn new() -> Self {
        Self {
            queue: Mutex::new(Vec::new()),
        }
    }

    /// Appends `batch` to the mailbox in order, leaving `batch` empty (its
    /// capacity is kept, so the producer's scratch buffer is recycled
    /// cycle after cycle). One lock acquisition per call: producers
    /// accumulate a cycle's events locally and push them in a single batch.
    pub fn push_batch(&self, batch: &mut Vec<T>) {
        if batch.is_empty() {
            return;
        }
        self.queue
            .lock()
            .expect("boundary mailbox poisoned")
            .append(batch);
    }

    /// Moves every queued event into `out` (appended in FIFO push order),
    /// leaving the mailbox empty with its capacity intact.
    pub fn drain_into(&self, out: &mut Vec<T>) {
        out.append(&mut self.queue.lock().expect("boundary mailbox poisoned"));
    }

    /// Returns `true` when no event is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queue
            .lock()
            .expect("boundary mailbox poisoned")
            .is_empty()
    }

    /// Number of queued events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queue.lock().expect("boundary mailbox poisoned").len()
    }
}

impl<T: Clone> Clone for BoundaryMailbox<T> {
    fn clone(&self) -> Self {
        Self {
            queue: Mutex::new(
                self.queue
                    .lock()
                    .expect("boundary mailbox poisoned")
                    .clone(),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_drain_in_push_order() {
        let mailbox = BoundaryMailbox::new();
        let mut a = vec![1, 2];
        let mut b = vec![3];
        mailbox.push_batch(&mut a);
        mailbox.push_batch(&mut b);
        assert_eq!(mailbox.len(), 3);
        let mut out = Vec::new();
        mailbox.drain_into(&mut out);
        assert_eq!(out, [1, 2, 3]);
        assert!(mailbox.is_empty());
    }

    #[test]
    fn batch_buffers_are_recycled_not_consumed() {
        let mailbox = BoundaryMailbox::new();
        let mut batch = Vec::with_capacity(64);
        batch.extend([7u32, 8]);
        mailbox.push_batch(&mut batch);
        assert!(batch.is_empty());
        assert!(batch.capacity() >= 64, "producer scratch keeps its storage");
    }

    #[test]
    fn empty_pushes_skip_the_lock_path_observably() {
        let mailbox: BoundaryMailbox<u8> = BoundaryMailbox::new();
        let mut empty = Vec::new();
        mailbox.push_batch(&mut empty);
        assert!(mailbox.is_empty());
        assert_eq!(mailbox.len(), 0);
    }

    #[test]
    fn mailboxes_are_shareable_across_threads() {
        let mailbox: BoundaryMailbox<usize> = BoundaryMailbox::new();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let mut batch = (0..100).collect();
                mailbox.push_batch(&mut batch);
            });
        });
        let mut out = Vec::new();
        mailbox.drain_into(&mut out);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }
}
