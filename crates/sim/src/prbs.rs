//! Pseudo-random binary sequence (PRBS) generators.
//!
//! The fabricated chip generates traffic with on-chip PRBS generators inside
//! each NIC. Crucially, *all NICs share the same seed* — an artifact the
//! paper calls out because correlated destinations cause avoidable contention
//! that limits bypassing even at low injection rates (§4.1). The simulator
//! reproduces both behaviours: identical seeds (to match the measured chip)
//! and per-node seeds (to match the "fixed RTL" results the paper quotes).

use serde::{Deserialize, Serialize};

/// A 16-bit maximal-length Fibonacci linear-feedback shift register
/// (taps 16, 15, 13, 4 — the classic x^16 + x^15 + x^13 + x^4 + 1 polynomial).
///
/// The period is 2^16 - 1; the all-zero state is avoided by construction.
///
/// # Examples
///
/// ```
/// use noc_sim::Lfsr;
///
/// let mut lfsr = Lfsr::new(0xACE1);
/// let first = lfsr.next_bit();
/// assert!(first == 0 || first == 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Lfsr {
    state: u16,
}

impl Lfsr {
    /// Creates an LFSR from a seed. A zero seed is mapped to a fixed
    /// non-zero state because the all-zero state is a fixed point.
    #[must_use]
    pub fn new(seed: u16) -> Self {
        Self {
            state: if seed == 0 { 0xACE1 } else { seed },
        }
    }

    /// Current register state.
    #[must_use]
    pub fn state(&self) -> u16 {
        self.state
    }

    /// Advances the register one step and returns the output bit.
    pub fn next_bit(&mut self) -> u16 {
        let bit = (self.state ^ (self.state >> 1) ^ (self.state >> 3) ^ (self.state >> 12)) & 1;
        self.state = (self.state >> 1) | (bit << 15);
        bit
    }

    /// Produces the next `n`-bit word (`n <= 16`) from successive output bits.
    ///
    /// # Panics
    ///
    /// Panics if `n > 16`.
    pub fn next_bits(&mut self, n: u32) -> u16 {
        assert!(n <= 16, "an Lfsr word is at most 16 bits");
        let mut word = 0u16;
        for _ in 0..n {
            word = (word << 1) | self.next_bit();
        }
        word
    }
}

/// A PRBS-based traffic randomness source.
///
/// Combines two LFSRs (offset seeds) to produce uniform-ish integers and
/// Bernoulli coin flips. This mirrors the hardware structure of the chip's
/// traffic generators; it is intentionally *not* a cryptographic or even
/// statistically strong RNG — matching the chip matters more than statistical
/// perfection, and the identical-seed artifact is part of what we reproduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrbsGenerator {
    dest_lfsr: Lfsr,
    rate_lfsr: Lfsr,
}

impl PrbsGenerator {
    /// Creates a generator from a 16-bit seed.
    #[must_use]
    pub fn new(seed: u16) -> Self {
        Self {
            dest_lfsr: Lfsr::new(seed),
            rate_lfsr: Lfsr::new(seed.rotate_left(7) ^ 0x5A5A),
        }
    }

    /// Returns `true` with probability `p` (a Bernoulli trial).
    ///
    /// The trial consumes 16 bits of the rate LFSR, giving a resolution of
    /// 1/65535 on the injection rate — fine-grained enough for every rate
    /// swept in the paper's figures.
    pub fn chance(&mut self, p: f64) -> bool {
        let threshold = (p.clamp(0.0, 1.0) * f64::from(u16::MAX)) as u32;
        u32::from(self.rate_lfsr.next_bits(16)) < threshold
    }

    /// Returns a value in `0..bound` (used for uniform destination choice).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u16) -> u16 {
        assert!(bound > 0, "bound must be positive");
        self.dest_lfsr.next_bits(16) % bound
    }

    /// Returns the next raw 16-bit word of the destination LFSR.
    pub fn next_word(&mut self) -> u16 {
        self.dest_lfsr.next_bits(16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn lfsr_never_reaches_zero_and_has_long_period() {
        let mut lfsr = Lfsr::new(1);
        let mut seen = HashSet::new();
        for _ in 0..65535 {
            assert_ne!(lfsr.state(), 0);
            seen.insert(lfsr.state());
            lfsr.next_bit();
        }
        // A maximal 16-bit LFSR visits every non-zero state exactly once.
        assert_eq!(seen.len(), 65535);
    }

    #[test]
    fn zero_seed_is_remapped() {
        let lfsr = Lfsr::new(0);
        assert_ne!(lfsr.state(), 0);
    }

    #[test]
    fn identical_seeds_produce_identical_sequences() {
        let mut a = PrbsGenerator::new(0x1234);
        let mut b = PrbsGenerator::new(0x1234);
        for _ in 0..100 {
            assert_eq!(a.next_word(), b.next_word());
            assert_eq!(a.chance(0.5), b.chance(0.5));
        }
    }

    #[test]
    fn different_seeds_decorrelate() {
        let mut a = PrbsGenerator::new(0x1234);
        let mut b = PrbsGenerator::new(0x4321);
        let mut equal = 0;
        for _ in 0..1000 {
            if a.next_word() == b.next_word() {
                equal += 1;
            }
        }
        assert!(equal < 10, "sequences should rarely coincide, got {equal}");
    }

    #[test]
    fn chance_respects_probability_roughly() {
        let mut g = PrbsGenerator::new(0xBEEF);
        let trials = 20_000;
        let mut hits = 0;
        for _ in 0..trials {
            if g.chance(0.3) {
                hits += 1;
            }
        }
        let ratio = f64::from(hits) / f64::from(trials);
        assert!((ratio - 0.3).abs() < 0.03, "observed {ratio}");
    }

    #[test]
    fn chance_extremes() {
        let mut g = PrbsGenerator::new(0xBEEF);
        assert!(!g.chance(0.0));
        // p = 1.0 maps to threshold u16::MAX which every sample is below,
        // except the (rare) exact-max word; accept >99% hits.
        let hits = (0..1000).filter(|_| g.chance(1.0)).count();
        assert!(hits >= 990);
    }

    #[test]
    fn next_below_stays_in_range_and_covers_values() {
        let mut g = PrbsGenerator::new(0x7777);
        let mut seen = HashSet::new();
        for _ in 0..2000 {
            let v = g.next_below(16);
            assert!(v < 16);
            seen.insert(v);
        }
        assert_eq!(seen.len(), 16, "all destinations should eventually appear");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_bound_panics() {
        let mut g = PrbsGenerator::new(1);
        let _ = g.next_below(0);
    }
}
