//! Pseudo-random binary sequence (PRBS) generators.
//!
//! The fabricated chip generates traffic with on-chip PRBS generators inside
//! each NIC. Crucially, *all NICs share the same seed* — an artifact the
//! paper calls out because correlated destinations cause avoidable contention
//! that limits bypassing even at low injection rates (§4.1). The simulator
//! reproduces both behaviours: identical seeds (to match the measured chip)
//! and per-node seeds (to match the "fixed RTL" results the paper quotes).

use serde::{Deserialize, Serialize};

/// One serial step of the 16-bit Fibonacci LFSR (taps 16, 15, 13, 4),
/// returning `(next_state << 16) | output_bit` packed for const evaluation.
const fn lfsr_step(state: u16) -> (u16, u16) {
    let bit = (state ^ (state >> 1) ^ (state >> 3) ^ (state >> 12)) & 1;
    ((state >> 1) | (bit << 15), bit)
}

/// Sixteen serial LFSR steps from `state`, packed as
/// `(end_state << 16) | word` where `word` collects the output bits MSB-first
/// — exactly what [`Lfsr::next_bits`]`(16)` computes one bit at a time.
const fn lfsr_serial16(mut state: u16) -> u32 {
    let mut word: u16 = 0;
    let mut i = 0;
    while i < 16 {
        let (next, bit) = lfsr_step(state);
        state = next;
        word = (word << 1) | bit;
        i += 1;
    }
    ((state as u32) << 16) | word as u32
}

/// Builds one byte-indexed half of the 16-step leap table: entry `b` is the
/// packed 16-step image of the state `b << shift`.
///
/// Both the LFSR state update and the output word are GF(2)-linear in the
/// state bits (every produced bit is an XOR of initial state bits, and the
/// zero state maps to zero), so the image of any state is the XOR of the
/// images of its low and high bytes. The two 256-entry tables below are the
/// precomputed transition matrix of the 16-step leap in byte-sliced form.
const fn build_leap16_table(shift: u32) -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut b = 0;
    while b < 256 {
        table[b] = lfsr_serial16((b as u16) << shift);
        b += 1;
    }
    table
}

/// Packed 16-step images of the 256 low-byte basis states.
static LEAP16_LO: [u32; 256] = build_leap16_table(0);
/// Packed 16-step images of the 256 high-byte basis states.
static LEAP16_HI: [u32; 256] = build_leap16_table(8);

/// Converts a probability into the 16-bit comparison threshold a PRBS
/// Bernoulli trial ([`PrbsGenerator::coin`]) uses: a trial wins when the next
/// 16-bit rate word is strictly below the threshold, giving a resolution of
/// 1/65535 on the probability.
#[must_use]
pub fn bernoulli_threshold(p: f64) -> u32 {
    (p.clamp(0.0, 1.0) * f64::from(u16::MAX)) as u32
}

/// A 16-bit maximal-length Fibonacci linear-feedback shift register
/// (taps 16, 15, 13, 4 — the classic x^16 + x^15 + x^13 + x^4 + 1 polynomial).
///
/// The period is 2^16 - 1; the all-zero state is avoided by construction.
///
/// # Examples
///
/// ```
/// use noc_sim::Lfsr;
///
/// let mut lfsr = Lfsr::new(0xACE1);
/// let first = lfsr.next_bit();
/// assert!(first == 0 || first == 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Lfsr {
    state: u16,
}

impl Lfsr {
    /// Creates an LFSR from a seed. A zero seed is mapped to a fixed
    /// non-zero state because the all-zero state is a fixed point.
    #[must_use]
    pub fn new(seed: u16) -> Self {
        Self {
            state: if seed == 0 { 0xACE1 } else { seed },
        }
    }

    /// Current register state.
    #[must_use]
    pub fn state(&self) -> u16 {
        self.state
    }

    /// Advances the register one step and returns the output bit.
    pub fn next_bit(&mut self) -> u16 {
        let bit = (self.state ^ (self.state >> 1) ^ (self.state >> 3) ^ (self.state >> 12)) & 1;
        self.state = (self.state >> 1) | (bit << 15);
        bit
    }

    /// Produces the next `n`-bit word (`n <= 16`) from successive output bits.
    ///
    /// # Panics
    ///
    /// Panics if `n > 16`.
    pub fn next_bits(&mut self, n: u32) -> u16 {
        assert!(n <= 16, "an Lfsr word is at most 16 bits");
        let mut word = 0u16;
        for _ in 0..n {
            word = (word << 1) | self.next_bit();
        }
        word
    }

    /// Advances the register sixteen steps in one leap and returns the same
    /// 16-bit word sixteen [`next_bit`](Self::next_bit) calls would have
    /// produced (MSB first), leaving the register in the identical state.
    ///
    /// The leap XOR-combines two byte-sliced images of the precomputed
    /// GF(2) 16-step transition matrix, replacing 16 serial shift/tap
    /// evaluations with two table lookups. Bit-exactness against serial
    /// stepping is pinned exhaustively over every state below and by
    /// proptest in `tests/properties.rs`.
    pub fn leap16(&mut self) -> u16 {
        let packed =
            LEAP16_LO[usize::from(self.state & 0xFF)] ^ LEAP16_HI[usize::from(self.state >> 8)];
        self.state = (packed >> 16) as u16;
        packed as u16
    }
}

/// A PRBS-based traffic randomness source.
///
/// Combines two LFSRs (offset seeds) to produce uniform-ish integers and
/// Bernoulli coin flips. This mirrors the hardware structure of the chip's
/// traffic generators; it is intentionally *not* a cryptographic or even
/// statistically strong RNG — matching the chip matters more than statistical
/// perfection, and the identical-seed artifact is part of what we reproduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrbsGenerator {
    dest_lfsr: Lfsr,
    rate_lfsr: Lfsr,
}

impl PrbsGenerator {
    /// Creates a generator from a 16-bit seed.
    #[must_use]
    pub fn new(seed: u16) -> Self {
        Self {
            dest_lfsr: Lfsr::new(seed),
            rate_lfsr: Lfsr::new(seed.rotate_left(7) ^ 0x5A5A),
        }
    }

    /// Returns `true` with probability `p` (a Bernoulli trial).
    ///
    /// The trial consumes 16 bits of the rate LFSR, giving a resolution of
    /// 1/65535 on the injection rate — fine-grained enough for every rate
    /// swept in the paper's figures.
    pub fn chance(&mut self, p: f64) -> bool {
        let threshold = bernoulli_threshold(p);
        self.coin(threshold)
    }

    /// A Bernoulli trial against a precomputed [`bernoulli_threshold`],
    /// letting per-cycle callers hoist the probability-to-threshold
    /// conversion out of their hot loop. `coin(bernoulli_threshold(p))` is
    /// bit-identical to [`chance`](Self::chance)`(p)`.
    pub fn coin(&mut self, threshold: u32) -> bool {
        u32::from(self.rate_lfsr.leap16()) < threshold
    }

    /// Counts the losing [`coin`](Self::coin) flips ahead of the current
    /// rate-LFSR state, without consuming them: the returned run length is
    /// the number of upcoming trials guaranteed to come up `false` before
    /// the first (unconsumed) winning flip, saturating at `cap`.
    ///
    /// A zero threshold can never win a trial, so the scout reports
    /// `u64::MAX` ("quiescent forever") without walking the sequence.
    /// Active-set schedulers use this to put an idle traffic source to sleep
    /// and later replay exactly the scouted flips with
    /// [`skip_coin_flips`](Self::skip_coin_flips).
    #[must_use]
    pub fn scout_coin_run(&self, threshold: u32, cap: u64) -> u64 {
        if threshold == 0 {
            return u64::MAX;
        }
        let mut probe = self.rate_lfsr;
        let mut run = 0;
        while run < cap && u32::from(probe.leap16()) >= threshold {
            run += 1;
        }
        run
    }

    /// Consumes `flips` Bernoulli trials without inspecting their outcomes —
    /// each flip is one 16-bit leap of the rate LFSR, so the generator lands
    /// in exactly the state `flips` serial [`coin`](Self::coin) calls would
    /// have left it in.
    pub fn skip_coin_flips(&mut self, flips: u64) {
        for _ in 0..flips {
            self.rate_lfsr.leap16();
        }
    }

    /// Returns a value in `0..bound` (used for uniform destination choice).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u16) -> u16 {
        assert!(bound > 0, "bound must be positive");
        self.dest_lfsr.leap16() % bound
    }

    /// Returns the next raw 16-bit word of the destination LFSR.
    pub fn next_word(&mut self) -> u16 {
        self.dest_lfsr.leap16()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn lfsr_never_reaches_zero_and_has_long_period() {
        let mut lfsr = Lfsr::new(1);
        let mut seen = HashSet::new();
        for _ in 0..65535 {
            assert_ne!(lfsr.state(), 0);
            seen.insert(lfsr.state());
            lfsr.next_bit();
        }
        // A maximal 16-bit LFSR visits every non-zero state exactly once.
        assert_eq!(seen.len(), 65535);
    }

    #[test]
    fn zero_seed_is_remapped() {
        let lfsr = Lfsr::new(0);
        assert_ne!(lfsr.state(), 0);
    }

    #[test]
    fn identical_seeds_produce_identical_sequences() {
        let mut a = PrbsGenerator::new(0x1234);
        let mut b = PrbsGenerator::new(0x1234);
        for _ in 0..100 {
            assert_eq!(a.next_word(), b.next_word());
            assert_eq!(a.chance(0.5), b.chance(0.5));
        }
    }

    #[test]
    fn different_seeds_decorrelate() {
        let mut a = PrbsGenerator::new(0x1234);
        let mut b = PrbsGenerator::new(0x4321);
        let mut equal = 0;
        for _ in 0..1000 {
            if a.next_word() == b.next_word() {
                equal += 1;
            }
        }
        assert!(equal < 10, "sequences should rarely coincide, got {equal}");
    }

    #[test]
    fn chance_respects_probability_roughly() {
        let mut g = PrbsGenerator::new(0xBEEF);
        let trials = 20_000;
        let mut hits = 0;
        for _ in 0..trials {
            if g.chance(0.3) {
                hits += 1;
            }
        }
        let ratio = f64::from(hits) / f64::from(trials);
        assert!((ratio - 0.3).abs() < 0.03, "observed {ratio}");
    }

    #[test]
    fn chance_extremes() {
        let mut g = PrbsGenerator::new(0xBEEF);
        assert!(!g.chance(0.0));
        // p = 1.0 maps to threshold u16::MAX which every sample is below,
        // except the (rare) exact-max word; accept >99% hits.
        let hits = (0..1000).filter(|_| g.chance(1.0)).count();
        assert!(hits >= 990);
    }

    #[test]
    fn next_below_stays_in_range_and_covers_values() {
        let mut g = PrbsGenerator::new(0x7777);
        let mut seen = HashSet::new();
        for _ in 0..2000 {
            let v = g.next_below(16);
            assert!(v < 16);
            seen.insert(v);
        }
        assert_eq!(seen.len(), 16, "all destinations should eventually appear");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_bound_panics() {
        let mut g = PrbsGenerator::new(1);
        let _ = g.next_below(0);
    }

    #[test]
    fn leap16_matches_sixteen_serial_steps_for_every_state() {
        // Exhaustive over the whole non-zero state space: the leap must
        // reproduce both the 16-bit output word and the end state of sixteen
        // serial shift/tap evaluations, bit for bit.
        for seed in 1..=u16::MAX {
            let mut serial = Lfsr::new(seed);
            let mut leaping = Lfsr::new(seed);
            let word = serial.next_bits(16);
            assert_eq!(leaping.leap16(), word, "word diverged at state {seed:#06x}");
            assert_eq!(
                leaping.state(),
                serial.state(),
                "state diverged at seed {seed:#06x}"
            );
        }
    }

    #[test]
    fn coin_with_precomputed_threshold_matches_chance() {
        let mut a = PrbsGenerator::new(0x1CE5);
        let mut b = PrbsGenerator::new(0x1CE5);
        for p in [0.0, 0.013, 0.14, 0.5, 0.999, 1.0] {
            let threshold = bernoulli_threshold(p);
            for _ in 0..64 {
                assert_eq!(a.chance(p), b.coin(threshold));
            }
        }
    }

    #[test]
    fn scout_and_skip_reproduce_the_serial_coin_stream() {
        // Serial reference: flip every cycle. Scouted: sleep through the
        // scouted run, replay it with skip_coin_flips, then flip. Both must
        // observe winning flips on exactly the same cycles and end in the
        // same state.
        let threshold = bernoulli_threshold(0.02);
        let mut serial = PrbsGenerator::new(0xB00B);
        let mut scouted = PrbsGenerator::new(0xB00B);
        let mut cycle = 0u64;
        while cycle < 20_000 {
            let run = scouted.scout_coin_run(threshold, 1_000);
            for _ in 0..run {
                assert!(!serial.coin(threshold), "scouted flip must lose");
            }
            scouted.skip_coin_flips(run);
            cycle += run;
            if run < 1_000 {
                // The first unscouted flip must win on both sides.
                assert!(serial.coin(threshold));
                assert!(scouted.coin(threshold));
                cycle += 1;
            }
            assert_eq!(serial, scouted, "states diverged at cycle {cycle}");
        }
    }

    #[test]
    fn scouting_a_zero_threshold_reports_forever() {
        let g = PrbsGenerator::new(0x1234);
        assert_eq!(g.scout_coin_run(0, 1_000), u64::MAX);
        assert_eq!(g.scout_coin_run(bernoulli_threshold(0.0), 10), u64::MAX);
    }
}
