//! Latency and throughput measurement.
//!
//! [`LatencyStats`] accumulates per-packet creation-to-last-reception
//! latencies (the paper's "complete action" convention, §2.2) and
//! [`ThroughputStats`] counts *received* flits (so a broadcast delivered to
//! 15 destinations counts 15 times — the convention behind the 1024 Gb/s
//! theoretical limit of Table 1). Both reset in place, keeping storage, for
//! warm network reuse.

use noc_types::Cycle;
use serde::{Deserialize, Serialize};

/// Online latency statistics (count, mean, min, max and a coarse histogram).
///
/// Latency is measured in cycles from packet creation at the source NIC to
/// reception of the tail flit at the last destination NIC — the same
/// "complete action" convention the paper uses for its theoretical limits.
///
/// # Examples
///
/// ```
/// use noc_sim::LatencyStats;
///
/// let mut stats = LatencyStats::new();
/// stats.record(10);
/// stats.record(20);
/// assert_eq!(stats.count(), 2);
/// assert_eq!(stats.mean(), 15.0);
/// assert_eq!(stats.max(), Some(20));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    count: u64,
    sum: u64,
    min: Option<Cycle>,
    max: Option<Cycle>,
    /// Histogram with 1-cycle bins up to 255 and an overflow bin.
    histogram: Vec<u64>,
}

impl Default for LatencyStats {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyStats {
    /// Number of histogram bins (latencies 0..=254 plus an overflow bin).
    const BINS: usize = 256;

    /// Creates an empty statistics accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::with_bins(Self::BINS)
    }

    /// Creates an empty accumulator with a custom histogram width: `bins - 1`
    /// one-cycle bins plus an overflow bin (clamped to at least 2 bins).
    /// Percentiles saturate at `bins - 1` cycles; closed-loop RTT histograms
    /// use a wider range than the default 256 because a round trip stacks
    /// two network traversals on top of the service latency.
    ///
    /// Merging accumulators of different widths keeps the receiver's width
    /// (overflowing latencies stay clamped).
    #[must_use]
    pub fn with_bins(bins: usize) -> Self {
        Self {
            count: 0,
            sum: 0,
            min: None,
            max: None,
            histogram: vec![0; bins.max(2)],
        }
    }

    /// Forgets every recorded latency, keeping the histogram storage (warm
    /// network reset).
    pub fn reset(&mut self) {
        self.count = 0;
        self.sum = 0;
        self.min = None;
        self.max = None;
        self.histogram.fill(0);
    }

    /// Records one packet latency in cycles.
    pub fn record(&mut self, latency: Cycle) {
        self.count += 1;
        self.sum += latency;
        self.min = Some(self.min.map_or(latency, |m| m.min(latency)));
        self.max = Some(self.max.map_or(latency, |m| m.max(latency)));
        let bin = (latency as usize).min(self.histogram.len() - 1);
        self.histogram[bin] += 1;
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        let overflow = self.histogram.len() - 1;
        for (bin, &n) in other.histogram.iter().enumerate() {
            self.histogram[bin.min(overflow)] += n;
        }
    }

    /// Number of recorded packets.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in cycles (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Minimum recorded latency.
    #[must_use]
    pub fn min(&self) -> Option<Cycle> {
        self.min
    }

    /// Maximum recorded latency.
    #[must_use]
    pub fn max(&self) -> Option<Cycle> {
        self.max
    }

    /// Approximate latency percentile (`p` in `[0, 1]`) from the histogram.
    ///
    /// Returns `None` when no latency has been recorded.
    #[must_use]
    pub fn percentile(&self, p: f64) -> Option<Cycle> {
        if self.count == 0 {
            return None;
        }
        let target = (p.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (bin, &n) in self.histogram.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Some(bin as Cycle);
            }
        }
        self.max
    }
}

/// Received-throughput accounting.
///
/// Throughput is counted in *received* flits (the paper's convention): a
/// broadcast flit delivered to 15 destinations counts 15 times, which is what
/// makes the 1024 Gb/s theoretical limit reachable by 16 ejection ports of
/// 64 bits at 1 GHz.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ThroughputStats {
    received_flits: u64,
    received_packets: u64,
    injected_flits: u64,
    injected_packets: u64,
    measured_cycles: u64,
}

impl ThroughputStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Forgets every recorded injection and reception (warm network reset).
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Records the injection of a packet of `flits` flits at a source NIC.
    pub fn record_injection(&mut self, flits: u64) {
        self.injected_packets += 1;
        self.injected_flits += flits;
    }

    /// Records the reception of a packet of `flits` flits at one destination
    /// NIC (call once per destination for multicasts).
    pub fn record_reception(&mut self, flits: u64) {
        self.received_packets += 1;
        self.received_flits += flits;
    }

    /// Sets the number of cycles over which the receptions were measured.
    pub fn set_measured_cycles(&mut self, cycles: u64) {
        self.measured_cycles = cycles;
    }

    /// Total flits received across all NICs.
    #[must_use]
    pub fn received_flits(&self) -> u64 {
        self.received_flits
    }

    /// Total packet receptions (one per destination reached).
    #[must_use]
    pub fn received_packets(&self) -> u64 {
        self.received_packets
    }

    /// Total flits injected by all NICs.
    #[must_use]
    pub fn injected_flits(&self) -> u64 {
        self.injected_flits
    }

    /// Total packets injected by all NICs.
    #[must_use]
    pub fn injected_packets(&self) -> u64 {
        self.injected_packets
    }

    /// Measurement window in cycles.
    #[must_use]
    pub fn measured_cycles(&self) -> u64 {
        self.measured_cycles
    }

    /// Received flits per cycle over the measurement window.
    #[must_use]
    pub fn received_flits_per_cycle(&self) -> f64 {
        if self.measured_cycles == 0 {
            0.0
        } else {
            self.received_flits as f64 / self.measured_cycles as f64
        }
    }

    /// Received throughput in Gb/s for a given flit width and clock.
    #[must_use]
    pub fn received_gbps(&self, flit_bits: u32, frequency_ghz: f64) -> f64 {
        self.received_flits_per_cycle() * f64::from(flit_bits) * frequency_ghz
    }
}

/// One point of a latency-throughput sweep (one injection rate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Offered injection rate in flits/node/cycle.
    pub injection_rate: f64,
    /// Average packet latency in cycles.
    pub average_latency_cycles: f64,
    /// Received throughput in flits/cycle (network-wide).
    pub received_flits_per_cycle: f64,
    /// Received throughput in Gb/s at the configured flit width and clock.
    pub received_gbps: f64,
    /// Number of packets whose latency was measured.
    pub measured_packets: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_basic() {
        let mut s = LatencyStats::new();
        for l in [5, 10, 15] {
            s.record(l);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), 10.0);
        assert_eq!(s.min(), Some(5));
        assert_eq!(s.max(), Some(15));
        assert_eq!(s.percentile(0.0), Some(5));
        assert_eq!(s.percentile(1.0), Some(15));
    }

    #[test]
    fn latency_stats_empty() {
        let s = LatencyStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.percentile(0.5), None);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn latency_stats_merge() {
        let mut a = LatencyStats::new();
        let mut b = LatencyStats::new();
        a.record(10);
        b.record(30);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), 20.0);
        assert_eq!(a.max(), Some(30));
    }

    #[test]
    fn latency_histogram_overflow_bin() {
        let mut s = LatencyStats::new();
        s.record(10_000);
        assert_eq!(s.percentile(1.0), Some(255));
        assert_eq!(s.max(), Some(10_000));
    }

    #[test]
    fn custom_bin_width_extends_percentile_range() {
        let mut s = LatencyStats::with_bins(1024);
        s.record(600);
        assert_eq!(s.percentile(1.0), Some(600));
        // Merging into a narrower accumulator clamps into its overflow bin
        // without losing the count.
        let mut narrow = LatencyStats::with_bins(4);
        narrow.merge(&s);
        assert_eq!(narrow.count(), 1);
        assert_eq!(narrow.percentile(1.0), Some(3));
    }

    #[test]
    fn throughput_accounting() {
        let mut t = ThroughputStats::new();
        t.record_injection(1);
        t.record_injection(5);
        // Broadcast of 1 flit delivered to 15 destinations.
        for _ in 0..15 {
            t.record_reception(1);
        }
        t.set_measured_cycles(10);
        assert_eq!(t.injected_flits(), 6);
        assert_eq!(t.received_flits(), 15);
        assert_eq!(t.received_flits_per_cycle(), 1.5);
        // 1.5 flits/cycle x 64 bits x 1 GHz = 96 Gb/s.
        assert_eq!(t.received_gbps(64, 1.0), 96.0);
    }

    #[test]
    fn throughput_zero_window_is_zero() {
        let t = ThroughputStats::new();
        assert_eq!(t.received_flits_per_cycle(), 0.0);
        assert_eq!(t.received_gbps(64, 1.0), 0.0);
    }
}
