//! The global cycle counter shared by every component of a simulated
//! network (the chip is a single synchronous 1 GHz clock domain, §4).

use noc_types::Cycle;
use serde::{Deserialize, Serialize};

/// The network clock.
///
/// All routers, links and NICs in a simulation share one clock; a simulation
/// step is "everyone computes with the state visible at cycle `t`, then
/// everyone commits, then the clock ticks to `t + 1`".
///
/// # Examples
///
/// ```
/// use noc_sim::Clock;
///
/// let mut clock = Clock::new();
/// assert_eq!(clock.now(), 0);
/// clock.tick();
/// clock.advance(9);
/// assert_eq!(clock.now(), 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Clock {
    now: Cycle,
}

impl Clock {
    /// A clock starting at cycle zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current cycle.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Advances the clock by one cycle and returns the new current cycle.
    pub fn tick(&mut self) -> Cycle {
        self.now += 1;
        self.now
    }

    /// Advances the clock by `cycles` cycles.
    pub fn advance(&mut self, cycles: Cycle) {
        self.now += cycles;
    }

    /// Rewinds the clock to cycle zero (warm network reset).
    pub fn reset(&mut self) {
        self.now = 0;
    }

    /// Converts a cycle count into nanoseconds at `frequency_ghz`.
    #[must_use]
    pub fn cycles_to_ns(cycles: Cycle, frequency_ghz: f64) -> f64 {
        cycles as f64 / frequency_ghz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_ticks() {
        let mut c = Clock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.tick(), 1);
        assert_eq!(c.tick(), 2);
        c.advance(8);
        assert_eq!(c.now(), 10);
    }

    #[test]
    fn cycle_to_time_conversion() {
        // 1000 cycles at 1 GHz is 1000 ns; at 2 GHz it is 500 ns.
        assert_eq!(Clock::cycles_to_ns(1000, 1.0), 1000.0);
        assert_eq!(Clock::cycles_to_ns(1000, 2.0), 500.0);
    }
}
