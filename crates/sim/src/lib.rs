//! # noc-sim
//!
//! Cycle-driven simulation kernel for the DAC 2012 mesh NoC reproduction.
//!
//! The kernel is deliberately small: the paper's chip is a synchronous
//! design clocked at 1 GHz, so a fixed-timestep, two-phase (compute /
//! commit) cycle loop models it faithfully without the complexity of a
//! general discrete-event engine. The crate provides:
//!
//! * [`Clock`] — the global cycle counter,
//! * [`EventWheel`] and [`RingQueue`] — the fixed-horizon calendar queue
//!   (and its reusable slot buffer) the network core schedules link, credit
//!   and NIC traversals through without steady-state heap allocation,
//! * [`BoundaryMailbox`] — the order-preserving per-edge queue the
//!   partitioned stepper uses to hand boundary-link events between mesh
//!   partitions at cycle barriers,
//! * [`Lfsr`] and [`PrbsGenerator`] — the pseudo-random binary sequence
//!   generators the chip's NICs use to produce traffic (including the
//!   "identical seeds on every NIC" artifact the paper discusses), with a
//!   precomputed GF(2) 16-step leap ([`Lfsr::leap16`]) and a scout/skip API
//!   that lets schedulers fast-forward quiescent traffic sources bit-exactly,
//! * [`FlitSlab`] and [`FlitHandle`] — pooled refcounted payload storage so
//!   the wheel's flit lane moves 8-byte handles instead of whole flits and
//!   multicast forks share one payload across branches,
//! * [`LatencyStats`], [`ThroughputStats`] — measurement helpers for the
//!   latency/throughput curves of Figs. 5 and 13,
//! * [`ActivityCounters`] — per-component event counts (buffer reads/writes,
//!   crossbar and link traversals, allocator arbitrations, lookaheads,
//!   bypasses) that the power models in `noc-power` convert into energy.
//!
//! The clock, wheel and statistics all support an in-place `reset` that
//! keeps their storage capacity — the kernel half of the warm network reset
//! (`mesh_noc::Network::reset`) that lets experiment runners reuse one
//! simulation across sweep points. The wheel's take/restore lifecycle and
//! the zero-allocation contract are documented in `ARCHITECTURE.md` at the
//! repository root.
//!
//! # Examples
//!
//! ```
//! use noc_sim::{Clock, PrbsGenerator};
//!
//! let mut clock = Clock::new();
//! let mut prbs = PrbsGenerator::new(0xACE1);
//! let mut injected = 0;
//! for _ in 0..1000 {
//!     // Bernoulli injection at rate 0.25 flits/cycle.
//!     if prbs.chance(0.25) {
//!         injected += 1;
//!     }
//!     clock.tick();
//! }
//! assert_eq!(clock.now(), 1000);
//! assert!(injected > 150 && injected < 350);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod clock;
mod counters;
mod mailbox;
mod prbs;
mod slab;
mod stats;
mod wheel;

pub use clock::Clock;
pub use counters::ActivityCounters;
pub use mailbox::BoundaryMailbox;
pub use prbs::{bernoulli_threshold, Lfsr, PrbsGenerator};
pub use slab::{FlitHandle, FlitSlab};
pub use stats::{LatencyStats, SweepPoint, ThroughputStats};
pub use wheel::{EventWheel, RingQueue};
