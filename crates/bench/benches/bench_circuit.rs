//! Criterion bench: circuit-level models (Figs. 7, 10, 11, 12; Tables 3, 4).

use criterion::{criterion_group, criterion_main, Criterion};
use noc_circuit::{
    AreaModel, CriticalPathModel, EyeAnalysis, LowSwingLink, SenseAmpVariation, Wire,
};
use std::hint::black_box;

fn bench_link_models(c: &mut Criterion) {
    c.bench_function("lowswing_link_energy_and_speed", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for length in [0.5, 1.0, 1.5, 2.0] {
                let link = LowSwingLink::new(Wire::link_45nm(black_box(length)), 0.3);
                acc += link.energy_per_bit_fj() + link.max_frequency_ghz();
            }
            acc
        });
    });
}

fn bench_monte_carlo(c: &mut Criterion) {
    let model = SenseAmpVariation::chip_45nm();
    c.bench_function("sense_amp_monte_carlo_1000_runs", |b| {
        b.iter(|| black_box(model.monte_carlo(0.3, 1000, 42)));
    });
}

fn bench_static_reports(c: &mut Criterion) {
    c.bench_function("timing_area_eye_reports", |b| {
        b.iter(|| {
            let t = CriticalPathModel::chip_45nm().table3();
            let a = AreaModel::chip_45nm().table4();
            let e = EyeAnalysis::repeated_2mm().eye_height_v(2.5, 1.3);
            black_box((t, a, e))
        });
    });
}

criterion_group!(
    benches,
    bench_link_models,
    bench_monte_carlo,
    bench_static_reports
);
criterion_main!(benches);
