//! Criterion bench: ns per `Network::step` call on steady-state workloads.
//!
//! This is the perf-trajectory anchor for the simulation core: the 4×4
//! saturated mixed-traffic point is the hottest configuration behind the
//! latency-throughput sweeps of Figs. 5 and 13, and the k=8 point tracks how
//! stepping scales with mesh size. The low-load and all-idle-drain variants
//! anchor the other end of every sweep curve, where the active-set scheduler
//! lets `step` skip idle routers and NICs entirely. Networks are driven into
//! steady state before measurement so the numbers reflect the per-cycle cost
//! (event scheduling, router allocation, flit movement) rather than
//! cold-start behaviour.

use criterion::{criterion_group, criterion_main, Criterion};
use mesh_noc::{Network, NetworkVariant, NocConfig, PartitionShape};
use noc_traffic::{SeedMode, SpatialPattern, TrafficMix};
use noc_types::DestinationSet;
use std::hint::black_box;

/// Builds a network at `rate` and steps it into steady state.
fn warmed_network(config: NocConfig, rate: f64, warmup: u64) -> Network {
    let mut network = Network::new(config, rate).unwrap();
    for _ in 0..warmup {
        network.step(true);
    }
    network
}

fn bench_step_4x4_saturated(c: &mut Criterion) {
    // 0.28 flits/node/cycle of mixed traffic is past the proposed network's
    // saturation point: every cycle moves flits on most links.
    let config = NocConfig::proposed_chip()
        .unwrap()
        .with_seed_mode(SeedMode::PerNode);
    let mut network = warmed_network(config, 0.28, 1_000);
    c.bench_function("step_4x4_saturated_mixed", |b| {
        b.iter(|| {
            network.step(true);
            black_box(network.now())
        });
    });
}

fn bench_step_4x4_baseline_saturated(c: &mut Criterion) {
    let config = NocConfig::variant(NetworkVariant::FullSwingUnicast)
        .unwrap()
        .with_seed_mode(SeedMode::PerNode);
    let mut network = warmed_network(config, 0.28, 1_000);
    c.bench_function("step_4x4_saturated_baseline", |b| {
        b.iter(|| {
            network.step(true);
            black_box(network.now())
        });
    });
}

fn bench_step_8x8_saturated(c: &mut Criterion) {
    let config = NocConfig::proposed_chip()
        .unwrap()
        .with_side(8)
        .with_seed_mode(SeedMode::PerNode);
    let mut network = warmed_network(config, 0.28, 1_000);
    c.bench_function("step_8x8_saturated_mixed", |b| {
        b.iter(|| {
            network.step(true);
            black_box(network.now())
        });
    });
}

/// Partitioned stepping: the same saturated 8×8 workload stepped by two
/// row-strip partitions through the persistent pool. On a multi-core host
/// this should approach half the serial cost; on a single-core runner it
/// instead measures the barrier + mailbox-merge overhead (the `_2t` suffix
/// is how `bench_diff` knows the thread count).
fn bench_step_8x8_saturated_2t(c: &mut Criterion) {
    let config = NocConfig::proposed_chip()
        .unwrap()
        .with_side(8)
        .with_seed_mode(SeedMode::PerNode);
    let mut network = Network::with_step_threads(config, 0.28, 2).unwrap();
    for _ in 0..1_000 {
        network.step(true);
    }
    c.bench_function("step_8x8_saturated_mixed_2t", |b| {
        b.iter(|| {
            network.step(true);
            black_box(network.now())
        });
    });
}

/// The 16×16 stressor behind the `stress16` experiment: 256 nodes of
/// saturated mixed traffic, stepped serially as the scaling anchor the
/// partitioned variants are judged against.
fn bench_step_16x16_saturated(c: &mut Criterion) {
    let config = NocConfig::proposed_chip()
        .unwrap()
        .with_side(16)
        .with_seed_mode(SeedMode::PerNode);
    let mut network = warmed_network(config, 0.10, 1_000);
    c.bench_function("step_16x16_saturated_mixed", |b| {
        b.iter(|| {
            network.step(true);
            black_box(network.now())
        });
    });
}

/// The `hotspot16` workload (90% of unicast traffic targets the far-corner
/// node of a 16×16 mesh) stepped by four partitions in three layouts: the
/// trio pins the cost of the partition-shape generalisation. `_rows` is the
/// old uniform row-strip split, `_tiles` adds vertical cuts (extra East/West
/// mailbox edges), `_rebal` adds deterministic load-aware repartitioning
/// every 256 cycles (the rebalance itself amortises over the epoch). All
/// three step the *same* simulated state — any spread is pure harness cost.
fn bench_step_16x16_hotspot_4t(c: &mut Criterion) {
    let config = NocConfig::proposed_chip()
        .unwrap()
        .with_side(16)
        .with_pattern(SpatialPattern::hotspot(DestinationSet::unicast(255), 0.9))
        .with_mix(TrafficMix::unicast_only())
        .with_seed_mode(SeedMode::PerNode);
    let shapes: [(&str, PartitionShape, Option<u64>); 3] = [
        ("step_16x16_hotspot_4t_rows", PartitionShape::Rows(4), None),
        (
            "step_16x16_hotspot_4t_tiles",
            PartitionShape::Tiles { rows: 2, cols: 2 },
            None,
        ),
        (
            "step_16x16_hotspot_4t_rebal",
            PartitionShape::Tiles { rows: 2, cols: 2 },
            Some(256),
        ),
    ];
    for (name, shape, epoch) in shapes {
        let mut network = Network::new(config, 0.04).unwrap();
        network.set_partition_shape(shape).unwrap();
        network.set_rebalance_epoch(epoch);
        for _ in 0..1_000 {
            network.step(true);
        }
        c.bench_function(name, |b| {
            b.iter(|| {
                network.step(true);
                black_box(network.now())
            });
        });
    }
}

/// Low-load variants: the regime where the active-set scheduler pays off.
/// Most cycles most routers are idle, so `step` should visit only the
/// handful of woken nodes instead of all k². The mixed points sit at the
/// bottom of the Fig. 5 sweep curves; the unicast point isolates router
/// idleness from the broadcast fan-out that keeps an 8×8 mesh busy even at
/// low rates.
fn bench_step_lowload(c: &mut Criterion) {
    let mixed_4 = NocConfig::proposed_chip()
        .unwrap()
        .with_seed_mode(SeedMode::PerNode);
    let mut network = warmed_network(mixed_4, 0.02, 1_000);
    c.bench_function("step_4x4_lowload_mixed", |b| {
        b.iter(|| {
            network.step(true);
            black_box(network.now())
        });
    });

    let mixed_8 = NocConfig::proposed_chip()
        .unwrap()
        .with_side(8)
        .with_seed_mode(SeedMode::PerNode);
    let mut network = warmed_network(mixed_8, 0.02, 1_000);
    c.bench_function("step_8x8_lowload_mixed", |b| {
        b.iter(|| {
            network.step(true);
            black_box(network.now())
        });
    });

    let unicast_8 = NocConfig::proposed_chip()
        .unwrap()
        .with_side(8)
        .with_mix(TrafficMix::unicast_only())
        .with_seed_mode(SeedMode::PerNode);
    let mut network = warmed_network(unicast_8, 0.01, 1_000);
    c.bench_function("step_8x8_lowload_unicast", |b| {
        b.iter(|| {
            network.step(true);
            black_box(network.now())
        });
    });
}

/// All-idle drain: a fully drained 8×8 network stepped without injection.
/// Nothing can move, so this measures the pure per-cycle overhead of the
/// orchestrator — with active-set scheduling it is a wheel rotation plus a
/// scan of two zero bitmask words, independent of mesh size.
fn bench_step_drain_idle(c: &mut Criterion) {
    let config = NocConfig::proposed_chip()
        .unwrap()
        .with_side(8)
        .with_seed_mode(SeedMode::PerNode);
    let mut network = warmed_network(config, 0.02, 1_000);
    let mut drained = 0;
    while network.in_flight_flits() > 0 && drained < 20_000 {
        network.step(false);
        drained += 1;
    }
    assert_eq!(network.in_flight_flits(), 0, "network must drain fully");
    c.bench_function("step_8x8_drain_idle", |b| {
        b.iter(|| {
            network.step(false);
            black_box(network.now())
        });
    });
}

/// Warm-network reset (the per-sweep-point turnaround of a batching
/// `SweepRunner` worker) versus cold construction: resetting keeps every
/// buffer's high-water-mark capacity, so it should be much cheaper than
/// building a network from scratch. Every measured reset operates on a
/// *dirty* saturated network (cloned per iteration outside the timing), the
/// state a sweep worker actually rewinds between points.
fn bench_reset_vs_new(c: &mut Criterion) {
    let config = NocConfig::proposed_chip()
        .unwrap()
        .with_seed_mode(SeedMode::PerNode);
    let dirty = warmed_network(config, 0.28, 1_000);
    let mut seed = 0u64;
    c.bench_function("network_reset_warm_4x4", |b| {
        b.iter_batched(
            || dirty.clone(),
            |mut network| {
                seed = seed.wrapping_add(1);
                network.reset(seed);
                black_box(network.now());
                network
            },
            criterion::BatchSize::SmallInput,
        );
    });
    c.bench_function("network_new_cold_4x4", |b| {
        b.iter(|| {
            let network = Network::new(config, 0.28).unwrap();
            black_box(network.now())
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_step_4x4_saturated, bench_step_4x4_baseline_saturated, bench_step_8x8_saturated,
        bench_step_8x8_saturated_2t, bench_step_16x16_saturated, bench_step_16x16_hotspot_4t,
        bench_step_lowload, bench_step_drain_idle, bench_reset_vs_new
}
criterion_main!(benches);
