//! Criterion bench: power-model evaluation (Figs. 6 and 8 pricing path).

use criterion::{criterion_group, criterion_main, Criterion};
use noc_power::{
    EnergyParams, MeasuredPowerModel, OrionPowerModel, PostLayoutPowerModel, PowerEstimator,
};
use noc_sim::ActivityCounters;
use std::hint::black_box;

fn busy_counters() -> ActivityCounters {
    ActivityCounters {
        buffer_writes: 50_000,
        buffer_reads: 50_000,
        crossbar_traversals: 200_000,
        link_traversals: 150_000,
        local_link_traversals: 60_000,
        sa_local_arbitrations: 80_000,
        sa_global_arbitrations: 90_000,
        vc_allocations: 40_000,
        route_computations: 40_000,
        lookaheads_sent: 150_000,
        bypasses: 100_000,
        credits_sent: 150_000,
        multicast_forks: 10_000,
        ejections: 50_000,
        cycles: 160_000,
        routers: 16,
    }
}

fn bench_three_models(c: &mut Criterion) {
    let counters = busy_counters();
    let measured = MeasuredPowerModel::new(EnergyParams::chip_low_swing());
    let orion = OrionPowerModel::new(EnergyParams::chip_low_swing());
    let post = PostLayoutPowerModel::new(EnergyParams::chip_low_swing());
    c.bench_function("price_activity_with_three_models", |b| {
        b.iter(|| {
            let m = measured
                .estimate(black_box(&counters), 10_000, 1.0)
                .total_mw();
            let o = orion.estimate(black_box(&counters), 10_000, 1.0).total_mw();
            let p = post.estimate(black_box(&counters), 10_000, 1.0).total_mw();
            black_box(m + o + p)
        });
    });
}

criterion_group!(benches, bench_three_models);
criterion_main!(benches);
