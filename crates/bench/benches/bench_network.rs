//! Criterion bench: whole-network simulation throughput (cycles/second of
//! simulated 4x4 mesh), the cost behind Figs. 5 and 13.

use criterion::{criterion_group, criterion_main, Criterion};
use mesh_noc::{Network, NetworkVariant, NocConfig};
use noc_traffic::TrafficMix;
use std::hint::black_box;

fn run(config: NocConfig, rate: f64, cycles: u64) -> u64 {
    let mut network = Network::new(config, rate).unwrap();
    for _ in 0..cycles {
        network.step(true);
    }
    network.counters().link_traversals
}

fn bench_proposed_mixed(c: &mut Criterion) {
    let config = NocConfig::variant(NetworkVariant::LowSwingBroadcastBypass).unwrap();
    c.bench_function("network_proposed_mixed_500_cycles", |b| {
        b.iter(|| black_box(run(config, 0.1, 500)));
    });
}

fn bench_baseline_mixed(c: &mut Criterion) {
    let config = NocConfig::variant(NetworkVariant::FullSwingUnicast).unwrap();
    c.bench_function("network_baseline_mixed_500_cycles", |b| {
        b.iter(|| black_box(run(config, 0.1, 500)));
    });
}

fn bench_broadcast_only(c: &mut Criterion) {
    let config = NocConfig::variant(NetworkVariant::LowSwingBroadcastBypass)
        .unwrap()
        .with_mix(TrafficMix::broadcast_only());
    c.bench_function("network_proposed_broadcast_500_cycles", |b| {
        b.iter(|| black_box(run(config, 0.05, 500)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_proposed_mixed, bench_baseline_mixed, bench_broadcast_only
}
criterion_main!(benches);
