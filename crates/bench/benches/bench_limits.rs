//! Criterion bench: analytical limits and chip models (Tables 1 and 2).

use criterion::{criterion_group, criterion_main, Criterion};
use noc_topology::chips;
use noc_topology::limits::{DatapathEnergy, MeshLimits};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_limits_k4_to_k16", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for k in 2..=16u16 {
                let l = MeshLimits::new(black_box(k));
                acc += l.unicast_average_hops()
                    + l.broadcast_average_hops()
                    + l.unicast_energy_limit_pj(DatapathEnergy::default())
                    + l.broadcast_energy_limit_pj(DatapathEnergy::default());
            }
            acc
        });
    });
}

fn bench_table2(c: &mut Criterion) {
    c.bench_function("table2_chip_rows", |b| {
        b.iter(|| black_box(chips::table2()));
    });
}

criterion_group!(benches, bench_table1, bench_table2);
criterion_main!(benches);
