//! Criterion bench: single-router switch allocation and traversal.

use criterion::{criterion_group, criterion_main, Criterion};
use noc_router::{Lookahead, Router, RouterConfig};
use noc_sim::FlitSlab;
use noc_topology::{routing, Mesh};
use noc_types::{Coord, Credit, DestinationSet, MessageClass, Packet, PacketKind, Port};
use std::hint::black_box;

fn unicast_flit(id: u64) -> noc_types::Flit {
    let p = Packet::new(id, 0, DestinationSet::unicast(7), PacketKind::Request, 0);
    let mut f = p.to_flits().remove(0);
    f.set_vc((id % 4) as u8);
    f
}

fn bench_bypass_hop(c: &mut Criterion) {
    let mesh = Mesh::new(4).unwrap();
    c.bench_function("router_bypassed_hop", |b| {
        b.iter_batched(
            || {
                let router = Router::new(&RouterConfig::proposed(true), mesh, Coord::new(1, 1));
                (router, FlitSlab::new())
            },
            |(mut router, mut slab)| {
                for i in 0..100u64 {
                    let flit = unicast_flit(i);
                    let ports =
                        routing::requested_ports(&mesh, router.coord(), flit.destinations());
                    let la =
                        Lookahead::new(flit.id(), flit.message_class(), flit.vc().unwrap(), ports);
                    router.accept_flit(Port::West, flit);
                    router.accept_lookahead(Port::West, la);
                    let out = black_box(router.step(i, &mut slab));
                    // Model an always-ready downstream router: return the
                    // credit for every departed flit so flow control never
                    // stalls the benchmark loop.
                    for departure in out.departures {
                        if let Some(vc) = slab.take(departure.flit).vc() {
                            router.accept_credit(
                                departure.port,
                                Credit::new(MessageClass::Request, vc),
                            );
                        }
                    }
                }
                (router, slab)
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

fn bench_buffered_hop(c: &mut Criterion) {
    let mesh = Mesh::new(4).unwrap();
    c.bench_function("router_buffered_hop", |b| {
        b.iter_batched(
            || {
                let router =
                    Router::new(&RouterConfig::aggressive_baseline(), mesh, Coord::new(1, 1));
                (router, FlitSlab::new())
            },
            |(mut router, mut slab)| {
                for i in 0..100u64 {
                    // Inject a new flit only when its VC has drained, exactly
                    // as an upstream router limited by credits would.
                    let flit = unicast_flit(i);
                    let vc = flit.vc().unwrap();
                    if router
                        .input(Port::West)
                        .vc(MessageClass::Request, vc)
                        .is_empty()
                    {
                        router.accept_flit(Port::West, flit);
                    }
                    let out = black_box(router.step(i, &mut slab));
                    for departure in out.departures {
                        if let Some(vc) = slab.take(departure.flit).vc() {
                            router.accept_credit(
                                departure.port,
                                Credit::new(MessageClass::Request, vc),
                            );
                        }
                    }
                }
                (router, slab)
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

/// The two switch-allocation arbiters, slice versus bitmask request vectors
/// (mSA-I shape: 6 VC requestors; mSA-II shape: 5 port requestors). The mask
/// paths are what the router's hot loop feeds every cycle.
fn bench_arbiters(c: &mut Criterion) {
    use noc_router::{MatrixArbiter, RoundRobinArbiter};

    let mut rr = RoundRobinArbiter::new(6);
    let mut pattern = 0u32;
    c.bench_function("arbiter_msa1_rr_mask", |b| {
        b.iter(|| {
            pattern = pattern.wrapping_add(0x9E37_79B9);
            black_box(rr.arbitrate_mask(pattern & 0x3F | 1))
        });
    });
    let mut rr = RoundRobinArbiter::new(6);
    let mut pattern = 0u32;
    c.bench_function("arbiter_msa1_rr_slice", |b| {
        b.iter(|| {
            pattern = pattern.wrapping_add(0x9E37_79B9);
            let bits = pattern & 0x3F | 1;
            let requests: [bool; 6] = std::array::from_fn(|i| bits >> i & 1 != 0);
            black_box(rr.arbitrate(&requests))
        });
    });

    let mut matrix = MatrixArbiter::new(5);
    let mut pattern = 0u32;
    c.bench_function("arbiter_msa2_matrix_mask", |b| {
        b.iter(|| {
            pattern = pattern.wrapping_add(0x9E37_79B9);
            black_box(matrix.arbitrate_mask(pattern & 0x1F | 1))
        });
    });
    let mut matrix = MatrixArbiter::new(5);
    let mut pattern = 0u32;
    c.bench_function("arbiter_msa2_matrix_slice", |b| {
        b.iter(|| {
            pattern = pattern.wrapping_add(0x9E37_79B9);
            let bits = pattern & 0x1F | 1;
            let requests: [bool; 5] = std::array::from_fn(|i| bits >> i & 1 != 0);
            black_box(matrix.arbitrate(&requests))
        });
    });
}

criterion_group!(
    benches,
    bench_bypass_hop,
    bench_buffered_hop,
    bench_arbiters
);
criterion_main!(benches);
