//! Machine-readable sweep records and their JSON serialisation.
//!
//! `repro` prints human-readable tables, but the perf trajectory of the
//! simulator (and downstream plotting) needs structured data: per-point
//! injection rates, latencies, throughputs and wall-clock times. The records
//! here capture exactly that, and [`sweep_records_json`] renders them as a
//! self-contained JSON document (`BENCH_sweep.json`) without an external
//! serialisation dependency — the offline build environment has no
//! `serde_json`.

use mesh_noc::SweepOutcome;

/// One measured sweep point of a [`SweepRecord`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPointRecord {
    /// Offered flit injection rate per node per cycle (client population for
    /// the closed-loop `serving` sweep).
    pub injection_rate: f64,
    /// Average packet latency (cycles).
    pub latency_cycles: f64,
    /// Median (50th-percentile) packet latency (cycles).
    pub p50_latency_cycles: f64,
    /// 95th-percentile packet latency (cycles).
    pub p95_latency_cycles: f64,
    /// 99th-percentile packet latency (cycles).
    pub p99_latency_cycles: f64,
    /// Received throughput (Gb/s).
    pub received_gbps: f64,
    /// Received throughput (flits/cycle).
    pub received_flits_per_cycle: f64,
    /// Fraction of hops that bypassed the router pipeline.
    pub bypass_fraction: f64,
    /// Packets whose latency was measured.
    pub measured_packets: u64,
    /// Wall-clock milliseconds this point took to simulate.
    pub wall_ms: f64,
}

/// One network's sweep, as emitted into `BENCH_sweep.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRecord {
    /// Experiment the sweep belongs to (e.g. `fig5`, `stress8`).
    pub experiment: String,
    /// Which network was swept (e.g. `proposed`, `baseline`).
    pub network: String,
    /// Mesh side length.
    pub k: u16,
    /// Worker threads the sweep ran on.
    pub jobs: usize,
    /// Mesh-partition threads each worker's network stepped with (the
    /// requested `--step-threads`; results are bit-identical regardless).
    pub step_threads: usize,
    /// Zero-load latency of the curve (cycles).
    pub zero_load_latency_cycles: f64,
    /// Saturation throughput (Gb/s).
    pub saturation_gbps: f64,
    /// Injection rate at which saturation was detected.
    pub saturation_rate: f64,
    /// Total wall-clock milliseconds for the sweep.
    pub total_wall_ms: f64,
    /// Cumulative per-partition busy counters (router steps of the
    /// active-set walk, in partition order) at the end of the run. Empty for
    /// ordinary sweeps; the `hotspot16` balance runs fill it so the JSON
    /// carries the partition-load evidence the load-aware repartitioner is
    /// judged by. Rendered into the JSON only when non-empty.
    pub partition_loads: Vec<u64>,
    /// The measured points, in injection-rate order.
    pub points: Vec<SweepPointRecord>,
}

impl SweepRecord {
    /// Builds a record from a [`SweepOutcome`].
    #[must_use]
    pub fn from_outcome(
        experiment: &str,
        network: &str,
        k: u16,
        jobs: usize,
        step_threads: usize,
        outcome: &SweepOutcome,
    ) -> Self {
        Self {
            experiment: experiment.to_owned(),
            network: network.to_owned(),
            k,
            jobs,
            step_threads,
            zero_load_latency_cycles: outcome.curve.zero_load_latency_cycles,
            saturation_gbps: outcome.curve.saturation_gbps,
            saturation_rate: outcome.curve.saturation_rate,
            total_wall_ms: outcome.total_wall_ms,
            partition_loads: Vec::new(),
            points: outcome
                .points
                .iter()
                .map(|p| SweepPointRecord {
                    injection_rate: p.injection_rate,
                    latency_cycles: p.result.average_latency_cycles,
                    p50_latency_cycles: p.result.p50_latency_cycles,
                    p95_latency_cycles: p.result.p95_latency_cycles,
                    p99_latency_cycles: p.result.p99_latency_cycles,
                    received_gbps: p.result.received_gbps,
                    received_flits_per_cycle: p.result.received_flits_per_cycle,
                    bypass_fraction: p.result.bypass_fraction,
                    measured_packets: p.result.measured_packets,
                    wall_ms: p.wall_ms,
                })
                .collect(),
        }
    }
}

/// A JSON number: finite floats in shortest round-trip form, `null` otherwise.
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_owned()
    }
}

/// A JSON string literal (the record fields only ever hold identifier-like
/// names, but escape the essentials anyway).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders one record as a JSON object with every line prefixed by `indent`
/// (no trailing newline). Shared by [`sweep_records_json`] and the
/// experiment-report JSON renderer.
pub(crate) fn sweep_record_json(r: &SweepRecord, indent: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("{indent}{{\n"));
    out.push_str(&format!(
        "{indent}  \"experiment\": {},\n",
        json_string(&r.experiment)
    ));
    out.push_str(&format!(
        "{indent}  \"network\": {},\n",
        json_string(&r.network)
    ));
    out.push_str(&format!("{indent}  \"k\": {},\n", r.k));
    out.push_str(&format!("{indent}  \"jobs\": {},\n", r.jobs));
    out.push_str(&format!(
        "{indent}  \"step_threads\": {},\n",
        r.step_threads
    ));
    out.push_str(&format!(
        "{indent}  \"zero_load_latency_cycles\": {},\n",
        num(r.zero_load_latency_cycles)
    ));
    out.push_str(&format!(
        "{indent}  \"saturation_gbps\": {},\n",
        num(r.saturation_gbps)
    ));
    out.push_str(&format!(
        "{indent}  \"saturation_rate\": {},\n",
        num(r.saturation_rate)
    ));
    out.push_str(&format!(
        "{indent}  \"total_wall_ms\": {},\n",
        num(r.total_wall_ms)
    ));
    if !r.partition_loads.is_empty() {
        let loads: Vec<String> = r.partition_loads.iter().map(u64::to_string).collect();
        out.push_str(&format!(
            "{indent}  \"partition_loads\": [{}],\n",
            loads.join(", ")
        ));
    }
    out.push_str(&format!("{indent}  \"points\": [\n"));
    for (pi, p) in r.points.iter().enumerate() {
        out.push_str(&format!(
            "{indent}    {{\"injection_rate\": {}, \"latency_cycles\": {}, \
             \"p50_latency_cycles\": {}, \"p95_latency_cycles\": {}, \
             \"p99_latency_cycles\": {}, \"received_gbps\": {}, \
             \"received_flits_per_cycle\": {}, \"bypass_fraction\": {}, \
             \"measured_packets\": {}, \"wall_ms\": {}}}{}\n",
            num(p.injection_rate),
            num(p.latency_cycles),
            num(p.p50_latency_cycles),
            num(p.p95_latency_cycles),
            num(p.p99_latency_cycles),
            num(p.received_gbps),
            num(p.received_flits_per_cycle),
            num(p.bypass_fraction),
            p.measured_packets,
            num(p.wall_ms),
            if pi + 1 == r.points.len() { "" } else { "," }
        ));
    }
    out.push_str(&format!("{indent}  ]\n"));
    out.push_str(&format!("{indent}}}"));
    out
}

/// Renders `records` as the `BENCH_sweep.json` document.
#[must_use]
pub fn sweep_records_json(records: &[SweepRecord]) -> String {
    let mut out = String::from("{\n  \"sweeps\": [\n");
    for (ri, r) in records.iter().enumerate() {
        out.push_str(&sweep_record_json(r, "    "));
        out.push_str(if ri + 1 == records.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> SweepRecord {
        SweepRecord {
            experiment: "fig5".into(),
            network: "proposed".into(),
            k: 4,
            jobs: 2,
            step_threads: 2,
            zero_load_latency_cycles: 8.25,
            saturation_gbps: 890.0,
            saturation_rate: 0.24,
            total_wall_ms: 123.5,
            partition_loads: Vec::new(),
            points: vec![SweepPointRecord {
                injection_rate: 0.01,
                latency_cycles: 8.25,
                p50_latency_cycles: 8.0,
                p95_latency_cycles: 12.0,
                p99_latency_cycles: 14.0,
                received_gbps: 100.0,
                received_flits_per_cycle: 1.5,
                bypass_fraction: 0.9,
                measured_packets: 321,
                wall_ms: 4.5,
            }],
        }
    }

    #[test]
    fn json_document_contains_every_field() {
        let json = sweep_records_json(&[record()]);
        for needle in [
            "\"experiment\": \"fig5\"",
            "\"network\": \"proposed\"",
            "\"k\": 4",
            "\"jobs\": 2",
            "\"step_threads\": 2",
            "\"injection_rate\": 0.01",
            "\"p50_latency_cycles\": 8.0",
            "\"p99_latency_cycles\": 14.0",
            "\"measured_packets\": 321",
            "\"wall_ms\": 4.5",
            "\"saturation_gbps\": 890.0",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn non_finite_numbers_become_null() {
        let mut r = record();
        r.points[0].latency_cycles = f64::NAN;
        let json = sweep_records_json(&[r]);
        assert!(json.contains("\"latency_cycles\": null"));
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }

    #[test]
    fn partition_loads_render_only_when_present() {
        let json = sweep_records_json(&[record()]);
        assert!(!json.contains("partition_loads"));
        let mut r = record();
        r.partition_loads = vec![10, 20, 30, 40];
        let json = sweep_records_json(&[r]);
        assert!(json.contains("\"partition_loads\": [10, 20, 30, 40]"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
