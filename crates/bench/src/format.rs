//! Minimal text-table formatting for experiment reports.

/// A simple fixed-column text table (markdown-ish, pipe separated).
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must have the same number of cells as the header).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header width.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as pipe-separated text with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let columns = self.header.len();
        let mut widths = vec![0usize; columns];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render_row = |cells: &[String]| {
            let mut line = String::from("|");
            for (i, cell) in cells.iter().enumerate() {
                line.push_str(&format!(" {:width$} |", cell, width = widths[i]));
            }
            line
        };
        let mut out = String::new();
        out.push_str(&render_row(&self.header));
        out.push('\n');
        let mut separator = String::from("|");
        for w in &widths {
            separator.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push_str(&separator);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with a fixed number of decimals.
#[must_use]
pub fn num(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Formats a fraction as a percentage with one decimal.
#[must_use]
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new(["metric", "value"]);
        t.row(["latency", "3.3"]);
        t.row(["throughput limit", "1024"]);
        let rendered = t.render();
        assert!(rendered.contains("| metric"));
        assert!(rendered.contains("| throughput limit |"));
        assert_eq!(rendered.lines().count(), 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(num(1.23456, 2), "1.23");
        assert_eq!(pct(0.483), "48.3%");
    }
}
