//! `repro` — regenerate the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro [--quick] <experiment>...   # e.g. repro table1 fig5
//! repro [--quick] all               # every experiment in paper order
//! repro list                        # list experiment names
//! ```

use std::process::ExitCode;

use noc_bench::{run_experiment, Effort, EXPERIMENTS};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut effort = Effort::Full;
    let mut names: Vec<String> = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--quick" | "-q" => effort = Effort::Quick,
            "list" => {
                for name in EXPERIMENTS {
                    println!("{name}");
                }
                return ExitCode::SUCCESS;
            }
            "all" => names.extend(EXPERIMENTS.iter().map(|s| (*s).to_owned())),
            other => names.push(other.to_owned()),
        }
    }
    if names.is_empty() {
        eprintln!("usage: repro [--quick] <experiment>... | all | list");
        eprintln!("experiments: {}", EXPERIMENTS.join(", "));
        return ExitCode::FAILURE;
    }
    for name in names {
        match run_experiment(&name, effort) {
            Some(report) => {
                println!("==================================================================");
                println!("{report}");
            }
            None => {
                eprintln!("unknown experiment '{name}'; try `repro list`");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
