//! `repro` — regenerate the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro [--quick] [--jobs N] <experiment>...   # e.g. repro table1 fig5
//! repro [--quick] [--jobs N] all               # every experiment in order
//! repro list                                   # list experiment names
//! ```
//!
//! `--jobs N` runs sweep-backed experiments (`fig5`, `fig13`, `stress8`)
//! with N worker threads; results are bit-identical for any N. Whenever a
//! run produces sweep data, a machine-readable `BENCH_sweep.json` (per-point
//! rates, latencies, throughputs and wall-clock times) is written next to
//! the printed tables.

use std::process::ExitCode;

use noc_bench::{run_experiment_full, sweep_records_json, Effort, SweepRecord, EXPERIMENTS};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut effort = Effort::Full;
    let mut jobs: usize = 1;
    let mut names: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" | "-q" => effort = Effort::Quick,
            "--jobs" | "-j" => {
                let Some(value) = iter.next() else {
                    eprintln!("--jobs needs a thread count");
                    return ExitCode::FAILURE;
                };
                match value.parse::<usize>() {
                    Ok(n) if n >= 1 => jobs = n,
                    _ => {
                        eprintln!("--jobs needs a positive integer, got '{value}'");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "list" => {
                for name in EXPERIMENTS {
                    println!("{name}");
                }
                return ExitCode::SUCCESS;
            }
            "all" => names.extend(EXPERIMENTS.iter().map(|s| (*s).to_owned())),
            other => names.push(other.to_owned()),
        }
    }
    if names.is_empty() {
        eprintln!("usage: repro [--quick] [--jobs N] <experiment>... | all | list");
        eprintln!("experiments: {}", EXPERIMENTS.join(", "));
        return ExitCode::FAILURE;
    }
    let mut sweeps: Vec<SweepRecord> = Vec::new();
    for name in names {
        match run_experiment_full(&name, effort, jobs) {
            Some(output) => {
                println!("==================================================================");
                println!("{}", output.report);
                sweeps.extend(output.sweeps);
            }
            None => {
                eprintln!("unknown experiment '{name}'; try `repro list`");
                return ExitCode::FAILURE;
            }
        }
    }
    if !sweeps.is_empty() {
        let path = "BENCH_sweep.json";
        match std::fs::write(path, sweep_records_json(&sweeps)) {
            Ok(()) => println!("wrote {path} ({} sweep(s))", sweeps.len()),
            Err(err) => {
                eprintln!("failed to write {path}: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
