//! `repro` — regenerate the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro [--quick] [--jobs N] [--step-threads N] [--partition SHAPE]
//!       [--rebalance N] [--json PATH] <experiment>...
//! repro [options] all
//! repro list                                                 # ids + descriptions
//! ```
//!
//! Experiments come from the typed registry (`noc_bench::REGISTRY`); `list`
//! prints each id with its description. `--jobs N` runs sweep-backed
//! experiments (`fig5`, `fig13`, `stress8`, `stress16`, `hotspot16`,
//! `patterns`, and the closed-loop `serving` population sweep) with N
//! worker threads; `--step-threads N` additionally steps each worker's mesh
//! with N partition threads (most useful for the big `stress16` mesh — jobs
//! take precedence when the product would oversubscribe the machine).
//! `--partition rows:N` or `--partition tiles:RxC` pins the partition layout
//! explicitly instead of deriving row strips from `--step-threads`, and
//! `--rebalance N` turns on deterministic load-aware repartitioning every N
//! cycles (open-loop sweeps only; `serving` keeps its own stepping).
//! Results are bit-identical for any combination of thread counts, partition
//! shapes and rebalance epochs. Whenever a run produces sweep data, a
//! machine-readable JSON document (per-point rates, latencies, throughputs
//! and wall-clock times) is written next to the printed tables —
//! `BENCH_sweep.json` by default, or the path given with `--json`.

use std::process::ExitCode;

use mesh_noc::PartitionShape;

use noc_bench::{
    find_experiment, sweep_records_json, Effort, Experiment, RunOpts, SweepRecord, REGISTRY,
};

/// Parses `rows:N` / `tiles:RxC` (axes must be positive — zero axes are
/// invalid partition grids).
fn parse_partition(value: &str) -> Option<PartitionShape> {
    if let Some(rows) = value.strip_prefix("rows:") {
        let rows: usize = rows.parse().ok()?;
        return (rows >= 1).then_some(PartitionShape::Rows(rows));
    }
    let spec = value.strip_prefix("tiles:")?;
    let (rows, cols) = spec.split_once('x')?;
    let rows: usize = rows.parse().ok()?;
    let cols: usize = cols.parse().ok()?;
    (rows >= 1 && cols >= 1).then_some(PartitionShape::Tiles { rows, cols })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut effort = Effort::Full;
    let mut jobs: usize = 1;
    let mut step_threads: usize = 1;
    let mut shape: Option<PartitionShape> = None;
    let mut rebalance: Option<u64> = None;
    let mut json_path = "BENCH_sweep.json".to_owned();
    let mut selected: Vec<&'static dyn Experiment> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" | "-q" => effort = Effort::Quick,
            "--jobs" | "-j" => {
                let Some(value) = iter.next() else {
                    eprintln!("--jobs needs a thread count");
                    return ExitCode::FAILURE;
                };
                match value.parse::<usize>() {
                    Ok(n) if n >= 1 => jobs = n,
                    _ => {
                        eprintln!("--jobs needs a positive integer, got '{value}'");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--step-threads" => {
                let Some(value) = iter.next() else {
                    eprintln!("--step-threads needs a thread count");
                    return ExitCode::FAILURE;
                };
                match value.parse::<usize>() {
                    Ok(n) if n >= 1 => step_threads = n,
                    _ => {
                        eprintln!("--step-threads needs a positive integer, got '{value}'");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--partition" => {
                let Some(value) = iter.next() else {
                    eprintln!("--partition needs a shape (rows:N or tiles:RxC)");
                    return ExitCode::FAILURE;
                };
                match parse_partition(&value) {
                    Some(parsed) => shape = Some(parsed),
                    None => {
                        eprintln!(
                            "--partition needs rows:N or tiles:RxC with positive axes, \
                             got '{value}'"
                        );
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--rebalance" => {
                let Some(value) = iter.next() else {
                    eprintln!("--rebalance needs an epoch in cycles");
                    return ExitCode::FAILURE;
                };
                match value.parse::<u64>() {
                    Ok(n) if n >= 1 => rebalance = Some(n),
                    _ => {
                        eprintln!("--rebalance needs a positive cycle count, got '{value}'");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--json" => {
                let Some(value) = iter.next() else {
                    eprintln!("--json needs an output path");
                    return ExitCode::FAILURE;
                };
                json_path = value;
            }
            "list" => {
                let width = REGISTRY.iter().map(|e| e.id().len()).max().unwrap_or(0);
                for experiment in REGISTRY {
                    println!("{:width$}  {}", experiment.id(), experiment.description());
                }
                return ExitCode::SUCCESS;
            }
            "all" => selected.extend(REGISTRY.iter().copied()),
            other => match find_experiment(other) {
                Some(experiment) => selected.push(experiment),
                None => {
                    eprintln!("unknown experiment '{other}'; try `repro list`");
                    return ExitCode::FAILURE;
                }
            },
        }
    }
    if selected.is_empty() {
        eprintln!(
            "usage: repro [--quick] [--jobs N] [--step-threads N] [--partition rows:N|tiles:RxC] \
             [--rebalance N] [--json PATH] <experiment>... | all | list"
        );
        let ids: Vec<&str> = REGISTRY.iter().map(|e| e.id()).collect();
        eprintln!("experiments: {}", ids.join(", "));
        return ExitCode::FAILURE;
    }
    let mut sweeps: Vec<SweepRecord> = Vec::new();
    let opts = RunOpts::new(effort)
        .with_jobs(jobs)
        .with_step_threads(step_threads)
        .with_partition_shape(shape)
        .with_rebalance_epoch(rebalance);
    for experiment in selected {
        let report = experiment.run(opts);
        println!("==================================================================");
        println!("{}", report.render_text());
        sweeps.extend(report.sweeps);
    }
    if !sweeps.is_empty() {
        match std::fs::write(&json_path, sweep_records_json(&sweeps)) {
            Ok(()) => println!("wrote {json_path} ({} sweep(s))", sweeps.len()),
            Err(err) => {
                eprintln!("failed to write {json_path}: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
