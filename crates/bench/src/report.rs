//! Structured experiment reports.
//!
//! An [`Experiment`](crate::Experiment) returns a [`Report`] — titled
//! sections of rendered text plus the machine-readable
//! [`SweepRecord`]s behind any simulation sweeps — instead of a bare
//! `String`. The text renderer reproduces the classic `repro` console
//! output; the JSON renderer makes the same report consumable by plotting
//! and CI tooling without scraping tables.

use crate::record::{self, SweepRecord};

/// One titled block of a [`Report`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReportSection {
    /// Section heading (may be empty for a single untitled body).
    pub title: String,
    /// Rendered text of the section (tables, summary lines, ...).
    pub body: String,
}

/// A finished experiment: structured sections plus machine-readable sweeps.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Experiment id this report belongs to (e.g. `fig5`, `patterns`).
    pub experiment: String,
    /// The report's sections, in presentation order.
    pub sections: Vec<ReportSection>,
    /// Machine-readable sweep data (empty for analytic experiments); emitted
    /// into `BENCH_sweep.json` by the `repro` binary.
    pub sweeps: Vec<SweepRecord>,
}

impl Report {
    /// An empty report for `experiment`.
    #[must_use]
    pub fn new(experiment: &str) -> Self {
        Self {
            experiment: experiment.to_owned(),
            sections: Vec::new(),
            sweeps: Vec::new(),
        }
    }

    /// A report whose whole body is one untitled section — the adapter for
    /// report text produced by the classic per-figure formatters.
    #[must_use]
    pub fn from_text(experiment: &str, body: String) -> Self {
        let mut report = Self::new(experiment);
        report.push_section("", body);
        report
    }

    /// Appends a section.
    pub fn push_section(&mut self, title: &str, body: impl Into<String>) {
        self.sections.push(ReportSection {
            title: title.to_owned(),
            body: body.into(),
        });
    }

    /// Builder-style [`push_section`](Self::push_section).
    #[must_use]
    pub fn with_section(mut self, title: &str, body: impl Into<String>) -> Self {
        self.push_section(title, body);
        self
    }

    /// Attaches machine-readable sweep records.
    #[must_use]
    pub fn with_sweeps(mut self, sweeps: Vec<SweepRecord>) -> Self {
        self.sweeps.extend(sweeps);
        self
    }

    /// Renders the report as console text: each titled section becomes a
    /// heading followed by its body; untitled sections render their body
    /// verbatim (keeping the classic `repro` output stable).
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (i, section) in self.sections.iter().enumerate() {
            if i > 0 {
                out.push('\n');
            }
            if !section.title.is_empty() {
                out.push_str(&section.title);
                out.push_str("\n\n");
            }
            out.push_str(&section.body);
            if !section.body.ends_with('\n') {
                out.push('\n');
            }
        }
        out
    }

    /// Renders the report as a self-contained JSON document (same dialect as
    /// `BENCH_sweep.json`: finite numbers, escaped strings, no external
    /// serialisation dependency).
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"experiment\": {},\n",
            record::json_string(&self.experiment)
        ));
        out.push_str("  \"sections\": [\n");
        for (i, s) in self.sections.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"title\": {}, \"body\": {}}}{}\n",
                record::json_string(&s.title),
                record::json_string(&s.body),
                if i + 1 == self.sections.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"sweeps\": [\n");
        for (i, sweep) in self.sweeps.iter().enumerate() {
            out.push_str(&record::sweep_record_json(sweep, "    "));
            out.push_str(if i + 1 == self.sweeps.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_rendering_keeps_untitled_bodies_verbatim() {
        let report = Report::from_text("table1", "body line\n".to_owned());
        assert_eq!(report.render_text(), "body line\n");
    }

    #[test]
    fn titled_sections_render_headings_and_separators() {
        let report = Report::new("patterns")
            .with_section("4x4 sweep", "a | b\n")
            .with_section("8x8 sweep", "c | d");
        let text = report.render_text();
        assert!(text.contains("4x4 sweep\n\na | b\n"));
        assert!(text.contains("\n8x8 sweep\n\nc | d\n"));
    }

    #[test]
    fn json_rendering_is_balanced_and_escaped() {
        let report = Report::new("demo").with_section("t\"itle", "line1\nline2");
        let json = report.render_json();
        assert!(json.contains("\"experiment\": \"demo\""));
        assert!(json.contains("t\\\"itle"));
        assert!(json.contains("line1\\nline2"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
