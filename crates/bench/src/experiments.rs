//! One function per table / figure of the paper.

use mesh_noc::{
    sweep, NetworkVariant, NocConfig, PartitionShape, Scenario, ServingOutcome, ServingRunner,
    Simulation, SimulationResult, SweepRunner,
};
use noc_circuit::{
    AreaModel, CriticalPathModel, EyeAnalysis, LowSwingLink, MulticastPowerPoint,
    SenseAmpVariation, Wire,
};
use noc_power::{
    reference, MeasuredPowerModel, OrionPowerModel, PostLayoutPowerModel, PowerBreakdown,
    PowerEstimator,
};
use noc_topology::chips;
use noc_topology::limits::{DatapathEnergy, MeshLimits};
use noc_traffic::{SeedMode, SpatialPattern, TrafficMix};

use crate::format::{num, pct, Table};
use crate::record::{SweepPointRecord, SweepRecord};
use crate::registry::RunOpts;
use crate::report::Report;

/// How much simulation time to spend on the simulation-backed experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Small warmup/measurement windows and coarse sweeps; used by unit tests
    /// and Criterion benches.
    Quick,
    /// The full-size runs recorded in `EXPERIMENTS.md`.
    Full,
}

impl Effort {
    fn warmup(self) -> u64 {
        match self {
            Effort::Quick => 200,
            Effort::Full => 1_000,
        }
    }

    fn measure(self) -> u64 {
        match self {
            Effort::Quick => 1_000,
            Effort::Full => 5_000,
        }
    }

    fn thin<T: Copy>(self, rates: &[T]) -> Vec<T> {
        match self {
            Effort::Quick => rates.iter().copied().step_by(2).collect(),
            Effort::Full => rates.to_vec(),
        }
    }
}

fn run_single(config: NocConfig, rate: f64, effort: Effort) -> SimulationResult {
    let mut sim = Simulation::new(config).expect("built-in configurations are valid");
    sim.run(rate, effort.warmup(), effort.measure())
        .expect("built-in rates are valid")
}

/// The [`SweepRunner`] every open-loop sweep experiment steps with: effort
/// windows plus the full thread/partition surface of [`RunOpts`] — worker
/// count, step threads, an explicit partition shape when the CLI passed
/// `--partition`, and the `--rebalance` epoch. Results are bit-identical for
/// every combination.
fn sweep_runner(opts: RunOpts) -> SweepRunner {
    let mut runner = SweepRunner::new(opts.jobs)
        .with_windows(opts.effort.warmup(), opts.effort.measure())
        .expect("effort windows are non-zero")
        .with_step_threads(opts.step_threads)
        .expect("callers pass a positive step-thread count");
    if let Some(shape) = opts.shape {
        runner = runner
            .with_partition_shape(shape)
            .expect("the CLI rejects zero partition axes at parse time");
    }
    runner.with_rebalance_epoch(opts.rebalance_epoch)
}

// --------------------------------------------------------------------- Table 1

/// Table 1: theoretical limits of a k×k mesh for unicast and broadcast
/// traffic.
#[must_use]
pub fn table1_report() -> String {
    let mut out = String::from("Table 1 - Theoretical limits of a k x k mesh NoC\n\n");
    let energy = DatapathEnergy::default();
    let mut table = Table::new([
        "k",
        "H_avg uni",
        "H_avg bcast",
        "bisection load (xR)",
        "ejection load (xR)",
        "bcast bisection (xR)",
        "bcast ejection (xR)",
        "R_sat uni",
        "R_sat bcast",
        "E_uni (pJ)",
        "E_bcast (pJ)",
    ]);
    for k in [2u16, 4, 5, 8, 16] {
        let l = MeshLimits::new(k);
        table.row([
            k.to_string(),
            num(l.unicast_average_hops(), 2),
            num(l.broadcast_average_hops(), 2),
            num(l.unicast_bisection_load(1.0), 2),
            num(l.unicast_ejection_load(1.0), 2),
            num(l.broadcast_bisection_load(1.0), 1),
            num(l.broadcast_ejection_load(1.0), 1),
            num(l.unicast_saturation_rate(), 3),
            num(l.broadcast_saturation_rate(), 4),
            num(l.unicast_energy_limit_pj(energy), 2),
            num(l.broadcast_energy_limit_pj(energy), 2),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\npaper check (k=4): H_uni = 3.33, H_bcast = 5.5, theoretical throughput limit\n\
         = 16 flits/cycle = 1024 Gb/s at 64 bits / 1 GHz.\n",
    );
    out
}

// --------------------------------------------------------------------- Table 2

/// Table 2: comparison of mesh NoC chip prototypes.
#[must_use]
pub fn table2_report() -> String {
    let mut out = String::from("Table 2 - Comparison of mesh NoC chip prototypes\n\n");
    let mut table = Table::new([
        "chip",
        "zero-load uni (cycles)",
        "zero-load bcast (cycles)",
        "channel load uni (xR)",
        "channel load bcast (xR)",
        "bisection BW (Gb/s)",
        "delay/hop (ns)",
    ]);
    for row in chips::table2() {
        table.row([
            row.name.clone(),
            num(row.unicast_zero_load_cycles, 1),
            num(row.broadcast_zero_load_cycles, 1),
            num(row.unicast_channel_load_factor, 0),
            num(row.broadcast_channel_load_factor, 0),
            num(row.bisection_bandwidth_gbps, 1),
            num(row.delay_per_hop_ns, 2),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\npaper values: Teraflops 30/120.5 cycles, TILE64 9/77.5, SWIFT 12/86,\n\
         this work 6/11.5 (modeled 8x8) and 3.3/5.5 (4x4); channel loads 64R/4096R\n\
         for the prior chips vs 64R/64R and 16R/16R for this work.\n",
    );
    out
}

// ------------------------------------------------------------- Figs. 5 and 13

fn latency_throughput_full(
    experiment: &str,
    title: &str,
    mix: TrafficMix,
    rates: &[f64],
    opts: RunOpts,
) -> (String, Vec<SweepRecord>) {
    let proposed_cfg = NocConfig::variant(NetworkVariant::LowSwingBroadcastBypass)
        .expect("valid preset")
        .with_mix(mix);
    let baseline_cfg = NocConfig::variant(NetworkVariant::FullSwingUnicast)
        .expect("valid preset")
        .with_mix(mix);
    let rates = opts.effort.thin(rates);
    let runner = sweep_runner(opts);
    let proposed_outcome = runner
        .run(proposed_cfg, &rates)
        .expect("built-in sweep configuration is valid");
    let baseline_outcome = runner
        .run(baseline_cfg, &rates)
        .expect("built-in sweep configuration is valid");
    let records = vec![
        SweepRecord::from_outcome(
            experiment,
            "proposed",
            proposed_cfg.k,
            runner.jobs(),
            runner.step_threads(),
            &proposed_outcome,
        ),
        SweepRecord::from_outcome(
            experiment,
            "baseline",
            baseline_cfg.k,
            runner.jobs(),
            runner.step_threads(),
            &baseline_outcome,
        ),
    ];
    let comparison = sweep::comparison_from_curves(
        &proposed_cfg,
        proposed_outcome.curve,
        baseline_outcome.curve,
    );

    let mut out = format!("{title}\n\n");
    let mut table = Table::new([
        "offered rate (flits/node/cyc)",
        "baseline latency (cyc)",
        "baseline thru (Gb/s)",
        "proposed latency (cyc)",
        "proposed thru (Gb/s)",
        "bypass fraction",
    ]);
    for (b, p) in comparison
        .baseline
        .points
        .iter()
        .zip(comparison.proposed.points.iter())
    {
        table.row([
            num(p.injection_rate, 3),
            num(b.latency_cycles, 1),
            num(b.received_gbps, 1),
            num(p.latency_cycles, 1),
            num(p.received_gbps, 1),
            num(p.bypass_fraction, 2),
        ]);
    }
    out.push_str(&table.render());
    out.push('\n');
    out.push_str(&format!(
        "theoretical latency limit: {:.1} cycles/packet, theoretical throughput limit: {:.0} Gb/s\n",
        comparison.theoretical_latency_cycles, comparison.theoretical_limit_gbps
    ));
    out.push_str(&format!(
        "low-load latency: baseline {:.1} vs proposed {:.1} cycles -> {} reduction (paper: 48.7% mixed / 55.1% bcast)\n",
        comparison.baseline.zero_load_latency_cycles,
        comparison.proposed.zero_load_latency_cycles,
        pct(comparison.latency_reduction)
    ));
    out.push_str(&format!(
        "saturation throughput: baseline {:.0} vs proposed {:.0} Gb/s -> {:.2}x improvement (paper: 2.1x mixed / 2.2x bcast)\n",
        comparison.baseline.saturation_gbps,
        comparison.proposed.saturation_gbps,
        comparison.throughput_improvement
    ));
    out.push_str(&format!(
        "proposed saturation = {} of the theoretical limit (paper: 87% mixed / 91% bcast)\n",
        pct(comparison.fraction_of_theoretical_limit)
    ));
    out.push_str(&format!(
        "sweep wall-clock: proposed {:.0} ms, baseline {:.0} ms ({} thread{})\n",
        records[0].total_wall_ms,
        records[1].total_wall_ms,
        runner.jobs(),
        if runner.jobs() == 1 { "" } else { "s" }
    ));
    (out, records)
}

/// Fig. 5: latency versus throughput under mixed traffic (50% broadcast
/// requests, 25% unicast requests, 25% unicast responses) at 1 GHz.
#[must_use]
pub fn fig5_report(effort: Effort) -> String {
    fig5_full(RunOpts::new(effort)).0
}

/// [`fig5_report`] with thread counts (see [`RunOpts`]), also returning the
/// machine-readable sweep records.
#[must_use]
pub fn fig5_full(opts: RunOpts) -> (String, Vec<SweepRecord>) {
    let rates = [0.01, 0.04, 0.08, 0.12, 0.16, 0.20, 0.24, 0.28];
    latency_throughput_full(
        "fig5",
        "Figure 5 - Throughput-latency with mixed traffic at 1 GHz",
        TrafficMix::mixed(),
        &rates,
        opts,
    )
}

/// Fig. 13: latency versus throughput under broadcast-only traffic.
#[must_use]
pub fn fig13_report(effort: Effort) -> String {
    fig13_full(RunOpts::new(effort)).0
}

/// [`fig13_report`] with thread counts (see [`RunOpts`]), also returning the
/// machine-readable sweep records.
#[must_use]
pub fn fig13_full(opts: RunOpts) -> (String, Vec<SweepRecord>) {
    let rates = [0.005, 0.015, 0.025, 0.035, 0.045, 0.055, 0.065, 0.075];
    latency_throughput_full(
        "fig13",
        "Figure 13 - Throughput-latency with broadcast-only traffic at 1 GHz",
        TrafficMix::broadcast_only(),
        &rates,
        opts,
    )
}

// -------------------------------------------------------------------- stress8

/// `stress8`: an 8×8-mesh mixed-traffic sweep across saturation — the
/// end-to-end scaling stressor for the simulation core. Not a paper figure;
/// it exists so `repro --jobs N stress8` makes the event-wheel core and the
/// parallel [`SweepRunner`] measurable on a workload 4× the prototype's
/// node count (the paper's own Table 2 models the chip as an 8×8 network).
#[must_use]
pub fn stress8_full(opts: RunOpts) -> (String, Vec<SweepRecord>) {
    let config = NocConfig::proposed_chip()
        .expect("valid preset")
        .with_side(8)
        .with_seed_mode(SeedMode::PerNode);
    let rates = opts
        .effort
        .thin(&[0.01, 0.04, 0.08, 0.12, 0.16, 0.20, 0.24, 0.28]);
    stress_mesh_full("stress8", "Stress 8x8", config, &rates, opts)
}

/// `stress16`: a 16×16-mesh mixed-traffic sweep — the scaling stressor for
/// the *partitioned* stepper. Not a paper figure; at 256 nodes the
/// single-threaded step loop dominates sweep wall-clock, so this is the
/// workload where `--step-threads N` pays off (and where CI exercises the
/// partition/mailbox/merge machinery end to end — results stay bit-identical
/// for any thread count).
#[must_use]
pub fn stress16_full(opts: RunOpts) -> (String, Vec<SweepRecord>) {
    let config = NocConfig::proposed_chip()
        .expect("valid preset")
        .with_side(16)
        .with_seed_mode(SeedMode::PerNode);
    let rates = opts.effort.thin(&[0.01, 0.03, 0.06, 0.10]);
    stress_mesh_full("stress16", "Stress 16x16", config, &rates, opts)
}

fn stress_mesh_full(
    experiment: &str,
    title: &str,
    config: NocConfig,
    rates: &[f64],
    opts: RunOpts,
) -> (String, Vec<SweepRecord>) {
    let runner = sweep_runner(opts);
    let outcome = runner
        .run(config, rates)
        .expect("built-in sweep configuration is valid");
    let record = SweepRecord::from_outcome(
        experiment,
        "proposed",
        config.k,
        runner.jobs(),
        runner.step_threads(),
        &outcome,
    );

    let mut out = format!("{title} - proposed network, mixed traffic, per-node seeds\n\n");
    let mut table = Table::new([
        "offered rate (flits/node/cyc)",
        "latency (cyc)",
        "p95 (cyc)",
        "thru (Gb/s)",
        "bypass fraction",
        "wall (ms)",
    ]);
    for p in &record.points {
        table.row([
            num(p.injection_rate, 3),
            num(p.latency_cycles, 1),
            num(p.p95_latency_cycles, 1),
            num(p.received_gbps, 1),
            num(p.bypass_fraction, 2),
            num(p.wall_ms, 1),
        ]);
    }
    out.push_str(&table.render());
    out.push('\n');
    out.push_str(&format!(
        "saturation throughput {:.0} Gb/s at rate {:.3}; zero-load latency {:.1} cycles\n",
        record.saturation_gbps, record.saturation_rate, record.zero_load_latency_cycles
    ));
    out.push_str(&format!(
        "total wall-clock {:.0} ms on {} sweep thread{} x {} step thread{} \
         (identical results for any thread counts)\n",
        record.total_wall_ms,
        runner.jobs(),
        if runner.jobs() == 1 { "" } else { "s" },
        runner.step_threads(),
        if runner.step_threads() == 1 { "" } else { "s" }
    ));
    (out, vec![record])
}

// ------------------------------------------------------------------ hotspot16

/// Injection rate of the fixed-length balance runs: enough background load
/// to keep the whole mesh active, with the hotspot's congestion tree
/// skewing where the work lands.
const HOTSPOT16_BALANCE_RATE: f64 = 0.04;

/// Rebalance epoch of the `*-rebal` balance variants (cycles).
const HOTSPOT16_EPOCH: u64 = 256;

/// The hotspot16 traffic scenario: a 16×16 proposed-chip mesh under unicast
/// traffic where 90% of packets target the far-corner node. XY routing
/// funnels that load into a congestion tree, so per-node activity is heavily
/// skewed — the workload the load-aware repartitioner exists for.
fn hotspot16_scenario() -> Scenario {
    let hotspot = noc_types::DestinationSet::unicast(255);
    Scenario::builder()
        .mesh(16)
        .pattern(SpatialPattern::hotspot(hotspot, 0.9))
        .mix(TrafficMix::unicast_only())
        .seed_mode(SeedMode::PerNode)
        .build()
        .expect("the hotspot16 scenario is a valid preset")
}

/// `hotspot16`: a 16×16-mesh weighted-hotspot stressor for the load-aware
/// repartitioner. Not a paper figure. Two halves:
///
/// 1. a normal latency/throughput sweep (the `hotspot16/proposed/k16/*`
///    baseline pins), honouring the CLI's `--jobs` / `--step-threads` /
///    `--partition` / `--rebalance` knobs like every other sweep;
/// 2. fixed-length **balance runs** on four partition layouts — uniform row
///    strips, uniform 2×2 tiles, and both with deterministic load-aware
///    rebalancing — reporting each layout's cumulative per-partition busy
///    counters ([`mesh_noc::Network::partition_loads`]). The per-node
///    weights are pure simulated state (bit-identical for every layout), so
///    the busy tables differ *only* in where the cuts fall: rebalancing must
///    drive max/mean strictly below the uniform split, and the JSON records
///    carry the counters as evidence (`partition_loads` in
///    `BENCH_hotspot16.json`).
#[must_use]
pub fn hotspot16_full(opts: RunOpts) -> (String, Vec<SweepRecord>) {
    let scenario = hotspot16_scenario();
    let runner = sweep_runner(opts);
    let rates = opts.effort.thin(&[0.01, 0.02, 0.04, 0.06]);
    let outcome = scenario
        .sweep(&runner, &rates)
        .expect("built-in sweep configuration is valid");
    let record = SweepRecord::from_outcome(
        "hotspot16",
        "proposed",
        scenario.config().k,
        runner.jobs(),
        runner.step_threads(),
        &outcome,
    );

    let mut out =
        String::from("Hotspot 16x16 - 90% of unicast traffic targets the far-corner node\n\n");
    let mut table = Table::new([
        "offered rate (flits/node/cyc)",
        "latency (cyc)",
        "p95 (cyc)",
        "thru (Gb/s)",
        "wall (ms)",
    ]);
    for p in &record.points {
        table.row([
            num(p.injection_rate, 3),
            num(p.latency_cycles, 1),
            num(p.p95_latency_cycles, 1),
            num(p.received_gbps, 1),
            num(p.wall_ms, 1),
        ]);
    }
    out.push_str(&table.render());
    out.push('\n');
    out.push_str(&format!(
        "saturation throughput {:.0} Gb/s at rate {:.3}; zero-load latency {:.1} cycles\n\n",
        record.saturation_gbps, record.saturation_rate, record.zero_load_latency_cycles
    ));
    let mut records = vec![record];

    let variants: [(&str, PartitionShape, Option<u64>); 4] = [
        ("rows4", PartitionShape::Rows(4), None),
        ("tiles2x2", PartitionShape::Tiles { rows: 2, cols: 2 }, None),
        (
            "rows4-rebal",
            PartitionShape::Rows(4),
            Some(HOTSPOT16_EPOCH),
        ),
        (
            "tiles2x2-rebal",
            PartitionShape::Tiles { rows: 2, cols: 2 },
            Some(HOTSPOT16_EPOCH),
        ),
    ];
    let mut table = Table::new([
        "partition layout",
        "busy max",
        "busy mean",
        "max/mean",
        "latency (cyc)",
        "thru (Gb/s)",
    ]);
    let mut imbalances = Vec::new();
    for (variant, shape, epoch) in variants {
        let (result, loads) = hotspot16_balance_run(&scenario, shape, epoch, opts.effort);
        let max = loads.iter().copied().max().unwrap_or(0) as f64;
        let mean = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
        let imbalance = max / mean;
        table.row([
            variant.to_owned(),
            format!("{}", loads.iter().copied().max().unwrap_or(0)),
            num(mean, 0),
            num(imbalance, 3),
            num(result.average_latency_cycles, 1),
            num(result.received_gbps, 1),
        ]);
        imbalances.push((variant, imbalance));
        records.push(hotspot16_balance_record(variant, &result, loads));
    }
    out.push_str(&format!(
        "Partition balance at rate {HOTSPOT16_BALANCE_RATE} (cumulative per-partition busy \
         counters;\nrebalance epoch {HOTSPOT16_EPOCH} cycles; identical simulated state for \
         every layout)\n\n",
    ));
    out.push_str(&table.render());
    out.push('\n');
    let lookup = |name: &str| {
        imbalances
            .iter()
            .find(|(v, _)| *v == name)
            .map_or(f64::NAN, |(_, i)| *i)
    };
    out.push_str(&format!(
        "load-aware rebalancing cuts the max/mean imbalance from {:.3} to {:.3} (row strips)\n\
         and from {:.3} to {:.3} (2x2 tiles); per-partition counters are in the JSON records\n",
        lookup("rows4"),
        lookup("rows4-rebal"),
        lookup("tiles2x2"),
        lookup("tiles2x2-rebal"),
    ));
    (out, records)
}

/// One fixed-length balance run of [`hotspot16_full`]: the scenario stepped
/// on `shape` (optionally rebalancing every `epoch` cycles), returning the
/// run statistics and the cumulative per-partition busy counters.
fn hotspot16_balance_run(
    scenario: &Scenario,
    shape: PartitionShape,
    epoch: Option<u64>,
    effort: Effort,
) -> (SimulationResult, Vec<u64>) {
    let mut sim = scenario
        .simulation()
        .expect("the hotspot16 scenario is a valid preset");
    sim.set_partition_shape(shape)
        .expect("balance-run shapes have non-zero axes");
    sim.set_rebalance_epoch(epoch);
    let result = sim
        .run(HOTSPOT16_BALANCE_RATE, effort.warmup(), effort.measure())
        .expect("the balance rate is a valid injection rate");
    let loads = sim.network().partition_loads();
    (result, loads)
}

/// Shapes one balance run into a [`SweepRecord`] so `BENCH_hotspot16.json`
/// carries the per-partition busy counters next to the sweep data. The
/// single "point" is the fixed-rate run; wall-clock fields are zero (balance
/// runs are about load placement, not speed).
fn hotspot16_balance_record(
    variant: &str,
    result: &SimulationResult,
    partition_loads: Vec<u64>,
) -> SweepRecord {
    SweepRecord {
        experiment: "hotspot16".to_owned(),
        network: variant.to_owned(),
        k: 16,
        jobs: 1,
        step_threads: partition_loads.len(),
        zero_load_latency_cycles: result.average_latency_cycles,
        saturation_gbps: result.received_gbps,
        saturation_rate: HOTSPOT16_BALANCE_RATE,
        total_wall_ms: 0.0,
        partition_loads,
        points: vec![SweepPointRecord {
            injection_rate: result.injection_rate,
            latency_cycles: result.average_latency_cycles,
            p50_latency_cycles: result.p50_latency_cycles,
            p95_latency_cycles: result.p95_latency_cycles,
            p99_latency_cycles: result.p99_latency_cycles,
            received_gbps: result.received_gbps,
            received_flits_per_cycle: result.received_flits_per_cycle,
            bypass_fraction: result.bypass_fraction,
            measured_packets: result.measured_packets,
            wall_ms: 0.0,
        }],
    }
}

// ------------------------------------------------------------------- patterns

/// `patterns`: a per-pattern saturation sweep of the proposed chip under
/// unicast traffic, one curve per [`SpatialPattern`] family — uniform-random
/// (unbiased resampling), transpose, bit-complement, bit-reverse, tornado,
/// nearest-neighbour, shuffle and a four-corner hotspot. Not a paper figure:
/// the chip's RTL only generates uniform traffic, but the pattern gallery is
/// the standard way to expose routing pathologies that uniform traffic
/// averages away. Quick effort sweeps the 4×4 chip; full effort adds the
/// 8×8 scaled mesh.
#[must_use]
pub fn patterns_report(opts: RunOpts) -> Report {
    let runner = sweep_runner(opts);
    let mut report = Report::new("patterns");
    let sides: &[u16] = match opts.effort {
        Effort::Quick => &[4],
        Effort::Full => &[4, 8],
    };
    let mut sweeps = Vec::new();
    for &k in sides {
        let rates = opts
            .effort
            .thin(&[0.05, 0.15, 0.25, 0.35, 0.45, 0.55, 0.65, 0.75, 0.85, 0.95]);
        let limits = MeshLimits::new(k);
        let unicast_limit_gbps = limits.throughput_limit_gbps(false, 64, 1.0);
        let mut table = Table::new([
            "pattern",
            "zero-load latency (cyc)",
            "saturation thru (Gb/s)",
            "saturation rate",
            "fraction of uni limit",
        ]);
        for pattern in SpatialPattern::gallery(k) {
            let scenario = Scenario::builder()
                .mesh(k)
                .pattern(pattern)
                .mix(TrafficMix::unicast_only())
                .seed_mode(SeedMode::PerNode)
                .build()
                .expect("the gallery validates on power-of-two meshes");
            let outcome = scenario
                .sweep(&runner, &rates)
                .expect("built-in sweep configuration is valid");
            let record = SweepRecord::from_outcome(
                "patterns",
                pattern.name(),
                k,
                runner.jobs(),
                runner.step_threads(),
                &outcome,
            );
            table.row([
                pattern.name().to_owned(),
                num(record.zero_load_latency_cycles, 1),
                num(record.saturation_gbps, 1),
                num(record.saturation_rate, 3),
                pct(record.saturation_gbps / unicast_limit_gbps),
            ]);
            sweeps.push(record);
        }
        let mut body = table.render();
        body.push_str(&format!(
            "\ntheoretical unicast throughput limit: {unicast_limit_gbps:.0} Gb/s \
             (bisection-limited at {:.3} flits/node/cycle)\n",
            limits.unicast_saturation_rate()
        ));
        report.push_section(
            &format!("Pattern gallery - {k}x{k} proposed chip, unicast traffic, per-node seeds"),
            body,
        );
    }
    report.with_sweeps(sweeps)
}

// -------------------------------------------------------------------- serving

/// `serving`: closed-loop request/reply serving on the proposed chip — every
/// client keeps a bounded window of requests outstanding against uniformly
/// drawn home nodes, so the network's own latency throttles offered load (see
/// [`mesh_noc::serving`]). Not a paper figure: the chip's RTL is open-loop
/// only, but the closed-loop knee is how a NoC behaves under a real
/// request/reply workload. The sweep grows the client population to the
/// throughput knee and reports the round-trip latency distribution
/// (mean / p50 / p95 / p99) per population point; results are bit-identical
/// for any `jobs` × `step_threads` combination.
#[must_use]
pub fn serving_report(opts: RunOpts) -> Report {
    let populations = opts.effort.thin(&[2, 4, 8, 16, 32, 64, 96, 128]);
    let config = NocConfig::proposed_chip().expect("valid preset");
    let runner = ServingRunner::new(opts.jobs)
        .with_windows(opts.effort.warmup(), opts.effort.measure())
        .expect("effort windows are non-zero")
        .with_step_threads(opts.step_threads)
        .expect("callers pass a positive step-thread count");
    let outcome = runner
        .run(config, &populations)
        .expect("built-in serving configuration is valid");
    let record = serving_record(&config, &runner, &outcome);

    let mut out = String::from(
        "Serving - closed-loop request/reply on the proposed chip (1-flit requests,\n\
         5-flit replies, uniform home nodes)\n\n",
    );
    let mut table = Table::new([
        "clients",
        "rtt mean (cyc)",
        "rtt p50",
        "rtt p95",
        "rtt p99",
        "completed/cyc",
        "delivered (Gb/s)",
        "wall (ms)",
    ]);
    for p in &outcome.points {
        table.row([
            p.clients.to_string(),
            num(p.result.rtt_mean_cycles, 1),
            num(p.result.rtt_p50_cycles, 0),
            num(p.result.rtt_p95_cycles, 0),
            num(p.result.rtt_p99_cycles, 0),
            num(p.result.completed_per_cycle, 3),
            num(p.result.received_gbps, 1),
            num(p.wall_ms, 1),
        ]);
    }
    out.push_str(&table.render());
    out.push('\n');
    let first = &outcome.points[0].result;
    out.push_str(&format!(
        "window {} outstanding/client, service latency {} cycles\n",
        first.window, first.service_cycles
    ));
    out.push_str(&format!(
        "low-population RTT {:.1} cycles; knee at {:.0} clients delivering {:.0} Gb/s\n",
        record.zero_load_latency_cycles, record.saturation_rate, record.saturation_gbps
    ));
    out.push_str(&format!(
        "total wall-clock {:.0} ms on {} sweep thread{} x {} step thread{} \
         (identical results for any thread counts)\n",
        record.total_wall_ms,
        runner.jobs(),
        if runner.jobs() == 1 { "" } else { "s" },
        runner.step_threads(),
        if runner.step_threads() == 1 { "" } else { "s" }
    ));
    Report::from_text("serving", out).with_sweeps(vec![record])
}

/// Shapes a [`ServingOutcome`] into the common [`SweepRecord`] so the
/// bench-diff pipeline and `BENCH_*.json` consumers need no special casing:
/// the "injection rate" axis carries the client population, latencies carry
/// the request→reply round trip, and the saturation knee uses the same
/// 3×-zero-load rule as the open-loop sweeps.
fn serving_record(
    config: &NocConfig,
    runner: &ServingRunner,
    outcome: &ServingOutcome,
) -> SweepRecord {
    let points: Vec<SweepPointRecord> = outcome
        .points
        .iter()
        .map(|p| SweepPointRecord {
            injection_rate: p.clients as f64,
            latency_cycles: p.result.rtt_mean_cycles,
            p50_latency_cycles: p.result.rtt_p50_cycles,
            p95_latency_cycles: p.result.rtt_p95_cycles,
            p99_latency_cycles: p.result.rtt_p99_cycles,
            received_gbps: p.result.received_gbps,
            received_flits_per_cycle: p.result.received_flits_per_cycle,
            bypass_fraction: p.result.bypass_fraction,
            measured_packets: p.result.measured_requests,
            wall_ms: p.wall_ms,
        })
        .collect();
    let zero_load = points.first().map_or(0.0, |p| p.latency_cycles);
    let knee = points
        .iter()
        .find(|p| p.latency_cycles > 3.0 * zero_load)
        .or_else(|| points.last())
        .expect("a serving sweep has at least one point");
    SweepRecord {
        experiment: "serving".to_owned(),
        network: "proposed".to_owned(),
        k: config.k,
        jobs: runner.jobs(),
        step_threads: runner.step_threads(),
        zero_load_latency_cycles: zero_load,
        saturation_gbps: knee.received_gbps,
        saturation_rate: knee.injection_rate,
        total_wall_ms: outcome.total_wall_ms,
        partition_loads: Vec::new(),
        points,
    }
}

// ---------------------------------------------------------------------- Fig 6

/// The delivered-throughput operating point of Fig. 6 (653 Gb/s of broadcast
/// delivery at 1 GHz and 64-bit flits): each node injects one broadcast every
/// ~23 cycles, which the 16 ejection links turn into ~10.2 delivered
/// flits/cycle.
const FIG6_RATE: f64 = 0.0425;

fn fig6_power(variant: NetworkVariant, effort: Effort) -> (PowerBreakdown, SimulationResult) {
    let config = NocConfig::variant(variant)
        .expect("valid preset")
        .with_mix(TrafficMix::broadcast_only());
    let result = run_single(config, FIG6_RATE, effort);
    let power = result.power(&config.energy_params());
    (power, result)
}

/// Fig. 6: measured power reduction at 653 Gb/s broadcast delivery, across
/// the four design variants A (full-swing unicast), B (low-swing unicast),
/// C (+router-level broadcast support), D (+multicast buffer bypass).
#[must_use]
pub fn fig6_report(effort: Effort) -> String {
    let mut out =
        String::from("Figure 6 - Power at 653 Gb/s broadcast delivery across variants A-D\n\n");
    let mut table = Table::new([
        "variant",
        "delivered (Gb/s)",
        "clocking (mW)",
        "router logic+buffers (mW)",
        "datapath (mW)",
        "leakage (mW)",
        "total (mW)",
    ]);
    let mut results = Vec::new();
    for variant in NetworkVariant::FIG6 {
        let (power, result) = fig6_power(variant, effort);
        table.row([
            format!(
                "{} ({})",
                variant.fig6_label().unwrap_or('?'),
                variant_name(variant)
            ),
            num(result.received_gbps, 0),
            num(power.clocking_group_mw(), 1),
            num(power.router_logic_and_buffer_mw(), 1),
            num(power.datapath_group_mw(), 1),
            num(power.leakage_mw, 1),
            num(power.total_mw(), 1),
        ]);
        results.push(power);
    }
    out.push_str(&table.render());
    out.push('\n');
    let (a, b, c, d) = (&results[0], &results[1], &results[2], &results[3]);
    out.push_str(&format!(
        "A->B datapath power reduction: {} (paper: {})\n",
        pct(1.0 - b.datapath_group_mw() / a.datapath_group_mw()),
        pct(reference::DATAPATH_REDUCTION)
    ));
    out.push_str(&format!(
        "B->C router logic+buffer reduction: {} (paper: {} of router logic)\n",
        pct(1.0 - c.router_logic_and_buffer_mw() / b.router_logic_and_buffer_mw()),
        pct(reference::ROUTER_LOGIC_REDUCTION)
    ));
    out.push_str(&format!(
        "C->D buffer power reduction: {} (paper: {} of buffers)\n",
        pct(1.0 - d.buffers_mw / c.buffers_mw),
        pct(reference::BUFFER_REDUCTION)
    ));
    out.push_str(&format!(
        "A->D total power reduction: {} (paper: {})\n",
        pct(1.0 - d.total_mw() / a.total_mw()),
        pct(reference::TOTAL_REDUCTION)
    ));
    out.push_str(&format!(
        "measured chip reference at this operating point: {:.1} mW\n",
        reference::CHIP_POWER_AT_653_GBPS_MW
    ));
    out
}

fn variant_name(variant: NetworkVariant) -> &'static str {
    match variant {
        NetworkVariant::TextbookBaseline => "textbook baseline",
        NetworkVariant::FullSwingUnicast => "full-swing unicast",
        NetworkVariant::LowSwingUnicast => "low-swing unicast",
        NetworkVariant::LowSwingBroadcastNoBypass => "low-swing broadcast, no bypass",
        NetworkVariant::LowSwingBroadcastBypass | NetworkVariant::ProposedChip => {
            "low-swing broadcast + bypass"
        }
    }
}

// ---------------------------------------------------------------------- Fig 8

/// Fig. 8: the same two networks priced by ORION-style, post-layout-style and
/// measured-calibration power models.
#[must_use]
pub fn fig8_report(effort: Effort) -> String {
    let mut out = String::from(
        "Figure 8 - Power estimates (ORION-style / post-layout-style / measured calibration)\n\n",
    );
    let baseline_cfg = NocConfig::variant(NetworkVariant::FullSwingUnicast)
        .expect("valid preset")
        .with_mix(TrafficMix::broadcast_only());
    let proposed_cfg = NocConfig::variant(NetworkVariant::LowSwingBroadcastBypass)
        .expect("valid preset")
        .with_mix(TrafficMix::broadcast_only());
    let baseline = run_single(baseline_cfg, FIG6_RATE, effort);
    let proposed = run_single(proposed_cfg, FIG6_RATE, effort);

    let mut table = Table::new([
        "model",
        "baseline total (mW)",
        "proposed total (mW)",
        "relative reduction",
        "ratio to measured (proposed)",
    ]);
    let price =
        |estimator: &dyn PowerEstimator, result: &SimulationResult, energy_cfg: &NocConfig| {
            let _ = energy_cfg;
            estimator
                .estimate(&result.counters, result.total_cycles, result.frequency_ghz)
                .total_mw()
        };

    let measured_baseline = MeasuredPowerModel::new(baseline_cfg.energy_params());
    let measured_proposed = MeasuredPowerModel::new(proposed_cfg.energy_params());
    let orion_baseline = OrionPowerModel::new(baseline_cfg.energy_params());
    let orion_proposed = OrionPowerModel::new(proposed_cfg.energy_params());
    let post_baseline = PostLayoutPowerModel::new(baseline_cfg.energy_params());
    let post_proposed = PostLayoutPowerModel::new(proposed_cfg.energy_params());

    let m_b = price(&measured_baseline, &baseline, &baseline_cfg);
    let m_p = price(&measured_proposed, &proposed, &proposed_cfg);
    let rows: [(&str, f64, f64); 3] = [
        (
            "ORION-style",
            price(&orion_baseline, &baseline, &baseline_cfg),
            price(&orion_proposed, &proposed, &proposed_cfg),
        ),
        (
            "post-layout-style",
            price(&post_baseline, &baseline, &baseline_cfg),
            price(&post_proposed, &proposed, &proposed_cfg),
        ),
        ("measured calibration", m_b, m_p),
    ];
    for (name, b, p) in rows {
        table.row([
            name.to_owned(),
            num(b, 1),
            num(p, 1),
            pct(1.0 - p / b),
            format!("{:.2}x", p / m_p),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\npaper: ORION over-estimates by {:.1}-{:.1}x but sees a 32% reduction; post-layout is\n\
         within 6-13% and sees 34%; the measured reduction is 38%.\n",
        reference::ORION_OVERESTIMATE.0,
        reference::ORION_OVERESTIMATE.1
    ));
    out
}

// -------------------------------------------------------------------- Table 3

/// Table 3: critical-path analysis of the baseline and virtual-bypassed
/// routers.
#[must_use]
pub fn table3_report() -> String {
    let model = CriticalPathModel::chip_45nm();
    let report = model.table3();
    let mut out = String::from("Table 3 - Critical path analysis\n\n");
    let mut table = Table::new(["quantity", "reproduced", "paper"]);
    table.row([
        "baseline pre-layout (ps)".to_owned(),
        num(report.baseline_pre_layout_ps, 0),
        "549".to_owned(),
    ]);
    table.row([
        "proposed pre-layout (ps)".to_owned(),
        num(report.proposed_pre_layout_ps, 0),
        "593 (1.08x)".to_owned(),
    ]);
    table.row([
        "baseline post-layout (ps)".to_owned(),
        num(report.baseline_post_layout_ps, 0),
        "658".to_owned(),
    ]);
    table.row([
        "proposed post-layout (ps)".to_owned(),
        num(report.proposed_post_layout_ps, 0),
        "793 (1.21x)".to_owned(),
    ]);
    table.row([
        "measured critical path (ps)".to_owned(),
        num(report.measured_ps, 0),
        "961 (1/1.04 GHz)".to_owned(),
    ]);
    table.row([
        "pre-layout overhead".to_owned(),
        format!("{:.2}x", report.pre_layout_overhead),
        "1.08x".to_owned(),
    ]);
    table.row([
        "post-layout overhead".to_owned(),
        format!("{:.2}x", report.post_layout_overhead),
        "1.21x".to_owned(),
    ]);
    table.row([
        "max measured frequency (GHz)".to_owned(),
        num(report.measured_frequency_ghz, 2),
        "1.04".to_owned(),
    ]);
    out.push_str(&table.render());
    out
}

// -------------------------------------------------------------------- Table 4

/// Table 4: area comparison of the low-swing and full-swing crossbars and
/// routers.
#[must_use]
pub fn table4_report() -> String {
    let report = AreaModel::chip_45nm().table4();
    let mut out = String::from("Table 4 - Area comparison with full-swing signaling\n\n");
    let mut table = Table::new(["quantity", "reproduced (um^2)", "paper (um^2)"]);
    table.row([
        "synthesized full-swing crossbar".to_owned(),
        num(report.full_swing_crossbar_um2, 0),
        "26,840".to_owned(),
    ]);
    table.row([
        "proposed low-swing crossbar".to_owned(),
        num(report.low_swing_crossbar_um2, 0),
        "83,200 (3.1x)".to_owned(),
    ]);
    table.row([
        "router with full-swing crossbar".to_owned(),
        num(report.full_swing_router_um2, 0),
        "227,230".to_owned(),
    ]);
    table.row([
        "router with low-swing crossbar".to_owned(),
        num(report.low_swing_router_um2, 0),
        "318,600 (1.4x)".to_owned(),
    ]);
    out.push_str(&table.render());
    out.push_str(&format!(
        "\ncrossbar overhead {:.2}x (paper 3.1x), router overhead {:.2}x (paper 1.4x)\n",
        report.crossbar_overhead, report.router_overhead
    ));
    out
}

// ---------------------------------------------------------------------- Fig 7

/// Fig. 7: energy efficiency of the tri-state RSD versus an equivalent
/// full-swing repeater, and the maximum single-cycle ST+LT data rates.
#[must_use]
pub fn fig7_report() -> String {
    let mut out = String::from("Figure 7 - Low-swing link energy efficiency (PRBS data)\n\n");
    let mut table = Table::new([
        "link length (mm)",
        "low-swing energy (fJ/bit)",
        "full-swing energy (fJ/bit)",
        "energy gain",
        "max ST+LT frequency (GHz)",
    ]);
    for length in [0.5, 1.0, 1.5, 2.0] {
        let wire = Wire::link_45nm(length);
        let low = LowSwingLink::new(wire, 0.3);
        let full = LowSwingLink::full_swing_equivalent(wire);
        table.row([
            num(length, 1),
            num(low.energy_per_bit_fj(), 1),
            num(full.energy_per_bit_fj(), 1),
            format!("{:.2}x", full.energy_per_bit_fj() / low.energy_per_bit_fj()),
            num(low.max_frequency_ghz(), 2),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\npaper: up to 3.2x lower energy at 300 mV swing; single-cycle ST+LT up to 5.4 GHz\n\
         over 1 mm links and 2.6 GHz over 2 mm links.\n",
    );
    out
}

// --------------------------------------------------------------------- Fig 10

/// Fig. 10: link failure probability and energy versus voltage swing
/// (Monte-Carlo over sense-amplifier offsets).
#[must_use]
pub fn fig10_report() -> String {
    let model = SenseAmpVariation::chip_45nm();
    let mut out =
        String::from("Figure 10 - Low-swing reliability vs energy trade-off (1000 MC runs)\n\n");
    let mut table = Table::new([
        "swing (mV)",
        "analytic failure prob",
        "MC failure rate (1000 runs)",
        "energy (norm. to 300 mV)",
        "sigma margin",
    ]);
    for (swing, failure, energy) in model.fig10_sweep(&[0.10, 0.15, 0.20, 0.25, 0.30, 0.40, 0.50]) {
        let mc = model.monte_carlo(swing, 1000, 0xD0C5_EED5);
        table.row([
            num(swing * 1000.0, 0),
            format!("{failure:.2e}"),
            num(mc.failure_rate(), 3),
            num(energy, 2),
            num(model.sigma_margin(swing), 1),
        ]);
    }
    out.push_str(&table.render());
    out.push_str("\npaper: 300 mV swing chosen for better-than-3-sigma reliability.\n");
    out
}

// --------------------------------------------------------------------- Fig 11

/// Fig. 11: dynamic power of the 1-bit tri-state RSD crossbar versus
/// multicast count.
#[must_use]
pub fn fig11_report() -> String {
    let mut out = String::from(
        "Figure 11 - Dynamic power of the tri-state RSD crossbar vs multicast count (1 mm, 5 Gb/s)\n\n",
    );
    let mut table = Table::new([
        "multicast count",
        "dynamic power (mW)",
        "relative to unicast",
    ]);
    let points = MulticastPowerPoint::sweep(1.0, 0.3, 5.0);
    let unicast = points[0].power_mw;
    for p in &points {
        table.row([
            p.fanout.to_string(),
            num(p.power_mw, 3),
            format!("{:.2}x", p.power_mw / unicast),
        ]);
    }
    out.push_str(&table.render());
    out.push_str("\npaper: power grows linearly with the multicast count because only the\nselected vertical wires and links are driven.\n");
    out
}

// --------------------------------------------------------------------- Fig 12

/// Fig. 12: repeated versus repeaterless low-swing signaling over a 2 mm span.
#[must_use]
pub fn fig12_report() -> String {
    let repeated = EyeAnalysis::repeated_2mm();
    let direct = EyeAnalysis::repeaterless_2mm();
    let mut out = String::from(
        "Figure 12 - Repeated (1 mm + 1 mm) vs repeaterless (2 mm) low-swing links at 2.5 Gb/s\n\n",
    );
    let mut table = Table::new([
        "configuration",
        "latency (cycles)",
        "energy (fJ/bit)",
        "eye @ nominal R (V)",
        "eye @ +30% R (V)",
        "eye @ +50% R (V)",
    ]);
    for (name, analysis) in [("1mm repeated", &repeated), ("2mm repeaterless", &direct)] {
        table.row([
            name.to_owned(),
            analysis.latency_cycles().to_string(),
            num(analysis.energy_per_bit_fj(), 1),
            num(analysis.eye_height_v(2.5, 1.0), 3),
            num(analysis.eye_height_v(2.5, 1.3), 3),
            num(analysis.eye_height_v(2.5, 1.5), 3),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nrepeated option: +1 cycle and {} more energy for a larger noise margin (paper: +1 cycle, +28% energy)\n",
        pct(repeated.energy_per_bit_fj() / direct.energy_per_bit_fj() - 1.0)
    ));
    out
}

// ------------------------------------------------------------------ zero load

/// §4.1 zero-load router power: the breakdown of per-router power at an
/// injection rate of 3/255 flits/node/cycle.
#[must_use]
pub fn zero_load_report(effort: Effort) -> String {
    let config = NocConfig::proposed_chip().expect("valid preset");
    let rate = 3.0 / 255.0;
    let result = run_single(config, rate, effort);
    let power = result.power(&config.energy_params());
    let routers = 16.0;
    let mut out = String::from("Zero-load router power breakdown (injection rate 3/255)\n\n");
    let mut table = Table::new(["component", "reproduced (mW/router)", "paper (mW/router)"]);
    table.row([
        "clocking".to_owned(),
        num(power.clocking_mw / routers, 2),
        "(part of 5.6 limit)".to_owned(),
    ]);
    table.row([
        "VC bookkeeping state".to_owned(),
        num(power.vc_state_mw / routers, 2),
        num(reference::ZERO_LOAD_VC_STATE_MW, 1),
    ]);
    table.row([
        "buffers".to_owned(),
        num(power.buffers_mw / routers, 2),
        num(reference::ZERO_LOAD_BUFFERS_MW, 1),
    ]);
    table.row([
        "allocators".to_owned(),
        num(power.allocators_mw / routers, 2),
        num(reference::ZERO_LOAD_ALLOCATORS_MW, 1),
    ]);
    table.row([
        "lookaheads".to_owned(),
        num(power.lookahead_mw / routers, 2),
        num(reference::ZERO_LOAD_LOOKAHEAD_MW, 1),
    ]);
    table.row([
        "datapath".to_owned(),
        num(power.datapath_group_mw() / routers, 2),
        "(part of 5.6 limit)".to_owned(),
    ]);
    table.row([
        "leakage".to_owned(),
        num(power.leakage_mw / routers, 2),
        num(reference::CHIP_LEAKAGE_MW / 16.0, 1),
    ]);
    table.row([
        "total per router".to_owned(),
        num(power.total_mw() / routers, 2),
        num(reference::ZERO_LOAD_ROUTER_MEASURED_MW, 1),
    ]);
    out.push_str(&table.render());
    out.push_str(&format!(
        "\ntheoretical per-router limit (clocking + datapath only): paper {:.1} mW\n",
        reference::ZERO_LOAD_ROUTER_LIMIT_MW
    ));
    out.push_str(&format!(
        "bypass fraction at this load: {:.2}\n",
        result.bypass_fraction
    ));
    out
}

// ------------------------------------------------------------------- headline

/// The §4.1 headline numbers: latency reduction, throughput improvement,
/// fraction of the theoretical limit, and the contention-per-hop effect of
/// the identical-seed PRBS artifact.
#[must_use]
pub fn headline_report(effort: Effort) -> String {
    let mut out = String::from("Headline summary (Section 4.1)\n\n");

    // Contention per hop at low load: identical vs per-node PRBS seeds.
    let limits = MeshLimits::new(4);
    let low_rate = 0.02;
    for (label, seed_mode, paper) in [
        (
            "identical PRBS seeds (chip artifact)",
            SeedMode::Identical,
            "1.03 cycles/hop (mixed)",
        ),
        (
            "per-node PRBS seeds (fixed RTL)",
            SeedMode::PerNode,
            "0.04 cycles/hop (mixed)",
        ),
    ] {
        let config = NocConfig::proposed_chip()
            .expect("valid preset")
            .with_seed_mode(seed_mode);
        let result = run_single(config, low_rate, effort);
        let ideal = limits.packet_latency_limit(true, 2);
        let contention_per_hop =
            (result.average_latency_cycles - ideal).max(0.0) / limits.broadcast_average_hops();
        out.push_str(&format!(
            "{label}: low-load latency {:.1} cycles, contention {:.2} cycles/hop (paper: {paper})\n",
            result.average_latency_cycles, contention_per_hop
        ));
    }
    out.push('\n');
    out.push_str(
        "latency / throughput / fraction-of-limit summaries are printed by `repro fig5` and\n`repro fig13`; power waterfalls by `repro fig6` and `repro fig8`.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_reports_contain_paper_anchors() {
        assert!(table1_report().contains("1024"));
        assert!(table2_report().contains("Intel Teraflops"));
        assert!(table3_report().contains("961"));
        assert!(table4_report().contains("3.1x"));
        assert!(fig7_report().contains("GHz"));
        assert!(fig10_report().contains("sigma"));
        assert!(fig11_report().contains("4"));
        assert!(fig12_report().contains("repeaterless"));
    }

    #[test]
    fn fig6_waterfall_shows_total_reduction() {
        let report = fig6_report(Effort::Quick);
        assert!(report.contains("A->D total power reduction"));
        assert!(report.contains("A (full-swing unicast)"));
    }

    #[test]
    fn fig5_quick_report_has_summary_lines() {
        let report = fig5_report(Effort::Quick);
        assert!(report.contains("low-load latency"));
        assert!(report.contains("saturation throughput"));
        assert!(report.contains("theoretical"));
    }

    #[test]
    fn hotspot16_rebalancing_beats_the_uniform_splits() {
        let (text, records) = hotspot16_full(RunOpts::new(Effort::Quick));
        assert!(text.contains("load-aware rebalancing cuts the max/mean imbalance"));
        let imbalance = |name: &str| {
            let r = records
                .iter()
                .find(|r| r.network == name)
                .unwrap_or_else(|| panic!("missing balance record {name}"));
            assert_eq!(r.partition_loads.len(), 4, "{name} runs on 4 partitions");
            let max = *r.partition_loads.iter().max().expect("non-empty") as f64;
            let mean = r.partition_loads.iter().sum::<u64>() as f64 / 4.0;
            max / mean
        };
        // The per-node weights are identical for every layout (pure simulated
        // state), so these ratios differ only in where the cuts fall: the
        // rebalanced layouts must beat their uniform splits strictly.
        assert!(
            imbalance("rows4-rebal") < imbalance("rows4"),
            "rebalanced rows {} vs uniform rows {}",
            imbalance("rows4-rebal"),
            imbalance("rows4")
        );
        assert!(
            imbalance("tiles2x2-rebal") < imbalance("tiles2x2"),
            "rebalanced tiles {} vs uniform tiles {}",
            imbalance("tiles2x2-rebal"),
            imbalance("tiles2x2")
        );
    }
}
