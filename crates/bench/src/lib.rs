//! # noc-bench
//!
//! The experiment harness: one function per table and figure of the paper,
//! each returning a formatted text report with the reproduced rows/series
//! (and, where the paper states them, the published values alongside for
//! comparison). The `repro` binary exposes them as subcommands; the Criterion
//! benches in `benches/` measure the performance of the underlying models.
//!
//! Every simulation-backed experiment takes a [`Effort`] knob so that CI and
//! the Criterion benches can run a quick variant while `repro` defaults to
//! the full-size runs recorded in `EXPERIMENTS.md`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;
mod format;
pub mod record;

pub use experiments::Effort;
pub use format::Table;
pub use record::{sweep_records_json, SweepPointRecord, SweepRecord};

/// Names of all experiments as accepted by the `repro` binary: the paper's
/// tables and figures in paper order, then the simulator's own scaling
/// scenarios.
pub const EXPERIMENTS: &[&str] = &[
    "table1", "table2", "fig5", "fig6", "table3", "fig7", "table4", "fig8", "fig10", "fig11",
    "fig12", "fig13", "zeroload", "headline", "stress8",
];

/// A finished experiment: the human-readable report and, for sweep-backed
/// experiments, the machine-readable sweep records behind it.
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// The rendered report text.
    pub report: String,
    /// Machine-readable sweep data (empty for analytic experiments).
    pub sweeps: Vec<SweepRecord>,
}

/// Runs one experiment by name and returns its report.
///
/// Returns `None` when the name is unknown.
#[must_use]
pub fn run_experiment(name: &str, effort: Effort) -> Option<String> {
    run_experiment_full(name, effort, 1).map(|output| output.report)
}

/// Runs one experiment by name with `jobs` sweep worker threads, returning
/// the report plus any machine-readable sweep records.
///
/// Returns `None` when the name is unknown. `jobs` only affects wall-clock
/// time: sweep results are bit-identical for any thread count.
#[must_use]
pub fn run_experiment_full(name: &str, effort: Effort, jobs: usize) -> Option<ExperimentOutput> {
    let (report, sweeps) = match name {
        "table1" => (experiments::table1_report(), Vec::new()),
        "table2" => (experiments::table2_report(), Vec::new()),
        "fig5" => experiments::fig5_full(effort, jobs),
        "fig6" => (experiments::fig6_report(effort), Vec::new()),
        "table3" => (experiments::table3_report(), Vec::new()),
        "fig7" => (experiments::fig7_report(), Vec::new()),
        "table4" => (experiments::table4_report(), Vec::new()),
        "fig8" => (experiments::fig8_report(effort), Vec::new()),
        "fig10" => (experiments::fig10_report(), Vec::new()),
        "fig11" => (experiments::fig11_report(), Vec::new()),
        "fig12" => (experiments::fig12_report(), Vec::new()),
        "fig13" => experiments::fig13_full(effort, jobs),
        "zeroload" => (experiments::zero_load_report(effort), Vec::new()),
        "headline" => (experiments::headline_report(effort), Vec::new()),
        "stress8" => experiments::stress8_full(effort, jobs),
        _ => return None,
    };
    Some(ExperimentOutput { report, sweeps })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_experiment_runs_in_quick_mode() {
        for name in EXPERIMENTS {
            let report = run_experiment(name, Effort::Quick)
                .unwrap_or_else(|| panic!("experiment {name} missing"));
            assert!(!report.is_empty(), "{name} produced an empty report");
            assert!(
                report.contains('|') || report.contains(':'),
                "{name} report looks empty"
            );
        }
    }

    #[test]
    fn unknown_experiments_are_rejected() {
        assert!(run_experiment("fig99", Effort::Quick).is_none());
    }
}
