//! # noc-bench
//!
//! The experiment harness. Every table and figure of the paper (plus the
//! simulator's own scaling scenarios) is an [`Experiment`] object in the
//! typed [`REGISTRY`]: it has a stable id, a one-line description, and a
//! `run(opts)` method (see [`RunOpts`]) returning a structured [`Report`]
//! (titled sections plus machine-readable [`SweepRecord`]s, renderable as
//! text or JSON). The `repro` binary iterates the registry; the Criterion
//! benches in `benches/` measure the performance of the underlying models.
//!
//! Every simulation-backed experiment takes an [`Effort`] knob (inside its
//! [`RunOpts`]) so that CI and the Criterion benches can run a quick variant
//! while `repro` defaults to the full-size runs recorded in `EXPERIMENTS.md`.
//!
//! # Examples
//!
//! ```
//! use noc_bench::{registry, Effort, RunOpts};
//!
//! let table1 = registry::find("table1").expect("registered");
//! let report = table1.run(RunOpts::new(Effort::Quick));
//! assert!(report.render_text().contains("Theoretical limits"));
//! assert!(report.render_json().contains("\"experiment\": \"table1\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;
mod format;
pub mod record;
pub mod registry;
mod report;

pub use experiments::Effort;
pub use format::Table;
pub use record::{sweep_records_json, SweepPointRecord, SweepRecord};
pub use registry::{find as find_experiment, Experiment, RunOpts, REGISTRY};
pub use report::{Report, ReportSection};

/// Runs one experiment by id and returns its rendered text report
/// (convenience wrapper over [`registry::find`] for callers that don't need
/// the structured [`Report`]).
///
/// Returns `None` when the id is unknown.
#[must_use]
pub fn run_experiment(id: &str, effort: Effort) -> Option<String> {
    registry::find(id).map(|e| e.run(RunOpts::new(effort)).render_text())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_experiment_runs_in_quick_mode() {
        for experiment in REGISTRY {
            let report = experiment.run(RunOpts::new(Effort::Quick));
            assert_eq!(report.experiment, experiment.id());
            let text = report.render_text();
            assert!(
                !text.is_empty(),
                "{} produced an empty report",
                experiment.id()
            );
            assert!(
                text.contains('|') || text.contains(':'),
                "{} report looks empty",
                experiment.id()
            );
            // The JSON rendering stays well-formed for every experiment.
            let json = report.render_json();
            assert_eq!(json.matches('{').count(), json.matches('}').count());
        }
    }

    #[test]
    fn sweep_backed_experiments_attach_records() {
        for (id, expected_sweeps) in [
            ("fig5", 2),
            ("stress8", 1),
            ("stress16", 1),
            ("hotspot16", 5),
            ("patterns", 8),
            ("serving", 1),
        ] {
            let opts = RunOpts::new(Effort::Quick)
                .with_jobs(2)
                .with_step_threads(2);
            let report = find_experiment(id).unwrap().run(opts);
            assert_eq!(
                report.sweeps.len(),
                expected_sweeps,
                "{id} sweep record count"
            );
        }
    }

    #[test]
    fn unknown_experiments_are_rejected() {
        assert!(run_experiment("fig99", Effort::Quick).is_none());
    }
}
