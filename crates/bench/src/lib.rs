//! # noc-bench
//!
//! The experiment harness: one function per table and figure of the paper,
//! each returning a formatted text report with the reproduced rows/series
//! (and, where the paper states them, the published values alongside for
//! comparison). The `repro` binary exposes them as subcommands; the Criterion
//! benches in `benches/` measure the performance of the underlying models.
//!
//! Every simulation-backed experiment takes a [`Effort`] knob so that CI and
//! the Criterion benches can run a quick variant while `repro` defaults to
//! the full-size runs recorded in `EXPERIMENTS.md`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;
mod format;

pub use experiments::Effort;
pub use format::Table;

/// Names of all experiments, in paper order, as accepted by the `repro`
/// binary.
pub const EXPERIMENTS: &[&str] = &[
    "table1", "table2", "fig5", "fig6", "table3", "fig7", "table4", "fig8", "fig10", "fig11",
    "fig12", "fig13", "zeroload", "headline",
];

/// Runs one experiment by name and returns its report.
///
/// Returns `None` when the name is unknown.
#[must_use]
pub fn run_experiment(name: &str, effort: Effort) -> Option<String> {
    let report = match name {
        "table1" => experiments::table1_report(),
        "table2" => experiments::table2_report(),
        "fig5" => experiments::fig5_report(effort),
        "fig6" => experiments::fig6_report(effort),
        "table3" => experiments::table3_report(),
        "fig7" => experiments::fig7_report(),
        "table4" => experiments::table4_report(),
        "fig8" => experiments::fig8_report(effort),
        "fig10" => experiments::fig10_report(),
        "fig11" => experiments::fig11_report(),
        "fig12" => experiments::fig12_report(),
        "fig13" => experiments::fig13_report(effort),
        "zeroload" => experiments::zero_load_report(effort),
        "headline" => experiments::headline_report(effort),
        _ => return None,
    };
    Some(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_experiment_runs_in_quick_mode() {
        for name in EXPERIMENTS {
            let report = run_experiment(name, Effort::Quick)
                .unwrap_or_else(|| panic!("experiment {name} missing"));
            assert!(!report.is_empty(), "{name} produced an empty report");
            assert!(
                report.contains('|') || report.contains(':'),
                "{name} report looks empty"
            );
        }
    }

    #[test]
    fn unknown_experiments_are_rejected() {
        assert!(run_experiment("fig99", Effort::Quick).is_none());
    }
}
